//! # adr-synth — synthetic ADR corpus generator
//!
//! The paper evaluates on a confidential TGA extract (10,382 reports from
//! Jul–Dec 2013 with 286 expert-labelled duplicate pairs — its Table 3).
//! That data cannot be redistributed, so this crate synthesises a corpus
//! with the same statistical shape:
//!
//! * [`lexicon`] — deterministic drug-name and MedDRA-PT-like term
//!   grammars sized to Table 3 (1,366 drugs; 2,351 ADR terms);
//! * [`narrative`] — five reporter-style templates rendering ~250–300
//!   character free-text descriptions (§4.1's reported length band);
//! * [`corruption`] — the duplicate corruption mechanisms visible in the
//!   paper's Table 1: mis-keyed age digits, changed outcome descriptions,
//!   edited/reordered ADR lists, paraphrased narratives, typos;
//! * [`generator`] — seeded corpus generation with duplicate injection and
//!   a Table 3-shaped summary;
//! * [`queries`] — deterministic open-loop query workloads (Poisson
//!   arrivals over a simulated user population) for the serving benchmarks.
//!
//! Why this substitution preserves the paper's problem: duplicate-detection
//! difficulty is a function of (a) the distance-vector gap between duplicate
//! and non-duplicate pairs and (b) the extreme label imbalance once reports
//! are expanded into pairs. Both are directly controlled here (corruption
//! intensity; duplication rate ≈ 5% of reports as in Nkanza & Walop).

pub mod corruption;
pub mod generator;
pub mod lexicon;
pub mod narrative;
pub mod queries;
pub mod streaming;

pub use corruption::CorruptionConfig;
pub use generator::{Dataset, DatasetSummary, SynthConfig};
pub use queries::{generate_query_load, QueryArrival, QueryLoadConfig, QuerySpec};
pub use streaming::{QuarterlyReplay, StreamingCorpus};
