//! Corruption models for duplicate injection.
//!
//! The paper's Table 1 shows exactly how real ADR duplicates differ:
//! a changed reaction-outcome description, a rewritten narrative, an age
//! digit mis-keyed from a handwritten form (84 → 34), and a reordered /
//! partially overlapping ADR list. Each model here reproduces one of those
//! mechanisms; [`CorruptionConfig`] controls how aggressively a duplicate is
//! corrupted.

use rand::rngs::StdRng;
use rand::Rng;

/// Probabilities of each corruption applying to an injected duplicate.
#[derive(Debug, Clone, Copy)]
pub struct CorruptionConfig {
    /// Mis-key one digit of the age (Table 1(b): 84 → 34).
    pub age_digit_error: f64,
    /// Replace the outcome description (Table 1(a): Unknown → Recovered).
    pub outcome_change: f64,
    /// Drop or add one ADR term (Table 1(b)'s differing ADR lists).
    pub adr_list_edit: f64,
    /// Re-render the narrative from a different template (different
    /// reporter paraphrasing the same event).
    pub narrative_retemplate: f64,
    /// Inject a typo into the narrative.
    pub narrative_typo: f64,
    /// Blank the residential state ("Not Known").
    pub state_dropout: f64,
    /// Re-key the onset date (follow-up reports frequently record a
    /// different onset; a mis-read handwritten day is the Table 1 error
    /// class applied to dates).
    pub onset_date_error: f64,
    /// Edit the drug list (a follow-up report adds or drops a co-suspect
    /// medicine) — weakens the drug-field Jaccard match without inventing
    /// new drug names.
    pub drug_list_edit: f64,
    /// Probability that a duplicate is a *divergent clinical follow-up*: a
    /// later report of the same case in which the patient's course has
    /// moved on — new onset date on record, different outcome, evolved
    /// reaction list, state re-keyed — while the narrative is still a full
    /// clinical account. (The paper's Table 1(b) pair — ages 84 vs 34,
    /// different outcome, different ADR lists — is one of these.)
    pub divergent_followup: f64,
    /// Probability that a duplicate is an *administrative follow-up*: the
    /// structured fields are intact (same patient, same dates) but the
    /// narrative is a minimal forwarding note and the outcome has been
    /// updated. Together with divergent follow-ups this makes the positive
    /// class multi-modal: one mode keeps the fields and loses the text, the
    /// other keeps the text topic and loses the fields — no single linear
    /// rule covers both, which is exactly where kNN's local decisions beat
    /// the SVM baseline (§5.2.2).
    pub admin_followup: f64,
}

impl Default for CorruptionConfig {
    fn default() -> Self {
        CorruptionConfig {
            age_digit_error: 0.15,
            outcome_change: 0.50,
            adr_list_edit: 0.50,
            narrative_retemplate: 1.0,
            narrative_typo: 0.70,
            state_dropout: 0.15,
            onset_date_error: 0.20,
            drug_list_edit: 0.20,
            divergent_followup: 0.25,
            admin_followup: 0.20,
        }
    }
}

impl CorruptionConfig {
    /// Heavier corruption — duplicates become harder to detect; used to
    /// stress classifier robustness.
    pub fn hard() -> Self {
        CorruptionConfig {
            age_digit_error: 0.30,
            outcome_change: 0.70,
            adr_list_edit: 0.70,
            narrative_retemplate: 1.0,
            narrative_typo: 0.90,
            state_dropout: 0.30,
            onset_date_error: 0.50,
            drug_list_edit: 0.35,
            divergent_followup: 0.30,
            admin_followup: 0.25,
        }
    }

    /// Minimal corruption — near-exact duplicates.
    pub fn easy() -> Self {
        CorruptionConfig {
            age_digit_error: 0.02,
            outcome_change: 0.15,
            adr_list_edit: 0.10,
            narrative_retemplate: 0.50,
            narrative_typo: 0.20,
            state_dropout: 0.02,
            onset_date_error: 0.05,
            drug_list_edit: 0.02,
            divergent_followup: 0.04,
            admin_followup: 0.04,
        }
    }
}

/// Mis-key one digit of `age` (replace a random digit with a random other
/// digit), the handwriting-transcription error of Table 1(b).
pub fn corrupt_age(age: u32, rng: &mut StdRng) -> u32 {
    let s = age.to_string();
    let bytes = s.as_bytes();
    let pos = rng.gen_range(0..bytes.len());
    let old = bytes[pos] - b'0';
    let mut new = rng.gen_range(0..10u8);
    if new == old {
        new = (new + 1) % 10;
    }
    // Avoid a leading zero producing a different digit count.
    if pos == 0 && new == 0 {
        new = rng.gen_range(1..10);
    }
    let mut out = s.into_bytes();
    out[pos] = b'0' + new;
    String::from_utf8(out)
        .expect("digits are ASCII")
        .parse()
        .expect("digit string parses")
}

/// Inject a single typo (substitution, deletion or adjacent transposition)
/// at a random alphabetic position of `text`.
pub fn inject_typo(text: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = text.chars().collect();
    let alpha_positions: Vec<usize> = chars
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_ascii_lowercase())
        .map(|(i, _)| i)
        .collect();
    if alpha_positions.is_empty() {
        return text.to_string();
    }
    let pos = alpha_positions[rng.gen_range(0..alpha_positions.len())];
    let mut out = chars;
    match rng.gen_range(0..3u8) {
        0 => {
            // Substitute with a neighbouring letter.
            let c = out[pos];
            let sub = ((c as u8 - b'a' + rng.gen_range(1..26)) % 26 + b'a') as char;
            out[pos] = sub;
        }
        1 => {
            out.remove(pos);
        }
        _ => {
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            }
        }
    }
    out.into_iter().collect()
}

/// Re-key the day component of a `DD/MM/YYYY …` date string to a different
/// day in `1..=28`, leaving month and year intact.
pub fn corrupt_date(date: &str, rng: &mut StdRng) -> String {
    let Some((day_str, rest)) = date.split_once('/') else {
        return date.to_string();
    };
    let old_day: u32 = day_str.parse().unwrap_or(1);
    let mut new_day = rng.gen_range(1..=28u32);
    if new_day == old_day {
        new_day = new_day % 28 + 1;
    }
    format!("{new_day:02}/{rest}")
}

/// Drop one element (if len > 1) or duplicate-with-reorder the ADR list;
/// always reorders, since follow-up reports rarely list reactions in the
/// same order.
pub fn edit_term_list(terms: &mut Vec<String>, extra_pool: &[String], rng: &mut StdRng) {
    if terms.len() > 1 && rng.gen_bool(0.5) {
        let victim = rng.gen_range(0..terms.len());
        terms.remove(victim);
    } else if !extra_pool.is_empty() {
        let add = &extra_pool[rng.gen_range(0..extra_pool.len())];
        if !terms.contains(add) {
            terms.push(add.clone());
        }
    }
    // Fisher–Yates reorder.
    for i in (1..terms.len()).rev() {
        let j = rng.gen_range(0..=i);
        terms.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn corrupt_age_changes_exactly_one_digit() {
        let mut r = rng(1);
        for age in [84u32, 46, 7, 103] {
            let c = corrupt_age(age, &mut r);
            assert_ne!(c, age);
            let a = age.to_string();
            let b = c.to_string();
            assert_eq!(
                a.len(),
                b.len(),
                "digit count must not change: {age} -> {c}"
            );
            let diff = a.bytes().zip(b.bytes()).filter(|(x, y)| x != y).count();
            assert_eq!(diff, 1, "{age} -> {c}");
        }
    }

    #[test]
    fn corrupt_age_never_leads_with_zero() {
        let mut r = rng(7);
        for _ in 0..200 {
            let c = corrupt_age(84, &mut r);
            assert!(!c.to_string().starts_with('0'));
            assert!(c >= 10);
        }
    }

    #[test]
    fn inject_typo_changes_text_slightly() {
        let mut r = rng(2);
        let original = "the patient experienced severe headache";
        for _ in 0..50 {
            let t = inject_typo(original, &mut r);
            let dist = simple_edit_distance(original, &t);
            assert!(dist <= 2, "typo should be a small edit: {t:?}");
        }
    }

    fn simple_edit_distance(a: &str, b: &str) -> usize {
        // Tiny Levenshtein for the test only.
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        for (i, ca) in a.iter().enumerate() {
            let mut cur = vec![i + 1];
            for (j, cb) in b.iter().enumerate() {
                let cost = usize::from(ca != cb);
                cur.push((prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1));
            }
            prev = cur;
        }
        prev[b.len()]
    }

    #[test]
    fn inject_typo_on_text_without_letters_is_identity() {
        let mut r = rng(3);
        assert_eq!(inject_typo("1234 5678", &mut r), "1234 5678");
    }

    #[test]
    fn corrupt_date_changes_day_only() {
        let mut r = rng(9);
        for _ in 0..100 {
            let c = corrupt_date("30/04/2013 00:00:00", &mut r);
            assert_ne!(c, "30/04/2013 00:00:00");
            assert!(c.ends_with("/04/2013 00:00:00"), "{c}");
            let day: u32 = c[..2].parse().unwrap();
            assert!((1..=28).contains(&day));
        }
        // Malformed dates pass through unchanged.
        assert_eq!(corrupt_date("no-date", &mut r), "no-date");
    }

    #[test]
    fn edit_term_list_keeps_at_least_one_term() {
        let mut r = rng(4);
        let pool: Vec<String> = vec!["Chills".into(), "Nausea".into()];
        for _ in 0..100 {
            let mut terms = vec!["Cough".to_string(), "Headache".to_string()];
            edit_term_list(&mut terms, &pool, &mut r);
            assert!(!terms.is_empty());
        }
    }

    #[test]
    fn edit_term_list_single_term_grows() {
        let mut r = rng(5);
        let pool: Vec<String> = vec!["Chills".into()];
        let mut terms = vec!["Cough".to_string()];
        edit_term_list(&mut terms, &pool, &mut r);
        assert!(terms.contains(&"Cough".to_string()));
        assert_eq!(terms.len(), 2);
    }

    #[test]
    fn config_presets_are_ordered_by_severity() {
        let easy = CorruptionConfig::easy();
        let def = CorruptionConfig::default();
        let hard = CorruptionConfig::hard();
        assert!(easy.outcome_change < def.outcome_change);
        assert!(def.outcome_change < hard.outcome_change);
        assert!(easy.adr_list_edit < hard.adr_list_edit);
    }
}
