//! Open-loop query workloads: deterministic Poisson arrival streams.
//!
//! The serving benchmarks drive the dedup service the way a public
//! pharmacovigilance portal is driven: a large population of independent
//! users submitting duplicate lookups and drug–event signal queries at
//! their own pace, regardless of whether the service keeps up (open-loop —
//! arrivals never wait for completions, so queueing delay is visible
//! instead of being absorbed by the load generator).
//!
//! A superposition of many independent sparse user processes is a Poisson
//! process, so the stream draws i.i.d. exponential inter-arrival gaps with
//! the configured mean. Everything is a pure function of the config: gap
//! `i` and the query of arrival `i` each come from their own
//! splitmix64-seeded draws (the [`crate::StreamingCorpus`] idiom), so any
//! two generators with the same config produce bit-identical streams —
//! the reproducibility anchor for the serve digests.
//!
//! This crate knows nothing of the dedup service: a [`QuerySpec`] names
//! *report ids*, and the consumer resolves them against whatever corpus it
//! serves (probe report for duplicate lookups; the report's first drug and
//! reaction words for signal queries).

/// splitmix64 finalizer over `(seed, n)` — one independent draw per use.
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `(0, 1]` from 53 high bits (never 0, so `ln` is finite).
fn unit(bits: u64) -> f64 {
    ((bits >> 11) as f64 + 1.0) * (1.0 / 9_007_199_254_740_992.0)
}

/// Shape of one generated query-arrival stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryLoadConfig {
    /// Stream seed: distinct seeds give independent streams.
    pub seed: u64,
    /// Number of arrivals to generate.
    pub requests: usize,
    /// Size of the simulated user population (arrivals are attributed
    /// uniformly; with millions of users each is individually sparse).
    pub users: u64,
    /// Mean inter-arrival gap in virtual µs (the Poisson rate is its
    /// reciprocal). Lower = heavier load.
    pub mean_interarrival_us: u64,
    /// Per-mille of arrivals that are signal queries (the rest are
    /// duplicate lookups).
    pub signal_per_mille: u32,
    /// Probe report ids are drawn uniformly from `[0, probe_span)`.
    pub probe_span: u64,
}

impl Default for QueryLoadConfig {
    fn default() -> Self {
        QueryLoadConfig {
            seed: 2016,
            requests: 1_000,
            users: 2_000_000,
            mean_interarrival_us: 1_000,
            signal_per_mille: 300,
            probe_span: 1_000,
        }
    }
}

/// What one arrival asks, as plain report-id data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySpec {
    /// Duplicate lookup probing corpus report `probe_id`.
    Duplicate {
        /// Report id to probe with.
        probe_id: u64,
    },
    /// Signal (drug–event association) query derived from corpus report
    /// `probe_id` — the consumer uses that report's leading drug and
    /// reaction words.
    Signal {
        /// Report id whose drug/reaction words form the query.
        probe_id: u64,
    },
}

/// One timestamped arrival in the open-loop stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryArrival {
    /// Virtual arrival time (µs); streams are sorted by this.
    pub arrival_us: u64,
    /// Simulated user submitting the query.
    pub user: u64,
    /// The query itself.
    pub spec: QuerySpec,
}

/// Generate the arrival stream for `config`: `config.requests` arrivals in
/// non-decreasing time order. Pure — equal configs yield identical streams.
pub fn generate_query_load(config: &QueryLoadConfig) -> Vec<QueryArrival> {
    let mean = config.mean_interarrival_us.max(1) as f64;
    let span = config.probe_span.max(1);
    let users = config.users.max(1);
    let mut t = 0u64;
    let mut out = Vec::with_capacity(config.requests);
    for i in 0..config.requests as u64 {
        // Four independent draws per arrival: gap, user, kind, probe.
        let gap = -mean * unit(mix(config.seed, 4 * i)).ln();
        t = t.saturating_add(gap.round() as u64);
        let user = mix(config.seed, 4 * i + 1) % users;
        let kind = mix(config.seed, 4 * i + 2) % 1000;
        let probe_id = mix(config.seed, 4 * i + 3) % span;
        let spec = if (kind as u32) < config.signal_per_mille {
            QuerySpec::Signal { probe_id }
        } else {
            QuerySpec::Duplicate { probe_id }
        };
        out.push(QueryArrival {
            arrival_us: t,
            user,
            spec,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let config = QueryLoadConfig::default();
        let a = generate_query_load(&config);
        let b = generate_query_load(&config);
        assert_eq!(a, b, "same config must give a bit-identical stream");
        assert!(a.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
        assert_eq!(a.len(), config.requests);
        let other = generate_query_load(&QueryLoadConfig { seed: 7, ..config });
        assert_ne!(a, other, "distinct seeds give distinct streams");
    }

    #[test]
    fn interarrival_mean_and_mix_match_the_config() {
        let config = QueryLoadConfig {
            requests: 20_000,
            mean_interarrival_us: 500,
            signal_per_mille: 250,
            ..QueryLoadConfig::default()
        };
        let load = generate_query_load(&config);
        let span_us = load.last().unwrap().arrival_us;
        let mean = span_us as f64 / load.len() as f64;
        assert!(
            (400.0..600.0).contains(&mean),
            "observed mean gap {mean}µs, want ≈500"
        );
        let signals = load
            .iter()
            .filter(|q| matches!(q.spec, QuerySpec::Signal { .. }))
            .count();
        let per_mille = signals * 1000 / load.len();
        assert!(
            (200..300).contains(&per_mille),
            "signal share {per_mille}‰, want ≈250‰"
        );
        // Exponential gaps are bursty: both near-zero and >2×-mean gaps
        // must occur, or the stream is not Poisson-like.
        let mut tiny = 0usize;
        let mut long = 0usize;
        for w in load.windows(2) {
            let gap = w[1].arrival_us - w[0].arrival_us;
            if gap < 50 {
                tiny += 1;
            }
            if gap > 1_000 {
                long += 1;
            }
        }
        assert!(tiny > 500, "want bursts of near-simultaneous arrivals");
        assert!(long > 500, "want long quiet gaps");
    }

    #[test]
    fn probes_and_users_are_spread() {
        let config = QueryLoadConfig {
            requests: 5_000,
            users: 1_000_000,
            probe_span: 100,
            ..QueryLoadConfig::default()
        };
        let load = generate_query_load(&config);
        for q in &load {
            let probe = match q.spec {
                QuerySpec::Duplicate { probe_id } | QuerySpec::Signal { probe_id } => probe_id,
            };
            assert!(probe < 100);
            assert!(q.user < 1_000_000);
        }
        let distinct_users: std::collections::HashSet<u64> = load.iter().map(|q| q.user).collect();
        assert!(
            distinct_users.len() > 4_900,
            "a million-user population rarely repeats in 5k arrivals: {}",
            distinct_users.len()
        );
    }
}
