//! Deterministic synthetic lexicons: drug names, MedDRA-PT-like ADR terms,
//! states, outcomes and reporter types.
//!
//! The TGA dataset of the paper contains 1,366 unique drugs and 2,351 unique
//! ADR terms (Table 3). Real lexicons of that size are not redistributable,
//! so we synthesise pharmacologically plausible names from stem/affix
//! grammars — what matters for duplicate detection is the *token-set
//! distance structure* (names are compared by Jaccard), not the names
//! themselves.

/// Australian states/territories as categorical codes, plus the paper's
/// "Not Known".
pub const STATES: &[&str] = &[
    "NSW",
    "VIC",
    "QLD",
    "WA",
    "SA",
    "TAS",
    "ACT",
    "NT",
    "Not Known",
];

/// Reaction outcome descriptions seen in Table 1.
pub const OUTCOMES: &[&str] = &[
    "Recovered",
    "Recovering",
    "Not Recovered",
    "Recovered With Sequelae",
    "Fatal",
    "Unknown",
];

/// Reporter types (§1: GPs, pharmacists, hospitals, consumers, companies).
pub const REPORTER_TYPES: &[&str] = &[
    "General Practitioner",
    "Pharmacist",
    "Hospital",
    "Consumer",
    "Pharmaceutical Company",
    "Specialist",
];

const DRUG_PREFIXES: &[&str] = &[
    "ator", "sim", "flu", "ome", "pan", "cefa", "amoxi", "metro", "predni", "ibu", "para", "keto",
    "napro", "tramo", "oxy", "carba", "lamo", "val", "rispe", "olan", "quetia", "sertra", "fluoxe",
    "cita", "venla", "mirta", "dulo", "metho", "cyclo", "aza", "tacro", "myco", "genta", "vanco",
    "cipro", "moxi", "clari", "azi", "doxy", "mino",
];

const DRUG_STEMS: &[&str] = &[
    "va", "lo", "ra", "ti", "ne", "do", "mi", "sa", "co", "be", "ga", "pe", "ze", "xa",
];

const DRUG_SUFFIXES: &[&str] = &[
    "statin", "mycin", "prazole", "cillin", "sartan", "pril", "olol", "dipine", "zepam", "oxetine",
    "apine", "idone", "mab", "nib", "floxacin", "cycline", "profen", "triptan", "gliptin",
    "formin", "parin", "coxib", "azole", "virenz", "tadine",
];

const VACCINE_NAMES: &[&str] = &[
    "Influenza Vaccine",
    "Dtpa Vaccine",
    "Measles Vaccine",
    "Pneumococcal Vaccine",
    "Hepatitis B Vaccine",
    "Hpv Vaccine",
    "Varicella Vaccine",
    "Rotavirus Vaccine",
];

const ADR_ROOTS: &[&str] = &[
    "rhabdomyolysis",
    "vomiting",
    "pyrexia",
    "cough",
    "headache",
    "chills",
    "myalgia",
    "arthralgia",
    "nausea",
    "dizziness",
    "rash",
    "pruritus",
    "urticaria",
    "dyspnoea",
    "fatigue",
    "asthenia",
    "syncope",
    "tremor",
    "paraesthesia",
    "hypotension",
    "hypertension",
    "tachycardia",
    "bradycardia",
    "anaphylaxis",
    "angioedema",
    "diarrhoea",
    "constipation",
    "insomnia",
    "somnolence",
    "anxiety",
    "confusion",
    "hallucination",
    "seizure",
    "tinnitus",
    "vertigo",
    "alopecia",
    "oedema",
    "thrombocytopenia",
    "neutropenia",
    "anaemia",
    "jaundice",
    "hepatitis",
    "nephritis",
    "pancreatitis",
    "gastritis",
    "dermatitis",
    "stomatitis",
];

const ADR_QUALIFIERS: &[&str] = &[
    "",
    "Aggravated",
    "Acute",
    "Chronic",
    "Severe",
    "Transient",
    "Recurrent",
    "Localised",
    "Generalised",
    "Postural",
    "Nocturnal",
    "Drug-induced",
    "Allergic",
    "Idiopathic",
    "Persistent",
    "Intermittent",
    "Progressive",
    "Bilateral",
    "Peripheral",
    "Central",
    "Injection site",
    "Application site",
    "Infusion related",
    "Immune-mediated",
    "Haemorrhagic",
    "Ischaemic",
    "Necrotising",
    "Ulcerative",
    "Erosive",
    "Atypical",
    "Paradoxical",
    "Rebound",
    "Delayed",
    "Early onset",
    "Late onset",
    "Neonatal",
    "Paediatric",
    "Geriatric",
    "Gestational",
    "Post-procedural",
    "Post-vaccination",
    "Treatment-resistant",
    "Dose-related",
    "Withdrawal",
    "Toxic",
    "Functional",
    "Mechanical",
    "Obstructive",
    "Secondary",
    "Primary",
    "Subacute",
];

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Generate exactly `n` unique, deterministic drug names.
///
/// # Panics
/// Panics if `n` exceeds the grammar's capacity (> 14,000 names).
pub fn drug_names(n: usize) -> Vec<String> {
    let mut names = Vec::with_capacity(n);
    names.extend(VACCINE_NAMES.iter().map(|s| s.to_string()));
    'outer: for suffix in DRUG_SUFFIXES {
        for prefix in DRUG_PREFIXES {
            for stem in DRUG_STEMS {
                if names.len() >= n {
                    break 'outer;
                }
                names.push(capitalize(&format!("{prefix}{stem}{suffix}")));
            }
        }
    }
    assert!(
        names.len() >= n,
        "drug grammar capacity exceeded: wanted {n}, produced {}",
        names.len()
    );
    names.truncate(n);
    names
}

/// Generate exactly `n` unique, deterministic ADR (MedDRA-PT-like) terms.
///
/// # Panics
/// Panics if `n` exceeds the grammar's capacity (> 2,400 terms).
pub fn adr_terms(n: usize) -> Vec<String> {
    let mut terms = Vec::with_capacity(n);
    'outer: for qualifier in ADR_QUALIFIERS {
        for root in ADR_ROOTS {
            if terms.len() >= n {
                break 'outer;
            }
            let term = if qualifier.is_empty() {
                capitalize(root)
            } else {
                format!("{} {}", qualifier, root)
            };
            terms.push(term);
        }
    }
    assert!(
        terms.len() >= n,
        "ADR grammar capacity exceeded: wanted {n}, produced {}",
        terms.len()
    );
    terms.truncate(n);
    terms
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn drug_names_exact_count_and_unique() {
        let names = drug_names(1366);
        assert_eq!(names.len(), 1366);
        let set: HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), 1366, "names must be unique");
    }

    #[test]
    fn adr_terms_exact_count_and_unique() {
        let terms = adr_terms(2351);
        assert_eq!(terms.len(), 2351);
        let set: HashSet<&String> = terms.iter().collect();
        assert_eq!(set.len(), 2351);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(drug_names(100), drug_names(100));
        assert_eq!(adr_terms(100), adr_terms(100));
    }

    #[test]
    fn vaccines_are_included_first() {
        let names = drug_names(20);
        assert!(names.contains(&"Influenza Vaccine".to_string()));
        assert!(names.contains(&"Dtpa Vaccine".to_string()));
    }

    #[test]
    fn names_look_like_drugs() {
        for name in drug_names(500).iter().skip(8) {
            assert!(name.chars().next().unwrap().is_uppercase());
            assert!(name.len() >= 6, "{name} too short");
        }
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn over_capacity_panics() {
        let _ = adr_terms(100_000);
    }
}
