//! Seeded dataset generation with duplicate injection.

use crate::corruption::{corrupt_age, corrupt_date, edit_term_list, inject_typo, CorruptionConfig};
use crate::lexicon::{adr_terms, drug_names, OUTCOMES, REPORTER_TYPES, STATES};
use crate::narrative::{append_details, render, render_followup, CaseFacts, TEMPLATE_COUNT};
use adr_model::{AdrReport, PairId, Sex};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Parameters of a synthetic corpus.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Total number of reports, duplicates included.
    pub num_reports: usize,
    /// Number of injected duplicate pairs.
    pub duplicate_pairs: usize,
    /// Size of the drug lexicon.
    pub num_drugs: usize,
    /// Size of the ADR-term lexicon.
    pub num_adrs: usize,
    /// RNG seed; everything downstream is a pure function of the config.
    pub seed: u64,
    /// How aggressively duplicates are corrupted.
    pub corruption: CorruptionConfig,
    /// Fraction of (eligible) reports generated as *vaccination-campaign*
    /// reports: many distinct patients, the same vaccine, overlapping
    /// reaction profiles and a shared campaign period. Campaign report
    /// pairs are the hard *negatives* of SRS data — similar-looking records
    /// that are genuinely different cases. Only reports whose id exceeds
    /// the ADR-lexicon size are eligible, so lexicon coverage (Table 3's
    /// unique counts) is unaffected.
    pub campaign_fraction: f64,
}

impl SynthConfig {
    /// The TGA-scale corpus of the paper's Table 3: 10,382 reports over
    /// Jul–Dec 2013 with 286 known duplicate pairs, 1,366 unique drugs and
    /// 2,351 unique ADR terms.
    pub fn tga() -> Self {
        SynthConfig {
            num_reports: 10_382,
            duplicate_pairs: 286,
            num_drugs: 1_366,
            num_adrs: 2_351,
            seed: 2016,
            corruption: CorruptionConfig::default(),
            campaign_fraction: 0.2,
        }
    }

    /// A small corpus for tests and examples, keeping the ~5% duplication
    /// rate and the lexicon-to-corpus ratio of the TGA data.
    pub fn small(num_reports: usize, duplicate_pairs: usize, seed: u64) -> Self {
        SynthConfig {
            num_reports,
            duplicate_pairs,
            num_drugs: (num_reports / 8).clamp(4, 1_366),
            num_adrs: (num_reports / 4).clamp(8, 2_351),
            seed,
            corruption: CorruptionConfig::default(),
            campaign_fraction: 0.2,
        }
    }
}

/// Summary statistics in the shape of the paper's Table 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSummary {
    /// Report collection period.
    pub report_period: &'static str,
    /// Number of cases (reports).
    pub num_cases: usize,
    /// Fields per report.
    pub fields_per_report: usize,
    /// Unique drugs actually appearing in the corpus.
    pub unique_drugs: usize,
    /// Unique ADR terms actually appearing in the corpus.
    pub unique_adrs: usize,
    /// Known (injected) duplicate pairs.
    pub known_duplicate_pairs: usize,
}

/// A generated corpus: reports plus the ground-truth duplicate pairs.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// All reports, id = index = arrival order.
    pub reports: Vec<AdrReport>,
    /// Ground truth: which pairs are duplicates.
    pub duplicate_pairs: Vec<PairId>,
}

const MONTH_NAMES: [&str; 6] = ["Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];

pub(crate) struct Generator {
    pub(crate) rng: StdRng,
    pub(crate) drugs: Vec<String>,
    pub(crate) adrs: Vec<String>,
    pub(crate) config: SynthConfig,
}

impl Generator {
    /// 0–4 detail sentences chosen independently — the narrative-length
    /// variation of real reports.
    fn detail_mask(&mut self) -> u16 {
        let mut mask = 0u16;
        for _ in 0..self.rng.gen_range(0..=4u8) {
            mask |= 1
                << self
                    .rng
                    .gen_range(0..crate::narrative::DETAIL_SENTENCES.len());
        }
        mask
    }

    fn onset_dates(&mut self) -> (String, String) {
        // Collection window: 1 Jul 2013 – 31 Dec 2013.
        let month = self.rng.gen_range(0..6usize);
        let day = self.rng.gen_range(1..=28u32);
        let table_form = format!("{:02}/{:02}/2013 00:00:00", day, month + 7);
        let narrative_form = format!("{:02}-{}-2013", day, MONTH_NAMES[month]);
        (table_form, narrative_form)
    }

    pub(crate) fn base_report(&mut self, id: u64) -> AdrReport {
        let sex = match self.rng.gen_range(0..10u8) {
            0..=4 => Sex::F,
            5..=8 => Sex::M,
            _ => Sex::Unknown,
        };
        let state = STATES[self.rng.gen_range(0..STATES.len())].to_string();
        let outcome = OUTCOMES[self.rng.gen_range(0..OUTCOMES.len())].to_string();

        // Campaign reports: many distinct patients, one vaccine, a shared
        // reaction profile and a campaign month — the corpus's hard
        // negatives. Only ids past the lexicon walk are eligible so the
        // Table 3 unique counts stay exact.
        let campaign =
            id as usize >= self.config.num_adrs && self.rng.gen_bool(self.config.campaign_fraction);
        let mut cohort_age: Option<u32> = None;
        let mut campaign_template: Option<usize> = None;
        let (drugs, adrs, onset_table, onset_narrative) = if campaign {
            let vaccines = 8.min(self.drugs.len());
            let v = self.rng.gen_range(0..vaccines);
            let drugs = vec![self.drugs[v].clone()];
            // Campaign cohort: childhood schedules for half the vaccines,
            // elderly programmes for the rest. Narrow age bands mean many
            // *distinct* patients share an age — hard negatives.
            cohort_age = Some(if v < vaccines / 2 {
                self.rng.gen_range(1..=3u32)
            } else {
                self.rng.gen_range(68..=72u32)
            });
            // One clinic, one reporting form: all of a vaccine's campaign
            // reports share a narrative template, so two *different*
            // campaign patients read as similarly as two accounts of one
            // clinical case — the hard-negative trap of SRS text matching.
            campaign_template = Some(v % TEMPLATE_COUNT);
            // Overlapping per-vaccine reaction pools of ~8 terms.
            let pool_start = (v * 7) % self.adrs.len().saturating_sub(8).max(1);
            let pool = &self.adrs[pool_start..(pool_start + 8).min(self.adrs.len())];
            let mut adrs = Vec::new();
            for _ in 0..self.rng.gen_range(1..=3u8) {
                let term = pool[self.rng.gen_range(0..pool.len())].clone();
                if !adrs.contains(&term) {
                    adrs.push(term);
                }
            }
            // Campaign month per vaccine, day within a one-week clinic
            // window — distinct patients frequently share the onset date.
            let month = v % 6;
            let day = 1 + (v as u32 % 3) * 9 + self.rng.gen_range(0..7u32);
            let table = format!("{:02}/{:02}/2013 00:00:00", day, month + 7);
            let narr = format!("{:02}-{}-2013", day, MONTH_NAMES[month]);
            (drugs, adrs, table, narr)
        } else {
            // Deterministic lexicon coverage: report i's primary drug/ADR
            // walks the lexicon, so a TGA-sized corpus exhibits exactly the
            // Table 3 unique counts; extras are random.
            let mut drugs = vec![self.drugs[id as usize % self.drugs.len()].clone()];
            if self.rng.gen_bool(0.2) {
                let extra = self.drugs[self.rng.gen_range(0..self.drugs.len())].clone();
                if !drugs.contains(&extra) {
                    drugs.push(extra);
                }
            }
            let mut adrs = vec![self.adrs[id as usize % self.adrs.len()].clone()];
            for _ in 0..self.rng.gen_range(0..3u8) {
                let extra = self.adrs[self.rng.gen_range(0..self.adrs.len())].clone();
                if !adrs.contains(&extra) {
                    adrs.push(extra);
                }
            }
            let (table, narr) = self.onset_dates();
            (drugs, adrs, table, narr)
        };
        let age = cohort_age.unwrap_or_else(|| self.rng.gen_range(1..=95u32));

        // Field-level missingness ("different missing data rates in
        // different fields", §4.2; Table 1's "-" state values). Consumer
        // reports are the least complete. The narrative still carries the
        // facts — the structured field was simply never keyed in.
        let reporter = REPORTER_TYPES[self.rng.gen_range(0..REPORTER_TYPES.len())].to_string();
        let missing_boost = if reporter == "Consumer" { 2.0 } else { 1.0 };
        let (age_missing, sex_missing, state_missing, onset_missing) = {
            let mut missing = |base_rate: f64| -> bool {
                self.rng.gen_bool((base_rate * missing_boost).min(1.0))
            };
            (missing(0.15), missing(0.10), missing(0.25), missing(0.15))
        };

        let facts = CaseFacts {
            age,
            sex,
            drugs: drugs.clone(),
            adrs: adrs.clone(),
            onset_date: onset_narrative,
            outcome: outcome.clone(),
        };
        let template = campaign_template.unwrap_or_else(|| self.rng.gen_range(0..TEMPLATE_COUNT));
        let narrative = append_details(render(&facts, template, id), self.detail_mask());

        let mut r = AdrReport {
            id,
            ..AdrReport::default()
        };
        r.case.case_number = format!("CASE-2013-{id:06}");
        r.case.report_date = Some(onset_table.clone());
        r.patient.calculated_age = (!age_missing).then_some(age as f64);
        r.patient.sex = (!sex_missing).then_some(sex);
        r.patient.residential_state = (!state_missing).then_some(state);
        r.reaction.onset_date = (!onset_missing).then_some(onset_table);
        r.reaction.reaction_outcome_description = Some(outcome);
        r.reaction.report_description = narrative;
        r.reaction.meddra_pt_code = adrs.join(",");
        r.medicine.generic_name_description = drugs.join(",");
        r.reporter.reporter_type = Some(reporter);
        r
    }

    /// Clone `base` as a follow-up / re-submitted report with the Table 1
    /// corruption patterns applied.
    pub(crate) fn duplicate_of(&mut self, base: &AdrReport, new_id: u64) -> AdrReport {
        let mut cfg = self.config.corruption;
        // Duplicate mode: ordinary re-report, divergent clinical follow-up
        // (fields moved on, narrative clinical), or administrative
        // follow-up (fields intact, narrative minimal).
        let roll = self.rng.gen::<f64>();
        let admin = roll < cfg.admin_followup;
        let divergent = !admin && roll < cfg.admin_followup + cfg.divergent_followup;
        if divergent {
            // The case has moved on: most structured fields differ.
            cfg.age_digit_error = cfg.age_digit_error.max(0.5);
            cfg.outcome_change = 1.0;
            cfg.adr_list_edit = 1.0;
            cfg.onset_date_error = 1.0;
            cfg.state_dropout = cfg.state_dropout.max(0.5);
            cfg.narrative_retemplate = 1.0;
        } else if admin {
            // Same structured record, contentless forwarded narrative.
            cfg.age_digit_error = 0.0;
            cfg.outcome_change = 1.0;
            cfg.adr_list_edit = 0.0;
            cfg.onset_date_error = 0.0;
            cfg.state_dropout = 0.0;
            cfg.drug_list_edit = 0.0;
            cfg.narrative_retemplate = 1.0;
        }
        let mut dup = base.clone();
        dup.id = new_id;
        dup.case.case_number = format!("CASE-2013-{new_id:06}");

        let mut age = base.patient.calculated_age.map(|a| a as u32).unwrap_or(40);
        if self.rng.gen_bool(cfg.age_digit_error) && base.patient.calculated_age.is_some() {
            age = corrupt_age(age, &mut self.rng);
            dup.patient.calculated_age = Some(age as f64);
        }
        if self.rng.gen_bool(cfg.outcome_change) {
            let new_outcome = OUTCOMES[self.rng.gen_range(0..OUTCOMES.len())].to_string();
            dup.reaction.reaction_outcome_description = Some(new_outcome);
        }
        let mut adrs: Vec<String> = dup.adr_names().iter().map(|s| s.to_string()).collect();
        if self.rng.gen_bool(cfg.adr_list_edit) {
            let pool = self.adrs.clone();
            edit_term_list(&mut adrs, &pool, &mut self.rng);
            dup.reaction.meddra_pt_code = adrs.join(",");
        }
        if self.rng.gen_bool(cfg.state_dropout) && base.patient.residential_state.is_some() {
            dup.patient.residential_state = Some("Not Known".to_string());
        }
        if self.rng.gen_bool(cfg.onset_date_error) {
            if let Some(date) = &dup.reaction.onset_date {
                dup.reaction.onset_date = Some(corrupt_date(date, &mut self.rng));
            }
        }
        if self.rng.gen_bool(cfg.drug_list_edit) {
            let mut drugs: Vec<String> = dup.drug_names().iter().map(|s| s.to_string()).collect();
            let pool = self.drugs.clone();
            edit_term_list(&mut drugs, &pool, &mut self.rng);
            dup.medicine.generic_name_description = drugs.join(",");
        }
        // Different source, different narrative of the same event.
        if self.rng.gen_bool(cfg.narrative_retemplate) {
            let drugs: Vec<String> = dup.drug_names().iter().map(|s| s.to_string()).collect();
            let facts = CaseFacts {
                age,
                sex: dup.patient.sex.unwrap_or(Sex::Unknown),
                drugs,
                adrs,
                onset_date: base
                    .reaction
                    .onset_date
                    .clone()
                    .unwrap_or_default()
                    .split(' ')
                    .next()
                    .unwrap_or("")
                    .to_string(),
                outcome: dup
                    .reaction
                    .reaction_outcome_description
                    .clone()
                    .unwrap_or_else(|| "Unknown".into()),
            };
            dup.reaction.report_description = if admin {
                // Administrative follow-up: almost no clinical content.
                render_followup(&facts, new_id)
            } else {
                let template = self.rng.gen_range(0..TEMPLATE_COUNT);
                // A different reporter appends their own detail sentences.
                let mask = self.detail_mask();
                append_details(render(&facts, template, new_id), mask)
            };
        }
        if self.rng.gen_bool(cfg.narrative_typo) {
            dup.reaction.report_description =
                inject_typo(&dup.reaction.report_description, &mut self.rng);
        }
        dup
    }
}

impl Dataset {
    /// Generate a corpus. Deterministic in the config.
    ///
    /// # Panics
    /// Panics if `duplicate_pairs >= num_reports / 2` (cannot inject that
    /// many duplicates).
    pub fn generate(config: &SynthConfig) -> Dataset {
        assert!(
            config.duplicate_pairs * 2 <= config.num_reports,
            "too many duplicate pairs ({}) for {} reports",
            config.duplicate_pairs,
            config.num_reports
        );
        let mut gen = Generator {
            rng: StdRng::seed_from_u64(config.seed),
            drugs: drug_names(config.num_drugs),
            adrs: adr_terms(config.num_adrs),
            config: config.clone(),
        };
        let base_count = config.num_reports - config.duplicate_pairs;
        let mut reports: Vec<AdrReport> = (0..base_count as u64)
            .map(|id| gen.base_report(id))
            .collect();

        // Pick distinct base reports to duplicate.
        let mut candidates: Vec<usize> = (0..base_count).collect();
        candidates.shuffle(&mut gen.rng);
        let mut duplicate_pairs = Vec::with_capacity(config.duplicate_pairs);
        for (j, &base_idx) in candidates.iter().take(config.duplicate_pairs).enumerate() {
            let new_id = (base_count + j) as u64;
            let dup = gen.duplicate_of(&reports[base_idx], new_id);
            duplicate_pairs.push(PairId::new(base_idx as u64, new_id));
            reports.push(dup);
        }
        Dataset {
            reports,
            duplicate_pairs,
        }
    }

    /// Table 3-shaped summary with unique counts measured from the corpus.
    pub fn summary(&self) -> DatasetSummary {
        let mut drugs: HashSet<&str> = HashSet::new();
        let mut adrs: HashSet<&str> = HashSet::new();
        for r in &self.reports {
            drugs.extend(r.drug_names());
            adrs.extend(r.adr_names());
        }
        DatasetSummary {
            report_period: "1 Jul. 2013 - 31 Dec. 2013",
            num_cases: self.reports.len(),
            fields_per_report: AdrReport::FIELD_COUNT,
            unique_drugs: drugs.len(),
            unique_adrs: adrs.len(),
            known_duplicate_pairs: self.duplicate_pairs.len(),
        }
    }

    /// Ground-truth label lookup set.
    pub fn duplicate_set(&self) -> HashSet<PairId> {
        self.duplicate_pairs.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_generates_correct_counts() {
        let cfg = SynthConfig::small(200, 10, 1);
        let ds = Dataset::generate(&cfg);
        assert_eq!(ds.reports.len(), 200);
        assert_eq!(ds.duplicate_pairs.len(), 10);
        // ids are arrival order
        for (i, r) in ds.reports.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::small(100, 5, 9);
        let a = Dataset::generate(&cfg);
        let b = Dataset::generate(&cfg);
        assert_eq!(a.reports, b.reports);
        assert_eq!(a.duplicate_pairs, b.duplicate_pairs);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(&SynthConfig::small(100, 5, 1));
        let b = Dataset::generate(&SynthConfig::small(100, 5, 2));
        assert_ne!(a.reports, b.reports);
    }

    #[test]
    fn duplicates_resemble_their_base() {
        let cfg = SynthConfig::small(300, 20, 3);
        let ds = Dataset::generate(&cfg);
        let mut drug_same = 0;
        let mut onset_same = 0;
        for pair in &ds.duplicate_pairs {
            let a = &ds.reports[pair.lo as usize];
            let b = &ds.reports[pair.hi as usize];
            if a.medicine.generic_name_description == b.medicine.generic_name_description {
                drug_same += 1;
            }
            if a.reaction.onset_date == b.reaction.onset_date {
                onset_same += 1;
            }
            // ADR lists overlap in at least one term.
            let adrs_a: HashSet<&str> = a.adr_names().into_iter().collect();
            let adrs_b: HashSet<&str> = b.adr_names().into_iter().collect();
            assert!(
                adrs_a.intersection(&adrs_b).count() >= 1,
                "pair {pair:?} lost all ADR overlap"
            );
        }
        // Many — but not all — duplicates keep the drug name and onset
        // date; the corrupted fraction is what makes detection non-trivial.
        let n = ds.duplicate_pairs.len();
        assert!(
            drug_same * 3 > n,
            "most duplicates should keep the drug name"
        );
        assert!(drug_same < n, "some drug names must be corrupted");
        assert!(
            onset_same * 3 > n,
            "many duplicates should keep the onset date"
        );
        assert!(onset_same < n, "some onset dates must be corrupted");
    }

    #[test]
    fn duplicates_are_not_identical_records() {
        let cfg = SynthConfig::small(400, 30, 4);
        let ds = Dataset::generate(&cfg);
        let differing = ds
            .duplicate_pairs
            .iter()
            .filter(|p| {
                let a = &ds.reports[p.lo as usize];
                let b = &ds.reports[p.hi as usize];
                a.reaction.report_description != b.reaction.report_description
            })
            .count();
        assert!(
            differing as f64 >= 0.7 * ds.duplicate_pairs.len() as f64,
            "most duplicates must have rewritten narratives, got {differing}/{}",
            ds.duplicate_pairs.len()
        );
    }

    #[test]
    fn summary_shape() {
        let ds = Dataset::generate(&SynthConfig::small(500, 25, 5));
        let s = ds.summary();
        assert_eq!(s.num_cases, 500);
        assert_eq!(s.known_duplicate_pairs, 25);
        assert_eq!(s.fields_per_report, 37);
        assert!(s.unique_drugs > 0 && s.unique_adrs > 0);
    }

    #[test]
    #[should_panic(expected = "too many duplicate pairs")]
    fn over_duplication_rejected() {
        let _ = Dataset::generate(&SynthConfig::small(10, 6, 1));
    }

    #[test]
    fn tga_scale_summary_matches_table3() {
        // The headline reproduction check: Table 3 of the paper.
        let ds = Dataset::generate(&SynthConfig::tga());
        let s = ds.summary();
        assert_eq!(s.num_cases, 10_382);
        assert_eq!(s.known_duplicate_pairs, 286);
        assert_eq!(s.fields_per_report, 37);
        assert_eq!(s.unique_drugs, 1_366);
        assert_eq!(s.unique_adrs, 2_351);
    }
}
