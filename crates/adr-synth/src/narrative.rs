//! Template-based report-narrative generator.
//!
//! Produces free-text "report description" fields in the style of the
//! paper's Table 1 examples (~250–300 characters, the length §4.1 reports as
//! typical). Different templates over the same case facts model the
//! different-reporter paraphrase effect that makes ADR duplicate detection
//! hard.

use adr_model::Sex;

/// Case facts a narrative is rendered from.
#[derive(Debug, Clone)]
pub struct CaseFacts {
    /// Patient age in years.
    pub age: u32,
    /// Patient sex.
    pub sex: Sex,
    /// Drug names involved.
    pub drugs: Vec<String>,
    /// Reaction terms experienced.
    pub adrs: Vec<String>,
    /// Onset date rendered as `DD-Mon-YYYY`.
    pub onset_date: String,
    /// Outcome description.
    pub outcome: String,
}

fn sex_noun(sex: Sex) -> &'static str {
    match sex {
        Sex::M => "male",
        Sex::F => "female",
        Sex::Unknown => "adult",
    }
}

fn pronoun(sex: Sex) -> &'static str {
    match sex {
        Sex::M => "He",
        Sex::F => "She",
        Sex::Unknown => "The patient",
    }
}

fn join_list(items: &[String]) -> String {
    match items.len() {
        0 => String::from("an unknown reaction"),
        1 => items[0].to_lowercase(),
        _ => {
            let head = items[..items.len() - 1]
                .iter()
                .map(|s| s.to_lowercase())
                .collect::<Vec<_>>()
                .join(", ");
            format!("{head} and {}", items[items.len() - 1].to_lowercase())
        }
    }
}

/// Number of distinct narrative templates.
pub const TEMPLATE_COUNT: usize = 5;

/// Render the narrative using template `template % TEMPLATE_COUNT`.
///
/// Template 0 mimics a pharmaceutical-company literature report, template 1
/// a clinical summary, template 2 a consumer report, template 3 a hospital
/// note and template 4 a GP letter — matching the source mix §1 describes.
pub fn render(facts: &CaseFacts, template: usize, case_ref: u64) -> String {
    let drugs = join_list(&facts.drugs);
    let adrs = join_list(&facts.adrs);
    let noun = sex_noun(facts.sex);
    let pro = pronoun(facts.sex);
    match template % TEMPLATE_COUNT {
        0 => format!(
            "Reference number {case_ref} is a literature report received on {date} pertaining \
             to a {age} year-old {noun} patient who experienced {adrs} while on {drugs} for the \
             treatment of unknown indication. The reaction outcome was reported as {outcome}.",
            case_ref = case_ref,
            date = facts.onset_date,
            age = facts.age,
            noun = noun,
            adrs = adrs,
            drugs = drugs,
            outcome = facts.outcome.to_lowercase(),
        ),
        1 => format!(
            "The {age}-year-old {noun} subject started treatment with {drugs}, start date and \
             duration of therapy unknown. On {date}, the subject presented with {adrs}. \
             {pro} was assessed and the outcome recorded as {outcome}.",
            age = facts.age,
            noun = noun,
            drugs = drugs,
            date = facts.onset_date,
            adrs = adrs,
            pro = pro,
            outcome = facts.outcome.to_lowercase(),
        ),
        2 => format!(
            "On {date}, within hours of taking {drugs}, the {age} year old {noun} consumer \
             experienced {adrs}. {pro} required medical attention before feeling better and \
             reported the event directly to the regulator. Outcome: {outcome}.",
            date = facts.onset_date,
            drugs = drugs,
            age = facts.age,
            noun = noun,
            adrs = adrs,
            pro = pro,
            outcome = facts.outcome,
        ),
        3 => format!(
            "Hospital admission on {date}: {age} year old {noun} presenting with {adrs} after \
             administration of {drugs}. Symptoms developed over several hours. Discharge \
             status: {outcome}. Case {case_ref} flagged for pharmacovigilance review.",
            date = facts.onset_date,
            age = facts.age,
            noun = noun,
            adrs = adrs,
            drugs = drugs,
            outcome = facts.outcome,
            case_ref = case_ref,
        ),
        _ => format!(
            "I reviewed this {age} year-old {noun} patient on {date} following {adrs} which \
             began shortly after commencing {drugs}. The symptoms were managed conservatively \
             and at follow-up the condition was {outcome}. Referred as case {case_ref}.",
            age = facts.age,
            noun = noun,
            date = facts.onset_date,
            adrs = adrs,
            drugs = drugs,
            outcome = facts.outcome.to_lowercase(),
            case_ref = case_ref,
        ),
    }
}

/// Optional detail sentences appended to narratives. Real report texts vary
/// enormously in length and content (batch numbers, medical history,
/// concomitant medication, treatment notes); this variation is what spreads
/// narrative distances across `[0.4, 1.0]` instead of concentrating them —
/// and with them, the k-means cells of pair-distance space.
pub const DETAIL_SENTENCES: &[&str] = &[
    "The batch number of the suspect product could not be retrieved from the dispensing record.",
    "Relevant medical history includes seasonal allergies and well-controlled type two diabetes.",
    "Concomitant medication comprised a daily multivitamin and an over-the-counter antacid.",
    "Symptomatic treatment with oral rehydration and rest was advised by the attending clinician.",
    "The patient denied any previous similar episodes or known hypersensitivity.",
    "Laboratory investigations at presentation were within normal limits apart from a mild leukocytosis.",
    "A causality assessment of possible was recorded by the reviewing medical officer.",
    "The event abated after the suspect medicine was withdrawn and did not recur.",
    "The general practitioner was informed and a follow-up appointment was scheduled.",
    "No rechallenge was attempted given the severity of the initial presentation.",
];

/// Append `mask`-selected detail sentences to a rendered narrative. Each set
/// bit of the lowest [`DETAIL_SENTENCES`]`.len()` bits appends one sentence.
pub fn append_details(mut narrative: String, mask: u16) -> String {
    for (i, s) in DETAIL_SENTENCES.iter().enumerate() {
        if mask & (1 << i) != 0 {
            narrative.push(' ');
            narrative.push_str(s);
        }
    }
    narrative
}

/// Render a minimal-information administrative follow-up: the narrative
/// regulators actually receive when a company forwards an update months
/// later. Shares almost nothing with the original narrative beyond the
/// medicine — the hardest duplicate class for text-based matching.
pub fn render_followup(facts: &CaseFacts, case_ref: u64) -> String {
    let drugs = join_list(&facts.drugs);
    format!(
        "Follow-up information received for case {case_ref} regarding {drugs}. \
         The outcome was updated to {outcome}. No further clinical details were \
         provided by the sender.",
        case_ref = case_ref,
        drugs = drugs,
        outcome = facts.outcome.to_lowercase(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts() -> CaseFacts {
        CaseFacts {
            age: 46,
            sex: Sex::M,
            drugs: vec!["Atorvastatin".into()],
            adrs: vec!["Rhabdomyolysis".into()],
            onset_date: "02-Oct-2013".into(),
            outcome: "Unknown".into(),
        }
    }

    #[test]
    fn all_templates_mention_the_facts() {
        let f = facts();
        for t in 0..TEMPLATE_COUNT {
            let text = render(&f, t, 12345);
            assert!(text.contains("46"), "template {t} lost the age");
            assert!(
                text.to_lowercase().contains("atorvastatin"),
                "template {t} lost the drug"
            );
            assert!(
                text.to_lowercase().contains("rhabdomyolysis"),
                "template {t} lost the ADR"
            );
        }
    }

    #[test]
    fn templates_differ_from_each_other() {
        let f = facts();
        let t0 = render(&f, 0, 1);
        let t1 = render(&f, 1, 1);
        let t2 = render(&f, 2, 1);
        assert_ne!(t0, t1);
        assert_ne!(t1, t2);
    }

    #[test]
    fn narrative_length_matches_the_paper() {
        // §4.1: majority of descriptions are 250–300 characters.
        let f = CaseFacts {
            age: 84,
            sex: Sex::F,
            drugs: vec!["Influenza Vaccine".into(), "Dtpa Vaccine".into()],
            adrs: vec!["Cough".into(), "Headache".into(), "Chills".into()],
            onset_date: "30-Apr-2013".into(),
            outcome: "Recovered".into(),
        };
        for t in 0..TEMPLATE_COUNT {
            let len = render(&f, t, 99999).len();
            assert!(
                (150..400).contains(&len),
                "template {t} length {len} out of the plausible band"
            );
        }
    }

    #[test]
    fn multi_item_lists_join_with_and() {
        let f = CaseFacts {
            adrs: vec!["Cough".into(), "Headache".into()],
            ..facts()
        };
        let text = render(&f, 1, 1);
        assert!(text.contains("cough and headache"), "{text}");
    }

    #[test]
    fn deterministic() {
        let f = facts();
        assert_eq!(render(&f, 2, 7), render(&f, 2, 7));
    }
}
