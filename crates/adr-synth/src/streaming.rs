//! Streaming corpus generation: random-access reports, O(1) memory.
//!
//! [`Dataset::generate`](crate::Dataset::generate) materialises the whole
//! corpus — fine at TGA scale (10k reports), hopeless for the multi-million
//! report runs the out-of-core benchmarks need. [`StreamingCorpus`] instead
//! makes `report(id)` a *pure function*: each report draws from its own RNG
//! seeded by `mix(corpus seed, id)`, so any report can be produced at any
//! time, in any order, on any thread, without generating its predecessors.
//! Resident state is one lexicon plus one scratch `Generator` — O(1) in
//! the corpus size — and a driver streams batches by mapping `report` over
//! id ranges.
//!
//! Duplicate injection is deterministic too: ids `base_count..num_reports`
//! are duplicates, and duplicate `j` re-reports base
//! `(j·stride + offset) mod base_count` where `stride` is coprime with
//! `base_count` — a fixed permutation walk, so the bases of distinct pairs
//! are distinct (matching `Dataset::generate`'s sampling-without-
//! replacement) while `base_id_for` stays O(1).
//!
//! The per-report field and corruption logic is byte-for-byte the
//! `Generator` that `Dataset::generate` uses — only the *draw schedule*
//! differs (per-id streams instead of one sequential stream), so the two
//! corpora are statistically alike but not identical records.

use crate::generator::{Generator, SynthConfig};
use crate::lexicon::{adr_terms, drug_names};
use adr_model::{AdrReport, PairId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// splitmix64 finalizer over `(seed, id)` — the per-report RNG seed.
fn mix(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Smallest value ≥ the golden-ratio point of `n` that is coprime with `n`
/// — the duplicate-pairing walk's stride.
fn coprime_stride(n: u64) -> u64 {
    if n <= 1 {
        return 1;
    }
    let mut s = ((n as f64 * 0.618_033_988_749_894_9) as u64).max(1);
    while gcd(s % n, n) != 1 {
        s += 1;
    }
    s
}

/// A corpus defined by its config, generated on demand one report at a
/// time. See the module docs for how this relates to [`crate::Dataset`].
pub struct StreamingCorpus {
    config: SynthConfig,
    base_count: u64,
    stride: u64,
    offset: u64,
    /// One reusable generator (lexicons + scratch RNG). `report` reseeds
    /// the RNG per call, which is what makes generation order-free; the
    /// mutex serialises callers without cloning the lexicons.
    scratch: Mutex<Generator>,
}

impl StreamingCorpus {
    /// Build the corpus definition. Allocates the lexicons (O(vocabulary));
    /// no report is generated until [`StreamingCorpus::report`] is called.
    ///
    /// # Panics
    /// Panics if `duplicate_pairs * 2 > num_reports`, like
    /// [`crate::Dataset::generate`].
    pub fn new(config: SynthConfig) -> Self {
        assert!(
            config.duplicate_pairs * 2 <= config.num_reports,
            "too many duplicate pairs ({}) for {} reports",
            config.duplicate_pairs,
            config.num_reports
        );
        let base_count = (config.num_reports - config.duplicate_pairs) as u64;
        let stride = coprime_stride(base_count);
        let offset = if base_count == 0 {
            0
        } else {
            mix(config.seed, 0x000F_F5E7) % base_count
        };
        let scratch = Mutex::new(Generator {
            rng: StdRng::seed_from_u64(config.seed),
            drugs: drug_names(config.num_drugs),
            adrs: adr_terms(config.num_adrs),
            config: config.clone(),
        });
        StreamingCorpus {
            config,
            base_count,
            stride,
            offset,
            scratch,
        }
    }

    /// Total number of reports (duplicates included).
    pub fn len(&self) -> usize {
        self.config.num_reports
    }

    /// Is the corpus empty?
    pub fn is_empty(&self) -> bool {
        self.config.num_reports == 0
    }

    /// The corpus config.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Generate report `id` (`0..len()`). Pure: the result depends only on
    /// the config and `id`, never on what was generated before.
    ///
    /// # Panics
    /// Panics if `id >= len()`.
    pub fn report(&self, id: u64) -> AdrReport {
        assert!(
            (id as usize) < self.config.num_reports,
            "report id {id} out of range (corpus has {})",
            self.config.num_reports
        );
        if id < self.base_count {
            self.with_seeded(id, |g| g.base_report(id))
        } else {
            // Duplicates regenerate their base on demand (one extra report,
            // not a resident corpus). Bases are always < base_count, so the
            // recursion is depth 1.
            let base = self.report(self.base_id_for(id - self.base_count));
            self.with_seeded(id, |g| g.duplicate_of(&base, id))
        }
    }

    fn with_seeded<R>(&self, id: u64, f: impl FnOnce(&mut Generator) -> R) -> R {
        let mut g = self.scratch.lock().expect("corpus scratch poisoned");
        g.rng = StdRng::seed_from_u64(mix(self.config.seed, id));
        f(&mut g)
    }

    fn base_id_for(&self, j: u64) -> u64 {
        debug_assert!(j < self.config.duplicate_pairs as u64);
        (j.wrapping_mul(self.stride).wrapping_add(self.offset)) % self.base_count
    }

    /// Ground-truth duplicate pair `j` (`0..duplicate_pairs`).
    pub fn duplicate_pair(&self, j: u64) -> PairId {
        assert!((j as usize) < self.config.duplicate_pairs);
        PairId::new(self.base_id_for(j), self.base_count + j)
    }

    /// All ground-truth duplicate pairs, in injection order.
    pub fn duplicate_pairs(&self) -> impl Iterator<Item = PairId> + '_ {
        (0..self.config.duplicate_pairs as u64).map(|j| self.duplicate_pair(j))
    }

    /// Stream the reports of `ids` in order — the batch driver's view.
    pub fn reports(&self, ids: std::ops::Range<u64>) -> impl Iterator<Item = AdrReport> + '_ {
        ids.map(|id| self.report(id))
    }
}

/// Quarterly replay of a [`StreamingCorpus`]: the arrival schedule a
/// long-running ingest service consumes, FAERS-drop style.
///
/// Report *ids* place every duplicate at the tail of the id space
/// (`base_count..num_reports`), which is the wrong arrival order for a
/// streaming service — the early quarters would contain no duplicates at
/// all and the labelled bootstrap prefix no positive pairs. The replay
/// therefore re-orders arrivals with a Bresenham-style interleave: of the
/// first `s` arrival slots, exactly `⌊s·d/n⌋` are duplicates (`d`
/// duplicates, `n` reports total), so duplicates land evenly across
/// quarters while bases keep their relative order. The permutation is a
/// closed form both ways — `report_id_at` is O(1) and the inverse mappings
/// are O(1)/O(log n) — so nothing is materialised.
pub struct QuarterlyReplay {
    corpus: StreamingCorpus,
    quarter_size: u64,
    total: u64,
    base_count: u64,
    dup_count: u64,
}

impl QuarterlyReplay {
    /// Wrap `corpus` into quarters of `quarter_size` arrivals each (the
    /// last quarter may be short).
    ///
    /// # Panics
    /// Panics if `quarter_size == 0`.
    pub fn new(corpus: StreamingCorpus, quarter_size: u64) -> Self {
        assert!(quarter_size > 0, "quarter_size must be at least 1");
        let total = corpus.len() as u64;
        let dup_count = corpus.config().duplicate_pairs as u64;
        QuarterlyReplay {
            base_count: total - dup_count,
            corpus,
            quarter_size,
            total,
            dup_count,
        }
    }

    /// The wrapped corpus.
    pub fn corpus(&self) -> &StreamingCorpus {
        &self.corpus
    }

    /// Arrivals per quarter.
    pub fn quarter_size(&self) -> u64 {
        self.quarter_size
    }

    /// Number of quarters (the last may be short).
    pub fn quarters(&self) -> u64 {
        self.total.div_ceil(self.quarter_size)
    }

    /// Arrival-slot range of quarter `q`.
    pub fn quarter_range(&self, q: u64) -> std::ops::Range<u64> {
        let start = q * self.quarter_size;
        start.min(self.total)..((q + 1) * self.quarter_size).min(self.total)
    }

    /// Duplicate slots among arrival slots `[0, s)`: `⌊s·d/n⌋`.
    fn dups_before(&self, s: u64) -> u64 {
        ((s as u128 * self.dup_count as u128) / self.total as u128) as u64
    }

    /// The report id arriving at `slot` (0-based arrival position).
    ///
    /// # Panics
    /// Panics if `slot >= corpus.len()`.
    pub fn report_id_at(&self, slot: u64) -> u64 {
        assert!(
            slot < self.total,
            "slot {slot} out of range ({})",
            self.total
        );
        let before = self.dups_before(slot);
        if self.dups_before(slot + 1) > before {
            // Slot is the `before`-th duplicate slot.
            self.base_count + before
        } else {
            slot - before
        }
    }

    /// Arrival slot of duplicate `j`: the smallest `s` with
    /// `⌊(s+1)·d/n⌋ = j+1`, i.e. `⌈(j+1)·n/d⌉ − 1`.
    fn slot_of_duplicate(&self, j: u64) -> u64 {
        debug_assert!(j < self.dup_count);
        let num = (j as u128 + 1) * self.total as u128;
        (num.div_ceil(self.dup_count as u128) - 1) as u64
    }

    /// Arrival slot of base report `i`: the largest `s` with
    /// `s − ⌊s·d/n⌋ = i` (binary search on that nondecreasing function).
    fn slot_of_base(&self, i: u64) -> u64 {
        debug_assert!(i < self.base_count);
        let (mut lo, mut hi) = (0u64, self.total);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if mid - self.dups_before(mid) > i {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo - 1
    }

    /// The reports of quarter `q`, in arrival order.
    pub fn quarter_reports(&self, q: u64) -> Vec<AdrReport> {
        self.quarter_range(q)
            .map(|s| self.corpus.report(self.report_id_at(s)))
            .collect()
    }

    /// Ground-truth duplicate pairs whose *both* members arrive within the
    /// first `slots` arrivals — the labelled positives a bootstrap prefix
    /// of that length can legally know about. O(d log n).
    pub fn labelled_pairs_within(&self, slots: u64) -> Vec<PairId> {
        let mut pairs = Vec::new();
        for j in 0..self.dup_count {
            if self.slot_of_duplicate(j) >= slots {
                continue;
            }
            let pair = self.corpus.duplicate_pair(j);
            if self.slot_of_base(pair.lo) < slots {
                pairs.push(pair);
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn corpus(n: usize, dups: usize, seed: u64) -> StreamingCorpus {
        StreamingCorpus::new(SynthConfig::small(n, dups, seed))
    }

    #[test]
    fn report_is_pure_and_order_free() {
        let c = corpus(300, 18, 77);
        // Generate out of order, then in order: identical records.
        let backwards: Vec<AdrReport> = (0..20u64).rev().map(|i| c.report(i)).collect();
        let forwards: Vec<AdrReport> = c.reports(0..20).collect();
        for (f, b) in forwards.iter().zip(backwards.iter().rev()) {
            assert_eq!(f, b);
        }
        // And a fresh corpus reproduces them exactly.
        let again = corpus(300, 18, 77);
        assert_eq!(again.report(7), forwards[7]);
    }

    #[test]
    fn ids_are_arrival_order_and_seeds_matter() {
        let c = corpus(100, 5, 1);
        for id in [0u64, 50, 99] {
            assert_eq!(c.report(id).id, id);
        }
        let other = corpus(100, 5, 2);
        assert_ne!(c.report(3), other.report(3));
    }

    #[test]
    fn duplicate_pairs_have_distinct_bases_and_resemble_them() {
        let c = corpus(400, 30, 9);
        let bases: HashSet<u64> = c.duplicate_pairs().map(|p| p.lo).collect();
        assert_eq!(bases.len(), 30, "pair bases must be distinct");
        let mut adr_overlap = 0;
        for p in c.duplicate_pairs() {
            assert!(p.lo < 370 && p.hi >= 370, "bases low, duplicates high");
            let a = c.report(p.lo);
            let b = c.report(p.hi);
            let adrs_a: HashSet<&str> = a.adr_names().into_iter().collect();
            let adrs_b: HashSet<&str> = b.adr_names().into_iter().collect();
            if adrs_a.intersection(&adrs_b).count() >= 1 {
                adr_overlap += 1;
            }
        }
        assert!(
            adr_overlap >= 25,
            "duplicates must share reaction terms with their base: {adr_overlap}/30"
        );
    }

    #[test]
    fn resident_memory_is_one_scratch_not_a_corpus() {
        // A multi-million-report corpus must construct instantly: nothing
        // but lexicons is materialised up front.
        let c = StreamingCorpus::new(SynthConfig {
            num_reports: 10_000_000,
            duplicate_pairs: 250_000,
            ..SynthConfig::small(1000, 10, 3)
        });
        assert_eq!(c.len(), 10_000_000);
        // Random access deep into the corpus works without its prefix.
        let r = c.report(9_999_999);
        assert_eq!(r.id, 9_999_999);
        let p = c.duplicate_pair(249_999);
        assert_eq!(p.hi, 9_999_999);
        assert!(p.lo < 9_750_000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_ids_are_rejected() {
        corpus(10, 2, 1).report(10);
    }

    #[test]
    #[should_panic(expected = "too many duplicate pairs")]
    fn over_duplication_rejected() {
        let _ = corpus(10, 6, 1);
    }

    #[test]
    fn stride_is_always_coprime() {
        for n in [1u64, 2, 6, 97, 100, 1000, 9_750_000] {
            let s = coprime_stride(n);
            assert_eq!(gcd(s % n.max(1), n.max(1)), 1, "n={n} s={s}");
        }
    }

    #[test]
    fn replay_permutation_is_a_bijection_with_even_duplicate_spread() {
        let replay = QuarterlyReplay::new(corpus(400, 30, 9), 100);
        let ids: HashSet<u64> = (0..400).map(|s| replay.report_id_at(s)).collect();
        assert_eq!(ids.len(), 400, "every report id arrives exactly once");
        // Duplicates (ids >= 370) land evenly: ⌊s·d/n⌋ per prefix.
        for q in 0..4u64 {
            let dups = replay
                .quarter_range(q)
                .map(|s| replay.report_id_at(s))
                .filter(|&id| id >= 370)
                .count();
            assert!(
                (7..=8).contains(&dups),
                "quarter {q} got {dups} duplicates, want ~30/4"
            );
        }
        // Bases keep their relative order.
        let bases: Vec<u64> = (0..400)
            .map(|s| replay.report_id_at(s))
            .filter(|&id| id < 370)
            .collect();
        assert!(bases.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn replay_inverse_mappings_agree_with_the_permutation() {
        let replay = QuarterlyReplay::new(corpus(403, 31, 5), 64);
        for j in 0..31u64 {
            let s = replay.slot_of_duplicate(j);
            assert_eq!(replay.report_id_at(s), 403 - 31 + j, "duplicate {j}");
        }
        for i in [0u64, 1, 100, 200, 371] {
            let s = replay.slot_of_base(i);
            assert_eq!(replay.report_id_at(s), i, "base {i}");
        }
    }

    #[test]
    fn labelled_pairs_within_prefix_have_both_members_inside() {
        let replay = QuarterlyReplay::new(corpus(400, 30, 9), 100);
        let all = replay.labelled_pairs_within(400);
        assert_eq!(all.len(), 30, "full corpus knows every pair");
        let prefix = 100u64;
        let arrived: HashSet<u64> = (0..prefix).map(|s| replay.report_id_at(s)).collect();
        let labelled = replay.labelled_pairs_within(prefix);
        assert!(!labelled.is_empty(), "bootstrap prefix needs positives");
        for p in &labelled {
            assert!(arrived.contains(&p.lo) && arrived.contains(&p.hi));
        }
        // Completeness: any ground-truth pair fully inside the prefix is
        // reported.
        let inside = replay
            .corpus()
            .duplicate_pairs()
            .filter(|p| arrived.contains(&p.lo) && arrived.contains(&p.hi))
            .count();
        assert_eq!(labelled.len(), inside);
    }

    #[test]
    fn quarters_cover_the_corpus_without_overlap() {
        let replay = QuarterlyReplay::new(corpus(250, 10, 3), 64);
        assert_eq!(replay.quarters(), 4);
        let mut seen = HashSet::new();
        let mut total = 0usize;
        for q in 0..replay.quarters() {
            let reports = replay.quarter_reports(q);
            total += reports.len();
            for r in &reports {
                assert!(seen.insert(r.id), "report {} arrived twice", r.id);
            }
        }
        assert_eq!(total, 250);
        assert_eq!(replay.quarter_reports(3).len(), 250 - 3 * 64);
    }
}
