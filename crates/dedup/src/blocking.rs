//! Candidate-pair blocking.
//!
//! §3's `Dupe(R, A)` compares every new report against the whole database —
//! quadratic and exactly what the paper parallelises. Production linkage
//! systems first *block*: only reports sharing a key (here: a drug-name
//! token, or the onset date) become candidate pairs. This module provides a
//! blocking index, candidate generation, and the two standard quality
//! measures — **reduction ratio** (pairs avoided) and **pair completeness**
//! (ground-truth duplicates still covered). The workload builder and
//! [`crate::DedupSystem`] can both run on top of it.

use crate::distance::ProcessedReport;
use adr_model::{PairId, ReportId};
use simmetrics::{intersect_gallop_into, union_k_sorted_into};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A compact blocking key: a drug token (already interned by
/// [`textprep::TokenInterner`]) or an onset date (interned by the index
/// itself). Two machine words instead of a formatted `String` — no
/// allocation and a cheap integer hash per token on the ingest path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockKey {
    /// A drug-name token id.
    Drug(u32),
    /// An interned onset-date id.
    Date(u32),
}

impl fmt::Display for BlockKey {
    /// Renders in the historical string-key format (`drug:<token>` /
    /// `date:<id>`) for debug output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockKey::Drug(t) => write!(f, "drug:{t}"),
            BlockKey::Date(d) => write!(f, "date:{d}"),
        }
    }
}

/// Inverted index from blocking keys to **sorted u32 posting lists** of
/// dense report rows.
///
/// Report ids are interned to dense rows at insert time (`row_of` /
/// `id_of`); because rows are handed out monotonically, appending a fresh
/// report's row to each of its key lists keeps every posting list sorted
/// and deduplicated for free. Candidate generation then runs entirely on
/// sorted-set kernels — k-way merge union
/// ([`simmetrics::union_k_sorted_into`]) for a report's partner set and
/// galloping intersection ([`simmetrics::intersect_gallop_into`]) to find a
/// block's newly-arrived members — with no per-report `HashSet` or `Vec`
/// allocation on the warm path.
#[derive(Debug, Clone, Default)]
pub struct BlockingIndex {
    /// Per-key posting list of dense rows, always sorted ascending and
    /// deduplicated.
    blocks: HashMap<BlockKey, Vec<u32>>,
    report_keys: HashMap<ReportId, Vec<BlockKey>>,
    /// Report id → dense row.
    row_of: HashMap<ReportId, u32>,
    /// Dense row → report id (inverse of `row_of`).
    id_of: Vec<ReportId>,
    /// Onset-date interner: equal date strings get equal ids, so
    /// [`BlockKey::Date`] equality matches string equality.
    date_ids: HashMap<String, u32>,
}

impl BlockingIndex {
    /// Build an index over processed reports, keying each report by every
    /// drug token and by its onset date (when present).
    pub fn build(reports: &[ProcessedReport]) -> Self {
        let mut index = BlockingIndex::default();
        for r in reports {
            index.insert(r);
        }
        index
    }

    /// Blocking keys of one report. Drug keys reuse the report's interned
    /// token ids; the date string is interned here on first sight.
    pub fn keys_of(&mut self, r: &ProcessedReport) -> Vec<BlockKey> {
        let mut keys: Vec<BlockKey> = r.drug_tokens.iter().map(|&t| BlockKey::Drug(t)).collect();
        if let Some(date) = &r.onset_date {
            let next = self.date_ids.len() as u32;
            let id = *self.date_ids.entry(date.clone()).or_insert(next);
            keys.push(BlockKey::Date(id));
        }
        keys
    }

    /// Add a report to the index. Inserting the same id again reuses its
    /// dense row, so posting lists stay deduplicated.
    pub fn insert(&mut self, r: &ProcessedReport) {
        let keys = self.keys_of(r);
        let next = self.id_of.len() as u32;
        let row = *self.row_of.entry(r.id).or_insert(next);
        if row == next {
            self.id_of.push(r.id);
        }
        for key in &keys {
            let list = self.blocks.entry(*key).or_default();
            // Fresh rows are the largest row yet seen, so this binary search
            // lands at the end and the insert is a push; the general form
            // only pays off on (rare) re-inserts of an existing report.
            if let Err(pos) = list.binary_search(&row) {
                list.insert(pos, row);
            }
        }
        self.report_keys.insert(r.id, keys);
    }

    /// Number of distinct blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The sorted posting list (dense rows) of one block, if the key has any
    /// members.
    pub fn posting_list(&self, key: BlockKey) -> Option<&[u32]> {
        self.blocks.get(&key).map(|v| v.as_slice())
    }

    /// Gather the posting lists of `id`'s keys into `lists` and union them
    /// into `rows` (sorted, deduplicated, still including `id`'s own row).
    fn partner_rows<'a>(
        &'a self,
        id: ReportId,
        lists: &mut Vec<&'a [u32]>,
        cursors: &mut Vec<usize>,
        rows: &mut Vec<u32>,
    ) {
        lists.clear();
        rows.clear();
        if let Some(keys) = self.report_keys.get(&id) {
            for key in keys {
                if let Some(members) = self.blocks.get(key) {
                    lists.push(members);
                }
            }
        }
        union_k_sorted_into(lists, cursors, rows);
    }

    /// Blocking keys of a report derived **read-only** — nothing is
    /// interned or inserted, so a serving layer can key a probe report
    /// against a shared index without `&mut` access. Drug keys reuse the
    /// report's interned token ids; the date key resolves only when some
    /// indexed report already interned the same date string (a date no
    /// indexed report carries cannot match any block anyway).
    pub fn probe_keys(&self, r: &ProcessedReport) -> Vec<BlockKey> {
        let mut keys: Vec<BlockKey> = r.drug_tokens.iter().map(|&t| BlockKey::Drug(t)).collect();
        if let Some(date) = &r.onset_date {
            if let Some(&id) = self.date_ids.get(date) {
                keys.push(BlockKey::Date(id));
            }
        }
        keys
    }

    /// Candidate partners of a probe report *without inserting it*: the
    /// union of the posting lists of its [`BlockingIndex::probe_keys`],
    /// excluding the probe's own row when the same id is already indexed.
    /// Sorted by report id. For an already-indexed report this returns
    /// exactly [`BlockingIndex::candidates_of`].
    pub fn probe_candidates(&self, r: &ProcessedReport) -> Vec<ReportId> {
        let keys = self.probe_keys(r);
        let mut lists: Vec<&[u32]> = Vec::with_capacity(keys.len());
        for key in &keys {
            if let Some(members) = self.blocks.get(key) {
                lists.push(members);
            }
        }
        let (mut cursors, mut rows) = (Vec::new(), Vec::new());
        union_k_sorted_into(&lists, &mut cursors, &mut rows);
        let own = self.row_of.get(&r.id).copied();
        let mut v: Vec<ReportId> = rows
            .iter()
            .filter(|&&row| Some(row) != own)
            .map(|&row| self.id_of[row as usize])
            .collect();
        v.sort_unstable();
        v
    }

    /// All candidate partners of a report already in the index (excluding
    /// itself), deduplicated and sorted.
    pub fn candidates_of(&self, id: ReportId) -> Vec<ReportId> {
        let (mut lists, mut cursors, mut rows) = (Vec::new(), Vec::new(), Vec::new());
        self.partner_rows(id, &mut lists, &mut cursors, &mut rows);
        let own = self.row_of.get(&id).copied();
        let mut v: Vec<ReportId> = rows
            .iter()
            .filter(|&&r| Some(r) != own)
            .map(|&r| self.id_of[r as usize])
            .collect();
        // Rows are in insertion order, not id order; restore the sorted-ids
        // contract (a no-op sort when reports arrived in id order).
        v.sort_unstable();
        v
    }

    /// Candidate pairs for a batch of new reports against the indexed
    /// database (the blocked version of
    /// [`crate::pairing::pairs_involving_new`]). The new reports must
    /// already be inserted.
    pub fn candidate_pairs(&self, new_ids: &[ReportId]) -> Vec<PairId> {
        let mut out: Vec<PairId> = Vec::new();
        let (mut lists, mut cursors, mut rows) = (Vec::new(), Vec::new(), Vec::new());
        for &id in new_ids {
            self.partner_rows(id, &mut lists, &mut cursors, &mut rows);
            let own = self.row_of.get(&id).copied();
            out.extend(
                rows.iter()
                    .filter(|&&r| Some(r) != own)
                    .map(|&r| PairId::new(id, self.id_of[r as usize])),
            );
        }
        // Sorted-merge dedup: a pair of two new reports was emitted once per
        // endpoint; adjacent after the sort.
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Per-block candidate pairs for a batch of new reports — the same pair
    /// set as [`BlockingIndex::candidate_pairs`], but kept grouped by
    /// blocking key so a skew-aware packer
    /// ([`crate::pairing::pack_pairs`]) can balance the hot blocks before
    /// the distance stage is submitted.
    ///
    /// Blocks are visited in [`BlockKey`] order; a pair sharing several keys
    /// is assigned to the first block that produces it, and pairs are sorted
    /// within each group — the grouping is fully deterministic and flattens
    /// (after a global sort) to exactly `candidate_pairs`.
    pub fn candidate_pair_groups(&self, new_ids: &[ReportId]) -> Vec<Vec<PairId>> {
        self.candidate_pair_groups_counted(new_ids).0
    }

    /// [`BlockingIndex::candidate_pair_groups`] plus the number of
    /// **multi-key duplicates** dropped: pairs reachable through more than
    /// one blocking key, each counted once per extra key. This is exactly
    /// the set of distance evaluations a naive per-block pipeline would
    /// repeat, and what [`crate::pairing::DistanceMemo`] saves when groups
    /// are re-submitted across batches.
    pub fn candidate_pair_groups_counted(&self, new_ids: &[ReportId]) -> (Vec<Vec<PairId>>, u64) {
        // Sorted rows of the arriving batch — the gallop driver below.
        let mut new_rows: Vec<u32> = new_ids
            .iter()
            .filter_map(|id| self.row_of.get(id).copied())
            .collect();
        new_rows.sort_unstable();
        new_rows.dedup();
        let mut touched: Vec<BlockKey> = new_ids
            .iter()
            .flat_map(|id| self.report_keys.get(id).into_iter().flatten().copied())
            .collect();
        touched.sort_unstable();
        touched.dedup();
        // Tag every block's pair set with the block's rank in key order; the
        // first-block-wins rule then falls out of a sort + dedup, no HashSet.
        let mut tagged: Vec<(PairId, u32)> = Vec::new();
        let mut new_members: Vec<u32> = Vec::new();
        let mut block_pairs: Vec<PairId> = Vec::new();
        for (rank, key) in touched.iter().enumerate() {
            let Some(members) = self.blocks.get(key) else {
                continue;
            };
            new_members.clear();
            intersect_gallop_into(&new_rows, members, &mut new_members);
            if new_members.is_empty() {
                continue;
            }
            block_pairs.clear();
            for &n in &new_members {
                let nid = self.id_of[n as usize];
                for &m in members.iter() {
                    if m != n {
                        block_pairs.push(PairId::new(nid, self.id_of[m as usize]));
                    }
                }
            }
            // New–new pairs were emitted from both endpoints; collapse them
            // before tagging so the duplicate count is strictly cross-block.
            block_pairs.sort_unstable();
            block_pairs.dedup();
            tagged.extend(block_pairs.iter().map(|&p| (p, rank as u32)));
        }
        tagged.sort_unstable();
        let enumerated = tagged.len() as u64;
        // Sorted by (pair, rank): the first entry of each pair run carries
        // the smallest rank — the first block that produced it.
        tagged.dedup_by_key(|(p, _)| *p);
        let duplicates = enumerated - tagged.len() as u64;
        let mut groups: Vec<Vec<PairId>> = vec![Vec::new(); touched.len()];
        for (p, rank) in tagged {
            // Global (pair, rank) order means each group receives its pairs
            // already sorted.
            groups[rank as usize].push(p);
        }
        groups.retain(|g| !g.is_empty());
        (groups, duplicates)
    }

    /// All candidate pairs the index induces over the whole database,
    /// deduplicated by sorted merge.
    pub fn all_candidate_pairs(&self) -> Vec<PairId> {
        let mut out: Vec<PairId> = Vec::new();
        for members in self.blocks.values() {
            for (i, &a) in members.iter().enumerate() {
                let aid = self.id_of[a as usize];
                for &b in &members[i + 1..] {
                    out.push(PairId::new(aid, self.id_of[b as usize]));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Blocking quality relative to a ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingQuality {
    /// Fraction of the full pair space avoided (1 is best).
    pub reduction_ratio: f64,
    /// Fraction of true duplicate pairs still covered (1 is best).
    pub pair_completeness: f64,
}

/// Evaluate an index against ground-truth duplicate pairs over `n` reports.
pub fn evaluate_blocking(
    index: &BlockingIndex,
    n_reports: usize,
    true_duplicates: &HashSet<PairId>,
) -> BlockingQuality {
    let candidates = index.all_candidate_pairs();
    let total_pairs = n_reports * n_reports.saturating_sub(1) / 2;
    // `all_candidate_pairs` is sorted: membership is a binary search, no
    // rebuilt HashSet per evaluation.
    let covered = true_duplicates
        .iter()
        .filter(|p| candidates.binary_search(p).is_ok())
        .count();
    BlockingQuality {
        reduction_ratio: if total_pairs == 0 {
            0.0
        } else {
            1.0 - candidates.len() as f64 / total_pairs as f64
        },
        pair_completeness: if true_duplicates.is_empty() {
            1.0
        } else {
            covered as f64 / true_duplicates.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_synth::{Dataset, SynthConfig};
    use dedup_test_helpers::processed;

    mod dedup_test_helpers {
        use crate::distance::ProcessedReport;
        use adr_synth::Dataset;
        use textprep::{Pipeline, TokenInterner};

        pub fn processed(ds: &Dataset) -> Vec<ProcessedReport> {
            let p = Pipeline::paper();
            let mut interner = TokenInterner::new();
            ds.reports
                .iter()
                .map(|r| ProcessedReport::from_report(r, &p, &mut interner))
                .collect()
        }
    }

    #[test]
    fn candidates_share_a_key() {
        let ds = Dataset::generate(&SynthConfig::small(200, 10, 3));
        let reports = processed(&ds);
        let index = BlockingIndex::build(&reports);
        let by_id: HashMap<u64, &ProcessedReport> = reports.iter().map(|r| (r.id, r)).collect();
        for r in reports.iter().take(20) {
            for partner in index.candidates_of(r.id) {
                let p = by_id[&partner];
                let share_drug = r.drug_tokens.iter().any(|t| p.drug_tokens.contains(t));
                let share_date = r.onset_date.is_some() && r.onset_date == p.onset_date;
                assert!(
                    share_drug || share_date,
                    "candidate {partner} shares no key with {}",
                    r.id
                );
            }
        }
    }

    #[test]
    fn blocking_covers_most_duplicates_and_reduces_pairs() {
        let ds = Dataset::generate(&SynthConfig::small(600, 30, 7));
        let reports = processed(&ds);
        let index = BlockingIndex::build(&reports);
        let quality = evaluate_blocking(&index, reports.len(), &ds.duplicate_set());
        assert!(
            quality.pair_completeness >= 0.95,
            "duplicates share drugs/dates almost always, got {}",
            quality.pair_completeness
        );
        assert!(
            quality.reduction_ratio >= 0.5,
            "blocking must prune at least half the pair space, got {}",
            quality.reduction_ratio
        );
    }

    #[test]
    fn candidate_pairs_for_new_reports_are_canonical_and_deduplicated() {
        let ds = Dataset::generate(&SynthConfig::small(150, 8, 5));
        let reports = processed(&ds);
        let index = BlockingIndex::build(&reports);
        let new_ids: Vec<u64> = (140..150).collect();
        let pairs = index.candidate_pairs(&new_ids);
        let set: HashSet<PairId> = pairs.iter().copied().collect();
        assert_eq!(set.len(), pairs.len(), "no duplicate pairs");
        for p in &pairs {
            assert!(p.lo < p.hi);
            assert!(new_ids.contains(&p.lo) || new_ids.contains(&p.hi));
        }
    }

    #[test]
    fn candidate_pair_groups_flatten_to_candidate_pairs() {
        let ds = Dataset::generate(&SynthConfig::small(300, 15, 11));
        let reports = processed(&ds);
        let index = BlockingIndex::build(&reports);
        let new_ids: Vec<u64> = (280..300).collect();
        let groups = index.candidate_pair_groups(&new_ids);
        let mut flat: Vec<PairId> = groups.iter().flatten().copied().collect();
        let set: HashSet<PairId> = flat.iter().copied().collect();
        assert_eq!(set.len(), flat.len(), "a pair appears in exactly one group");
        flat.sort_unstable();
        assert_eq!(flat, index.candidate_pairs(&new_ids));
        for g in &groups {
            assert!(!g.is_empty(), "empty groups are dropped");
            assert!(g.windows(2).all(|w| w[0] < w[1]), "sorted within group");
        }
        // Deterministic: a second call gives the identical grouping.
        assert_eq!(groups, index.candidate_pair_groups(&new_ids));
    }

    #[test]
    fn probe_candidates_match_candidates_of_for_indexed_reports() {
        let ds = Dataset::generate(&SynthConfig::small(250, 12, 17));
        let reports = processed(&ds);
        let index = BlockingIndex::build(&reports);
        for r in reports.iter().take(30) {
            assert_eq!(
                index.probe_candidates(r),
                index.candidates_of(r.id),
                "probe path must agree with the indexed path for {}",
                r.id
            );
        }
        // A never-indexed probe (fresh id, novel drug token ids) still finds
        // partners through any token the corpus knows — and nothing was
        // mutated: block and date-interner counts are unchanged.
        let blocks_before = index.block_count();
        let dates_before = index.date_ids.len();
        let mut probe = reports[0].clone();
        probe.id = 1_000_000;
        probe.drug_tokens.push(u32::MAX); // novel token: matches no block
        let partners = index.probe_candidates(&probe);
        assert!(partners.contains(&reports[0].id), "shares every key with 0");
        assert_eq!(index.block_count(), blocks_before);
        assert_eq!(index.date_ids.len(), dates_before);
    }

    #[test]
    fn block_keys_display_in_the_historical_format() {
        assert_eq!(BlockKey::Drug(17).to_string(), "drug:17");
        assert_eq!(BlockKey::Date(3).to_string(), "date:3");
    }

    #[test]
    fn equal_date_strings_intern_to_the_same_key() {
        let ds = Dataset::generate(&SynthConfig::small(120, 6, 9));
        let reports = processed(&ds);
        let mut index = BlockingIndex::default();
        for r in &reports {
            index.insert(r);
        }
        // Re-deriving keys for an already-inserted report must reuse the
        // interned date id, not mint a fresh one.
        for r in reports.iter().filter(|r| r.onset_date.is_some()).take(10) {
            let again = index.keys_of(r);
            let stored = index.report_keys[&r.id].clone();
            assert_eq!(again, stored);
        }
    }

    #[test]
    fn empty_index_yields_nothing() {
        let index = BlockingIndex::default();
        assert!(index.candidates_of(7).is_empty());
        assert!(index.all_candidate_pairs().is_empty());
        assert!(index.candidate_pair_groups(&[1, 2, 3]).is_empty());
        let q = evaluate_blocking(&index, 0, &HashSet::new());
        assert_eq!(q.pair_completeness, 1.0);
    }

    #[test]
    fn posting_lists_are_sorted_and_deduplicated() {
        let ds = Dataset::generate(&SynthConfig::small(400, 20, 13));
        let reports = processed(&ds);
        let mut index = BlockingIndex::build(&reports);
        // Re-inserting existing reports must not perturb any list.
        for r in reports.iter().take(25) {
            index.insert(r);
        }
        assert!(index.block_count() > 0);
        for (key, list) in &index.blocks {
            assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "posting list for {key} not sorted+deduped"
            );
            assert_eq!(Some(list.as_slice()), index.posting_list(*key));
            for &row in list {
                assert!((row as usize) < index.id_of.len(), "row out of range");
            }
        }
        // Row interning is a bijection.
        for (id, &row) in &index.row_of {
            assert_eq!(index.id_of[row as usize], *id);
        }
    }

    #[test]
    fn counted_groups_report_multi_key_duplicates() {
        let ds = Dataset::generate(&SynthConfig::small(300, 15, 11));
        let reports = processed(&ds);
        let index = BlockingIndex::build(&reports);
        let new_ids: Vec<u64> = (280..300).collect();
        let (groups, dups) = index.candidate_pair_groups_counted(&new_ids);
        assert_eq!(groups, index.candidate_pair_groups(&new_ids));
        let unique: usize = groups.iter().map(|g| g.len()).sum();
        // Duplicate reports share drug tokens *and* dates, so some pairs
        // must be reachable via more than one key on this corpus.
        assert!(dups > 0, "expected multi-key pairs on a duplicate corpus");
        assert_eq!(unique, index.candidate_pairs(&new_ids).len());
    }
}
