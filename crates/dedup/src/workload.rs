//! Labelled pair-set construction from a synthetic corpus.
//!
//! The evaluation (§5) works on *pair* datasets derived from the report
//! database: training sets of 1M–5M pairs and test sets of 10k–200k pairs,
//! with every known duplicate labelled and the (overwhelming) remainder
//! non-duplicate. This module samples such pair sets at any size,
//! preserving the paper's split discipline: ground-truth duplicate pairs are
//! divided between train and test, negatives are sampled uniformly.

use crate::distance::{pair_distance, ProcessedReport};
use adr_model::PairId;
use adr_synth::Dataset;
use fastknn::{LabeledPair, UnlabeledPair};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use textprep::{Pipeline, TokenInterner};

/// A train/test pair workload with ground truth.
#[derive(Debug, Clone)]
pub struct PairWorkload {
    /// Labelled training pairs (all assigned duplicates + sampled negatives).
    pub train: Vec<LabeledPair>,
    /// Unlabelled test pairs.
    pub test: Vec<UnlabeledPair>,
    /// Ground truth aligned with `test` (`true` = duplicate).
    pub truth: Vec<bool>,
}

impl PairWorkload {
    /// Number of positive training pairs.
    pub fn train_positives(&self) -> usize {
        self.train.iter().filter(|p| p.positive).count()
    }

    /// Number of positive test pairs.
    pub fn test_positives(&self) -> usize {
        self.truth.iter().filter(|&&t| t).count()
    }

    /// Test set as `(score, truth)` pairs for PR evaluation, given scores
    /// aligned with `test`.
    pub fn scored(&self, scores: &[f64]) -> Vec<(f64, bool)> {
        assert_eq!(scores.len(), self.truth.len());
        scores
            .iter()
            .copied()
            .zip(self.truth.iter().copied())
            .collect()
    }
}

/// Fraction of ground-truth duplicate pairs assigned to the training side.
pub const TRAIN_DUP_FRACTION: f64 = 0.6;

/// A corpus with its reports preprocessed once — amortises tokenisation,
/// stop-wording and stemming across many workload constructions.
#[derive(Debug, Clone)]
pub struct ProcessedCorpus {
    /// The source corpus.
    pub dataset: Dataset,
    /// Preprocessed reports, indexed by report id.
    pub processed: Vec<ProcessedReport>,
    /// The interner all of `processed` share; id sets from different
    /// corpora are not comparable.
    pub interner: TokenInterner,
}

impl ProcessedCorpus {
    /// Preprocess every report with the paper's pipeline, interning all
    /// tokens into one corpus-wide table.
    pub fn new(dataset: Dataset) -> Self {
        let pipeline = Pipeline::paper();
        let mut interner = TokenInterner::new();
        let processed = dataset
            .reports
            .iter()
            .map(|r| ProcessedReport::from_report(r, &pipeline, &mut interner))
            .collect();
        ProcessedCorpus {
            dataset,
            processed,
            interner,
        }
    }
}

/// Build a workload of `train_pairs` training and `test_pairs` testing
/// pairs from a corpus. Duplicate pairs are split
/// [`TRAIN_DUP_FRACTION`]/(1−fraction) between train and test; the rest of
/// both sets is uniformly sampled non-duplicate pairs. Deterministic in
/// `seed`.
///
/// # Panics
/// Panics if the corpus has fewer than 2 reports or no duplicate pairs, or
/// if the requested sizes cannot accommodate the duplicate pairs.
pub fn build_workload(
    dataset: &Dataset,
    train_pairs: usize,
    test_pairs: usize,
    seed: u64,
) -> PairWorkload {
    let corpus = ProcessedCorpus::new(dataset.clone());
    build_workload_on(&corpus, train_pairs, test_pairs, seed)
}

/// Fraction of sampled negative pairs drawn from *blocking* (pairs sharing
/// a primary drug or an onset date) rather than uniformly. Candidate pairs
/// in a production dedup system come out of blocking, so the pair store is
/// dominated by same-drug / same-date pairs — the confusable negatives that
/// keep PR curves below 1.
pub const BLOCKED_NEGATIVE_FRACTION: f64 = 0.5;

/// [`build_workload`] over a pre-processed corpus.
pub fn build_workload_on(
    corpus: &ProcessedCorpus,
    train_pairs: usize,
    test_pairs: usize,
    seed: u64,
) -> PairWorkload {
    let dataset = &corpus.dataset;
    let processed = &corpus.processed;
    let n = dataset.reports.len();
    assert!(n >= 2, "need at least two reports");
    assert!(
        !dataset.duplicate_pairs.is_empty(),
        "corpus has no duplicate pairs"
    );

    // Blocking index: reports by primary drug and by onset date. Sampling a
    // partner from a random report's block weights blocks by size, as a
    // real candidate generator does.
    let mut by_block: std::collections::HashMap<String, Vec<u64>> =
        std::collections::HashMap::new();
    let mut report_blocks: Vec<[String; 2]> = Vec::with_capacity(n);
    for r in &dataset.reports {
        let drug_key = format!("drug:{}", r.drug_names().first().unwrap_or(&""));
        let date_key = format!("date:{}", r.reaction.onset_date.as_deref().unwrap_or(""));
        by_block.entry(drug_key.clone()).or_default().push(r.id);
        by_block.entry(date_key.clone()).or_default().push(r.id);
        report_blocks.push([drug_key, date_key]);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut dups = dataset.duplicate_pairs.clone();
    dups.shuffle(&mut rng);
    let train_dup_count = ((dups.len() as f64 * TRAIN_DUP_FRACTION) as usize)
        .clamp(1, dups.len().saturating_sub(1).max(1));
    let (train_dups, test_dups) = dups.split_at(train_dup_count.min(dups.len()));
    assert!(
        train_dups.len() <= train_pairs,
        "train_pairs too small for the duplicate pairs"
    );
    assert!(
        test_dups.len() <= test_pairs,
        "test_pairs too small for the duplicate pairs"
    );

    let dup_set = dataset.duplicate_set();
    let mut used: HashSet<PairId> = dup_set.clone();
    let sample_negative = |rng: &mut StdRng, used: &mut HashSet<PairId>| loop {
        let a = rng.gen_range(0..n as u64);
        let b = if rng.gen_bool(BLOCKED_NEGATIVE_FRACTION) {
            // Blocked candidate: a partner sharing `a`'s drug or onset date.
            let key = &report_blocks[a as usize][rng.gen_range(0..2usize)];
            let block = &by_block[key];
            block[rng.gen_range(0..block.len())]
        } else {
            rng.gen_range(0..n as u64)
        };
        if a == b {
            continue;
        }
        let pid = PairId::new(a, b);
        if used.insert(pid) {
            return pid;
        }
    };

    let vector_of =
        |pid: &PairId| pair_distance(&processed[pid.lo as usize], &processed[pid.hi as usize]);

    let mut train = Vec::with_capacity(train_pairs);
    let mut next_id = 0u64;
    for pid in train_dups {
        train.push(LabeledPair::new(next_id, vector_of(pid), true));
        next_id += 1;
    }
    while train.len() < train_pairs {
        let pid = sample_negative(&mut rng, &mut used);
        train.push(LabeledPair::new(next_id, vector_of(&pid), false));
        next_id += 1;
    }

    let mut test = Vec::with_capacity(test_pairs);
    let mut truth = Vec::with_capacity(test_pairs);
    for pid in test_dups {
        test.push(UnlabeledPair::new(next_id, vector_of(pid)));
        truth.push(true);
        next_id += 1;
    }
    while test.len() < test_pairs {
        let pid = sample_negative(&mut rng, &mut used);
        test.push(UnlabeledPair::new(next_id, vector_of(&pid)));
        truth.push(false);
        next_id += 1;
    }
    // Shuffle test so positives are not clumped at the front.
    let mut order: Vec<usize> = (0..test.len()).collect();
    order.shuffle(&mut rng);
    let test = order.iter().map(|&i| test[i]).collect();
    let truth = order.iter().map(|&i| truth[i]).collect();

    PairWorkload { train, test, truth }
}

/// Uniformly sampled unlabelled test pairs — the test distribution of the
/// paper's scalability experiments (Figs. 7–10): "10,000 randomly selected
/// report pairs". At a ~5% report-duplication rate a uniform pair sample is
/// ~99.99% non-duplicate, so almost every pair resolves through the
/// all-negative shortcut; this is what makes the paper's cross/intra
/// comparison ratio so small (Fig. 8a).
pub fn uniform_test_pairs(corpus: &ProcessedCorpus, count: usize, seed: u64) -> Vec<UnlabeledPair> {
    let n = corpus.dataset.reports.len() as u64;
    assert!(n >= 2, "need at least two reports");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut used: HashSet<PairId> = HashSet::new();
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let pid = PairId::new(a, b);
        if !used.insert(pid) {
            continue;
        }
        let v = pair_distance(
            &corpus.processed[pid.lo as usize],
            &corpus.processed[pid.hi as usize],
        );
        out.push(UnlabeledPair::new(out.len() as u64, v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_synth::SynthConfig;

    fn corpus() -> Dataset {
        Dataset::generate(&SynthConfig::small(300, 20, 5))
    }

    #[test]
    fn workload_sizes_and_labels() {
        let ds = corpus();
        let w = build_workload(&ds, 500, 100, 1);
        assert_eq!(w.train.len(), 500);
        assert_eq!(w.test.len(), 100);
        assert_eq!(w.truth.len(), 100);
        assert_eq!(w.train_positives(), 12); // 60% of 20
        assert_eq!(w.test_positives(), 8);
    }

    #[test]
    fn deterministic_in_seed() {
        let ds = corpus();
        let a = build_workload(&ds, 200, 50, 7);
        let b = build_workload(&ds, 200, 50, 7);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        assert_eq!(a.truth, b.truth);
        let c = build_workload(&ds, 200, 50, 8);
        assert_ne!(a.test, c.test);
    }

    #[test]
    fn pair_ids_are_unique_across_train_and_test() {
        let ds = corpus();
        let w = build_workload(&ds, 300, 80, 3);
        let mut ids: HashSet<u64> = HashSet::new();
        for p in &w.train {
            assert!(ids.insert(p.id));
        }
        for t in &w.test {
            assert!(ids.insert(t.id));
        }
    }

    #[test]
    fn vectors_are_eight_dimensional_unit_box() {
        let ds = corpus();
        let w = build_workload(&ds, 100, 30, 2);
        for p in &w.train {
            assert_eq!(p.vector.len(), 8);
            assert!(p.vector.iter().all(|&d| (0.0..=1.0).contains(&d)));
        }
    }

    #[test]
    fn positives_have_smaller_vectors_on_average() {
        let ds = corpus();
        let w = build_workload(&ds, 400, 100, 4);
        let mean = |pairs: Vec<&adr_model::DistVec>| -> f64 {
            let s: f64 = pairs.iter().map(|v| v.iter().sum::<f64>()).sum();
            s / pairs.len() as f64
        };
        let pos = mean(
            w.train
                .iter()
                .filter(|p| p.positive)
                .map(|p| &p.vector)
                .collect(),
        );
        let neg = mean(
            w.train
                .iter()
                .filter(|p| !p.positive)
                .map(|p| &p.vector)
                .collect(),
        );
        assert!(
            pos < neg,
            "positives {pos} must be closer than negatives {neg}"
        );
    }

    #[test]
    fn uniform_test_pairs_are_distinct_and_sized() {
        let corpus = ProcessedCorpus::new(corpus());
        let pairs = uniform_test_pairs(&corpus, 300, 9);
        assert_eq!(pairs.len(), 300);
        // ids are sequential, vectors 8-dimensional.
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(p.id, i as u64);
            assert_eq!(p.vector.len(), 8);
        }
        assert_eq!(
            uniform_test_pairs(&corpus, 300, 9),
            pairs,
            "deterministic in seed"
        );
    }

    #[test]
    #[should_panic(expected = "train_pairs too small")]
    fn tiny_budgets_rejected() {
        let ds = corpus();
        let _ = build_workload(&ds, 2, 100, 1);
    }
}
