//! The orchestrated duplicate-detection service (Fig. 1 end-to-end).

use crate::blocking::BlockingIndex;
use crate::distance::ProcessedReport;
use crate::pairing::{
    contiguous_partitions, pack_pairs, pairs_involving_new, pairwise_distance_batches,
    pairwise_distances, CorpusIndex, DistanceMemo,
};
use crate::store::PairStore;
use adr_model::{AdrReport, PairId, ReportId};
use fastknn::{FastKnn, FastKnnConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparklet::{Cluster, EventKind, Result};
use std::collections::HashMap;
use std::sync::Arc;
use textprep::{Pipeline, TokenInterner};

/// Configuration of the duplicate-detection system.
#[derive(Debug, Clone, Copy)]
pub struct DedupConfig {
    /// Fast kNN hyper-parameters (k, b, c, θ).
    pub knn: FastKnnConfig,
    /// Capacity of the non-duplicate pair store.
    pub max_negative_store: usize,
    /// Non-duplicate pairs sampled when bootstrapping from a labelled
    /// corpus (the initial expert-labelled negatives of Fig. 1).
    pub bootstrap_negatives: usize,
    /// Partitions for the pairwise-distance job.
    pub pair_partitions: usize,
    /// Seed for negative sampling.
    pub seed: u64,
    /// Generate candidate pairs through the blocking index instead of §3's
    /// exhaustive new-vs-all comparison. Blocking skips pairs sharing no
    /// drug token and no onset date — a large reduction at a small
    /// pair-completeness cost (see [`crate::blocking`]). `false` is the
    /// paper-faithful default.
    pub use_blocking: bool,
    /// Capacity (in pairs) of the cross-batch [`DistanceMemo`] the blocked
    /// candidate path consults before submitting the distance job. `0`
    /// disables memoisation. Lossless either way: a §4.2 distance is a pure
    /// function of its two reports, so memo hits are bit-identical to
    /// recomputation.
    pub memo_pairs: usize,
}

impl Default for DedupConfig {
    fn default() -> Self {
        DedupConfig {
            knn: FastKnnConfig::default(),
            max_negative_store: 20_000,
            bootstrap_negatives: 2_000,
            pair_partitions: 8,
            seed: 2016,
            use_blocking: false,
            memo_pairs: 1 << 18,
        }
    }
}

/// One detected (or rejected) candidate pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// The report pair.
    pub pair: PairId,
    /// Eq. 5 score.
    pub score: f64,
    /// Eq. 6 decision at the configured θ.
    pub is_duplicate: bool,
}

/// The duplicate-detection system: a report database, the two labelled-pair
/// stores, and a Fast kNN classifier retrained from the stores on demand.
pub struct DedupSystem {
    cluster: Cluster,
    config: DedupConfig,
    pipeline: Pipeline,
    /// System-wide token interner: every report ever ingested interns into
    /// this one table, so id sets stay comparable across batches.
    interner: TokenInterner,
    /// Arc-shared corpus snapshot handed to the distributed distance job —
    /// the job clones the `Arc`, never the reports.
    processed: CorpusIndex,
    arrival_order: Vec<ReportId>,
    store: PairStore,
    blocking: BlockingIndex,
    /// Cross-batch distance memo for the blocked candidate path.
    memo: DistanceMemo,
    rng: StdRng,
}

impl DedupSystem {
    /// Create an empty system bound to an engine cluster.
    pub fn new(cluster: Cluster, config: DedupConfig) -> Self {
        // Install the classifier's spill codecs up front (FastKnn::fit does
        // so too, per fit) so the cluster's disk tier can absorb shuffle and
        // cache overflow from the very first job under a tight memory cap.
        fastknn::register_spill_codecs::<{ fastknn::PAIR_DIMS }>(cluster.spill());
        DedupSystem {
            store: PairStore::new(config.max_negative_store, config.seed),
            rng: StdRng::seed_from_u64(config.seed ^ 0xD5DA),
            pipeline: Pipeline::paper(),
            interner: TokenInterner::new(),
            processed: Arc::new(HashMap::new()),
            arrival_order: Vec::new(),
            blocking: BlockingIndex::default(),
            memo: DistanceMemo::with_capacity(config.memo_pairs),
            cluster,
            config,
        }
    }

    /// The cross-batch distance memo (inspectable for hit statistics).
    pub fn memo(&self) -> &DistanceMemo {
        &self.memo
    }

    /// Number of reports in the database.
    pub fn report_count(&self) -> usize {
        self.arrival_order.len()
    }

    /// The labelled-pair stores.
    pub fn store(&self) -> &PairStore {
        &self.store
    }

    /// The engine cluster the system runs on (metrics, journal, clock).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Run report of everything this system has executed on its cluster —
    /// the Fig. 1 loop's stage timeline, retries, shuffle and cache stats.
    pub fn job_report(&self) -> sparklet::JobReport {
        self.cluster.job_report()
    }

    /// Ingest an expert-labelled corpus: add all reports, store every known
    /// duplicate pair as a positive, and sample
    /// [`DedupConfig::bootstrap_negatives`] random non-duplicate pairs as
    /// the initial negative store.
    pub fn bootstrap(
        &mut self,
        reports: &[AdrReport],
        labelled_duplicates: &[PairId],
    ) -> Result<()> {
        for r in reports {
            self.add_report(r);
        }
        let dup_set: std::collections::HashSet<PairId> =
            labelled_duplicates.iter().copied().collect();
        let mut wanted: Vec<PairId> = labelled_duplicates.to_vec();
        let n = self.arrival_order.len() as u64;
        let mut guard = 0;
        while wanted.len() < labelled_duplicates.len() + self.config.bootstrap_negatives {
            guard += 1;
            if guard > 100 * self.config.bootstrap_negatives + 1000 {
                break; // tiny corpora cannot yield enough distinct pairs
            }
            // Draw arrival *indices* and map them to report ids: streaming
            // corpora ingest non-contiguous ids (duplicates carry tail
            // ids), so `0..n` is not the id space. For a corpus whose ids
            // are contiguous arrival order this maps through the identity
            // and reproduces the historical draw sequence exactly.
            let a = self.rng.gen_range(0..n);
            let b = self.rng.gen_range(0..n);
            if a == b {
                continue;
            }
            let pid = PairId::new(
                self.arrival_order[a as usize],
                self.arrival_order[b as usize],
            );
            if dup_set.contains(&pid) || wanted.contains(&pid) {
                continue;
            }
            wanted.push(pid);
        }
        let distances = pairwise_distances(
            &self.cluster,
            &self.processed,
            wanted,
            self.config.pair_partitions,
        )?;
        for (pid, vector) in distances {
            self.store.add(pid, vector, dup_set.contains(&pid));
        }
        Ok(())
    }

    pub(crate) fn add_report(&mut self, r: &AdrReport) {
        let processed = ProcessedReport::from_report(r, &self.pipeline, &mut self.interner);
        if self
            .processed
            .get(&r.id)
            .is_some_and(|old| *old != processed)
        {
            // A re-ingested follow-up changed the report's content: every
            // memoised distance against it is stale. An identical
            // re-submission keeps its entries — the distances still hold.
            self.memo.purge_report(r.id);
        }
        self.blocking.insert(&processed);
        // Mutating the shared snapshot: `make_mut` copies the map only if a
        // distance job still holds a reference (jobs drop theirs on
        // completion), so a batch of inserts costs at most one copy.
        Arc::make_mut(&mut self.processed).insert(r.id, processed);
        self.arrival_order.push(r.id);
    }

    /// Process a batch of newly arrived reports (§3): compare them against
    /// the whole database and each other, classify every candidate pair,
    /// feed the decisions back into the stores, and add the reports to the
    /// database. Returns all candidate decisions, duplicates first.
    pub fn detect_new(&mut self, new_reports: &[AdrReport]) -> Result<Vec<Detection>> {
        if new_reports.is_empty() {
            return Ok(Vec::new());
        }
        let existing: Vec<ReportId> = self.arrival_order.clone();
        for r in new_reports {
            self.add_report(r);
        }
        let new_ids: Vec<ReportId> = new_reports.iter().map(|r| r.id).collect();
        // The distance job hands back one contiguous column batch (row `i`
        // is the vector of `pairs[i]`) — it flows into the classifier's
        // tiled kernels with no per-partition re-materialization.
        let (pairs, vectors) = if self.config.use_blocking {
            // Blocking skews pair counts heavily towards hot drug blocks, so
            // the candidate stream goes through the skew-aware packer: one
            // pair group per blocking key, LPT-packed (splitting oversized
            // groups) into op-weight-balanced partitions. Before packing,
            // the memo answers pairs whose distance an earlier batch already
            // computed (a re-submitted report regenerates its pairs) — only
            // the unknowns go through the job, and the fresh rows are
            // memoised for future batches. The flattened output order
            // depends on the packing, so sort by pair id to keep downstream
            // results (and their digests) partition- and memo-free: the
            // candidate pair set is duplicate-free, making the by-id sort a
            // total order regardless of which rows came from the memo.
            let (groups, multi_key) = self.blocking.candidate_pair_groups_counted(&new_ids);
            let (unknown, known) = self.memo.split_known(groups);
            let computed: u64 = unknown.iter().map(|g| g.len() as u64).sum();
            let memo_hits = known.len() as u64;
            let partitions = pack_pairs(&self.processed, unknown, self.config.pair_partitions);
            let (mut pairs, mut vectors) =
                pairwise_distance_batches(&self.cluster, &self.processed, partitions)?;
            for (row, pid) in pairs.iter().enumerate() {
                self.memo.insert(*pid, vectors.row(row));
            }
            for (pid, v) in known {
                pairs.push(pid);
                vectors.push(0, &v, false);
            }
            // One prune event per batch: distance evaluations the posting
            // lists collapsed (multi-key pairs enumerated once) plus the
            // memo hits, against the evaluations actually submitted.
            self.cluster.journal().record(EventKind::PruneApplied {
                scope: "detect-new-memo".into(),
                cells_skipped: 0,
                bound_rejected: 0,
                evals_done: computed,
                evals_avoided: memo_hits + multi_key,
                memo_hits,
            });
            let mut idx: Vec<usize> = (0..pairs.len()).collect();
            idx.sort_unstable_by_key(|&i| (pairs[i], i));
            let sorted: Vec<PairId> = idx.iter().map(|&i| pairs[i]).collect();
            let mut vectors = vectors.gather(&idx);
            for (row, id) in vectors.ids_mut().iter_mut().enumerate() {
                *id = row as u64;
            }
            (sorted, vectors)
        } else {
            pairwise_distance_batches(
                &self.cluster,
                &self.processed,
                contiguous_partitions(
                    pairs_involving_new(&new_ids, &existing),
                    self.config.pair_partitions,
                ),
            )?
        };

        let train = self.store.training_pairs();
        let model = FastKnn::fit(&self.cluster, &train, self.config.knn)?;
        let scored = model.classify_batch(&vectors)?;

        let mut detections: Vec<Detection> = scored
            .iter()
            .map(|s| {
                let row = s.id as usize;
                let pid = pairs[row];
                // Feedback: the classified pair joins the labelled stores
                // (Fig. 1's dashed line).
                self.store.add(pid, vectors.row(row), s.positive);
                Detection {
                    pair: pid,
                    score: s.score,
                    is_duplicate: s.positive,
                }
            })
            .collect();
        detections.sort_by(|a, b| {
            b.is_duplicate.cmp(&a.is_duplicate).then(
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        Ok(detections)
    }

    /// Snapshot the mutable state a [`detect_new`](DedupSystem::detect_new)
    /// or [`bootstrap`](DedupSystem::bootstrap) call touches, so a failed
    /// attempt can be rolled back and retried as if it never ran. The
    /// cross-batch [`DistanceMemo`] is deliberately *not* captured: a §4.2
    /// distance is a pure function of its reports, so entries a failed
    /// attempt left behind are bit-identical to recomputation and results
    /// never see them.
    pub(crate) fn begin_batch(&self) -> BatchGuard {
        BatchGuard {
            store: self.store.clone(),
            blocking: self.blocking.clone(),
            processed: Arc::clone(&self.processed),
            arrival_len: self.arrival_order.len(),
            interner_mark: self.interner.mark(),
            rng: self.rng.clone(),
        }
    }

    /// Undo everything since the matching
    /// [`begin_batch`](DedupSystem::begin_batch): stores, blocking index,
    /// corpus snapshot, arrival order, interner ids and the negative-
    /// sampling RNG all return to their pre-attempt state, so a retry
    /// re-assigns the exact same dense ids and draws the attempt would have
    /// gotten on a clean first try.
    pub(crate) fn rollback_batch(&mut self, guard: BatchGuard) {
        self.store = guard.store;
        self.blocking = guard.blocking;
        self.processed = guard.processed;
        self.arrival_order.truncate(guard.arrival_len);
        self.interner.truncate(guard.interner_mark);
        self.rng = guard.rng;
    }

    /// Replace the labelled-pair stores with a snapshot-restored instance
    /// (checkpoint recovery; see [`crate::ingest`]).
    pub(crate) fn restore_store(&mut self, store: PairStore) {
        self.store = store;
    }

    /// Distinct tokens interned so far — a cheap cross-check that a
    /// recovery replay reconstructed the exact ingest state.
    pub(crate) fn interner_len(&self) -> usize {
        self.interner.len()
    }

    /// The system configuration.
    pub fn config(&self) -> &DedupConfig {
        &self.config
    }

    // Read-only views the serving layer snapshots at refresh time (see
    // [`crate::serve`]). Serve never mutates the system — it clones what it
    // needs — so ingest and serve interleave without interference.

    pub(crate) fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    pub(crate) fn interner(&self) -> &TokenInterner {
        &self.interner
    }

    pub(crate) fn corpus(&self) -> &CorpusIndex {
        &self.processed
    }

    pub(crate) fn blocking(&self) -> &BlockingIndex {
        &self.blocking
    }

    pub(crate) fn arrival_order(&self) -> &[ReportId] {
        &self.arrival_order
    }
}

/// Pre-attempt snapshot of [`DedupSystem`]'s batch-mutable state; see
/// [`DedupSystem::begin_batch`].
pub(crate) struct BatchGuard {
    store: PairStore,
    blocking: BlockingIndex,
    processed: CorpusIndex,
    arrival_len: usize,
    interner_mark: usize,
    rng: StdRng,
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_synth::{Dataset, SynthConfig};

    fn system_with_corpus(seed: u64) -> (DedupSystem, Dataset) {
        let ds = Dataset::generate(&SynthConfig::small(250, 15, seed));
        let cluster = Cluster::local(2);
        let config = DedupConfig {
            bootstrap_negatives: 400,
            knn: fastknn::FastKnnConfig {
                theta: 0.0,
                b: 8,
                ..fastknn::FastKnnConfig::default()
            },
            ..DedupConfig::default()
        };
        let sys = DedupSystem::new(cluster, config);
        (sys, ds)
    }

    #[test]
    fn bootstrap_fills_the_stores() {
        let (mut sys, ds) = system_with_corpus(1);
        sys.bootstrap(&ds.reports, &ds.duplicate_pairs).unwrap();
        assert_eq!(sys.report_count(), 250);
        assert_eq!(sys.store().duplicate_count(), 15);
        assert!(sys.store().non_duplicate_count() >= 300);
    }

    #[test]
    fn detects_an_injected_duplicate_of_a_known_report() {
        let (mut sys, ds) = system_with_corpus(2);
        // Bootstrap on everything except the last 5 duplicate partners.
        let held_out: Vec<u64> = ds
            .duplicate_pairs
            .iter()
            .rev()
            .take(5)
            .map(|p| p.hi)
            .collect();
        let base: Vec<AdrReport> = ds
            .reports
            .iter()
            .filter(|r| !held_out.contains(&r.id))
            .cloned()
            .collect();
        let labelled: Vec<PairId> = ds
            .duplicate_pairs
            .iter()
            .filter(|p| !held_out.contains(&p.hi))
            .copied()
            .collect();
        sys.bootstrap(&base, &labelled).unwrap();

        let new_reports: Vec<AdrReport> = ds
            .reports
            .iter()
            .filter(|r| held_out.contains(&r.id))
            .cloned()
            .collect();
        let detections = sys.detect_new(&new_reports).unwrap();
        assert!(!detections.is_empty());
        let truth = ds.duplicate_set();
        let found = detections
            .iter()
            .filter(|d| d.is_duplicate && truth.contains(&d.pair))
            .count();
        // ~30% of injected duplicates are divergent follow-ups that are
        // intentionally near-undetectable; the detectable majority must be
        // found.
        assert!(
            found >= 2,
            "should find the detectable held-out duplicates, found {found}/5"
        );
        // Feedback grew the stores.
        assert!(sys.store().duplicate_count() >= labelled.len() + found);
    }

    #[test]
    fn blocking_mode_checks_fewer_pairs_but_still_detects() {
        let (mut sys_full, ds) = system_with_corpus(2);
        let (mut sys_blocked, _) = system_with_corpus(2);
        sys_blocked.config.use_blocking = true;

        let held_out: Vec<u64> = ds
            .duplicate_pairs
            .iter()
            .rev()
            .take(5)
            .map(|p| p.hi)
            .collect();
        let base: Vec<AdrReport> = ds
            .reports
            .iter()
            .filter(|r| !held_out.contains(&r.id))
            .cloned()
            .collect();
        let labelled: Vec<PairId> = ds
            .duplicate_pairs
            .iter()
            .filter(|p| !held_out.contains(&p.hi))
            .copied()
            .collect();
        let new_reports: Vec<AdrReport> = ds
            .reports
            .iter()
            .filter(|r| held_out.contains(&r.id))
            .cloned()
            .collect();

        sys_full.bootstrap(&base, &labelled).unwrap();
        sys_blocked.bootstrap(&base, &labelled).unwrap();
        let full = sys_full.detect_new(&new_reports).unwrap();
        let blocked = sys_blocked.detect_new(&new_reports).unwrap();
        assert!(
            blocked.len() < full.len() / 2,
            "blocking must prune the candidate stream: {} vs {}",
            blocked.len(),
            full.len()
        );
        let truth = ds.duplicate_set();
        let found = |d: &[Detection]| {
            d.iter()
                .filter(|x| x.is_duplicate && truth.contains(&x.pair))
                .count()
        };
        assert!(
            found(&blocked) >= found(&full).saturating_sub(1),
            "blocking should find (almost) everything the full scan finds: {} vs {}",
            found(&blocked),
            found(&full)
        );
    }

    #[test]
    fn memo_answers_resubmitted_reports_without_changing_results() {
        // Two blocked systems on the same corpus, one with the cross-batch
        // distance memo disabled. A re-submitted batch (unchanged follow-up
        // versions) must be answered from the memo — zero distance-job
        // evaluations — with bit-identical detections.
        let build = |memo_pairs: usize| {
            let ds = Dataset::generate(&SynthConfig::small(250, 15, 5));
            let cluster = Cluster::local(2);
            let config = DedupConfig {
                bootstrap_negatives: 400,
                use_blocking: true,
                memo_pairs,
                knn: fastknn::FastKnnConfig {
                    theta: 0.0,
                    b: 8,
                    ..fastknn::FastKnnConfig::default()
                },
                ..DedupConfig::default()
            };
            (DedupSystem::new(cluster, config), ds)
        };
        let (mut with_memo, ds) = build(1 << 18);
        let (mut no_memo, _) = build(0);
        let base: Vec<AdrReport> = ds.reports.iter().take(240).cloned().collect();
        let labelled: Vec<PairId> = ds
            .duplicate_pairs
            .iter()
            .filter(|p| p.hi < 240)
            .copied()
            .collect();
        with_memo.bootstrap(&base, &labelled).unwrap();
        no_memo.bootstrap(&base, &labelled).unwrap();
        let batch: Vec<AdrReport> = ds.reports.iter().skip(240).cloned().collect();
        let a1 = with_memo.detect_new(&batch).unwrap();
        let b1 = no_memo.detect_new(&batch).unwrap();
        assert_eq!(a1, b1, "an empty memo must be invisible");
        assert!(!a1.is_empty());
        assert!(!with_memo.memo().is_empty(), "fresh rows are memoised");
        assert_eq!(with_memo.memo().hits(), 0);
        assert!(no_memo.memo().is_empty(), "capacity 0 disables the memo");
        // Same reports again, unchanged: identical candidate pair set, all
        // of it already memoised.
        let a2 = with_memo.detect_new(&batch).unwrap();
        let b2 = no_memo.detect_new(&batch).unwrap();
        assert_eq!(a2, b2, "memo hits must be bit-identical to recomputation");
        assert_eq!(
            with_memo.memo().hits(),
            a2.len() as u64,
            "every re-submitted pair is answered from the memo"
        );
    }

    #[test]
    fn rollback_makes_a_failed_attempt_invisible() {
        // Run a batch, roll it back, run it again: the retry must produce
        // exactly what a control system that only ran the batch once gets —
        // the property ingest retry relies on for bit-identical replays.
        let build = || {
            let (mut sys, ds) = system_with_corpus(6);
            sys.config.use_blocking = true;
            let base: Vec<AdrReport> = ds.reports.iter().take(240).cloned().collect();
            let labelled: Vec<PairId> = ds
                .duplicate_pairs
                .iter()
                .filter(|p| p.hi < 240)
                .copied()
                .collect();
            sys.bootstrap(&base, &labelled).unwrap();
            let batch: Vec<AdrReport> = ds.reports.iter().skip(240).cloned().collect();
            (sys, batch)
        };
        let (mut sys, batch) = build();
        let (mut control, control_batch) = build();

        let guard = sys.begin_batch();
        let first = sys.detect_new(&batch).unwrap();
        sys.rollback_batch(guard);
        assert_eq!(sys.report_count(), 240, "arrival order rolled back");
        let retry = sys.detect_new(&batch).unwrap();
        let once = control.detect_new(&control_batch).unwrap();
        assert_eq!(retry, first, "retry reproduces the rolled-back attempt");
        assert_eq!(retry, once, "retry matches a clean single run");
        assert_eq!(sys.interner_len(), control.interner_len());
        assert_eq!(
            sys.store().snapshot(),
            control.store().snapshot(),
            "stores (incl. reservoir RNG state) must match bit-for-bit"
        );
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (mut sys, ds) = system_with_corpus(3);
        sys.bootstrap(&ds.reports, &ds.duplicate_pairs).unwrap();
        assert!(sys.detect_new(&[]).unwrap().is_empty());
    }

    #[test]
    fn detections_are_sorted_duplicates_first() {
        let (mut sys, ds) = system_with_corpus(4);
        let base: Vec<AdrReport> = ds.reports.iter().take(240).cloned().collect();
        let labelled: Vec<PairId> = ds
            .duplicate_pairs
            .iter()
            .filter(|p| p.hi < 240)
            .copied()
            .collect();
        sys.bootstrap(&base, &labelled).unwrap();
        let new_reports: Vec<AdrReport> = ds.reports.iter().skip(240).cloned().collect();
        let detections = sys.detect_new(&new_reports).unwrap();
        let first_non_dup = detections.iter().position(|d| !d.is_duplicate);
        if let Some(pos) = first_non_dup {
            assert!(
                detections[pos..].iter().all(|d| !d.is_duplicate),
                "non-duplicates must come after duplicates"
            );
        }
    }
}
