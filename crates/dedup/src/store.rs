//! The labelled-pair databases of Fig. 1.
//!
//! "The duplicate report pair database stores all known duplicates while the
//! non-duplicate report pair database only keeps a subset of known
//! non-duplicates" — the imbalance-driven asymmetry that shapes the whole
//! system. Newly classified pairs feed back in (the dashed line of Fig. 1).

use adr_model::{DistVec, PairId, ReportId};
use fastknn::LabeledPair;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Bounded labelled-pair store with feedback. Vectors are fixed-arity
/// [`DistVec`]s, so entries are flat `(PairId, [f64; 8])` tuples — no
/// per-pair heap allocation.
///
/// Memory is proportional to *retained* pairs, not offered pairs: the
/// Fig. 1 feedback loop offers pairs forever, so any per-offer bookkeeping
/// (an unbounded "seen" set, say) would eventually dwarf the bounded
/// negative reservoir it guards. Membership is therefore tracked only for
/// duplicates (kept forever anyway) and for the currently retained
/// negatives; a negative evicted from the reservoir is forgotten entirely.
/// The detection pipeline generates each [`PairId`] at most once, so
/// forgetting evicted negatives cannot change its output.
#[derive(Debug, Clone)]
pub struct PairStore {
    duplicates: Vec<(PairId, DistVec)>,
    non_duplicates: Vec<(PairId, DistVec)>,
    duplicate_ids: HashSet<PairId>,
    /// Per-*report* duplicate membership: how many retained duplicate pairs
    /// each report participates in. Duplicates are kept forever, so this
    /// index only ever grows in lockstep with `duplicates` — it adds no
    /// per-offer state — and it gives the serving layer an O(1) "is this
    /// report part of a known duplicate pair?" answer without scanning the
    /// pair list.
    duplicate_members: HashMap<ReportId, u32>,
    /// Ids of the currently retained negatives — always in lockstep with
    /// `non_duplicates`, so at most `max_non_duplicates` entries.
    negative_ids: HashSet<PairId>,
    /// Maximum non-duplicate pairs retained.
    pub max_non_duplicates: usize,
    /// Seed the reservoir RNG was created from (kept for snapshots: the
    /// RNG state is `seed` advanced by `overflow_offers` draws).
    seed: u64,
    rng: StdRng,
    /// Negatives offered after the reservoir filled.
    overflow_offers: u64,
}

impl PairStore {
    /// Create a store keeping at most `max_non_duplicates` negatives.
    pub fn new(max_non_duplicates: usize, seed: u64) -> Self {
        PairStore {
            duplicates: Vec::new(),
            non_duplicates: Vec::new(),
            duplicate_ids: HashSet::new(),
            duplicate_members: HashMap::new(),
            negative_ids: HashSet::new(),
            max_non_duplicates,
            seed,
            rng: StdRng::seed_from_u64(seed),
            overflow_offers: 0,
        }
    }

    /// Number of stored duplicate pairs.
    pub fn duplicate_count(&self) -> usize {
        self.duplicates.len()
    }

    /// Number of stored non-duplicate pairs.
    pub fn non_duplicate_count(&self) -> usize {
        self.non_duplicates.len()
    }

    /// Number of pair ids the store currently tracks for membership —
    /// bounded by `duplicate_count() + max_non_duplicates` no matter how
    /// many pairs the feedback loop has offered.
    pub fn tracked_id_count(&self) -> usize {
        self.duplicate_ids.len() + self.negative_ids.len()
    }

    /// Add a labelled pair. Duplicates are always kept; non-duplicates are
    /// reservoir-sampled once the store is full, keeping the retained set a
    /// uniform sample of everything offered. Re-offers of a pair the store
    /// still holds are ignored (a negative already evicted from the
    /// reservoir is no longer remembered and competes as a fresh offer).
    pub fn add(&mut self, id: PairId, vector: DistVec, is_duplicate: bool) {
        if self.contains(&id) {
            return;
        }
        if is_duplicate {
            self.duplicates.push((id, vector));
            self.duplicate_ids.insert(id);
            *self.duplicate_members.entry(id.lo).or_insert(0) += 1;
            *self.duplicate_members.entry(id.hi).or_insert(0) += 1;
            return;
        }
        if self.non_duplicates.len() < self.max_non_duplicates {
            self.non_duplicates.push((id, vector));
            self.negative_ids.insert(id);
        } else if self.max_non_duplicates > 0 {
            // Reservoir sampling over the stream of offered negatives.
            self.overflow_offers += 1;
            let offered = self.max_non_duplicates as u64 + self.overflow_offers;
            let slot = self.rng.gen_range(0..offered);
            if (slot as usize) < self.max_non_duplicates {
                let evicted = self.non_duplicates[slot as usize].0;
                self.negative_ids.remove(&evicted);
                self.negative_ids.insert(id);
                self.non_duplicates[slot as usize] = (id, vector);
            }
        }
    }

    /// Materialise the training set for the classifier: all duplicates as
    /// positives, the retained negatives as negatives.
    pub fn training_pairs(&self) -> Vec<LabeledPair> {
        let mut out = Vec::with_capacity(self.duplicates.len() + self.non_duplicates.len());
        let mut id = 0u64;
        for (_, v) in &self.duplicates {
            out.push(LabeledPair::new(id, *v, true));
            id += 1;
        }
        for (_, v) in &self.non_duplicates {
            out.push(LabeledPair::new(id, *v, false));
            id += 1;
        }
        out
    }

    /// Is this pair currently stored (under either label)?
    pub fn contains(&self, id: &PairId) -> bool {
        self.duplicate_ids.contains(id) || self.negative_ids.contains(id)
    }

    /// Is this *report* a member of any stored duplicate pair? O(1): the
    /// per-report index is maintained on every duplicate insert, so a
    /// serving lookup never scans the pair list.
    pub fn is_duplicate_member(&self, id: ReportId) -> bool {
        self.duplicate_members.contains_key(&id)
    }

    /// Number of stored duplicate pairs this report participates in (0 for
    /// a report never seen in a duplicate pair). O(1).
    pub fn duplicate_memberships(&self, id: ReportId) -> u32 {
        self.duplicate_members.get(&id).copied().unwrap_or(0)
    }

    /// Distinct reports that appear in at least one stored duplicate pair.
    pub fn duplicate_member_count(&self) -> usize {
        self.duplicate_members.len()
    }

    /// Stored duplicate pair ids, in insertion order.
    pub fn duplicate_pairs(&self) -> impl Iterator<Item = PairId> + '_ {
        self.duplicates.iter().map(|(id, _)| *id)
    }

    /// Current snapshot schema version (see [`PairStore::snapshot`]).
    pub const SNAPSHOT_VERSION: u32 = 1;

    /// Serialise the full store state to a schema-versioned text snapshot.
    ///
    /// The format is line-oriented and exact: distance components are
    /// written as `f64::to_bits` hex so a round trip is bit-identical, and
    /// the RNG is captured as `(seed, overflow_offers)` — the vendored
    /// generator consumes exactly one draw per overflow offer, so
    /// [`PairStore::restore`] reproduces its state by replaying that many
    /// draws. A restored store therefore continues the reservoir stream
    /// exactly where the original would have.
    pub fn snapshot(&self) -> String {
        let mut out =
            String::with_capacity(64 + 32 * (self.duplicates.len() + self.non_duplicates.len()));
        out.push_str(&format!("pairstore v{}\n", Self::SNAPSHOT_VERSION));
        out.push_str(&format!("max_non_duplicates {}\n", self.max_non_duplicates));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("overflow_offers {}\n", self.overflow_offers));
        for (section, pairs) in [
            ("duplicates", &self.duplicates),
            ("non_duplicates", &self.non_duplicates),
        ] {
            out.push_str(&format!("{section} {}\n", pairs.len()));
            for (id, v) in pairs.iter() {
                out.push_str(&format!("{} {}", id.lo, id.hi));
                for x in v.iter() {
                    out.push_str(&format!(" {:016x}", x.to_bits()));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Largest `overflow_offers` a snapshot may claim. Restore replays one
    /// RNG draw per overflow offer, so an unchecked (malformed or hostile)
    /// value like `u64::MAX` would spin for centuries; any legitimate
    /// snapshot stays far below this.
    pub const MAX_OVERFLOW_OFFERS: u64 = 1 << 32;

    /// Rebuild a store from a [`PairStore::snapshot`]. Returns a
    /// descriptive error for unknown versions or malformed input — never
    /// panics and never loops unboundedly, however corrupt the input (the
    /// property checkpoint recovery relies on to *detect* a torn write and
    /// fall back, rather than crash on it).
    pub fn restore(snapshot: &str) -> Result<Self, String> {
        let mut lines = snapshot.lines();
        let header = lines.next().ok_or("empty snapshot")?;
        let version: u32 = header
            .strip_prefix("pairstore v")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad snapshot header: {header:?}"))?;
        if version != Self::SNAPSHOT_VERSION {
            return Err(format!(
                "unsupported snapshot version {version} (supported: {})",
                Self::SNAPSHOT_VERSION
            ));
        }
        fn field<'a>(lines: &mut std::str::Lines<'a>, name: &str) -> Result<&'a str, String> {
            let line = lines.next().ok_or_else(|| format!("missing {name}"))?;
            line.strip_prefix(name)
                .map(str::trim)
                .ok_or_else(|| format!("expected {name}, got {line:?}"))
        }
        let parse_u64 = |s: &str, name: &str| -> Result<u64, String> {
            s.parse().map_err(|_| format!("bad {name}: {s:?}"))
        };
        let max_non_duplicates = parse_u64(
            field(&mut lines, "max_non_duplicates")?,
            "max_non_duplicates",
        )? as usize;
        let seed = parse_u64(field(&mut lines, "seed")?, "seed")?;
        let overflow_offers = parse_u64(field(&mut lines, "overflow_offers")?, "overflow_offers")?;
        if overflow_offers > Self::MAX_OVERFLOW_OFFERS {
            return Err(format!(
                "overflow_offers {overflow_offers} exceeds sanity cap {}",
                Self::MAX_OVERFLOW_OFFERS
            ));
        }
        let mut store = PairStore::new(max_non_duplicates, seed);
        store.overflow_offers = overflow_offers;
        for _ in 0..overflow_offers {
            let _ = store.rng.next_u64();
        }
        // No section can legitimately hold more pairs than the snapshot has
        // lines; rejecting overflowed counts up front keeps a corrupt count
        // from driving a huge pre-allocation or a line-by-line crawl.
        let line_budget = snapshot.len() / 4;
        for section in ["duplicates", "non_duplicates"] {
            let count = parse_u64(field(&mut lines, section)?, section)? as usize;
            if count > line_budget + 1 {
                return Err(format!("{section} count {count} exceeds snapshot size"));
            }
            if section == "non_duplicates" && count > max_non_duplicates {
                return Err(format!(
                    "non_duplicates count {count} exceeds capacity {max_non_duplicates}"
                ));
            }
            for _ in 0..count {
                let line = lines.next().ok_or_else(|| format!("truncated {section}"))?;
                let mut parts = line.split_ascii_whitespace();
                let lo = parse_u64(parts.next().ok_or("missing lo")?, "lo")?;
                let hi = parse_u64(parts.next().ok_or("missing hi")?, "hi")?;
                let mut v: DistVec = [0.0; adr_model::DETECTION_DIMS];
                for (d, slot) in v.iter_mut().enumerate() {
                    let word = parts
                        .next()
                        .ok_or_else(|| format!("missing component {d}"))?;
                    let bits = u64::from_str_radix(word, 16)
                        .map_err(|_| format!("bad component {d}: {word:?}"))?;
                    *slot = f64::from_bits(bits);
                }
                if parts.next().is_some() {
                    return Err(format!("trailing data on pair line: {line:?}"));
                }
                let id = PairId { lo, hi };
                if section == "duplicates" {
                    store.duplicates.push((id, v));
                    store.duplicate_ids.insert(id);
                    // The member index is derived state: rebuilt here rather
                    // than serialised, so the snapshot format is unchanged.
                    *store.duplicate_members.entry(id.lo).or_insert(0) += 1;
                    *store.duplicate_members.entry(id.hi).or_insert(0) += 1;
                } else {
                    store.non_duplicates.push((id, v));
                    store.negative_ids.insert(id);
                }
            }
        }
        if lines.next().is_some() {
            return Err("trailing data after snapshot".into());
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(a: u64, b: u64) -> PairId {
        PairId::new(a, b)
    }

    fn dv(x: f64) -> DistVec {
        [x; adr_model::DETECTION_DIMS]
    }

    #[test]
    fn duplicates_are_never_dropped() {
        let mut store = PairStore::new(5, 1);
        for i in 0..100 {
            store.add(pid(i, i + 1000), dv(0.1), true);
        }
        assert_eq!(store.duplicate_count(), 100);
    }

    #[test]
    fn negatives_are_bounded() {
        let mut store = PairStore::new(10, 1);
        for i in 0..1000 {
            store.add(pid(i, i + 10_000), dv(0.9), false);
        }
        assert_eq!(store.non_duplicate_count(), 10);
    }

    #[test]
    fn re_offering_a_pair_is_ignored() {
        let mut store = PairStore::new(10, 1);
        store.add(pid(1, 2), dv(0.5), false);
        store.add(pid(2, 1), dv(0.5), true); // same canonical pair
        assert_eq!(store.duplicate_count(), 0);
        assert_eq!(store.non_duplicate_count(), 1);
        assert!(store.contains(&pid(1, 2)));
    }

    #[test]
    fn training_pairs_have_correct_labels_and_count() {
        let mut store = PairStore::new(3, 1);
        store.add(pid(1, 2), dv(0.1), true);
        store.add(pid(3, 4), dv(0.9), false);
        store.add(pid(5, 6), dv(0.8), false);
        let train = store.training_pairs();
        assert_eq!(train.len(), 3);
        assert_eq!(train.iter().filter(|p| p.positive).count(), 1);
        // ids are unique
        let ids: HashSet<u64> = train.iter().map(|p| p.id).collect();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn reservoir_keeps_a_mix_of_old_and_new() {
        let mut store = PairStore::new(50, 42);
        for i in 0..5000u64 {
            store.add(pid(i, i + 100_000), dv(i as f64), false);
        }
        let early = store
            .non_duplicates
            .iter()
            .filter(|(_, v)| v[0] < 1000.0)
            .count();
        let late = store
            .non_duplicates
            .iter()
            .filter(|(_, v)| v[0] >= 4000.0)
            .count();
        assert!(early > 0, "reservoir must retain some early negatives");
        assert!(late > 0, "reservoir must admit some late negatives");
    }

    #[test]
    fn zero_capacity_store_keeps_no_negatives() {
        let mut store = PairStore::new(0, 1);
        store.add(pid(1, 2), dv(0.5), false);
        assert_eq!(store.non_duplicate_count(), 0);
    }

    #[test]
    fn long_stream_memory_stays_proportional_to_retained_pairs() {
        // Fig. 1's feedback loop runs forever; the store must not keep
        // per-offer state. 100k offered negatives against a 50-slot
        // reservoir and 20 duplicates: tracked membership must stay at
        // retained size, and every retained negative must still answer
        // `contains` (the invariant the dedup system's re-offer guard uses).
        let cap = 50;
        let mut store = PairStore::new(cap, 7);
        for i in 0..20u64 {
            store.add(pid(i, i + 1_000_000), dv(0.05), true);
        }
        for i in 0..100_000u64 {
            store.add(pid(i, i + 2_000_000), dv(0.9), false);
            assert!(
                store.tracked_id_count() <= store.duplicate_count() + cap,
                "tracked ids must never exceed retained pairs (at offer {i})"
            );
        }
        assert_eq!(store.non_duplicate_count(), cap);
        assert_eq!(store.tracked_id_count(), store.duplicate_count() + cap);
        for (id, _) in &store.non_duplicates {
            assert!(store.contains(id), "retained negative must be findable");
        }
        for (id, _) in &store.duplicates {
            assert!(store.contains(id), "duplicates keep membership forever");
        }
        assert!(
            !store.contains(&pid(0, 2_000_000))
                || store
                    .non_duplicates
                    .iter()
                    .any(|(i, _)| *i == pid(0, 2_000_000)),
            "an evicted negative must be forgotten"
        );
    }

    #[test]
    fn duplicate_member_index_stays_in_lockstep_with_the_pair_list() {
        // The O(1) membership index must agree with a scan of the retained
        // duplicate pairs at every step — across duplicate inserts, re-offer
        // dedup, reservoir churn (negatives never touch it), and a snapshot
        // round trip (where it is rebuilt from the pair list).
        fn scan_memberships(store: &PairStore) -> HashMap<ReportId, u32> {
            let mut counts = HashMap::new();
            for id in store.duplicate_pairs() {
                *counts.entry(id.lo).or_insert(0u32) += 1;
                *counts.entry(id.hi).or_insert(0u32) += 1;
            }
            counts
        }
        fn check(store: &PairStore, step: &str) {
            let scanned = scan_memberships(store);
            assert_eq!(
                store.duplicate_member_count(),
                scanned.len(),
                "member count diverged from pair-list scan ({step})"
            );
            for (&report, &count) in &scanned {
                assert!(store.is_duplicate_member(report), "{step}: {report}");
                assert_eq!(
                    store.duplicate_memberships(report),
                    count,
                    "{step}: report {report}"
                );
            }
        }

        let mut store = PairStore::new(8, 21);
        // Duplicates sharing reports: 0 appears in three pairs, 1 in two.
        for (a, b) in [(0, 1), (0, 2), (0, 3), (1, 4), (5, 6)] {
            store.add(pid(a, b), dv(0.1), true);
            check(&store, "after duplicate insert");
        }
        assert_eq!(store.duplicate_memberships(0), 3);
        assert_eq!(store.duplicate_memberships(1), 2);
        assert_eq!(store.duplicate_memberships(6), 1);
        assert!(!store.is_duplicate_member(7));
        assert_eq!(store.duplicate_memberships(7), 0);
        // Re-offering a stored pair is ignored and must not double-count.
        store.add(pid(1, 0), dv(0.9), true);
        assert_eq!(store.duplicate_memberships(0), 3);
        check(&store, "after re-offer");
        // Reservoir churn on negatives never touches duplicate membership,
        // even when a negative pair reuses a duplicate's report id.
        for i in 0..500u64 {
            store.add(pid(i % 7, i + 10_000), dv(0.8), false);
        }
        check(&store, "after reservoir churn");
        // Snapshot round trip rebuilds the derived index exactly.
        let restored = PairStore::restore(&store.snapshot()).expect("restore");
        check(&restored, "after restore");
        assert_eq!(restored.duplicate_memberships(0), 3);
        assert_eq!(
            restored.duplicate_member_count(),
            store.duplicate_member_count()
        );
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical_and_continues_the_stream() {
        let mut store = PairStore::new(8, 99);
        for i in 0..10u64 {
            store.add(pid(i, i + 1_000), dv(0.1 * i as f64), true);
        }
        // Overflow the reservoir so the RNG state matters.
        for i in 0..200u64 {
            store.add(pid(i, i + 10_000), dv(0.3 + i as f64), false);
        }
        let snap = store.snapshot();
        assert!(snap.starts_with("pairstore v1\n"), "versioned header");
        let mut restored = PairStore::restore(&snap).expect("restore");
        // Bit-identical state: a second snapshot reproduces the first.
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.duplicate_count(), store.duplicate_count());
        assert_eq!(restored.non_duplicate_count(), store.non_duplicate_count());
        assert_eq!(restored.non_duplicates, store.non_duplicates);
        for (id, _) in &store.non_duplicates {
            assert!(restored.contains(id));
        }
        // The restored RNG continues exactly where the original left off:
        // feeding both stores the same further offers keeps them identical.
        for i in 200..400u64 {
            let p = pid(i, i + 10_000);
            store.add(p, dv(i as f64), false);
            restored.add(p, dv(i as f64), false);
        }
        assert_eq!(restored.non_duplicates, store.non_duplicates);
        assert_eq!(restored.snapshot(), store.snapshot());
    }

    #[test]
    fn snapshot_preserves_non_finite_and_negative_components() {
        let mut store = PairStore::new(4, 1);
        let mut v = dv(0.0);
        v[0] = -0.0;
        v[1] = f64::INFINITY;
        v[2] = 1.0e-300;
        store.add(pid(1, 2), v, false);
        let restored = PairStore::restore(&store.snapshot()).unwrap();
        let (_, rv) = restored.non_duplicates[0];
        assert_eq!(rv[0].to_bits(), (-0.0f64).to_bits(), "-0.0 survives");
        assert_eq!(rv[1], f64::INFINITY);
        assert_eq!(rv[2], 1.0e-300);
    }

    #[test]
    fn restore_rejects_bad_snapshots() {
        assert!(PairStore::restore("").is_err());
        assert!(
            PairStore::restore("pairstore v99\n").is_err(),
            "unknown version"
        );
        let good = PairStore::new(4, 1).snapshot();
        let truncated = &good[..good.len() - 1];
        // Dropping the final newline still parses (lines() semantics), but
        // cutting a whole section must not.
        let _ = PairStore::restore(truncated);
        let mut store = PairStore::new(4, 1);
        store.add(pid(1, 2), dv(0.5), true);
        let snap = store.snapshot();
        let cut = snap
            .rsplit_once('\n')
            .unwrap()
            .0
            .rsplit_once('\n')
            .unwrap()
            .0;
        assert!(PairStore::restore(cut).is_err(), "missing pair line");
        assert!(
            PairStore::restore(&format!("{snap}extra\n")).is_err(),
            "trailing garbage"
        );
    }

    #[test]
    fn restore_rejects_hostile_counts_without_hanging() {
        // A malformed overflow_offers must not replay u64::MAX RNG draws.
        let hostile = format!(
            "pairstore v1\nmax_non_duplicates 4\nseed 1\noverflow_offers {}\n\
             duplicates 0\nnon_duplicates 0\n",
            u64::MAX
        );
        let err = PairStore::restore(&hostile).unwrap_err();
        assert!(err.contains("sanity cap"), "{err}");
        // A section count far beyond the snapshot's own size is rejected
        // up front instead of crawling line by line.
        let bloated = format!(
            "pairstore v1\nmax_non_duplicates 4\nseed 1\noverflow_offers 0\n\
             duplicates {}\n",
            u64::MAX
        );
        let err = PairStore::restore(&bloated).unwrap_err();
        assert!(err.contains("exceeds snapshot size"), "{err}");
        // More retained negatives than the stated capacity is inconsistent.
        let over_capacity = "pairstore v1\nmax_non_duplicates 1\nseed 1\noverflow_offers 0\n\
             duplicates 0\nnon_duplicates 3\n";
        let err = PairStore::restore(over_capacity).unwrap_err();
        assert!(err.contains("exceeds capacity"), "{err}");
    }

    mod restore_fuzz {
        use super::*;
        use proptest::prelude::*;

        fn valid_snapshot(dups: u64, negs: u64, seed: u64) -> String {
            let mut store = PairStore::new(8, seed);
            for i in 0..dups {
                store.add(pid(i, i + 1_000), dv(0.1 * i as f64), true);
            }
            for i in 0..negs {
                store.add(pid(i, i + 10_000), dv(0.5 + i as f64), false);
            }
            store.snapshot()
        }

        proptest! {
            #[test]
            fn truncation_at_any_byte_never_panics(
                dups in 0u64..6, negs in 0u64..40, seed in 0u64..50, frac in 0.0f64..1.0
            ) {
                let snap = valid_snapshot(dups, negs, seed);
                let mut cut = (snap.len() as f64 * frac) as usize;
                while !snap.is_char_boundary(cut) {
                    cut -= 1;
                }
                // Must return, Ok or Err — never panic, never hang.
                let _ = PairStore::restore(&snap[..cut]);
            }

            #[test]
            fn byte_scrambling_never_panics(
                negs in 0u64..40, seed in 0u64..50,
                pos in 0usize..4096, byte in 0u8..128
            ) {
                let snap = valid_snapshot(3, negs, seed);
                let mut bytes = snap.into_bytes();
                let pos = pos % bytes.len();
                bytes[pos] = byte;
                if let Ok(s) = String::from_utf8(bytes) {
                    let _ = PairStore::restore(&s);
                }
            }

            #[test]
            fn trailing_garbage_is_always_rejected(
                negs in 0u64..40, seed in 0u64..50, garbage in "[ -~]{1,40}"
            ) {
                let snap = valid_snapshot(2, negs, seed);
                prop_assert!(PairStore::restore(&format!("{snap}{garbage}\n")).is_err());
            }

            #[test]
            fn line_shuffling_never_panics_and_full_round_trip_holds(
                dups in 0u64..6, negs in 0u64..40, seed in 0u64..50,
                swap_a in 0usize..64, swap_b in 0usize..64
            ) {
                let snap = valid_snapshot(dups, negs, seed);
                let restored = PairStore::restore(&snap).unwrap();
                prop_assert_eq!(restored.snapshot(), snap.clone());
                let mut lines: Vec<&str> = snap.lines().collect();
                let (a, b) = (swap_a % lines.len(), swap_b % lines.len());
                lines.swap(a, b);
                let shuffled = format!("{}\n", lines.join("\n"));
                // Swapping two distinct structural lines must not panic;
                // swapping a line with itself must still round-trip.
                let result = PairStore::restore(&shuffled);
                if a == b {
                    prop_assert!(result.is_ok());
                }
            }
        }
    }

    #[test]
    fn reservoir_retention_is_roughly_uniform_over_the_stream() {
        // Frequency sanity check: offer 200 negatives (cap 20) across many
        // seeds and count how often each decile of the offer stream is
        // retained. Uniform retention means ~10% each; allow a wide band
        // since this is a statistical smoke test, not a distribution test.
        let offers = 200u64;
        let cap = 20;
        let seeds = 300u64;
        let mut decile_counts = [0u64; 10];
        for seed in 0..seeds {
            let mut store = PairStore::new(cap, seed);
            for i in 0..offers {
                store.add(pid(i, i + 10_000), dv(i as f64), false);
            }
            for (id, _) in &store.non_duplicates {
                let offer_index = id.lo;
                decile_counts[(offer_index * 10 / offers) as usize] += 1;
            }
        }
        let expected = (seeds * cap as u64) as f64 / 10.0; // 600 per decile
        for (d, &count) in decile_counts.iter().enumerate() {
            assert!(
                (count as f64) > expected * 0.75 && (count as f64) < expected * 1.25,
                "decile {d} retention {count} strays too far from uniform {expected}: {decile_counts:?}"
            );
        }
    }
}
