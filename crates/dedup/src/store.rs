//! The labelled-pair databases of Fig. 1.
//!
//! "The duplicate report pair database stores all known duplicates while the
//! non-duplicate report pair database only keeps a subset of known
//! non-duplicates" — the imbalance-driven asymmetry that shapes the whole
//! system. Newly classified pairs feed back in (the dashed line of Fig. 1).

use adr_model::{DistVec, PairId};
use fastknn::LabeledPair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Bounded labelled-pair store with feedback. Vectors are fixed-arity
/// [`DistVec`]s, so entries are flat `(PairId, [f64; 8])` tuples — no
/// per-pair heap allocation.
///
/// Memory is proportional to *retained* pairs, not offered pairs: the
/// Fig. 1 feedback loop offers pairs forever, so any per-offer bookkeeping
/// (an unbounded "seen" set, say) would eventually dwarf the bounded
/// negative reservoir it guards. Membership is therefore tracked only for
/// duplicates (kept forever anyway) and for the currently retained
/// negatives; a negative evicted from the reservoir is forgotten entirely.
/// The detection pipeline generates each [`PairId`] at most once, so
/// forgetting evicted negatives cannot change its output.
#[derive(Debug, Clone)]
pub struct PairStore {
    duplicates: Vec<(PairId, DistVec)>,
    non_duplicates: Vec<(PairId, DistVec)>,
    duplicate_ids: HashSet<PairId>,
    /// Ids of the currently retained negatives — always in lockstep with
    /// `non_duplicates`, so at most `max_non_duplicates` entries.
    negative_ids: HashSet<PairId>,
    /// Maximum non-duplicate pairs retained.
    pub max_non_duplicates: usize,
    rng: StdRng,
    /// Negatives offered after the reservoir filled.
    overflow_offers: u64,
}

impl PairStore {
    /// Create a store keeping at most `max_non_duplicates` negatives.
    pub fn new(max_non_duplicates: usize, seed: u64) -> Self {
        PairStore {
            duplicates: Vec::new(),
            non_duplicates: Vec::new(),
            duplicate_ids: HashSet::new(),
            negative_ids: HashSet::new(),
            max_non_duplicates,
            rng: StdRng::seed_from_u64(seed),
            overflow_offers: 0,
        }
    }

    /// Number of stored duplicate pairs.
    pub fn duplicate_count(&self) -> usize {
        self.duplicates.len()
    }

    /// Number of stored non-duplicate pairs.
    pub fn non_duplicate_count(&self) -> usize {
        self.non_duplicates.len()
    }

    /// Number of pair ids the store currently tracks for membership —
    /// bounded by `duplicate_count() + max_non_duplicates` no matter how
    /// many pairs the feedback loop has offered.
    pub fn tracked_id_count(&self) -> usize {
        self.duplicate_ids.len() + self.negative_ids.len()
    }

    /// Add a labelled pair. Duplicates are always kept; non-duplicates are
    /// reservoir-sampled once the store is full, keeping the retained set a
    /// uniform sample of everything offered. Re-offers of a pair the store
    /// still holds are ignored (a negative already evicted from the
    /// reservoir is no longer remembered and competes as a fresh offer).
    pub fn add(&mut self, id: PairId, vector: DistVec, is_duplicate: bool) {
        if self.contains(&id) {
            return;
        }
        if is_duplicate {
            self.duplicates.push((id, vector));
            self.duplicate_ids.insert(id);
            return;
        }
        if self.non_duplicates.len() < self.max_non_duplicates {
            self.non_duplicates.push((id, vector));
            self.negative_ids.insert(id);
        } else if self.max_non_duplicates > 0 {
            // Reservoir sampling over the stream of offered negatives.
            self.overflow_offers += 1;
            let offered = self.max_non_duplicates as u64 + self.overflow_offers;
            let slot = self.rng.gen_range(0..offered);
            if (slot as usize) < self.max_non_duplicates {
                let evicted = self.non_duplicates[slot as usize].0;
                self.negative_ids.remove(&evicted);
                self.negative_ids.insert(id);
                self.non_duplicates[slot as usize] = (id, vector);
            }
        }
    }

    /// Materialise the training set for the classifier: all duplicates as
    /// positives, the retained negatives as negatives.
    pub fn training_pairs(&self) -> Vec<LabeledPair> {
        let mut out = Vec::with_capacity(self.duplicates.len() + self.non_duplicates.len());
        let mut id = 0u64;
        for (_, v) in &self.duplicates {
            out.push(LabeledPair::new(id, *v, true));
            id += 1;
        }
        for (_, v) in &self.non_duplicates {
            out.push(LabeledPair::new(id, *v, false));
            id += 1;
        }
        out
    }

    /// Is this pair currently stored (under either label)?
    pub fn contains(&self, id: &PairId) -> bool {
        self.duplicate_ids.contains(id) || self.negative_ids.contains(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(a: u64, b: u64) -> PairId {
        PairId::new(a, b)
    }

    fn dv(x: f64) -> DistVec {
        [x; adr_model::DETECTION_DIMS]
    }

    #[test]
    fn duplicates_are_never_dropped() {
        let mut store = PairStore::new(5, 1);
        for i in 0..100 {
            store.add(pid(i, i + 1000), dv(0.1), true);
        }
        assert_eq!(store.duplicate_count(), 100);
    }

    #[test]
    fn negatives_are_bounded() {
        let mut store = PairStore::new(10, 1);
        for i in 0..1000 {
            store.add(pid(i, i + 10_000), dv(0.9), false);
        }
        assert_eq!(store.non_duplicate_count(), 10);
    }

    #[test]
    fn re_offering_a_pair_is_ignored() {
        let mut store = PairStore::new(10, 1);
        store.add(pid(1, 2), dv(0.5), false);
        store.add(pid(2, 1), dv(0.5), true); // same canonical pair
        assert_eq!(store.duplicate_count(), 0);
        assert_eq!(store.non_duplicate_count(), 1);
        assert!(store.contains(&pid(1, 2)));
    }

    #[test]
    fn training_pairs_have_correct_labels_and_count() {
        let mut store = PairStore::new(3, 1);
        store.add(pid(1, 2), dv(0.1), true);
        store.add(pid(3, 4), dv(0.9), false);
        store.add(pid(5, 6), dv(0.8), false);
        let train = store.training_pairs();
        assert_eq!(train.len(), 3);
        assert_eq!(train.iter().filter(|p| p.positive).count(), 1);
        // ids are unique
        let ids: HashSet<u64> = train.iter().map(|p| p.id).collect();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn reservoir_keeps_a_mix_of_old_and_new() {
        let mut store = PairStore::new(50, 42);
        for i in 0..5000u64 {
            store.add(pid(i, i + 100_000), dv(i as f64), false);
        }
        let early = store
            .non_duplicates
            .iter()
            .filter(|(_, v)| v[0] < 1000.0)
            .count();
        let late = store
            .non_duplicates
            .iter()
            .filter(|(_, v)| v[0] >= 4000.0)
            .count();
        assert!(early > 0, "reservoir must retain some early negatives");
        assert!(late > 0, "reservoir must admit some late negatives");
    }

    #[test]
    fn zero_capacity_store_keeps_no_negatives() {
        let mut store = PairStore::new(0, 1);
        store.add(pid(1, 2), dv(0.5), false);
        assert_eq!(store.non_duplicate_count(), 0);
    }

    #[test]
    fn long_stream_memory_stays_proportional_to_retained_pairs() {
        // Fig. 1's feedback loop runs forever; the store must not keep
        // per-offer state. 100k offered negatives against a 50-slot
        // reservoir and 20 duplicates: tracked membership must stay at
        // retained size, and every retained negative must still answer
        // `contains` (the invariant the dedup system's re-offer guard uses).
        let cap = 50;
        let mut store = PairStore::new(cap, 7);
        for i in 0..20u64 {
            store.add(pid(i, i + 1_000_000), dv(0.05), true);
        }
        for i in 0..100_000u64 {
            store.add(pid(i, i + 2_000_000), dv(0.9), false);
            assert!(
                store.tracked_id_count() <= store.duplicate_count() + cap,
                "tracked ids must never exceed retained pairs (at offer {i})"
            );
        }
        assert_eq!(store.non_duplicate_count(), cap);
        assert_eq!(store.tracked_id_count(), store.duplicate_count() + cap);
        for (id, _) in &store.non_duplicates {
            assert!(store.contains(id), "retained negative must be findable");
        }
        for (id, _) in &store.duplicates {
            assert!(store.contains(id), "duplicates keep membership forever");
        }
        assert!(
            !store.contains(&pid(0, 2_000_000))
                || store
                    .non_duplicates
                    .iter()
                    .any(|(i, _)| *i == pid(0, 2_000_000)),
            "an evicted negative must be forgotten"
        );
    }

    #[test]
    fn reservoir_retention_is_roughly_uniform_over_the_stream() {
        // Frequency sanity check: offer 200 negatives (cap 20) across many
        // seeds and count how often each decile of the offer stream is
        // retained. Uniform retention means ~10% each; allow a wide band
        // since this is a statistical smoke test, not a distribution test.
        let offers = 200u64;
        let cap = 20;
        let seeds = 300u64;
        let mut decile_counts = [0u64; 10];
        for seed in 0..seeds {
            let mut store = PairStore::new(cap, seed);
            for i in 0..offers {
                store.add(pid(i, i + 10_000), dv(i as f64), false);
            }
            for (id, _) in &store.non_duplicates {
                let offer_index = id.lo;
                decile_counts[(offer_index * 10 / offers) as usize] += 1;
            }
        }
        let expected = (seeds * cap as u64) as f64 / 10.0; // 600 per decile
        for (d, &count) in decile_counts.iter().enumerate() {
            assert!(
                (count as f64) > expected * 0.75 && (count as f64) < expected * 1.25,
                "decile {d} retention {count} strays too far from uniform {expected}: {decile_counts:?}"
            );
        }
    }
}
