//! The labelled-pair databases of Fig. 1.
//!
//! "The duplicate report pair database stores all known duplicates while the
//! non-duplicate report pair database only keeps a subset of known
//! non-duplicates" — the imbalance-driven asymmetry that shapes the whole
//! system. Newly classified pairs feed back in (the dashed line of Fig. 1).

use adr_model::{DistVec, PairId};
use fastknn::LabeledPair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Bounded labelled-pair store with feedback. Vectors are fixed-arity
/// [`DistVec`]s, so entries are flat `(PairId, [f64; 8])` tuples — no
/// per-pair heap allocation.
#[derive(Debug, Clone)]
pub struct PairStore {
    duplicates: Vec<(PairId, DistVec)>,
    non_duplicates: Vec<(PairId, DistVec)>,
    seen: HashSet<PairId>,
    /// Maximum non-duplicate pairs retained.
    pub max_non_duplicates: usize,
    rng: StdRng,
    next_id: u64,
}

impl PairStore {
    /// Create a store keeping at most `max_non_duplicates` negatives.
    pub fn new(max_non_duplicates: usize, seed: u64) -> Self {
        PairStore {
            duplicates: Vec::new(),
            non_duplicates: Vec::new(),
            seen: HashSet::new(),
            max_non_duplicates,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// Number of stored duplicate pairs.
    pub fn duplicate_count(&self) -> usize {
        self.duplicates.len()
    }

    /// Number of stored non-duplicate pairs.
    pub fn non_duplicate_count(&self) -> usize {
        self.non_duplicates.len()
    }

    /// Add a labelled pair. Duplicates are always kept; non-duplicates are
    /// reservoir-sampled once the store is full, keeping the retained set a
    /// uniform sample of everything offered. Re-offers of a known pair are
    /// ignored.
    pub fn add(&mut self, id: PairId, vector: DistVec, is_duplicate: bool) {
        if !self.seen.insert(id) {
            return;
        }
        if is_duplicate {
            self.duplicates.push((id, vector));
            return;
        }
        if self.non_duplicates.len() < self.max_non_duplicates {
            self.non_duplicates.push((id, vector));
        } else if self.max_non_duplicates > 0 {
            // Reservoir sampling over the stream of offered negatives.
            self.next_id += 1;
            let offered = self.max_non_duplicates as u64 + self.next_id;
            let slot = self.rng.gen_range(0..offered);
            if (slot as usize) < self.max_non_duplicates {
                self.non_duplicates[slot as usize] = (id, vector);
            }
        }
    }

    /// Materialise the training set for the classifier: all duplicates as
    /// positives, the retained negatives as negatives.
    pub fn training_pairs(&self) -> Vec<LabeledPair> {
        let mut out = Vec::with_capacity(self.duplicates.len() + self.non_duplicates.len());
        let mut id = 0u64;
        for (_, v) in &self.duplicates {
            out.push(LabeledPair::new(id, *v, true));
            id += 1;
        }
        for (_, v) in &self.non_duplicates {
            out.push(LabeledPair::new(id, *v, false));
            id += 1;
        }
        out
    }

    /// Has this pair been stored (under either label)?
    pub fn contains(&self, id: &PairId) -> bool {
        self.seen.contains(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(a: u64, b: u64) -> PairId {
        PairId::new(a, b)
    }

    fn dv(x: f64) -> DistVec {
        [x; adr_model::DETECTION_DIMS]
    }

    #[test]
    fn duplicates_are_never_dropped() {
        let mut store = PairStore::new(5, 1);
        for i in 0..100 {
            store.add(pid(i, i + 1000), dv(0.1), true);
        }
        assert_eq!(store.duplicate_count(), 100);
    }

    #[test]
    fn negatives_are_bounded() {
        let mut store = PairStore::new(10, 1);
        for i in 0..1000 {
            store.add(pid(i, i + 10_000), dv(0.9), false);
        }
        assert_eq!(store.non_duplicate_count(), 10);
    }

    #[test]
    fn re_offering_a_pair_is_ignored() {
        let mut store = PairStore::new(10, 1);
        store.add(pid(1, 2), dv(0.5), false);
        store.add(pid(2, 1), dv(0.5), true); // same canonical pair
        assert_eq!(store.duplicate_count(), 0);
        assert_eq!(store.non_duplicate_count(), 1);
        assert!(store.contains(&pid(1, 2)));
    }

    #[test]
    fn training_pairs_have_correct_labels_and_count() {
        let mut store = PairStore::new(3, 1);
        store.add(pid(1, 2), dv(0.1), true);
        store.add(pid(3, 4), dv(0.9), false);
        store.add(pid(5, 6), dv(0.8), false);
        let train = store.training_pairs();
        assert_eq!(train.len(), 3);
        assert_eq!(train.iter().filter(|p| p.positive).count(), 1);
        // ids are unique
        let ids: HashSet<u64> = train.iter().map(|p| p.id).collect();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn reservoir_keeps_a_mix_of_old_and_new() {
        let mut store = PairStore::new(50, 42);
        for i in 0..5000u64 {
            store.add(pid(i, i + 100_000), dv(i as f64), false);
        }
        let early = store
            .non_duplicates
            .iter()
            .filter(|(_, v)| v[0] < 1000.0)
            .count();
        let late = store
            .non_duplicates
            .iter()
            .filter(|(_, v)| v[0] >= 4000.0)
            .count();
        assert!(early > 0, "reservoir must retain some early negatives");
        assert!(late > 0, "reservoir must admit some late negatives");
    }

    #[test]
    fn zero_capacity_store_keeps_no_negatives() {
        let mut store = PairStore::new(0, 1);
        store.add(pid(1, 2), dv(0.5), false);
        assert_eq!(store.non_duplicate_count(), 0);
    }
}
