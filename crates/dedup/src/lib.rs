//! # dedup — the end-to-end ADR duplicate-detection system
//!
//! Implements the workflow of the paper's Fig. 1 around the `fastknn`
//! classifier:
//!
//! ```text
//! report database ──► text-field processing ──► pairwise report distances
//!        ▲                                             │
//!        │            labelled duplicates ──┐          ▼
//!   new reports       labelled non-dups ────┴──► classification ──► duplicate pairs
//!                         ▲                                              │
//!                         └──────────── feedback ────────────────────────┘
//! ```
//!
//! * [`distance`] — §4.2's report representation: per-report text
//!   preprocessing and the 8-field distance vector between two reports;
//! * [`pairing`] — candidate pair enumeration (§3: new reports against the
//!   database and among themselves) and the distributed pairwise-distance
//!   job (the separately-timed step of Fig. 10b);
//! * [`store`] — the two labelled-pair databases of Fig. 1 (all known
//!   duplicates; a bounded sample of non-duplicates) with feedback;
//! * [`system`] — [`system::DedupSystem`], the orchestrated service;
//! * [`ingest`] — [`ingest::IngestService`], the durable micro-batch ingest
//!   loop: checkpointed commits, crash recovery, poison quarantine and
//!   backpressure around the Fig. 1 feedback loop;
//! * [`serve`] — [`serve::ServeService`], low-latency read serving: adaptive
//!   micro-batched duplicate lookups and memoised drug–event signal (ROR)
//!   queries over incrementally-maintained contingency tables;
//! * [`svm_baseline`] — the §5.2.1 SVM and Fig. 5(c) "SVM clustering"
//!   comparison methods;
//! * [`workload`] — labelled pair-set construction from a synthetic corpus
//!   (training/testing splits at the sizes the evaluation sweeps).

// The classifier's default pair arity and the §4.2 schema width must agree:
// [`fastknn::LabeledPair`] defaults to `PAIR_DIMS` and this crate feeds it
// [`adr_model::DistVec`] vectors.
const _: () = assert!(fastknn::PAIR_DIMS == adr_model::DETECTION_DIMS);

pub mod blocking;
pub mod distance;
pub mod ingest;
pub mod pairing;
pub mod serve;
pub mod store;
pub mod svm_baseline;
pub mod system;
pub mod workload;

pub use blocking::{evaluate_blocking, BlockKey, BlockingIndex, BlockingQuality};
pub use distance::{pair_distance, ProcessedReport};
pub use ingest::{IngestConfig, IngestError, IngestService, TornWrite, CHECKPOINT_VERSION};
pub use pairing::{
    all_pairs, index_corpus, pack_pairs, pair_op_weight, pairs_involving_new, pairwise_distances,
    pairwise_distances_partitioned, CorpusIndex, DistanceMemo, PAIR_OP_BASE,
};
pub use serve::{
    answers_digest, DuplicateMatch, ServeAnswer, ServeConfig, ServeQuery, ServeRequest,
    ServeRunSummary, ServeService, SignalMemo, SignalStats,
};
pub use store::PairStore;
pub use svm_baseline::{svm_clustering_scores, svm_scores};
pub use system::{DedupConfig, DedupSystem, Detection};
pub use workload::{build_workload, build_workload_on, PairWorkload, ProcessedCorpus};
