//! Candidate pair enumeration and the distributed pairwise-distance job.

use crate::distance::{pair_distance, ProcessedReport};
use adr_model::{DistVec, PairId, ReportId, DETECTION_DIMS};
use fastknn::VecBatch;
use sparklet::{Cluster, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// Column batch of §4.2 distance vectors — one row per candidate pair, in
/// the same contiguous layout the fastknn tiled kernels consume. Produced by
/// [`pairwise_distance_batches`]; row `i` belongs to the `i`-th pair id the
/// job returned alongside it.
pub type DistBatch = VecBatch<DETECTION_DIMS>;

/// A shared, immutable snapshot of the processed-report corpus, indexed by
/// report id. Cloning is a reference-count bump, so the distributed
/// pairwise-distance job shares one copy across every task and every call —
/// the corpus is never deep-copied per job.
pub type CorpusIndex = Arc<HashMap<ReportId, ProcessedReport>>;

/// Build a [`CorpusIndex`] from processed reports.
pub fn index_corpus<I>(processed: I) -> CorpusIndex
where
    I: IntoIterator<Item = ProcessedReport>,
{
    Arc::new(processed.into_iter().map(|p| (p.id, p)).collect())
}

/// All unordered pairs over `ids` — the §3 recursive formulation restricted
/// to one batch ("reports with later arrival time are checked against those
/// with earlier arrival time").
pub fn all_pairs(ids: &[ReportId]) -> Vec<PairId> {
    // n·(n−1)/2 overflows usize for n ≥ 2³² even though the result fits;
    // divide the even factor first and saturate (a saturated reserve just
    // means Vec growth happens in chunks — no UB, no panic).
    let n = ids.len();
    let cap = if n.is_multiple_of(2) {
        (n / 2).saturating_mul(n.saturating_sub(1))
    } else {
        n.saturating_mul(n.saturating_sub(1) / 2)
    };
    let mut out = Vec::with_capacity(cap);
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            out.push(PairId::new(a, b));
        }
    }
    out
}

/// Pairs involving at least one new report: each new report against every
/// existing one, plus all pairs among the new reports (`Dupe(R, A ∪ R − r)`
/// in the paper's Eq. 3).
pub fn pairs_involving_new(new_ids: &[ReportId], existing_ids: &[ReportId]) -> Vec<PairId> {
    // Exact capacity — new×existing cross pairs plus C(new, 2) within pairs
    // — so one reserve covers the whole enumeration. Same even-factor-first
    // saturating arithmetic as [`all_pairs`]: a saturated reserve only means
    // chunked growth, never UB or panic.
    let n = new_ids.len();
    let within = if n.is_multiple_of(2) {
        (n / 2).saturating_mul(n.saturating_sub(1))
    } else {
        n.saturating_mul(n.saturating_sub(1) / 2)
    };
    let cross = n.saturating_mul(existing_ids.len());
    let mut out = Vec::with_capacity(cross.saturating_add(within));
    for &n in new_ids {
        for &e in existing_ids {
            out.push(PairId::new(n, e));
        }
    }
    for (i, &a) in new_ids.iter().enumerate() {
        for &b in &new_ids[i + 1..] {
            out.push(PairId::new(a, b));
        }
    }
    out
}

/// Base op weight of one §4.2 distance vector: the five scalar field
/// distances plus per-pair bookkeeping. The token-set work is charged per
/// token on top — see [`pair_op_weight`].
pub const PAIR_OP_BASE: u64 = 8;

/// Virtual op weight of one pair's distance vector: the base cost plus one
/// op per token the three Jaccard distances actually scan (drug, ADR and
/// narrative token sets of both reports). Merging two sorted slices is
/// linear in their combined length, so this is the honest per-pair cost —
/// a pair of long-narrative reports weighs several times a terse one, which
/// is exactly the skew the morsel scheduler has to balance.
pub fn pair_op_weight(a: &ProcessedReport, b: &ProcessedReport) -> u64 {
    PAIR_OP_BASE
        + (a.drug_tokens.len()
            + b.drug_tokens.len()
            + a.adr_tokens.len()
            + b.adr_tokens.len()
            + a.narrative_terms.len()
            + b.narrative_terms.len()) as u64
}

fn weight_in(corpus: &CorpusIndex, pid: &PairId) -> u64 {
    match (corpus.get(&pid.lo), corpus.get(&pid.hi)) {
        (Some(a), Some(b)) => pair_op_weight(a, b),
        // Unknown ids fail inside the task with a proper error; weigh them
        // nominally so the cutter still terminates.
        _ => PAIR_OP_BASE,
    }
}

/// Distributed pairwise-distance computation — the separately-timed first
/// stage of the workflow (the paper's Fig. 10b) — over a caller-chosen pair
/// partitioning. Each partition is cut into op-weight-bounded morsels and
/// scheduled with work stealing (see [`Cluster::run_morsel_job`] and
/// [`sparklet::SchedConfig`]); every pair charges its honest
/// [`pair_op_weight`], so skewed partitions show up in the virtual clock and
/// get balanced rather than hidden.
///
/// Output is flattened in (partition, pair) order — deterministic for any
/// scheduling, so digests over downstream results never depend on steal
/// interleavings. Each morsel builds its slice of the result directly as
/// [`DistBatch`] columns; the driver concatenates the column slabs and
/// renumbers row ids `0..n`, so row `i` of the batch is the vector of pair
/// `i` in the returned id list and the whole result is ready for the
/// fastknn tiled kernels without any row-struct round trip.
pub fn pairwise_distance_batches(
    cluster: &Cluster,
    corpus: &CorpusIndex,
    partitions: Vec<Vec<PairId>>,
) -> Result<(Vec<PairId>, DistBatch)> {
    let total: usize = partitions.iter().map(Vec::len).sum();
    let by_id = Arc::clone(corpus);
    let weigher = Arc::clone(corpus);
    let out = cluster.run_morsel_job(
        "pairwise-distances",
        partitions,
        move |pid| weight_in(&weigher, pid),
        move |_, pairs, ctx| {
            ctx.counter("dedup.pair_distances").add(pairs.len() as u64);
            let mut ops = 0u64;
            let mut ids = Vec::with_capacity(pairs.len());
            let mut batch = DistBatch::with_capacity(pairs.len());
            for pid in pairs {
                let a = by_id.get(&pid.lo).ok_or_else(|| {
                    sparklet::SparkletError::User(format!("unknown report {}", pid.lo))
                })?;
                let b = by_id.get(&pid.hi).ok_or_else(|| {
                    sparklet::SparkletError::User(format!("unknown report {}", pid.hi))
                })?;
                ops += pair_op_weight(a, b);
                ids.push(*pid);
                // Row ids are renumbered by the driver once the global row
                // order is known.
                batch.push(0, &pair_distance(a, b), false);
            }
            ctx.charge_ops(ops);
            Ok(vec![(ids, batch)])
        },
    )?;
    let mut pairs = Vec::with_capacity(total);
    let mut vectors = DistBatch::with_capacity(total);
    for (ids, batch) in out.into_iter().flatten() {
        pairs.extend(ids);
        vectors.append(&batch);
    }
    for (row, id) in vectors.ids_mut().iter_mut().enumerate() {
        *id = row as u64;
    }
    Ok((pairs, vectors))
}

/// Row-level facade over [`pairwise_distance_batches`]: same job, same
/// (partition, pair) output order, with each column row materialized back
/// into a `(PairId, DistVec)` tuple for callers that want row structs.
pub fn pairwise_distances_partitioned(
    cluster: &Cluster,
    corpus: &CorpusIndex,
    partitions: Vec<Vec<PairId>>,
) -> Result<Vec<(PairId, DistVec)>> {
    let (pairs, vectors) = pairwise_distance_batches(cluster, corpus, partitions)?;
    Ok(pairs
        .into_iter()
        .enumerate()
        .map(|(i, pid)| (pid, vectors.row(i)))
        .collect())
}

/// Split `pairs` into `num_partitions` contiguous even runs — the same
/// boundaries `Cluster::parallelize` uses — so a distance job over them
/// returns results in input order.
pub fn contiguous_partitions(pairs: Vec<PairId>, num_partitions: usize) -> Vec<Vec<PairId>> {
    let n = num_partitions.max(1);
    let len = pairs.len();
    let mut parts: Vec<Vec<PairId>> = Vec::with_capacity(n);
    for i in 0..n {
        let start = i * len / n;
        let end = (i + 1) * len / n;
        parts.push(pairs[start..end].to_vec());
    }
    parts
}

/// [`pairwise_distances_partitioned`] over the classic contiguous
/// partitioning: `pairs` is split into `num_partitions` even runs (the same
/// boundaries `Cluster::parallelize` uses), so results come back in input
/// order. The corpus arrives as a pre-built [`CorpusIndex`]: the job clones
/// the `Arc`, not the reports, so repeated calls (bootstrap, every
/// `detect_new` batch) share one corpus allocation.
pub fn pairwise_distances(
    cluster: &Cluster,
    corpus: &CorpusIndex,
    pairs: Vec<PairId>,
    num_partitions: usize,
) -> Result<Vec<(PairId, DistVec)>> {
    let parts = contiguous_partitions(pairs, num_partitions);
    pairwise_distances_partitioned(cluster, corpus, parts)
}

/// Skew-aware packing of candidate-pair groups (one group per blocking key;
/// see [`crate::BlockingIndex::candidate_pair_groups`]) into
/// `num_partitions` balanced partitions.
///
/// Greedy LPT with splitting: groups heavier than the per-partition target
/// (`ceil(total / partitions)`) are first cut into contiguous chunks at or
/// under it — a single hot block can no longer dominate one partition —
/// then chunks are placed heaviest-first onto the least-loaded partition.
/// Ties break on the first pair id (chunk order) and the lowest partition
/// index (placement), so the packing is fully deterministic.
///
/// Allocation discipline mirrors the engine's shuffle bucketing: chunks are
/// `(weight, group, range)` views over the input (no per-chunk pair
/// buffers), destinations are decided first, and each partition is
/// allocated at its exact final size — the fill pass never reallocates or
/// over-allocates (pinned by `pack_pairs_allocates_partitions_at_exact_capacity`).
pub fn pack_pairs(
    corpus: &CorpusIndex,
    groups: Vec<Vec<PairId>>,
    num_partitions: usize,
) -> Vec<Vec<PairId>> {
    let parts = num_partitions.max(1);
    let total: u64 = groups
        .iter()
        .flatten()
        .map(|pid| weight_in(corpus, pid))
        .sum();
    let target = total.div_ceil(parts as u64).max(1);
    // Chunk pass: cut each group into contiguous index ranges at or under
    // the target weight. Ranges borrow the groups — no pair is copied yet.
    let mut chunks: Vec<(u64, usize, std::ops::Range<usize>)> = Vec::with_capacity(groups.len());
    for (g, group) in groups.iter().enumerate() {
        let mut start = 0usize;
        let mut acc = 0u64;
        for (i, pid) in group.iter().enumerate() {
            let w = weight_in(corpus, pid);
            if i > start && acc.saturating_add(w) > target {
                chunks.push((acc, g, start..i));
                start = i;
                acc = 0;
            }
            acc = acc.saturating_add(w);
        }
        if start < group.len() {
            chunks.push((acc, g, start..group.len()));
        }
    }
    chunks.sort_by(|(wa, ga, ra), (wb, gb, rb)| {
        wb.cmp(wa)
            .then_with(|| groups[*ga][ra.start].cmp(&groups[*gb][rb.start]))
    });
    // Placement pass: decide every chunk's destination and count pairs per
    // partition, so the fill pass can allocate exactly once.
    let mut dest: Vec<usize> = Vec::with_capacity(chunks.len());
    let mut loads = vec![0u64; parts];
    let mut counts = vec![0usize; parts];
    for (w, _, r) in &chunks {
        let lightest = (0..parts)
            .min_by_key(|&i| (loads[i], i))
            .expect("parts >= 1");
        loads[lightest] += w;
        counts[lightest] += r.len();
        dest.push(lightest);
    }
    let mut out: Vec<Vec<PairId>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for ((_, g, r), d) in chunks.into_iter().zip(dest) {
        out[d].extend_from_slice(&groups[g][r]);
    }
    out
}

/// Cross-call memo of §4.2 distance vectors, keyed by [`PairId`].
///
/// Blocking can surface the same pair in consecutive `detect_new` batches
/// (its reports keep matching new arrivals through hot block keys). The
/// §4.2 distance of a pair is a pure function of its two immutable reports,
/// so a memoised vector is bit-identical to recomputation — splitting the
/// candidate stream into memo hits and distance-job misses cannot change a
/// single downstream score, only skip work.
///
/// Bounded: once `capacity` entries are stored, further inserts are
/// dropped (hits on existing entries still count), so an endless feedback
/// loop cannot grow the memo without bound.
#[derive(Debug)]
pub struct DistanceMemo {
    map: HashMap<PairId, DistVec>,
    capacity: usize,
    hits: u64,
}

impl DistanceMemo {
    /// Memo bounded to `capacity` entries (`0` disables storage entirely).
    pub fn with_capacity(capacity: usize) -> Self {
        DistanceMemo {
            map: HashMap::new(),
            capacity,
            hits: 0,
        }
    }

    /// Stored vectors.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the memo empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime hit count (pairs answered without a distance job).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Look up a pair, counting a hit.
    pub fn get(&mut self, pid: &PairId) -> Option<DistVec> {
        let found = self.map.get(pid).copied();
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    /// Store a computed vector (dropped once at capacity; existing entries
    /// are never overwritten — the distance is immutable anyway).
    pub fn insert(&mut self, pid: PairId, vector: DistVec) {
        if self.map.len() < self.capacity {
            self.map.entry(pid).or_insert(vector);
        }
    }

    /// Drop every memoised pair involving `id` — required when a report is
    /// re-ingested (ADR databases receive follow-up versions): its text may
    /// have changed, so cached distances against it are no longer the pure
    /// function of the pair they were memoised as. Re-ingest is rare, so the
    /// linear sweep is fine.
    pub fn purge_report(&mut self, id: ReportId) {
        self.map.retain(|pid, _| pid.lo != id && pid.hi != id);
    }

    /// Partition candidate groups into unknown pairs (returned group-shaped,
    /// ready for [`pack_pairs`]) and memoised rows `(pair, vector)`. Group
    /// order and intra-group pair order are preserved for the unknowns;
    /// emptied groups are dropped.
    pub fn split_known(
        &mut self,
        groups: Vec<Vec<PairId>>,
    ) -> (Vec<Vec<PairId>>, Vec<(PairId, DistVec)>) {
        let mut known = Vec::new();
        let mut unknown = Vec::with_capacity(groups.len());
        for group in groups {
            let mut rest = Vec::new();
            for pid in group {
                match self.get(&pid) {
                    Some(v) => known.push((pid, v)),
                    None => rest.push(pid),
                }
            }
            if !rest.is_empty() {
                unknown.push(rest);
            }
        }
        (unknown, known)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_model::AdrReport;
    use textprep::{Pipeline, TokenInterner};

    #[test]
    fn all_pairs_count_is_n_choose_2() {
        let ids: Vec<u64> = (0..10).collect();
        let pairs = all_pairs(&ids);
        assert_eq!(pairs.len(), 45);
        let set: std::collections::HashSet<PairId> = pairs.iter().copied().collect();
        assert_eq!(set.len(), 45, "no duplicates");
    }

    #[test]
    fn all_pairs_of_one_or_zero() {
        assert!(all_pairs(&[]).is_empty());
        assert!(all_pairs(&[7]).is_empty());
    }

    #[test]
    fn new_pairs_cover_cross_and_within() {
        let pairs = pairs_involving_new(&[10, 11], &[0, 1, 2]);
        // 2*3 cross + 1 within.
        assert_eq!(pairs.len(), 7);
        assert!(pairs.contains(&PairId::new(10, 11)));
        assert!(pairs.contains(&PairId::new(10, 0)));
        assert!(pairs.contains(&PairId::new(11, 2)));
    }

    #[test]
    fn distributed_distances_match_serial() {
        let pipeline = Pipeline::paper();
        let mut interner = TokenInterner::new();
        let reports: Vec<AdrReport> = (0..6u64)
            .map(|id| {
                let mut r = AdrReport {
                    id,
                    ..AdrReport::default()
                };
                r.patient.calculated_age = Some(20.0 + id as f64);
                r.medicine.generic_name_description = format!("Drug{id}");
                r.reaction.meddra_pt_code = "Headache".into();
                r.reaction.report_description = format!("patient {id} felt dizzy and nauseous");
                r
            })
            .collect();
        let processed: Vec<ProcessedReport> = reports
            .iter()
            .map(|r| ProcessedReport::from_report(r, &pipeline, &mut interner))
            .collect();
        let corpus = index_corpus(processed.clone());
        let ids: Vec<u64> = (0..6).collect();
        let pairs = all_pairs(&ids);
        let cluster = Cluster::local(3);
        let mut dist = pairwise_distances(&cluster, &corpus, pairs.clone(), 4).unwrap();
        dist.sort_by_key(|(p, _)| *p);
        assert_eq!(dist.len(), 15);
        for (pid, v) in &dist {
            let expect = pair_distance(&processed[pid.lo as usize], &processed[pid.hi as usize]);
            assert_eq!(v, &expect, "mismatch for {pid:?}");
        }
        assert_eq!(cluster.metrics().counter("dedup.pair_distances").get(), 15);
    }

    fn tiny_corpus(n: u64) -> (Vec<ProcessedReport>, CorpusIndex) {
        let pipeline = Pipeline::paper();
        let mut interner = TokenInterner::new();
        let processed: Vec<ProcessedReport> = (0..n)
            .map(|id| {
                let mut r = AdrReport {
                    id,
                    ..AdrReport::default()
                };
                r.medicine.generic_name_description = format!("Drug{}", id % 3);
                r.reaction.meddra_pt_code = "Rash".into();
                // Narrative length grows with id — deliberate weight skew.
                r.reaction.report_description =
                    std::iter::repeat_n("itchy swollen arm", 1 + id as usize % 7)
                        .collect::<Vec<_>>()
                        .join(" symptom ");
                ProcessedReport::from_report(&r, &pipeline, &mut interner)
            })
            .collect();
        let corpus = index_corpus(processed.clone());
        (processed, corpus)
    }

    #[test]
    fn pair_op_weight_scales_with_token_counts() {
        let (processed, _) = tiny_corpus(8);
        let light = pair_op_weight(&processed[0], &processed[1]);
        let heavy = pair_op_weight(&processed[5], &processed[6]);
        assert!(light > PAIR_OP_BASE, "tokens must contribute");
        assert!(
            heavy > light,
            "longer narratives must cost more: {heavy} vs {light}"
        );
    }

    #[test]
    fn partitioned_distances_flatten_in_partition_order() {
        let (processed, corpus) = tiny_corpus(6);
        let ids: Vec<u64> = (0..6).collect();
        let pairs = all_pairs(&ids);
        // A deliberately ragged partitioning, including an empty partition.
        let parts = vec![pairs[10..15].to_vec(), Vec::new(), pairs[0..10].to_vec()];
        let cluster = Cluster::local(2);
        let dist = pairwise_distances_partitioned(&cluster, &corpus, parts).unwrap();
        let expect_order: Vec<PairId> =
            pairs[10..15].iter().chain(&pairs[0..10]).copied().collect();
        assert_eq!(
            dist.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            expect_order,
            "output must follow (partition, pair) order"
        );
        for (pid, v) in &dist {
            let expect = pair_distance(&processed[pid.lo as usize], &processed[pid.hi as usize]);
            assert_eq!(v, &expect);
        }
    }

    #[test]
    fn batch_distances_line_up_with_row_facade() {
        let (_, corpus) = tiny_corpus(6);
        let ids: Vec<u64> = (0..6).collect();
        let pairs = all_pairs(&ids);
        let parts = vec![pairs[8..15].to_vec(), Vec::new(), pairs[0..8].to_vec()];
        let cluster = Cluster::local(2);
        let (got_pairs, batch) =
            pairwise_distance_batches(&cluster, &corpus, parts.clone()).unwrap();
        assert_eq!(got_pairs.len(), 15);
        assert_eq!(batch.len(), 15);
        // Row ids are the driver-renumbered 0..n, so the batch can go
        // straight into a classifier whose scores index back into `pairs`.
        let got_ids: Vec<u64> = (0..batch.len()).map(|i| batch.id(i)).collect();
        assert_eq!(got_ids, (0..15).collect::<Vec<u64>>());
        // The row facade is exactly the zipped view of the batch.
        let rows = pairwise_distances_partitioned(&Cluster::local(2), &corpus, parts).unwrap();
        for (i, (pid, v)) in rows.iter().enumerate() {
            assert_eq!(*pid, got_pairs[i]);
            assert_eq!(*v, batch.row(i));
        }
    }

    #[test]
    fn contiguous_partitions_cover_in_order() {
        let pairs: Vec<PairId> = (0..10).map(|i| PairId::new(i, i + 100)).collect();
        let parts = contiguous_partitions(pairs.clone(), 4);
        assert_eq!(parts.len(), 4);
        let flat: Vec<PairId> = parts.iter().flatten().copied().collect();
        assert_eq!(flat, pairs, "even split must preserve input order");
        assert_eq!(contiguous_partitions(Vec::new(), 0).len(), 1);
    }

    #[test]
    fn pack_pairs_balances_a_hot_block() {
        let (_, corpus) = tiny_corpus(40);
        let ids: Vec<u64> = (0..40).collect();
        // One hot group holding nearly all pairs plus a few singleton groups
        // — the shape a hot drug block produces.
        let hot = all_pairs(&ids[..30]);
        let groups = vec![
            hot.clone(),
            vec![PairId::new(30, 31)],
            vec![PairId::new(32, 33)],
            vec![PairId::new(34, 35)],
        ];
        let packed = pack_pairs(&corpus, groups.clone(), 4);
        assert_eq!(packed.len(), 4);
        // Every pair survives exactly once.
        let mut flat: Vec<PairId> = packed.iter().flatten().copied().collect();
        flat.sort();
        let mut expect: Vec<PairId> = groups.into_iter().flatten().collect();
        expect.sort();
        assert_eq!(flat, expect);
        // The hot block is split: its pairs span several partitions, and the
        // heaviest partition carries far less than the whole.
        let loads: Vec<u64> = packed
            .iter()
            .map(|part| part.iter().map(|p| weight_in(&corpus, p)).sum())
            .collect();
        let total: u64 = loads.iter().sum();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        assert!(
            max < total / 2,
            "hot block must be split across partitions: max {max} of {total}"
        );
        assert!(
            max <= min.saturating_mul(2).max(total / 2),
            "LPT packing should be roughly balanced: {loads:?}"
        );
        // Deterministic.
        let again = pack_pairs(
            &corpus,
            vec![
                hot,
                vec![PairId::new(30, 31)],
                vec![PairId::new(32, 33)],
                vec![PairId::new(34, 35)],
            ],
            4,
        );
        assert_eq!(packed, again);
    }

    #[test]
    fn pack_pairs_handles_degenerate_inputs() {
        let (_, corpus) = tiny_corpus(4);
        assert_eq!(pack_pairs(&corpus, Vec::new(), 3), vec![Vec::new(); 3]);
        let one = vec![vec![PairId::new(0, 1)]];
        let packed = pack_pairs(&corpus, one, 0);
        assert_eq!(packed.len(), 1, "zero partitions clamps to one");
        assert_eq!(packed[0], vec![PairId::new(0, 1)]);
    }

    #[test]
    fn pack_pairs_allocates_partitions_at_exact_capacity() {
        // Same discipline the engine pins for shuffle buckets: destinations
        // and counts are decided before any pair moves, so every partition
        // Vec is allocated exactly once at its final size. A doubling-growth
        // regression would show up here as capacity() > len().
        let (_, corpus) = tiny_corpus(40);
        let ids: Vec<u64> = (0..40).collect();
        let groups = vec![
            all_pairs(&ids[..25]),
            all_pairs(&ids[25..33]),
            vec![PairId::new(33, 34), PairId::new(35, 36)],
            vec![PairId::new(37, 38)],
        ];
        for parts in [1usize, 3, 4, 8] {
            let packed = pack_pairs(&corpus, groups.clone(), parts);
            assert_eq!(packed.len(), parts);
            for (i, part) in packed.iter().enumerate() {
                assert_eq!(
                    part.capacity(),
                    part.len(),
                    "partition {i} of {parts} over-allocated: capacity {} for {} pairs",
                    part.capacity(),
                    part.len()
                );
            }
        }
    }

    #[test]
    fn distance_memo_answers_repeats_and_respects_capacity() {
        let mut memo = DistanceMemo::with_capacity(2);
        assert!(memo.is_empty());
        let (a, b, c) = (PairId::new(0, 1), PairId::new(0, 2), PairId::new(1, 2));
        let va = [1.0; DETECTION_DIMS];
        assert_eq!(memo.get(&a), None);
        assert_eq!(memo.hits(), 0, "misses are not hits");
        memo.insert(a, va);
        memo.insert(b, [2.0; DETECTION_DIMS]);
        memo.insert(c, [3.0; DETECTION_DIMS]); // over capacity: dropped
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.get(&a), Some(va));
        assert_eq!(memo.get(&c), None);
        assert_eq!(memo.hits(), 1);
        // Existing entries are never overwritten.
        memo.insert(a, [9.0; DETECTION_DIMS]);
        assert_eq!(memo.get(&a), Some(va));
        // Capacity 0 disables storage entirely.
        let mut off = DistanceMemo::with_capacity(0);
        off.insert(a, va);
        assert!(off.is_empty());
        assert_eq!(off.get(&a), None);
    }

    #[test]
    fn split_known_preserves_order_and_partitions_exactly() {
        let mut memo = DistanceMemo::with_capacity(16);
        let known_pid = PairId::new(1, 2);
        let v = [0.5; DETECTION_DIMS];
        memo.insert(known_pid, v);
        let groups = vec![
            vec![PairId::new(0, 1), known_pid, PairId::new(0, 2)],
            vec![known_pid],
            vec![PairId::new(3, 4)],
        ];
        let (unknown, known) = memo.split_known(groups);
        // Unknown pairs keep group shape and order; emptied groups vanish.
        assert_eq!(
            unknown,
            vec![
                vec![PairId::new(0, 1), PairId::new(0, 2)],
                vec![PairId::new(3, 4)],
            ]
        );
        // Both appearances of the memoised pair are answered.
        assert_eq!(known, vec![(known_pid, v), (known_pid, v)]);
        assert_eq!(memo.hits(), 2);
    }

    #[test]
    fn unknown_report_id_is_an_error() {
        let cluster = Cluster::local(1);
        let corpus = index_corpus(Vec::new());
        let err = pairwise_distances(&cluster, &corpus, vec![PairId::new(1, 2)], 1);
        assert!(err.is_err());
    }
}
