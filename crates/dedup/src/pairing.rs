//! Candidate pair enumeration and the distributed pairwise-distance job.

use crate::distance::{pair_distance, ProcessedReport};
use adr_model::{DistVec, PairId, ReportId};
use sparklet::{Cluster, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// A shared, immutable snapshot of the processed-report corpus, indexed by
/// report id. Cloning is a reference-count bump, so the distributed
/// pairwise-distance job shares one copy across every task and every call —
/// the corpus is never deep-copied per job.
pub type CorpusIndex = Arc<HashMap<ReportId, ProcessedReport>>;

/// Build a [`CorpusIndex`] from processed reports.
pub fn index_corpus<I>(processed: I) -> CorpusIndex
where
    I: IntoIterator<Item = ProcessedReport>,
{
    Arc::new(processed.into_iter().map(|p| (p.id, p)).collect())
}

/// All unordered pairs over `ids` — the §3 recursive formulation restricted
/// to one batch ("reports with later arrival time are checked against those
/// with earlier arrival time").
pub fn all_pairs(ids: &[ReportId]) -> Vec<PairId> {
    // n·(n−1)/2 overflows usize for n ≥ 2³² even though the result fits;
    // divide the even factor first and saturate (a saturated reserve just
    // means Vec growth happens in chunks — no UB, no panic).
    let n = ids.len();
    let cap = if n.is_multiple_of(2) {
        (n / 2).saturating_mul(n.saturating_sub(1))
    } else {
        n.saturating_mul(n.saturating_sub(1) / 2)
    };
    let mut out = Vec::with_capacity(cap);
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            out.push(PairId::new(a, b));
        }
    }
    out
}

/// Pairs involving at least one new report: each new report against every
/// existing one, plus all pairs among the new reports (`Dupe(R, A ∪ R − r)`
/// in the paper's Eq. 3).
pub fn pairs_involving_new(new_ids: &[ReportId], existing_ids: &[ReportId]) -> Vec<PairId> {
    // Exact capacity — new×existing cross pairs plus C(new, 2) within pairs
    // — so one reserve covers the whole enumeration. Same even-factor-first
    // saturating arithmetic as [`all_pairs`]: a saturated reserve only means
    // chunked growth, never UB or panic.
    let n = new_ids.len();
    let within = if n.is_multiple_of(2) {
        (n / 2).saturating_mul(n.saturating_sub(1))
    } else {
        n.saturating_mul(n.saturating_sub(1) / 2)
    };
    let cross = n.saturating_mul(existing_ids.len());
    let mut out = Vec::with_capacity(cross.saturating_add(within));
    for &n in new_ids {
        for &e in existing_ids {
            out.push(PairId::new(n, e));
        }
    }
    for (i, &a) in new_ids.iter().enumerate() {
        for &b in &new_ids[i + 1..] {
            out.push(PairId::new(a, b));
        }
    }
    out
}

/// Distributed pairwise-distance computation — the separately-timed first
/// stage of the workflow (the paper's Fig. 10b). One map task per partition
/// computes the §4.2 distance vector of its share of candidate pairs; each
/// vector computation charges one virtual op.
///
/// The corpus arrives as a pre-built [`CorpusIndex`]: the job clones the
/// `Arc`, not the reports, so repeated calls (bootstrap, every
/// `detect_new` batch) share one corpus allocation.
pub fn pairwise_distances(
    cluster: &Cluster,
    corpus: &CorpusIndex,
    pairs: Vec<PairId>,
    num_partitions: usize,
) -> Result<Vec<(PairId, DistVec)>> {
    let by_id = Arc::clone(corpus);
    // One §4.2 distance vector costs ~an order of magnitude more than one
    // 8-dim Euclidean comparison: it tokenises nothing (preprocessing is
    // amortised) but computes three Jaccard coefficients over token sets,
    // the narrative one over ~40 stems. Charge accordingly so the virtual
    // clock weighs this stage like the paper's Fig. 10(b).
    const DISTANCE_VECTOR_OP_WEIGHT: u64 = 50;
    cluster
        .parallelize(pairs, num_partitions)
        .map_partitions_with_ctx(move |ctx, _, part: Vec<PairId>| {
            ctx.charge_ops(part.len() as u64 * DISTANCE_VECTOR_OP_WEIGHT);
            ctx.counter("dedup.pair_distances").add(part.len() as u64);
            part.into_iter()
                .map(|pid| {
                    let a = by_id.get(&pid.lo).ok_or_else(|| {
                        sparklet::SparkletError::User(format!("unknown report {}", pid.lo))
                    })?;
                    let b = by_id.get(&pid.hi).ok_or_else(|| {
                        sparklet::SparkletError::User(format!("unknown report {}", pid.hi))
                    })?;
                    Ok((pid, pair_distance(a, b)))
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_model::AdrReport;
    use textprep::{Pipeline, TokenInterner};

    #[test]
    fn all_pairs_count_is_n_choose_2() {
        let ids: Vec<u64> = (0..10).collect();
        let pairs = all_pairs(&ids);
        assert_eq!(pairs.len(), 45);
        let set: std::collections::HashSet<PairId> = pairs.iter().copied().collect();
        assert_eq!(set.len(), 45, "no duplicates");
    }

    #[test]
    fn all_pairs_of_one_or_zero() {
        assert!(all_pairs(&[]).is_empty());
        assert!(all_pairs(&[7]).is_empty());
    }

    #[test]
    fn new_pairs_cover_cross_and_within() {
        let pairs = pairs_involving_new(&[10, 11], &[0, 1, 2]);
        // 2*3 cross + 1 within.
        assert_eq!(pairs.len(), 7);
        assert!(pairs.contains(&PairId::new(10, 11)));
        assert!(pairs.contains(&PairId::new(10, 0)));
        assert!(pairs.contains(&PairId::new(11, 2)));
    }

    #[test]
    fn distributed_distances_match_serial() {
        let pipeline = Pipeline::paper();
        let mut interner = TokenInterner::new();
        let reports: Vec<AdrReport> = (0..6u64)
            .map(|id| {
                let mut r = AdrReport {
                    id,
                    ..AdrReport::default()
                };
                r.patient.calculated_age = Some(20.0 + id as f64);
                r.medicine.generic_name_description = format!("Drug{id}");
                r.reaction.meddra_pt_code = "Headache".into();
                r.reaction.report_description = format!("patient {id} felt dizzy and nauseous");
                r
            })
            .collect();
        let processed: Vec<ProcessedReport> = reports
            .iter()
            .map(|r| ProcessedReport::from_report(r, &pipeline, &mut interner))
            .collect();
        let corpus = index_corpus(processed.clone());
        let ids: Vec<u64> = (0..6).collect();
        let pairs = all_pairs(&ids);
        let cluster = Cluster::local(3);
        let mut dist = pairwise_distances(&cluster, &corpus, pairs.clone(), 4).unwrap();
        dist.sort_by_key(|(p, _)| *p);
        assert_eq!(dist.len(), 15);
        for (pid, v) in &dist {
            let expect = pair_distance(&processed[pid.lo as usize], &processed[pid.hi as usize]);
            assert_eq!(v, &expect, "mismatch for {pid:?}");
        }
        assert_eq!(cluster.metrics().counter("dedup.pair_distances").get(), 15);
    }

    #[test]
    fn unknown_report_id_is_an_error() {
        let cluster = Cluster::local(1);
        let corpus = index_corpus(Vec::new());
        let err = pairwise_distances(&cluster, &corpus, vec![PairId::new(1, 2)], 1);
        assert!(err.is_err());
    }
}
