//! Report preprocessing and the §4.2 pair distance vector.

use adr_model::{AdrReport, ReportId, DETECTION_DIMS};
use simmetrics::{jaccard_distance, FieldDistance};
use textprep::Pipeline;

/// A report with its text fields preprocessed once (tokenised, stop-worded,
/// stemmed) so that pairwise comparisons are pure set operations.
///
/// §4.2 singles out the free-text description for NLP treatment; the short
/// drug/ADR string fields are compared as raw token sets.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessedReport {
    /// The source report id.
    pub id: ReportId,
    /// Patient age.
    pub age: Option<f64>,
    /// Sex code.
    pub sex: Option<String>,
    /// Residential state.
    pub state: Option<String>,
    /// Onset date (exact-match categorical).
    pub onset_date: Option<String>,
    /// Reaction outcome description.
    pub outcome: Option<String>,
    /// Drug-name tokens (lowercased words of every listed drug).
    pub drug_tokens: Vec<String>,
    /// ADR-name tokens.
    pub adr_tokens: Vec<String>,
    /// NLP-processed narrative terms.
    pub narrative_terms: Vec<String>,
}

fn name_tokens(names: &[&str]) -> Vec<String> {
    let mut tokens: Vec<String> = names
        .iter()
        .flat_map(|n| n.split_whitespace())
        .map(|t| t.to_lowercase())
        .collect();
    tokens.sort();
    tokens.dedup();
    tokens
}

impl ProcessedReport {
    /// Preprocess one report with the given text pipeline.
    pub fn from_report(r: &AdrReport, pipeline: &Pipeline) -> Self {
        ProcessedReport {
            id: r.id,
            age: r.patient.calculated_age,
            sex: r.patient.sex.map(|s| s.as_str().to_string()),
            state: r.patient.residential_state.clone(),
            onset_date: r.reaction.onset_date.clone(),
            outcome: r.reaction.reaction_outcome_description.clone(),
            drug_tokens: name_tokens(&r.drug_names()),
            adr_tokens: name_tokens(&r.adr_names()),
            narrative_terms: pipeline.process(&r.reaction.report_description),
        }
    }
}

/// The §4.2 distance vector between two reports, in the field order of
/// [`adr_model::DETECTION_FIELDS`]: age, sex, state, onset date, outcome,
/// drug name, ADR name, report description. Every component is in `[0, 1]`.
pub fn pair_distance(a: &ProcessedReport, b: &ProcessedReport) -> Vec<f64> {
    let mut v = Vec::with_capacity(DETECTION_DIMS);
    v.push(FieldDistance::numeric(a.age, b.age));
    v.push(FieldDistance::categorical(a.sex.as_deref(), b.sex.as_deref()));
    v.push(FieldDistance::categorical(
        a.state.as_deref(),
        b.state.as_deref(),
    ));
    v.push(FieldDistance::categorical(
        a.onset_date.as_deref(),
        b.onset_date.as_deref(),
    ));
    v.push(FieldDistance::categorical(
        a.outcome.as_deref(),
        b.outcome.as_deref(),
    ));
    v.push(jaccard_distance(&a.drug_tokens, &b.drug_tokens));
    v.push(jaccard_distance(&a.adr_tokens, &b.adr_tokens));
    v.push(jaccard_distance(&a.narrative_terms, &b.narrative_terms));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_model::Sex;
    use adr_synth::{Dataset, SynthConfig};
    use simmetrics::euclidean;

    fn report(
        id: u64,
        age: f64,
        sex: Sex,
        drugs: &str,
        adrs: &str,
        narrative: &str,
    ) -> AdrReport {
        let mut r = AdrReport {
            id,
            ..AdrReport::default()
        };
        r.patient.calculated_age = Some(age);
        r.patient.sex = Some(sex);
        r.patient.residential_state = Some("NSW".into());
        r.reaction.onset_date = Some("30/04/2013 00:00:00".into());
        r.reaction.reaction_outcome_description = Some("Unknown".into());
        r.medicine.generic_name_description = drugs.into();
        r.reaction.meddra_pt_code = adrs.into();
        r.reaction.report_description = narrative.into();
        r
    }

    #[test]
    fn identical_reports_have_zero_vector() {
        let p = Pipeline::paper();
        let r = report(0, 46.0, Sex::M, "Atorvastatin", "Rhabdomyolysis", "severe myalgia");
        let a = ProcessedReport::from_report(&r, &p);
        let v = pair_distance(&a, &a);
        assert_eq!(v.len(), 8);
        assert!(v.iter().all(|&d| d == 0.0), "{v:?}");
    }

    #[test]
    fn table1_style_duplicate_is_close_but_nonzero() {
        // Reports A/B of Table 1(a): same age, sex, drug, ADR; different
        // outcome and narrative.
        let p = Pipeline::paper();
        let a = ProcessedReport::from_report(
            &report(
                0,
                46.0,
                Sex::M,
                "Atorvastatin",
                "Rhabdomyolysis",
                "Reference number 123 is a literature report pertaining to a 46 year-old male \
                 patient who experienced rhabdomyolysis while on atorvastatin.",
            ),
            &p,
        );
        let b = ProcessedReport::from_report(
            &report(
                1,
                46.0,
                Sex::M,
                "Atorvastatin",
                "Rhabdomyolysis",
                "The 46-year-old male subject started treatment with atorvastatin calcium. The \
                 subject presented with myalgia and was diagnosed with rhabdomyolysis.",
            ),
            &p,
        );
        let mut b2 = b.clone();
        b2.outcome = Some("Recovered".into());
        let v = pair_distance(&a, &b2);
        // Age, sex, state, onset, drug, ADR all match.
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 0.0);
        assert_eq!(v[2], 0.0);
        assert_eq!(v[3], 0.0);
        assert_eq!(v[4], 1.0, "outcome differs");
        assert_eq!(v[5], 0.0, "drug matches");
        assert_eq!(v[6], 0.0, "ADR matches");
        assert!(v[7] > 0.0 && v[7] < 1.0, "narratives overlap partially: {}", v[7]);
    }

    #[test]
    fn unrelated_reports_are_far() {
        let p = Pipeline::paper();
        let a = ProcessedReport::from_report(
            &report(0, 46.0, Sex::M, "Atorvastatin", "Rhabdomyolysis", "muscle pain"),
            &p,
        );
        let b = ProcessedReport::from_report(
            &report(1, 30.0, Sex::F, "Amoxicillin", "Rash", "itchy skin eruption"),
            &p,
        );
        let v = pair_distance(&a, &b);
        assert!(euclidean(&v, &[0.0; 8]) > 2.0, "{v:?}");
    }

    #[test]
    fn drug_token_distance_is_symmetric_in_order() {
        let p = Pipeline::paper();
        let a = ProcessedReport::from_report(
            &report(0, 1.0, Sex::F, "Influenza Vaccine,Dtpa Vaccine", "Cough", "x"),
            &p,
        );
        let b = ProcessedReport::from_report(
            &report(1, 1.0, Sex::F, "Dtpa Vaccine,Influenza Vaccine", "Cough", "x"),
            &p,
        );
        assert_eq!(pair_distance(&a, &b)[5], 0.0, "order must not matter");
    }

    #[test]
    fn synthetic_duplicates_are_closer_than_random_pairs() {
        // The property every classifier downstream depends on.
        let ds = Dataset::generate(&SynthConfig::small(400, 25, 77));
        let p = Pipeline::paper();
        let processed: Vec<ProcessedReport> = ds
            .reports
            .iter()
            .map(|r| ProcessedReport::from_report(r, &p))
            .collect();
        let zero = vec![0.0; 8];
        let dup_mean: f64 = ds
            .duplicate_pairs
            .iter()
            .map(|pair| {
                let v = pair_distance(
                    &processed[pair.lo as usize],
                    &processed[pair.hi as usize],
                );
                euclidean(&v, &zero)
            })
            .sum::<f64>()
            / ds.duplicate_pairs.len() as f64;
        let mut rnd_sum = 0.0;
        let mut rnd_n = 0;
        for i in (0..300).step_by(7) {
            for j in (i + 1..300).step_by(13) {
                let pid = adr_model::PairId::new(i as u64, j as u64);
                if ds.duplicate_set().contains(&pid) {
                    continue;
                }
                let v = pair_distance(&processed[i], &processed[j]);
                rnd_sum += euclidean(&v, &zero);
                rnd_n += 1;
            }
        }
        let rnd_mean = rnd_sum / rnd_n as f64;
        assert!(
            dup_mean < rnd_mean * 0.65,
            "duplicates ({dup_mean:.3}) must be much closer than random pairs ({rnd_mean:.3})"
        );
    }
}
