//! Report preprocessing and the §4.2 pair distance vector.
//!
//! Preprocessing interns every token once ([`TokenInterner`]), so a
//! [`ProcessedReport`] carries sorted deduplicated `Vec<u32>` id sets and
//! [`pair_distance`] — the O(pairs) hot path — runs as allocation-free
//! sorted-slice merges producing a fixed-arity [`DistVec`]. No string bytes
//! are touched and no heap allocation happens per compared pair.

use adr_model::{AdrReport, DistVec, ReportId};
use simmetrics::{jaccard_distance_sorted, FieldDistance};
use textprep::{Pipeline, TokenInterner};

/// A report with its text fields preprocessed once (tokenised, stop-worded,
/// stemmed, interned) so that pairwise comparisons are pure set operations
/// over sorted `u32` id slices.
///
/// §4.2 singles out the free-text description for NLP treatment; the short
/// drug/ADR string fields are compared as raw token sets. Token ids are only
/// comparable between reports processed through the *same* interner.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessedReport {
    /// The source report id.
    pub id: ReportId,
    /// Patient age.
    pub age: Option<f64>,
    /// Sex code.
    pub sex: Option<String>,
    /// Residential state.
    pub state: Option<String>,
    /// Onset date (exact-match categorical).
    pub onset_date: Option<String>,
    /// Reaction outcome description.
    pub outcome: Option<String>,
    /// Drug-name token ids (lowercased words of every listed drug),
    /// sorted and deduplicated.
    pub drug_tokens: Vec<u32>,
    /// ADR-name token ids, sorted and deduplicated.
    pub adr_tokens: Vec<u32>,
    /// NLP-processed narrative term ids, sorted and deduplicated.
    pub narrative_terms: Vec<u32>,
}

fn name_token_ids(names: &[&str], interner: &mut TokenInterner) -> Vec<u32> {
    interner.intern_set(
        names
            .iter()
            .flat_map(|n| n.split_whitespace())
            .map(|t| t.to_lowercase()),
    )
}

impl ProcessedReport {
    /// Preprocess one report with the given text pipeline, interning every
    /// token into `interner`.
    pub fn from_report(r: &AdrReport, pipeline: &Pipeline, interner: &mut TokenInterner) -> Self {
        ProcessedReport {
            id: r.id,
            age: r.patient.calculated_age,
            sex: r.patient.sex.map(|s| s.as_str().to_string()),
            state: r.patient.residential_state.clone(),
            onset_date: r.reaction.onset_date.clone(),
            outcome: r.reaction.reaction_outcome_description.clone(),
            drug_tokens: name_token_ids(&r.drug_names(), interner),
            adr_tokens: name_token_ids(&r.adr_names(), interner),
            narrative_terms: interner.intern_set(pipeline.process(&r.reaction.report_description)),
        }
    }
}

/// The §4.2 distance vector between two reports, in the field order of
/// [`adr_model::DETECTION_FIELDS`]: age, sex, state, onset date, outcome,
/// drug name, ADR name, report description. Every component is in `[0, 1]`.
///
/// Both reports must come from the same interner.
pub fn pair_distance(a: &ProcessedReport, b: &ProcessedReport) -> DistVec {
    [
        FieldDistance::numeric(a.age, b.age),
        FieldDistance::categorical(a.sex.as_deref(), b.sex.as_deref()),
        FieldDistance::categorical(a.state.as_deref(), b.state.as_deref()),
        FieldDistance::categorical(a.onset_date.as_deref(), b.onset_date.as_deref()),
        FieldDistance::categorical(a.outcome.as_deref(), b.outcome.as_deref()),
        jaccard_distance_sorted(&a.drug_tokens, &b.drug_tokens),
        jaccard_distance_sorted(&a.adr_tokens, &b.adr_tokens),
        jaccard_distance_sorted(&a.narrative_terms, &b.narrative_terms),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_model::Sex;
    use adr_synth::{Dataset, SynthConfig};
    use simmetrics::euclidean;

    fn report(id: u64, age: f64, sex: Sex, drugs: &str, adrs: &str, narrative: &str) -> AdrReport {
        let mut r = AdrReport {
            id,
            ..AdrReport::default()
        };
        r.patient.calculated_age = Some(age);
        r.patient.sex = Some(sex);
        r.patient.residential_state = Some("NSW".into());
        r.reaction.onset_date = Some("30/04/2013 00:00:00".into());
        r.reaction.reaction_outcome_description = Some("Unknown".into());
        r.medicine.generic_name_description = drugs.into();
        r.reaction.meddra_pt_code = adrs.into();
        r.reaction.report_description = narrative.into();
        r
    }

    #[test]
    fn identical_reports_have_zero_vector() {
        let p = Pipeline::paper();
        let mut interner = TokenInterner::new();
        let r = report(
            0,
            46.0,
            Sex::M,
            "Atorvastatin",
            "Rhabdomyolysis",
            "severe myalgia",
        );
        let a = ProcessedReport::from_report(&r, &p, &mut interner);
        let v = pair_distance(&a, &a);
        assert_eq!(v.len(), 8);
        assert!(v.iter().all(|&d| d == 0.0), "{v:?}");
    }

    #[test]
    fn table1_style_duplicate_is_close_but_nonzero() {
        // Reports A/B of Table 1(a): same age, sex, drug, ADR; different
        // outcome and narrative.
        let p = Pipeline::paper();
        let mut interner = TokenInterner::new();
        let a = ProcessedReport::from_report(
            &report(
                0,
                46.0,
                Sex::M,
                "Atorvastatin",
                "Rhabdomyolysis",
                "Reference number 123 is a literature report pertaining to a 46 year-old male \
                 patient who experienced rhabdomyolysis while on atorvastatin.",
            ),
            &p,
            &mut interner,
        );
        let b = ProcessedReport::from_report(
            &report(
                1,
                46.0,
                Sex::M,
                "Atorvastatin",
                "Rhabdomyolysis",
                "The 46-year-old male subject started treatment with atorvastatin calcium. The \
                 subject presented with myalgia and was diagnosed with rhabdomyolysis.",
            ),
            &p,
            &mut interner,
        );
        let mut b2 = b.clone();
        b2.outcome = Some("Recovered".into());
        let v = pair_distance(&a, &b2);
        // Age, sex, state, onset, drug, ADR all match.
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 0.0);
        assert_eq!(v[2], 0.0);
        assert_eq!(v[3], 0.0);
        assert_eq!(v[4], 1.0, "outcome differs");
        assert_eq!(v[5], 0.0, "drug matches");
        assert_eq!(v[6], 0.0, "ADR matches");
        assert!(
            v[7] > 0.0 && v[7] < 1.0,
            "narratives overlap partially: {}",
            v[7]
        );
    }

    #[test]
    fn unrelated_reports_are_far() {
        let p = Pipeline::paper();
        let mut interner = TokenInterner::new();
        let a = ProcessedReport::from_report(
            &report(
                0,
                46.0,
                Sex::M,
                "Atorvastatin",
                "Rhabdomyolysis",
                "muscle pain",
            ),
            &p,
            &mut interner,
        );
        let b = ProcessedReport::from_report(
            &report(
                1,
                30.0,
                Sex::F,
                "Amoxicillin",
                "Rash",
                "itchy skin eruption",
            ),
            &p,
            &mut interner,
        );
        let v = pair_distance(&a, &b);
        assert!(euclidean(&v, &[0.0; 8]) > 2.0, "{v:?}");
    }

    #[test]
    fn drug_token_distance_is_symmetric_in_order() {
        let p = Pipeline::paper();
        let mut interner = TokenInterner::new();
        let a = ProcessedReport::from_report(
            &report(
                0,
                1.0,
                Sex::F,
                "Influenza Vaccine,Dtpa Vaccine",
                "Cough",
                "x",
            ),
            &p,
            &mut interner,
        );
        let b = ProcessedReport::from_report(
            &report(
                1,
                1.0,
                Sex::F,
                "Dtpa Vaccine,Influenza Vaccine",
                "Cough",
                "x",
            ),
            &p,
            &mut interner,
        );
        assert_eq!(pair_distance(&a, &b)[5], 0.0, "order must not matter");
    }

    #[test]
    fn interned_vectors_match_string_set_oracle() {
        // The sorted-merge Jaccard over interned ids must agree exactly with
        // the HashSet-of-strings oracle the seed implementation used.
        let ds = Dataset::generate(&SynthConfig::small(120, 8, 3));
        let p = Pipeline::paper();
        let mut interner = TokenInterner::new();
        let processed: Vec<ProcessedReport> = ds
            .reports
            .iter()
            .map(|r| ProcessedReport::from_report(r, &p, &mut interner))
            .collect();
        for (r, pr) in ds.reports.iter().zip(&processed).take(30) {
            // Rebuild the string token sets the old representation stored.
            let mut drug_strings: Vec<String> = r
                .drug_names()
                .iter()
                .flat_map(|n| n.split_whitespace())
                .map(|t| t.to_lowercase())
                .collect();
            drug_strings.sort();
            drug_strings.dedup();
            let mut resolved: Vec<&str> = pr
                .drug_tokens
                .iter()
                .map(|&id| interner.resolve(id))
                .collect();
            resolved.sort();
            let expect: Vec<&str> = drug_strings.iter().map(String::as_str).collect();
            assert_eq!(resolved, expect, "id set must resolve to the string set");
        }
        for i in (0..processed.len()).step_by(11) {
            for j in (i + 1..processed.len()).step_by(17) {
                let a = &processed[i];
                let b = &processed[j];
                let oracle = |x: &[u32], y: &[u32]| {
                    let sx: std::collections::HashSet<&str> =
                        x.iter().map(|&id| interner.resolve(id)).collect();
                    let sy: std::collections::HashSet<&str> =
                        y.iter().map(|&id| interner.resolve(id)).collect();
                    simmetrics::jaccard_distance(
                        &sx.iter().copied().collect::<Vec<_>>(),
                        &sy.iter().copied().collect::<Vec<_>>(),
                    )
                };
                let v = pair_distance(a, b);
                assert_eq!(v[5], oracle(&a.drug_tokens, &b.drug_tokens));
                assert_eq!(v[6], oracle(&a.adr_tokens, &b.adr_tokens));
                assert_eq!(v[7], oracle(&a.narrative_terms, &b.narrative_terms));
            }
        }
    }

    #[test]
    fn synthetic_duplicates_are_closer_than_random_pairs() {
        // The property every classifier downstream depends on.
        let ds = Dataset::generate(&SynthConfig::small(400, 25, 77));
        let p = Pipeline::paper();
        let mut interner = TokenInterner::new();
        let processed: Vec<ProcessedReport> = ds
            .reports
            .iter()
            .map(|r| ProcessedReport::from_report(r, &p, &mut interner))
            .collect();
        let zero = [0.0; 8];
        let dup_mean: f64 = ds
            .duplicate_pairs
            .iter()
            .map(|pair| {
                let v = pair_distance(&processed[pair.lo as usize], &processed[pair.hi as usize]);
                euclidean(&v, &zero)
            })
            .sum::<f64>()
            / ds.duplicate_pairs.len() as f64;
        let mut rnd_sum = 0.0;
        let mut rnd_n = 0;
        for i in (0..300).step_by(7) {
            for j in (i + 1..300).step_by(13) {
                let pid = adr_model::PairId::new(i as u64, j as u64);
                if ds.duplicate_set().contains(&pid) {
                    continue;
                }
                let v = pair_distance(&processed[i], &processed[j]);
                rnd_sum += euclidean(&v, &zero);
                rnd_n += 1;
            }
        }
        let rnd_mean = rnd_sum / rnd_n as f64;
        assert!(
            dup_mean < rnd_mean * 0.65,
            "duplicates ({dup_mean:.3}) must be much closer than random pairs ({rnd_mean:.3})"
        );
    }
}
