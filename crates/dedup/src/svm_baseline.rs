//! The comparison classifiers of §5.2.1 / Fig. 5(c).
//!
//! * **SVM** — a vanilla linear SVM over pair distance vectors; its decision
//!   value serves as the ranking score for the PR curve.
//! * **SVM clustering** — the paper's improved variant: "clustering \[the\]
//!   training set and mak\[ing\] sure report pairs in small clusters are
//!   included in the training dataset", i.e. sample the training set
//!   per-cluster (small clusters fully) instead of uniformly.

use fastknn::{LabeledPair, UnlabeledPair};
use mlcore::kmeans::KMeans;
use mlcore::svm::{LinearSvm, SvmConfig};

fn split_xy<const D: usize>(train: &[LabeledPair<D>]) -> (Vec<Vec<f64>>, Vec<i8>) {
    let x: Vec<Vec<f64>> = train.iter().map(|p| p.vector.to_vec()).collect();
    let y: Vec<i8> = train
        .iter()
        .map(|p| if p.positive { 1 } else { -1 })
        .collect();
    (x, y)
}

/// Train the paper's SVM baseline and score the test set by decision value.
///
/// Solver fidelity matters here: the paper runs on Spark 1.2.1, where the
/// only available SVM is MLlib's `SVMWithSGD` (full-batch hinge SGD,
/// `1/√t` steps, no intercept). [`LinearSvm::train_batch`] reproduces that
/// solver and its behaviour under extreme label imbalance — which is the
/// phenomenon §5.2.2 reports. A modern dual coordinate descent solver
/// ([`LinearSvm::train_dual`]) closes much of the gap; the ablation bench
/// quantifies this (see EXPERIMENTS.md).
pub fn svm_scores<const D: usize>(
    train: &[LabeledPair<D>],
    test: &[UnlabeledPair<D>],
    config: &SvmConfig,
) -> Vec<(u64, f64)> {
    let (x, y) = split_xy(train);
    let svm = LinearSvm::train_batch(&x, &y, config);
    test.iter()
        .map(|t| (t.id, svm.decision(&t.vector)))
        .collect()
}

/// The same test scores from a modern dual-coordinate-descent SVM —
/// used by the solver ablation.
pub fn svm_dual_scores<const D: usize>(
    train: &[LabeledPair<D>],
    test: &[UnlabeledPair<D>],
    config: &SvmConfig,
) -> Vec<(u64, f64)> {
    let (x, y) = split_xy(train);
    let svm = LinearSvm::train_dual(&x, &y, config);
    test.iter()
        .map(|t| (t.id, svm.decision(&t.vector)))
        .collect()
}

/// The Fig. 5(c) "SVM clustering" variant: k-means the training vectors into
/// `clusters` groups and build a balanced-by-cluster training sample of at
/// most `budget` pairs (every cluster contributes, small clusters entirely),
/// then train the SVM on the sample.
pub fn svm_clustering_scores<const D: usize>(
    train: &[LabeledPair<D>],
    test: &[UnlabeledPair<D>],
    clusters: usize,
    budget: usize,
    config: &SvmConfig,
) -> Vec<(u64, f64)> {
    let sampled = cluster_sample(train, clusters, budget, config.seed);
    svm_scores(&sampled, test, config)
}

/// Per-cluster sampling: round-robin over clusters so every cluster —
/// however small — is represented in the budget.
pub fn cluster_sample<const D: usize>(
    train: &[LabeledPair<D>],
    clusters: usize,
    budget: usize,
    seed: u64,
) -> Vec<LabeledPair<D>> {
    if train.len() <= budget {
        return train.to_vec();
    }
    // Fit k-means on a stride sample (clustering cost, not assignment cost,
    // dominates on million-pair training sets), then assign every pair.
    const FIT_CAP: usize = 50_000;
    let fit_vectors: Vec<[f64; D]> = if train.len() > FIT_CAP {
        let stride = train.len() / FIT_CAP + 1;
        train.iter().step_by(stride).map(|p| p.vector).collect()
    } else {
        train.iter().map(|p| p.vector).collect()
    };
    let model = KMeans::new(clusters.max(1), seed).fit(&fit_vectors);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); model.k()];
    for (i, p) in train.iter().enumerate() {
        buckets[model.assign(&p.vector)].push(i);
    }
    let mut out = Vec::with_capacity(budget);
    let mut cursor = vec![0usize; buckets.len()];
    'outer: loop {
        let mut progressed = false;
        for (b, bucket) in buckets.iter().enumerate() {
            if cursor[b] < bucket.len() {
                out.push(train[bucket[cursor[b]]]);
                cursor[b] += 1;
                progressed = true;
                if out.len() >= budget {
                    break 'outer;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcore::average_precision;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn imbalanced_workload(seed: u64) -> (Vec<LabeledPair<4>>, Vec<UnlabeledPair<4>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Vec::new();
        // Positives: small distance vectors (duplicates are close).
        for i in 0..20 {
            let v: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..0.2));
            train.push(LabeledPair::new(i, v, true));
        }
        // Negatives: spread out.
        for i in 0..2000 {
            let v: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.1..1.0));
            train.push(LabeledPair::new(100 + i, v, false));
        }
        let mut test = Vec::new();
        let mut truth = Vec::new();
        for i in 0..40 {
            let positive = i % 8 == 0;
            let v: [f64; 4] = if positive {
                std::array::from_fn(|_| rng.gen_range(0.0..0.2))
            } else {
                std::array::from_fn(|_| rng.gen_range(0.1..1.0))
            };
            test.push(UnlabeledPair::new(i, v));
            truth.push(positive);
        }
        (train, test, truth)
    }

    #[test]
    fn svm_scores_rank_obviously_separable_data() {
        let (train, test, truth) = imbalanced_workload(1);
        let scores = svm_scores(&train, &test, &SvmConfig::default());
        let scored: Vec<(f64, bool)> = scores
            .iter()
            .zip(&truth)
            .map(|((_, s), &t)| (*s, t))
            .collect();
        // Vanilla SVM should do SOMETHING, even if weak under imbalance.
        let ap = average_precision(&scored);
        assert!(ap.is_finite());
    }

    #[test]
    fn cluster_sample_respects_budget_and_small_clusters() {
        let (train, _, _) = imbalanced_workload(2);
        let sample = cluster_sample(&train, 8, 200, 3);
        assert_eq!(sample.len(), 200);
        // The positive clump forms its own small cluster; round-robin
        // sampling must include positives.
        assert!(
            sample.iter().any(|p| p.positive),
            "cluster sampling must represent the small positive cluster"
        );
    }

    #[test]
    fn cluster_sample_small_input_passthrough() {
        let (train, _, _) = imbalanced_workload(3);
        let small: Vec<LabeledPair<4>> = train.into_iter().take(50).collect();
        let sample = cluster_sample(&small, 4, 100, 1);
        assert_eq!(sample.len(), 50);
    }

    #[test]
    fn svm_clustering_runs_end_to_end() {
        let (train, test, truth) = imbalanced_workload(4);
        let scores = svm_clustering_scores(&train, &test, 8, 500, &SvmConfig::default());
        assert_eq!(scores.len(), test.len());
        let scored: Vec<(f64, bool)> = scores
            .iter()
            .zip(&truth)
            .map(|((_, s), &t)| (*s, t))
            .collect();
        assert!(average_precision(&scored).is_finite());
    }
}
