//! Durable streaming ingest: checkpointed micro-batches with crash
//! recovery, poison quarantine and backpressure.
//!
//! Fig. 1 of the paper is a feedback *loop*, but
//! [`DedupSystem::detect_new`] is a one-shot batch call — and while PR 4
//! made executors survivable, a driver crash loses everything the loop has
//! learned. [`IngestService`] closes that gap: reports arrive in
//! quarterly-style micro-batches (an [`adr_synth::QuarterlyReplay`]
//! schedule), each committed batch folds its detections into a cumulative
//! digest, and an [`IngestService::open`]-able checkpoint (schema-
//! versioned, atomic rename-into-place, CRC-guarded) persists everything a
//! restart needs:
//!
//! * the [`PairStore`] snapshot (bit-exact, with reservoir-RNG replay) —
//!   which *is* the Voronoi-centre state, since Fast kNN centres are a
//!   deterministic function of the training set refit per batch,
//! * the batch high-water mark, cumulative digest and skipped-batch list,
//! * cross-checks (report count, interner size, training-set digest) that
//!   the recovery replay reconstructed the exact pre-crash ingest state.
//!
//! Everything *not* in the checkpoint is a pure function of the replay
//! schedule: recovery re-ingests the reports of every committed batch
//! (identical dense token ids, blocking rows and corpus snapshot), restores
//! the store, and resumes at the high-water mark — so a driver kill at
//! *any* fault point yields a cumulative digest bit-identical to an
//! uninterrupted run.
//!
//! Around that spine sit the service's robustness surfaces: per-batch retry
//! with exponential backoff + deterministic jitter on the virtual clock
//! (transient engine faults roll back via `DedupSystem::begin_batch` and
//! replay bit-identically), poison-batch quarantine (journaled, dumped to
//! `quarantine.log`, skipped), torn-write detection with previous-
//! generation fallback, and a bounded-lag admission gate that defers the
//! next batch while spill-resident bytes or the in-flight pair count
//! exceed their caps ([`EventKind::IngestDeferred`]).

use crate::store::PairStore;
use crate::system::{DedupConfig, DedupSystem, Detection};
use adr_model::AdrReport;
use adr_synth::QuarterlyReplay;
use sparklet::{stable_hash, Cluster, EventKind, SparkletError};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Errors surfaced by the ingest service.
#[derive(Debug)]
pub enum IngestError {
    /// The engine failed (terminally) under a batch, or a driver-kill
    /// fault point fired. After an `Engine` error carrying a driver kill
    /// the service instance is dead: drop it and [`IngestService::open`] a
    /// fresh one from the checkpoint directory.
    Engine(SparkletError),
    /// Checkpoint-directory I/O failed.
    Io(String),
    /// A checkpoint (or the recovery replay it drives) is inconsistent.
    Checkpoint(String),
}

impl IngestError {
    /// Was this a driver kill (recover by re-opening from the checkpoint
    /// directory)?
    pub fn is_driver_kill(&self) -> bool {
        matches!(self, IngestError::Engine(e) if e.is_driver_kill())
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Engine(e) => write!(f, "engine: {e}"),
            IngestError::Io(msg) => write!(f, "checkpoint io: {msg}"),
            IngestError::Checkpoint(msg) => write!(f, "checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<SparkletError> for IngestError {
    fn from(e: SparkletError) -> Self {
        IngestError::Engine(e)
    }
}

fn io_err(e: std::io::Error) -> IngestError {
    IngestError::Io(e.to_string())
}

/// Seeded torn-write fault: the checkpoint of `generation` is truncated to
/// `keep_bytes` before the rename, modelling a partial flush that made it
/// into place. Recovery must detect the bad CRC and fall back a generation.
#[derive(Debug, Clone, Copy)]
pub struct TornWrite {
    /// Checkpoint generation to corrupt.
    pub generation: u64,
    /// Bytes of the serialised checkpoint to keep.
    pub keep_bytes: usize,
}

/// Configuration of the streaming ingest service.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Directory holding checkpoint generations and `quarantine.log`.
    pub checkpoint_dir: PathBuf,
    /// Leading quarters consumed as one expert-labelled bootstrap unit
    /// (Fig. 1's initial labelled stores). Must be ≥ 1.
    pub bootstrap_quarters: u64,
    /// Retries a failing batch gets after its first attempt, before it is
    /// quarantined.
    pub max_batch_retries: u32,
    /// First retry backoff (virtual µs); doubles per retry.
    pub backoff_base_us: u64,
    /// Backoff ceiling (virtual µs).
    pub backoff_cap_us: u64,
    /// Deterministic jitter added to each backoff, drawn from
    /// `stable_hash(seed, batch, attempt) % (jitter + 1)`.
    pub backoff_jitter_us: u64,
    /// Checkpoint generations kept on disk (≥ 1; 2 gives torn-write
    /// fallback one generation of headroom).
    pub keep_checkpoints: usize,
    /// Admission gate: defer the next batch while spill-resident bytes
    /// exceed this cap. `0` disables the resident-bytes gate.
    pub max_resident_bytes: u64,
    /// Admission gate: defer the next batch while the previous batch's
    /// detection count (in-flight feedback pairs) exceeds this cap. `0`
    /// disables the lag gate.
    pub max_lagged_pairs: u64,
    /// Virtual time charged per admission-gate deferral (µs).
    pub defer_us: u64,
    /// Deferrals after which the gate admits the batch anyway (the drain
    /// is modelled as complete; prevents livelock).
    pub max_deferrals: u32,
    /// Test hook: batches whose every attempt fails with a synthetic
    /// transient error (deterministic poison — exercises quarantine).
    pub poison_batches: Vec<u64>,
    /// Test hook: batches that never arrive (their reports are dropped
    /// without an attempt). The digest of such a run is the reference for
    /// quarantine equivalence: a quarantined batch must leave the same
    /// state behind as one that never arrived.
    pub skip_batches: Vec<u64>,
    /// Seeded torn-write fault injection; see [`TornWrite`].
    pub torn_write: Option<TornWrite>,
}

impl IngestConfig {
    /// Service defaults rooted at `checkpoint_dir`.
    pub fn new(checkpoint_dir: impl Into<PathBuf>) -> Self {
        IngestConfig {
            checkpoint_dir: checkpoint_dir.into(),
            bootstrap_quarters: 1,
            max_batch_retries: 2,
            backoff_base_us: 50_000,
            backoff_cap_us: 1_600_000,
            backoff_jitter_us: 10_000,
            keep_checkpoints: 2,
            max_resident_bytes: 0,
            max_lagged_pairs: 0,
            defer_us: 100_000,
            max_deferrals: 8,
            poison_batches: Vec::new(),
            skip_batches: Vec::new(),
            torn_write: None,
        }
    }
}

/// Current checkpoint schema version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Virtual cost of a checkpoint write: fixed fsync+rename latency plus a
/// per-KiB streaming term.
const CHECKPOINT_BASE_US: u64 = 2_000;
const CHECKPOINT_US_PER_KIB: u64 = 50;

/// Parsed checkpoint contents (internal).
struct Checkpoint {
    generation: u64,
    config_digest: u64,
    batch_high_water: u64,
    cumulative_digest: u64,
    lagged_pairs: u64,
    reports: u64,
    interner_tokens: u64,
    centres_digest: u64,
    skipped: Vec<u64>,
    store: PairStore,
}

/// Digest of the store's training set — the state the per-batch Fast kNN
/// refit (and through it the Voronoi centres) is a deterministic function
/// of. Recovery cross-checks it after restoring the store.
fn centres_digest(store: &PairStore) -> u64 {
    let mut d = 0xC3A7u64;
    for p in store.training_pairs() {
        let bits: Vec<u64> = p.vector.iter().map(|x| x.to_bits()).collect();
        d = stable_hash(&(d, p.id, bits, p.positive));
    }
    d
}

/// Digest of one batch's detections, order-sensitive (the detection order
/// is itself pinned by the engine's determinism guarantees).
fn detections_digest(detections: &[Detection]) -> u64 {
    let mut d = 0xD16Eu64;
    for det in detections {
        d = stable_hash(&(
            d,
            det.pair.lo,
            det.pair.hi,
            det.score.to_bits(),
            det.is_duplicate,
        ));
    }
    d
}

/// The long-running micro-batch ingest service. See the module docs.
pub struct IngestService {
    system: DedupSystem,
    config: IngestConfig,
    config_digest: u64,
    /// Next batch (quarter) to run; batches `0..batch_high_water` are
    /// committed, quarantined or skipped.
    batch_high_water: u64,
    cumulative_digest: u64,
    skipped: Vec<u64>,
    /// Next checkpoint generation to write.
    generation: u64,
    /// Detections of the most recently committed batch — the in-flight
    /// feedback lag the admission gate bounds.
    lagged_pairs: u64,
    recovered_fallback: bool,
}

impl IngestService {
    /// Open the service: recover from the newest valid checkpoint in
    /// `config.checkpoint_dir` (falling back past corrupt generations), or
    /// start fresh if none exists. Recovery restores the store snapshot,
    /// re-ingests the reports of every committed batch from `replay`, and
    /// cross-checks the reconstruction before resuming.
    pub fn open(
        cluster: Cluster,
        dedup: DedupConfig,
        config: IngestConfig,
        replay: &QuarterlyReplay,
    ) -> Result<IngestService, IngestError> {
        assert!(config.bootstrap_quarters >= 1, "bootstrap needs a quarter");
        assert!(config.keep_checkpoints >= 1, "must keep a checkpoint");
        fs::create_dir_all(&config.checkpoint_dir).map_err(io_err)?;
        let config_digest = stable_hash(&format!(
            "{dedup:?} quarter_size={} bootstrap={}",
            replay.quarter_size(),
            config.bootstrap_quarters
        ));
        let mut system = DedupSystem::new(cluster, dedup);
        let mut service = IngestService {
            batch_high_water: 0,
            cumulative_digest: 0,
            skipped: Vec::new(),
            generation: 0,
            lagged_pairs: 0,
            recovered_fallback: false,
            config_digest,
            system,
            config,
        };
        let Some((ckpt, fallback)) = service.load_newest_checkpoint()? else {
            return Ok(service);
        };
        if ckpt.config_digest != config_digest {
            return Err(IngestError::Checkpoint(format!(
                "config digest mismatch: checkpoint {:016x}, service {:016x}",
                ckpt.config_digest, config_digest
            )));
        }
        // Recovery replay: everything outside the store is a pure function
        // of the replay schedule. Re-ingest the committed batches' reports
        // in arrival order (skipped batches never arrived), then restore
        // the store snapshot over the top.
        system = std::mem::replace(
            &mut service.system,
            DedupSystem::new(Cluster::local(1), DedupConfig::default()),
        );
        for batch in 0..ckpt.batch_high_water {
            if ckpt.skipped.contains(&batch) {
                continue;
            }
            for r in replay.quarter_reports(batch) {
                system.add_report(&r);
            }
        }
        system.restore_store(ckpt.store);
        if system.report_count() as u64 != ckpt.reports {
            return Err(IngestError::Checkpoint(format!(
                "recovery replay mismatch: {} reports, checkpoint says {}",
                system.report_count(),
                ckpt.reports
            )));
        }
        if system.interner_len() as u64 != ckpt.interner_tokens {
            return Err(IngestError::Checkpoint(format!(
                "recovery replay mismatch: {} interned tokens, checkpoint says {}",
                system.interner_len(),
                ckpt.interner_tokens
            )));
        }
        let centres = centres_digest(system.store());
        if centres != ckpt.centres_digest {
            return Err(IngestError::Checkpoint(format!(
                "restored training set digest {:016x} != checkpointed {:016x}",
                centres, ckpt.centres_digest
            )));
        }
        system
            .cluster()
            .journal()
            .record(EventKind::IngestRecovered {
                generation: ckpt.generation,
                batch_high_water: ckpt.batch_high_water,
                fallback,
            });
        service.system = system;
        service.batch_high_water = ckpt.batch_high_water;
        service.cumulative_digest = ckpt.cumulative_digest;
        service.skipped = ckpt.skipped;
        service.lagged_pairs = ckpt.lagged_pairs;
        service.generation = ckpt.generation + 1;
        service.recovered_fallback = fallback;
        Ok(service)
    }

    /// The wrapped system (store, report count, cluster).
    pub fn system(&self) -> &DedupSystem {
        &self.system
    }

    /// Cumulative detection digest over every committed batch — the
    /// bit-identity witness for crash recovery.
    pub fn cumulative_digest(&self) -> u64 {
        self.cumulative_digest
    }

    /// Next batch to run; everything below is committed, quarantined or
    /// skipped.
    pub fn batch_high_water(&self) -> u64 {
        self.batch_high_water
    }

    /// Batches quarantined or configured to never arrive.
    pub fn skipped(&self) -> &[u64] {
        &self.skipped
    }

    /// Did the most recent [`IngestService::open`] fall back past a corrupt
    /// newest checkpoint generation?
    pub fn recovered_with_fallback(&self) -> bool {
        self.recovered_fallback
    }

    /// Run report of the cluster this service executes on (includes the
    /// per-batch `ingest` section).
    pub fn job_report(&self) -> sparklet::JobReport {
        self.system.job_report()
    }

    /// Run the service through quarter `through` (exclusive), committing a
    /// checkpoint after every batch. Returns the number of batches
    /// committed by this call. On a driver-kill error the instance is
    /// dead: drop it and [`IngestService::open`] again.
    pub fn run(&mut self, replay: &QuarterlyReplay, through: u64) -> Result<u64, IngestError> {
        let through = through.min(replay.quarters());
        let mut committed = 0u64;
        while self.batch_high_water < through {
            let batch = self.batch_high_water;
            if batch == 0 {
                self.run_bootstrap(replay)?;
                committed += 1;
                continue;
            }
            if self.config.skip_batches.contains(&batch) {
                self.skipped.push(batch);
                self.batch_high_water += 1;
                self.write_checkpoint()?;
                continue;
            }
            let deferrals = self.admission_gate(batch);
            committed += self.run_batch(replay, batch, deferrals)?;
        }
        Ok(committed)
    }

    /// Ingest the labelled bootstrap prefix (quarters
    /// `0..bootstrap_quarters`) as one unit and commit the first
    /// checkpoint. Bootstrap failures are not quarantined — without the
    /// initial labelled stores the service cannot run at all.
    fn run_bootstrap(&mut self, replay: &QuarterlyReplay) -> Result<(), IngestError> {
        let quarters = self.config.bootstrap_quarters.min(replay.quarters());
        let prefix_slots = replay.quarter_range(quarters - 1).end;
        let labelled = replay.labelled_pairs_within(prefix_slots);
        let reports: Vec<AdrReport> = (0..quarters)
            .flat_map(|q| replay.quarter_reports(q))
            .collect();
        let mut attempt = 0u64;
        loop {
            self.cluster().driver_fault_point("bootstrap-start")?;
            let guard = self.system.begin_batch();
            match self.system.bootstrap(&reports, &labelled) {
                Ok(()) => break,
                Err(e) if e.is_driver_kill() => return Err(e.into()),
                Err(e) => {
                    self.system.rollback_batch(guard);
                    attempt += 1;
                    if attempt > self.config.max_batch_retries as u64 {
                        return Err(e.into());
                    }
                    self.charge_backoff(0, attempt);
                }
            }
        }
        self.cluster().driver_fault_point("bootstrap-done")?;
        // The bootstrap contributes nothing to the cumulative digest (it
        // emits no detections); it advances the high-water mark past the
        // whole labelled prefix in one step.
        self.batch_high_water = quarters;
        let bytes = self.write_checkpoint()?;
        self.cluster().driver_fault_point("bootstrap-committed")?;
        self.cluster()
            .journal()
            .record(EventKind::IngestBatchCommitted {
                batch: 0,
                reports: reports.len() as u64,
                detections: 0,
                duplicates: 0,
                retries: attempt,
                deferrals: 0,
                latency_us: 0,
                checkpoint_bytes: bytes,
            });
        Ok(())
    }

    /// One detection micro-batch: attempt (with rollback + backoff on
    /// transient failure), fold the digest, checkpoint, journal. Returns 1
    /// if the batch committed, 0 if it was quarantined.
    fn run_batch(
        &mut self,
        replay: &QuarterlyReplay,
        batch: u64,
        deferrals: u64,
    ) -> Result<u64, IngestError> {
        let reports = replay.quarter_reports(batch);
        let poisoned = self.config.poison_batches.contains(&batch);
        let mut attempt = 0u64;
        self.cluster().driver_fault_point("batch-start")?;
        let detections = loop {
            let latency_start = self.cluster().journal().now_us();
            let guard = self.system.begin_batch();
            let result = if poisoned {
                Err(SparkletError::User(format!(
                    "poisoned batch {batch} (injected)"
                )))
            } else {
                self.system.detect_new(&reports)
            };
            match result {
                Ok(dets) => break (dets, latency_start),
                Err(e) if e.is_driver_kill() => return Err(e.into()),
                Err(e) => {
                    self.system.rollback_batch(guard);
                    attempt += 1;
                    if attempt > self.config.max_batch_retries as u64 {
                        self.quarantine(batch, &reports, attempt, &e)?;
                        return Ok(0);
                    }
                    self.charge_backoff(batch, attempt);
                }
            }
        };
        let (detections, latency_start) = detections;
        self.cluster().driver_fault_point("batch-detected")?;
        let duplicates = detections.iter().filter(|d| d.is_duplicate).count() as u64;
        self.cumulative_digest = stable_hash(&(
            self.cumulative_digest,
            batch,
            detections_digest(&detections),
        ));
        self.lagged_pairs = detections.len() as u64;
        self.batch_high_water += 1;
        let bytes = self.write_checkpoint()?;
        self.cluster().driver_fault_point("batch-committed")?;
        let latency = self
            .cluster()
            .journal()
            .now_us()
            .saturating_sub(latency_start);
        self.cluster()
            .journal()
            .record(EventKind::IngestBatchCommitted {
                batch,
                reports: reports.len() as u64,
                detections: detections.len() as u64,
                duplicates,
                retries: attempt,
                deferrals,
                latency_us: latency,
                checkpoint_bytes: bytes,
            });
        Ok(1)
    }

    /// Bounded-lag admission gate: while the engine's spill-resident bytes
    /// or the in-flight pair count exceed their caps, defer the batch on
    /// the virtual clock and drain completed shuffle/cache state. Returns
    /// the deferrals charged. Deferrals never touch detection state, so
    /// they cannot perturb the digest.
    fn admission_gate(&mut self, batch: u64) -> u64 {
        let mut deferrals = 0u64;
        loop {
            let resident: u64 = self.cluster().spill().resident().iter().sum();
            let resident_over =
                self.config.max_resident_bytes > 0 && resident > self.config.max_resident_bytes;
            let lag_over = self.config.max_lagged_pairs > 0
                && self.lagged_pairs > self.config.max_lagged_pairs;
            if !(resident_over || lag_over) || deferrals >= self.config.max_deferrals as u64 {
                return deferrals;
            }
            deferrals += 1;
            self.cluster().journal().record(EventKind::IngestDeferred {
                batch,
                resident_bytes: resident,
                lagged_pairs: self.lagged_pairs,
                waited_us: self.config.defer_us,
            });
            self.cluster()
                .charge_driver_stage("ingest-defer", self.config.defer_us);
            // Model the drain the wait buys: completed shuffle buckets and
            // cached blocks release their resident accounting, and the
            // previous batch's feedback pairs are fully absorbed.
            self.cluster().shuffles().clear();
            self.cluster().blocks().clear();
            self.lagged_pairs = 0;
        }
    }

    /// Exponential backoff with deterministic jitter, charged to the
    /// virtual clock: `min(base·2^(attempt−1), cap) + hash(seed, batch,
    /// attempt) % (jitter+1)`.
    fn charge_backoff(&self, batch: u64, attempt: u64) {
        let shift = (attempt - 1).min(20) as u32;
        let base = self
            .config
            .backoff_base_us
            .saturating_mul(1u64 << shift)
            .min(self.config.backoff_cap_us);
        let jitter = stable_hash(&(self.config_digest, batch, attempt))
            % (self.config.backoff_jitter_us + 1);
        self.cluster()
            .charge_driver_stage("ingest-backoff", base + jitter);
    }

    /// Quarantine a poison batch: journal it, dump it to `quarantine.log`,
    /// mark it skipped and commit a checkpoint so a restart does not retry
    /// it. Quarantined batches contribute nothing to the digest — the
    /// service state is exactly as if the batch never arrived.
    fn quarantine(
        &mut self,
        batch: u64,
        reports: &[AdrReport],
        attempts: u64,
        error: &SparkletError,
    ) -> Result<(), IngestError> {
        let path = self.config.checkpoint_dir.join("quarantine.log");
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        writeln!(
            file,
            "batch {batch} reports {} attempts {attempts} reason {error}",
            reports.len()
        )
        .map_err(io_err)?;
        for r in reports {
            writeln!(file, "  report {}", r.id).map_err(io_err)?;
        }
        self.cluster()
            .journal()
            .record(EventKind::IngestQuarantined {
                batch,
                reports: reports.len() as u64,
                attempts,
                reason: error.to_string(),
            });
        self.skipped.push(batch);
        self.batch_high_water += 1;
        self.write_checkpoint()?;
        Ok(())
    }

    fn cluster(&self) -> &Cluster {
        self.system.cluster()
    }

    fn checkpoint_path(&self, generation: u64) -> PathBuf {
        self.config
            .checkpoint_dir
            .join(format!("ckpt-{generation:08}.ckpt"))
    }

    /// Serialise the current state, write it to a temp file, fsync, and
    /// atomically rename it into place; then garbage-collect generations
    /// beyond `keep_checkpoints`. A crash anywhere before the rename
    /// leaves only the previous generations visible; the torn-write fault
    /// truncates the serialised bytes first, so the renamed file fails its
    /// CRC and recovery falls back.
    fn write_checkpoint(&mut self) -> Result<u64, IngestError> {
        let generation = self.generation;
        let store_snapshot = self.system.store().snapshot();
        let mut body = String::with_capacity(store_snapshot.len() + 512);
        body.push_str(&format!("ingest v{CHECKPOINT_VERSION}\n"));
        body.push_str(&format!("config {:016x}\n", self.config_digest));
        body.push_str(&format!("generation {generation}\n"));
        body.push_str(&format!("batch_high_water {}\n", self.batch_high_water));
        body.push_str(&format!(
            "cumulative_digest {:016x}\n",
            self.cumulative_digest
        ));
        body.push_str(&format!("lagged_pairs {}\n", self.lagged_pairs));
        body.push_str(&format!("reports {}\n", self.system.report_count()));
        body.push_str(&format!("interner_tokens {}\n", self.system.interner_len()));
        body.push_str(&format!(
            "centres {:016x}\n",
            centres_digest(self.system.store())
        ));
        body.push_str(&format!("skipped {}\n", self.skipped.len()));
        for b in &self.skipped {
            body.push_str(&format!("{b}\n"));
        }
        body.push_str(&format!("store {}\n", store_snapshot.len()));
        body.push_str(&store_snapshot);
        let crc = stable_hash(&body);
        body.push_str(&format!("crc {crc:016x}\n"));
        let mut bytes = body.into_bytes();
        if let Some(torn) = self.config.torn_write {
            if torn.generation == generation {
                bytes.truncate(torn.keep_bytes);
            }
        }
        let written = bytes.len() as u64;
        let tmp = self
            .config
            .checkpoint_dir
            .join(format!("ckpt-{generation:08}.tmp"));
        {
            let mut f = fs::File::create(&tmp).map_err(io_err)?;
            f.write_all(&bytes).map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        self.cluster().driver_fault_point("commit-rename")?;
        fs::rename(&tmp, self.checkpoint_path(generation)).map_err(io_err)?;
        self.generation = generation + 1;
        if generation >= self.config.keep_checkpoints as u64 {
            let stale = generation - self.config.keep_checkpoints as u64;
            let _ = fs::remove_file(self.checkpoint_path(stale));
        }
        self.cluster().charge_driver_stage(
            "ingest-checkpoint",
            CHECKPOINT_BASE_US + written.div_ceil(1024) * CHECKPOINT_US_PER_KIB,
        );
        Ok(written)
    }

    /// Find and parse the newest valid checkpoint, trying older
    /// generations when the newest is corrupt or truncated. Returns the
    /// checkpoint and whether a fallback happened.
    fn load_newest_checkpoint(&self) -> Result<Option<(Checkpoint, bool)>, IngestError> {
        let mut generations: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&self.config.checkpoint_dir).map_err(io_err)? {
            let name = entry.map_err(io_err)?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(g) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".ckpt"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                generations.push(g);
            }
        }
        generations.sort_unstable_by(|a, b| b.cmp(a));
        for (rank, &generation) in generations.iter().enumerate() {
            let raw = fs::read_to_string(self.checkpoint_path(generation)).map_err(io_err)?;
            match parse_checkpoint(&raw) {
                Ok(ckpt) => return Ok(Some((ckpt, rank > 0))),
                Err(_) => continue, // corrupt/torn: fall back a generation
            }
        }
        Ok(None)
    }
}

/// Parse and CRC-verify a serialised checkpoint. Pure; never panics on
/// corrupt input.
fn parse_checkpoint(raw: &str) -> Result<Checkpoint, String> {
    // The CRC line covers every byte before it.
    let crc_at = raw
        .rfind("crc ")
        .ok_or_else(|| "missing crc line".to_string())?;
    if crc_at == 0 || raw.as_bytes()[crc_at - 1] != b'\n' {
        return Err("crc marker not at line start".into());
    }
    let body = &raw[..crc_at];
    let crc_line = raw[crc_at..].trim_end();
    let stated = u64::from_str_radix(crc_line.trim_start_matches("crc ").trim(), 16)
        .map_err(|_| format!("bad crc line: {crc_line:?}"))?;
    let actual = stable_hash(&body.to_string());
    if stated != actual {
        return Err(format!(
            "crc mismatch: stated {stated:016x}, actual {actual:016x}"
        ));
    }
    fn next_line<'a>(rest: &mut &'a str) -> Result<&'a str, String> {
        let nl = rest.find('\n').ok_or("truncated checkpoint")?;
        let line = &rest[..nl];
        *rest = &rest[nl + 1..];
        Ok(line)
    }
    fn field<'a>(rest: &mut &'a str, name: &str) -> Result<&'a str, String> {
        let line = next_line(rest)?;
        line.strip_prefix(name)
            .map(|s| s.trim())
            .ok_or_else(|| format!("expected {name}, got {line:?}"))
    }
    fn hex(s: &str, name: &str) -> Result<u64, String> {
        u64::from_str_radix(s, 16).map_err(|_| format!("bad {name}: {s:?}"))
    }
    fn int(s: &str, name: &str) -> Result<u64, String> {
        s.parse().map_err(|_| format!("bad {name}: {s:?}"))
    }
    let mut rest = body;
    let header = next_line(&mut rest)?;
    let version: u32 = header
        .strip_prefix("ingest v")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("bad checkpoint header: {header:?}"))?;
    if version != CHECKPOINT_VERSION {
        return Err(format!(
            "unsupported checkpoint version {version} (supported: {CHECKPOINT_VERSION})"
        ));
    }
    let config_digest = hex(field(&mut rest, "config")?, "config")?;
    let generation = int(field(&mut rest, "generation")?, "generation")?;
    let batch_high_water = int(field(&mut rest, "batch_high_water")?, "batch_high_water")?;
    let cumulative_digest = hex(field(&mut rest, "cumulative_digest")?, "cumulative_digest")?;
    let lagged_pairs = int(field(&mut rest, "lagged_pairs")?, "lagged_pairs")?;
    let reports = int(field(&mut rest, "reports")?, "reports")?;
    let interner_tokens = int(field(&mut rest, "interner_tokens")?, "interner_tokens")?;
    let centres_digest = hex(field(&mut rest, "centres")?, "centres")?;
    let skipped_count = int(field(&mut rest, "skipped")?, "skipped")? as usize;
    if skipped_count > batch_high_water as usize {
        return Err(format!(
            "skipped count {skipped_count} exceeds high-water mark {batch_high_water}"
        ));
    }
    let mut skipped = Vec::with_capacity(skipped_count);
    for _ in 0..skipped_count {
        skipped.push(int(next_line(&mut rest)?, "skipped batch")?);
    }
    let store_len = int(field(&mut rest, "store")?, "store")? as usize;
    if store_len > rest.len() {
        return Err(format!(
            "store length {store_len} exceeds remaining {} bytes",
            rest.len()
        ));
    }
    let store = PairStore::restore(&rest[..store_len])?;
    if !rest[store_len..].is_empty() {
        return Err("trailing data after store snapshot".into());
    }
    Ok(Checkpoint {
        generation,
        config_digest,
        batch_high_water,
        cumulative_digest,
        lagged_pairs,
        reports,
        interner_tokens,
        centres_digest,
        skipped,
        store,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_synth::{QuarterlyReplay, StreamingCorpus, SynthConfig};
    use fastknn::FastKnnConfig;

    fn replay(n: usize, dups: usize, seed: u64, quarter: u64) -> QuarterlyReplay {
        QuarterlyReplay::new(
            StreamingCorpus::new(SynthConfig::small(n, dups, seed)),
            quarter,
        )
    }

    fn dedup_config() -> DedupConfig {
        DedupConfig {
            bootstrap_negatives: 300,
            use_blocking: true,
            knn: FastKnnConfig {
                theta: 0.0,
                b: 8,
                ..FastKnnConfig::default()
            },
            ..DedupConfig::default()
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dedup-ingest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_run_commits_batches_and_survives_reopen() {
        let dir = temp_dir("fresh");
        let rp = replay(240, 14, 11, 60);
        let mut svc = IngestService::open(
            Cluster::local(2),
            dedup_config(),
            IngestConfig::new(&dir),
            &rp,
        )
        .unwrap();
        assert_eq!(svc.batch_high_water(), 0);
        let committed = svc.run(&rp, 4).unwrap();
        assert_eq!(committed, 4, "bootstrap + 3 detect batches");
        assert_eq!(svc.batch_high_water(), 4);
        let digest = svc.cumulative_digest();
        assert_ne!(digest, 0);
        let report = svc.job_report();
        assert_eq!(report.ingest.batches.len(), 4);
        assert_eq!(report.ingest.batches_quarantined, 0);
        drop(svc);
        // Reopen: nothing left to do, state is exactly where it was.
        let svc2 = IngestService::open(
            Cluster::local(2),
            dedup_config(),
            IngestConfig::new(&dir),
            &rp,
        )
        .unwrap();
        assert_eq!(svc2.batch_high_water(), 4);
        assert_eq!(svc2.cumulative_digest(), digest);
        assert!(!svc2.recovered_with_fallback());
        let tags: Vec<&str> = svc2
            .cluster()
            .journal()
            .events()
            .iter()
            .map(|e| e.kind.tag())
            .collect();
        assert!(tags.contains(&"ingest_recovered"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_round_trip_is_exact() {
        let dir = temp_dir("roundtrip");
        let rp = replay(240, 14, 11, 60);
        let mut svc = IngestService::open(
            Cluster::local(2),
            dedup_config(),
            IngestConfig::new(&dir),
            &rp,
        )
        .unwrap();
        svc.run(&rp, 3).unwrap();
        let newest = svc.checkpoint_path(svc.generation - 1);
        let raw = fs::read_to_string(newest).unwrap();
        let ckpt = parse_checkpoint(&raw).unwrap();
        assert_eq!(ckpt.batch_high_water, 3);
        assert_eq!(ckpt.cumulative_digest, svc.cumulative_digest());
        assert_eq!(ckpt.reports, svc.system().report_count() as u64);
        assert_eq!(ckpt.centres_digest, centres_digest(svc.system().store()));
        // Flipping any byte of the body breaks the CRC.
        let mut torn = raw.clone().into_bytes();
        torn[20] ^= 1;
        assert!(parse_checkpoint(std::str::from_utf8(&torn).unwrap()).is_err());
        // Truncation at any point is detected, not mis-parsed.
        for cut in [1usize, raw.len() / 2, raw.len() - 2] {
            let mut c = cut;
            while !raw.is_char_boundary(c) {
                c -= 1;
            }
            assert!(parse_checkpoint(&raw[..c]).is_err(), "cut at {c}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn old_generations_are_garbage_collected() {
        let dir = temp_dir("gc");
        let rp = replay(240, 14, 11, 40);
        let mut svc = IngestService::open(
            Cluster::local(2),
            dedup_config(),
            IngestConfig::new(&dir),
            &rp,
        )
        .unwrap();
        svc.run(&rp, 6).unwrap();
        let kept: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".ckpt"))
            .collect();
        assert_eq!(kept.len(), 2, "keep_checkpoints=2: {kept:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
