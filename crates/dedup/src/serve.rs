//! Low-latency serving over the live dedup system (ROADMAP item 2).
//!
//! The Fig. 1 pipeline exists so downstream pharmacovigilance queries can be
//! answered from a clean store. This module serves the two canonical read
//! paths:
//!
//! * **duplicate lookups** — is this incoming report a duplicate of
//!   something already in the database? Probes run through the blocking
//!   index and [`fastknn::FastKnn::classify_batch`], with an O(1)
//!   short-circuit through [`PairStore`]'s per-report member index for
//!   reports already known to be duplicates;
//! * **signal queries** — how strong is a drug–event association? Answered
//!   as a reporting odds ratio (ROR) with Bayesian shrinkage from 2×2
//!   contingency tables maintained incrementally as sparklet aggregations
//!   and refreshed after each ingest commit. Every query is answered from
//!   both the raw and the deduplicated store, quantifying the ROR inflation
//!   duplicates cause — the "why dedup matters" experiment.
//!
//! The performance core is an **adaptive micro-batching admission queue** on
//! the virtual clock: requests coalesce under a batch-or-deadline policy
//! (the batch target adapts to the observed arrival rate; queueing delay is
//! bounded by the deadline) into one contiguous [`DistBatch`] per
//! micro-batch, so a single classify job amortises chunk dispatch across
//! every probe in the batch — exactly like the batch-columnar operators.
//! Serving is read-only: the service snapshots what it needs at
//! [`ServeService::refresh`] and never mutates the [`DedupSystem`], so
//! ingest and serve interleave without interference.

use crate::blocking::BlockingIndex;
use crate::distance::{pair_distance, ProcessedReport};
use crate::pairing::{CorpusIndex, DistBatch};
use crate::store::PairStore;
use crate::system::DedupSystem;
use adr_model::{AdrReport, ReportId};
use fastknn::{FastKnn, FastKnnConfig};
use sparklet::{stable_hash, Cluster, EventKind, Result, SparkletError};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use textprep::{Pipeline, TokenInterner};

/// Serving knobs: the batch-or-deadline admission policy and the virtual
/// cost model of a dispatch.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Largest micro-batch ever dispatched. `1` disables micro-batching
    /// (request-at-a-time; see [`ServeConfig::request_at_a_time`]).
    pub max_batch: usize,
    /// Bound on queueing delay (µs): a batch dispatches when it reaches the
    /// adaptive target size *or* its oldest request has waited this long,
    /// whichever comes first.
    pub deadline_us: u64,
    /// Fixed virtual cost charged per dispatch (µs) — the overhead
    /// micro-batching amortises.
    pub dispatch_overhead_us: u64,
    /// Marginal virtual cost per request in a dispatch (µs).
    pub per_request_us: u64,
    /// Candidate partners considered per probe (smallest report ids first —
    /// deterministic whatever the arrival interleaving).
    pub max_candidates: usize,
    /// Bayesian shrinkage `s` added to every 2×2 cell before the ROR.
    pub shrinkage: f64,
    /// Capacity of the bounded signal-query memo. `0` disables it.
    pub memo_entries: usize,
    /// Partitions for the contingency aggregation jobs.
    pub agg_partitions: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 64,
            deadline_us: 2_000,
            dispatch_overhead_us: 150,
            per_request_us: 20,
            max_candidates: 256,
            shrinkage: 0.5,
            memo_entries: 1 << 16,
            agg_partitions: 4,
        }
    }
}

impl ServeConfig {
    /// The same cost model with micro-batching disabled: every request
    /// dispatches alone. The baseline the batched path is gated against.
    pub fn request_at_a_time(self) -> Self {
        ServeConfig {
            max_batch: 1,
            ..self
        }
    }
}

/// One serving request.
#[derive(Debug, Clone)]
pub enum ServeQuery {
    /// Is this report a duplicate of something in the database?
    Duplicate {
        /// The probe report (need not be ingested).
        report: AdrReport,
    },
    /// How strong is the association between a drug token and an ADR token?
    /// Both are single lowercased words, matched against the corpus token
    /// tables ([`crate::distance::ProcessedReport::drug_tokens`] /
    /// `adr_tokens`).
    Signal {
        /// Drug-name word.
        drug: String,
        /// ADR-name word.
        event: String,
    },
}

/// A timestamped request in an open-loop arrival stream.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Virtual arrival time (µs); streams must be sorted by this.
    pub arrival_us: u64,
    /// The query.
    pub query: ServeQuery,
}

/// One classified candidate partner of a duplicate probe.
#[derive(Debug, Clone, PartialEq)]
pub struct DuplicateMatch {
    /// The database report compared against.
    pub candidate: ReportId,
    /// Eq. 5 score.
    pub score: f64,
    /// Eq. 6 decision at the model's θ.
    pub is_duplicate: bool,
}

/// A 2×2 contingency table with its reporting odds ratio.
///
/// `a` = reports with both drug and event, `b` = drug without event,
/// `c` = event without drug, `d` = neither;
/// `ROR = ((a+s)(d+s)) / ((b+s)(c+s))` with shrinkage `s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalStats {
    /// Reports mentioning both the drug and the event.
    pub a: u64,
    /// Reports mentioning the drug but not the event.
    pub b: u64,
    /// Reports mentioning the event but not the drug.
    pub c: u64,
    /// Reports mentioning neither.
    pub d: u64,
    /// Shrunk reporting odds ratio.
    pub ror: f64,
}

impl SignalStats {
    fn from_counts(a: u64, drug_total: u64, event_total: u64, n: u64, s: f64) -> Self {
        let b = drug_total.saturating_sub(a);
        let c = event_total.saturating_sub(a);
        let d = n.saturating_sub(a + b + c);
        let ror = ((a as f64 + s) * (d as f64 + s)) / ((b as f64 + s) * (c as f64 + s));
        SignalStats { a, b, c, d, ror }
    }
}

/// The answer to one [`ServeQuery`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeAnswer {
    /// Duplicate-lookup result.
    Duplicate {
        /// Stored duplicate pairs the probe's id already participates in
        /// (answered O(1) from the store's member index). When positive the
        /// probe short-circuits: `matches` is empty.
        known_memberships: u32,
        /// Classified candidate partners, in candidate-id order.
        matches: Vec<DuplicateMatch>,
    },
    /// Signal-query result from both stores.
    Signal {
        /// Contingency stats over every ingested report.
        raw: SignalStats,
        /// The same stats with the later member of every known duplicate
        /// pair excluded.
        deduped: SignalStats,
    },
}

/// Incrementally-maintained contingency counts: per-(drug, event) pair
/// co-mention counts plus the two marginals and the report total.
#[derive(Debug, Clone, Default)]
struct ContingencyTable {
    pair: HashMap<(u32, u32), u64>,
    drug: HashMap<u32, u64>,
    event: HashMap<u32, u64>,
    reports: u64,
}

impl ContingencyTable {
    fn absorb(&mut self, counts: HashMap<(u8, u32, u32), u64>, reports: u64) {
        self.reports += reports;
        for ((kind, x, y), n) in counts {
            match kind {
                0 => *self.pair.entry((x, y)).or_insert(0) += n,
                1 => *self.drug.entry(x).or_insert(0) += n,
                _ => *self.event.entry(x).or_insert(0) += n,
            }
        }
    }

    fn pair_count(&self, d: u32, e: u32) -> u64 {
        self.pair.get(&(d, e)).copied().unwrap_or(0)
    }

    fn drug_count(&self, d: u32) -> u64 {
        self.drug.get(&d).copied().unwrap_or(0)
    }

    fn event_count(&self, e: u32) -> u64 {
        self.event.get(&e).copied().unwrap_or(0)
    }
}

/// Bounded signal-query memo, mirroring [`crate::pairing::DistanceMemo`]: a
/// signal answer is a pure function of the contingency stores, so memo hits
/// are bit-identical to recomputation. The whole memo is purged at every
/// [`ServeService::refresh`] — any ingest commit may change any cell.
#[derive(Debug, Clone)]
pub struct SignalMemo {
    entries: HashMap<(u32, u32), (SignalStats, SignalStats)>,
    capacity: usize,
    hits: u64,
    lookups: u64,
}

impl SignalMemo {
    /// Empty memo holding at most `capacity` entries (0 disables it).
    pub fn with_capacity(capacity: usize) -> Self {
        SignalMemo {
            entries: HashMap::new(),
            capacity,
            hits: 0,
            lookups: 0,
        }
    }

    /// Memoised entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the memo empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups answered from the memo so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total lookups so far.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    fn get(&mut self, d: u32, e: u32) -> Option<(SignalStats, SignalStats)> {
        self.lookups += 1;
        let hit = self.entries.get(&(d, e)).copied();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    fn insert(&mut self, d: u32, e: u32, stats: (SignalStats, SignalStats)) {
        if self.entries.len() < self.capacity {
            self.entries.entry((d, e)).or_insert(stats);
        }
    }

    fn purge(&mut self) {
        self.entries.clear();
    }
}

/// The serving service: read-only snapshots of the dedup system's state
/// (refreshed after each ingest commit) plus the adaptive micro-batching
/// admission queue and the incremental signal stores.
pub struct ServeService {
    cluster: Cluster,
    config: ServeConfig,
    knn: FastKnnConfig,
    pipeline: Pipeline,
    /// Clone of the system interner at the last refresh. Probe reports
    /// intern into this copy: corpus-known tokens resolve to their stable
    /// ids; novel tokens get fresh ids that provably cannot change any
    /// Jaccard distance (intersections only ever involve corpus-known ids
    /// and union sizes are id-independent), so serve results are invariant
    /// to probe interleaving order.
    interner: TokenInterner,
    corpus: CorpusIndex,
    blocking: BlockingIndex,
    store: PairStore,
    model: Option<FastKnn>,
    /// Contingency counts over every counted report.
    raw: ContingencyTable,
    /// Contingency contributions of excluded (later-duplicate) reports;
    /// the deduplicated store is `raw − excluded`, evaluated per query.
    excluded_table: ContingencyTable,
    /// Reports already folded into `raw`.
    counted: HashSet<ReportId>,
    /// Arrival-order prefix already counted (suffix = fresh work).
    counted_len: usize,
    /// Reports excluded from the deduplicated store (the later member of
    /// every known duplicate pair).
    excluded: HashSet<ReportId>,
    memo: SignalMemo,
    /// Micro-batches dispatched over the service lifetime (journal index).
    batches_served: u64,
}

/// The outcome of one open-loop run: per-request answers and latencies in
/// request order, queue statistics, and the content digest.
#[derive(Debug, Clone)]
pub struct ServeRunSummary {
    /// Per-request answers, in request order.
    pub answers: Vec<ServeAnswer>,
    /// Per-request latencies (arrival → batch completion, µs).
    pub latencies_us: Vec<u64>,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Largest queue depth observed at any dispatch.
    pub max_queue_depth: u64,
    /// Virtual service time summed over batches (µs).
    pub service_us: u64,
    /// First arrival → last completion (µs).
    pub elapsed_us: u64,
    /// Order-stable digest of every answer's content (not latencies): equal
    /// iff the per-request results are bit-identical.
    pub digest: u64,
}

impl ServeRunSummary {
    /// Requests answered.
    pub fn requests(&self) -> usize {
        self.answers.len()
    }

    /// Latency percentile (nearest-rank on the sorted latencies), µs.
    pub fn latency_percentile_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// Median latency, µs.
    pub fn p50_us(&self) -> u64 {
        self.latency_percentile_us(0.50)
    }

    /// Tail latency, µs.
    pub fn p99_us(&self) -> u64 {
        self.latency_percentile_us(0.99)
    }

    /// Sustained throughput over the run, requests per virtual second.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.answers.len() as f64 * 1e6 / self.elapsed_us as f64
        }
    }
}

impl ServeService {
    /// Build a service over a system's current state ([`ServeService::refresh`]
    /// runs once, fitting the classifier and the contingency stores).
    pub fn attach(system: &DedupSystem, config: ServeConfig) -> Result<Self> {
        let mut svc = ServeService {
            cluster: system.cluster().clone(),
            config,
            knn: system.config().knn,
            pipeline: *system.pipeline(),
            interner: TokenInterner::new(),
            corpus: Arc::new(HashMap::new()),
            blocking: BlockingIndex::default(),
            store: PairStore::new(0, 0),
            model: None,
            raw: ContingencyTable::default(),
            excluded_table: ContingencyTable::default(),
            counted: HashSet::new(),
            counted_len: 0,
            excluded: HashSet::new(),
            memo: SignalMemo::with_capacity(config.memo_entries),
            batches_served: 0,
        };
        svc.refresh(system)?;
        Ok(svc)
    }

    /// The signal-query memo (inspectable for hit statistics).
    pub fn memo(&self) -> &SignalMemo {
        &self.memo
    }

    /// Re-snapshot the system after an ingest commit: clone the interner,
    /// blocking index and pair store, re-share the corpus `Arc`, refit the
    /// classifier from the live labelled stores (amortised across every
    /// serve batch until the next refresh), fold the *new* arrival-order
    /// suffix into the contingency stores (a re-ingested report forces a
    /// full recount — its earlier contribution may be stale), and purge the
    /// signal memo.
    pub fn refresh(&mut self, system: &DedupSystem) -> Result<()> {
        self.pipeline = *system.pipeline();
        self.interner = system.interner().clone();
        self.corpus = Arc::clone(system.corpus());
        self.blocking = system.blocking().clone();
        self.store = system.store().clone();

        let order = system.arrival_order();
        let start = self.counted_len.min(order.len());
        let reingested = order.len() < self.counted_len
            || order[start..].iter().any(|id| self.counted.contains(id));
        if reingested {
            self.raw = ContingencyTable::default();
            self.excluded_table = ContingencyTable::default();
            self.counted.clear();
            self.excluded.clear();
            let mut distinct: Vec<ReportId> = Vec::with_capacity(order.len());
            for &id in order {
                if self.counted.insert(id) {
                    distinct.push(id);
                }
            }
            let n = distinct.len() as u64;
            let counts = self.count_contributions(distinct)?;
            self.raw.absorb(counts, n);
        } else {
            let mut fresh: Vec<ReportId> = Vec::new();
            for &id in &order[start..] {
                if self.counted.insert(id) {
                    fresh.push(id);
                }
            }
            if !fresh.is_empty() {
                let n = fresh.len() as u64;
                let counts = self.count_contributions(fresh)?;
                self.raw.absorb(counts, n);
            }
        }
        self.counted_len = order.len();

        // Newly known duplicate pairs exclude their later (hi) member from
        // the deduplicated store; only the new exclusions are re-counted.
        let mut newly_excluded: Vec<ReportId> = Vec::new();
        for pid in self.store.duplicate_pairs() {
            if self.counted.contains(&pid.hi) && self.excluded.insert(pid.hi) {
                newly_excluded.push(pid.hi);
            }
        }
        if !newly_excluded.is_empty() {
            newly_excluded.sort_unstable();
            newly_excluded.dedup();
            let n = newly_excluded.len() as u64;
            let counts = self.count_contributions(newly_excluded)?;
            self.excluded_table.absorb(counts, n);
        }

        // Any commit may have changed any contingency cell.
        self.memo.purge();

        let train = self.store.training_pairs();
        self.model = if train.is_empty() {
            None
        } else {
            Some(FastKnn::fit(&self.cluster, &train, self.knn)?)
        };
        Ok(())
    }

    /// Count the contingency contributions of `ids` as a sparklet
    /// aggregation: one key per distinct drug token, per distinct ADR token
    /// and per (drug, ADR) combination of each report, counted by value
    /// across the cluster.
    fn count_contributions(&self, ids: Vec<ReportId>) -> Result<HashMap<(u8, u32, u32), u64>> {
        if ids.is_empty() {
            return Ok(HashMap::new());
        }
        let corpus = Arc::clone(&self.corpus);
        let parts = self.config.agg_partitions.max(1);
        self.cluster
            .parallelize(ids, parts)
            .flat_map(move |id| {
                let Some(r) = corpus.get(&id) else {
                    return Vec::new();
                };
                let pairs = r.drug_tokens.len() * r.adr_tokens.len();
                let mut keys = Vec::with_capacity(r.drug_tokens.len() + r.adr_tokens.len() + pairs);
                for &d in &r.drug_tokens {
                    keys.push((1u8, d, 0u32));
                }
                for &e in &r.adr_tokens {
                    keys.push((2u8, e, 0u32));
                }
                for &d in &r.drug_tokens {
                    for &e in &r.adr_tokens {
                        keys.push((0u8, d, e));
                    }
                }
                keys
            })
            .count_by_value()
    }

    /// Answer one signal query from the stores (memoised).
    fn signal_stats(&mut self, drug: &str, event: &str) -> (SignalStats, SignalStats) {
        // Corpus-known words resolve to their stable token ids; a novel word
        // interns a fresh id whose counts are zero in every table.
        let d = self.interner.intern(&drug.to_lowercase());
        let e = self.interner.intern(&event.to_lowercase());
        if let Some(hit) = self.memo.get(d, e) {
            return hit;
        }
        let s = self.config.shrinkage;
        let (a, dt, et, n) = (
            self.raw.pair_count(d, e),
            self.raw.drug_count(d),
            self.raw.event_count(e),
            self.raw.reports,
        );
        let raw = SignalStats::from_counts(a, dt, et, n, s);
        let x = &self.excluded_table;
        let deduped = SignalStats::from_counts(
            a.saturating_sub(x.pair_count(d, e)),
            dt.saturating_sub(x.drug_count(d)),
            et.saturating_sub(x.event_count(e)),
            n.saturating_sub(x.reports),
            s,
        );
        self.memo.insert(d, e, (raw, deduped));
        (raw, deduped)
    }

    /// Answer one admitted micro-batch. All duplicate probes' candidate
    /// pairs coalesce into a single contiguous column batch, so one
    /// classify job (through the model's `ScratchPool`) amortises chunk
    /// dispatch across the whole batch.
    fn answer_batch(
        &mut self,
        requests: &[ServeRequest],
        answers: &mut [Option<ServeAnswer>],
    ) -> Result<()> {
        let mut rows = DistBatch::new();
        // Row ids must be stable per (probe, candidate) — never positional.
        // The classifier's balanced Voronoi assignment tie-breaks on the row
        // id, so a positional id would let batch composition leak into cell
        // choice and thence into scores. Hashing the pair keeps every row's
        // entire classify path identical whatever else shares the batch.
        let mut row_meta: HashMap<u64, ((ReportId, ReportId), Vec<(usize, ReportId)>)> =
            HashMap::new();
        for (slot, req) in requests.iter().enumerate() {
            match &req.query {
                ServeQuery::Duplicate { report } => {
                    let memberships = self.store.duplicate_memberships(report.id);
                    if memberships > 0 {
                        // O(1) through the store's per-report member index:
                        // the probe is already part of known duplicate pairs.
                        answers[slot] = Some(ServeAnswer::Duplicate {
                            known_memberships: memberships,
                            matches: Vec::new(),
                        });
                        continue;
                    }
                    let processed =
                        ProcessedReport::from_report(report, &self.pipeline, &mut self.interner);
                    let mut candidates = self.blocking.probe_candidates(&processed);
                    candidates.truncate(self.config.max_candidates);
                    for cand in candidates {
                        let Some(other) = self.corpus.get(&cand) else {
                            continue;
                        };
                        let key = (report.id, cand);
                        let mut id = stable_hash(&key);
                        loop {
                            match row_meta.get_mut(&id) {
                                None => {
                                    rows.push(id, &pair_distance(&processed, other), false);
                                    row_meta.insert(id, (key, vec![(slot, cand)]));
                                    break;
                                }
                                Some((existing, slots)) if *existing == key => {
                                    // Same probe offered twice in one batch:
                                    // one row answers every copy.
                                    slots.push((slot, cand));
                                    break;
                                }
                                // 64-bit collision between distinct pairs:
                                // chain deterministically to a fresh id.
                                Some(_) => id = stable_hash(&(id, 0x5eed_u64)),
                            }
                        }
                    }
                    answers[slot] = Some(ServeAnswer::Duplicate {
                        known_memberships: 0,
                        matches: Vec::new(),
                    });
                }
                ServeQuery::Signal { drug, event } => {
                    let (raw, deduped) = self.signal_stats(drug, event);
                    answers[slot] = Some(ServeAnswer::Signal { raw, deduped });
                }
            }
        }
        if !rows.is_empty() {
            let model = self.model.as_ref().ok_or_else(|| {
                SparkletError::User(
                    "serve: no trained model — refresh from a bootstrapped system".into(),
                )
            })?;
            // Per-row independent, so each request's matches are identical
            // whatever else shares the batch.
            for s in model.classify_batch(&rows)? {
                let (_, slots) = &row_meta[&s.id];
                for &(slot, cand) in slots {
                    if let Some(ServeAnswer::Duplicate { matches, .. }) = answers[slot].as_mut() {
                        matches.push(DuplicateMatch {
                            candidate: cand,
                            score: s.score,
                            is_duplicate: s.positive,
                        });
                    }
                }
            }
            // Classify returns rows in id (hash) order; present candidates
            // in candidate-id order.
            for a in answers.iter_mut() {
                if let Some(ServeAnswer::Duplicate { matches, .. }) = a {
                    matches.sort_by(|x, y| x.candidate.cmp(&y.candidate));
                }
            }
        }
        Ok(())
    }

    /// Drive an open-loop arrival stream (sorted by `arrival_us`) through
    /// the batch-or-deadline admission queue on the virtual clock.
    ///
    /// Each round computes the earliest moment the pending batch is either
    /// full (the adaptive target, `deadline_us / ema(inter-arrival)` clamped
    /// to `[1, max_batch]`) or its oldest request hits the deadline, then
    /// dispatches every request that has arrived by that moment (capped at
    /// `max_batch`). Service time is the engine's measured stage makespan
    /// for the batch's jobs plus the dispatch-overhead cost model — the
    /// per-dispatch overhead is what batching amortises.
    ///
    /// One coalesced journal event is recorded per dispatched batch, never
    /// per request, so arbitrarily long loads stay within the journal bound.
    pub fn run_open_loop(&mut self, requests: &[ServeRequest]) -> Result<ServeRunSummary> {
        assert!(
            requests
                .windows(2)
                .all(|w| w[0].arrival_us <= w[1].arrival_us),
            "open-loop stream must be sorted by arrival time"
        );
        let n = requests.len();
        let mut answers: Vec<Option<ServeAnswer>> = vec![None; n];
        let mut latencies: Vec<u64> = vec![0; n];
        let slots = {
            let c = self.cluster.config();
            (c.num_executors * c.cores_per_executor).max(1)
        };
        let cap = self.config.max_batch.max(1);
        let mut free_at: u64 = 0;
        // Arrival-rate estimate (µs between arrivals, integer EMA). Starts
        // at the deadline, so the target is 1 until the stream reveals its
        // rate — a cold queue never waits a full deadline for company that
        // is not coming.
        let mut ema_gap: u64 = self.config.deadline_us.max(1);
        let mut i = 0usize;
        let mut batches = 0u64;
        let mut max_queue_depth = 0u64;
        let mut service_total = 0u64;
        let mut last_completion = 0u64;
        while i < n {
            let target = ((self.config.deadline_us / ema_gap.max(1)).max(1) as usize).min(cap);
            let t_full = match requests.get(i + target - 1) {
                Some(r) => r.arrival_us,
                None => u64::MAX,
            };
            let t_deadline = requests[i]
                .arrival_us
                .saturating_add(self.config.deadline_us);
            let dispatch_at = free_at.max(t_full.min(t_deadline));
            let mut end = i + 1;
            while end < n && end - i < cap && requests[end].arrival_us <= dispatch_at {
                end += 1;
            }
            let queue_depth = requests[end..]
                .iter()
                .take_while(|r| r.arrival_us <= dispatch_at)
                .count() as u64;
            max_queue_depth = max_queue_depth.max(queue_depth);
            for w in requests[i..end].windows(2) {
                ema_gap = (3 * ema_gap + (w[1].arrival_us - w[0].arrival_us)) / 4;
            }
            if end - i == 1 && end < n {
                // A singleton still reveals the gap to its successor.
                ema_gap = (3 * ema_gap + (requests[end].arrival_us - requests[i].arrival_us)) / 4;
            }
            let memo_lookups0 = self.memo.lookups();
            let memo_hits0 = self.memo.hits();
            let stages_seen = self.cluster.clock().stages().len();
            self.answer_batch(&requests[i..end], &mut answers[i..end])?;
            let engine_us: u64 = self.cluster.clock().stages()[stages_seen..]
                .iter()
                .map(|s| s.makespan_us(slots))
                .sum();
            let batch_len = (end - i) as u64;
            let service_us = self.config.dispatch_overhead_us
                + self.config.per_request_us * batch_len
                + engine_us;
            let completion = dispatch_at + service_us;
            for (j, r) in requests[i..end].iter().enumerate() {
                latencies[i + j] = completion - r.arrival_us;
            }
            self.cluster
                .journal()
                .record(EventKind::ServeBatchExecuted {
                    batch: self.batches_served,
                    requests: batch_len,
                    queue_depth,
                    memo_lookups: self.memo.lookups() - memo_lookups0,
                    memo_hits: self.memo.hits() - memo_hits0,
                    service_us,
                    latency_us: completion - requests[i].arrival_us,
                });
            self.batches_served += 1;
            batches += 1;
            service_total += service_us;
            free_at = completion;
            last_completion = completion;
            i = end;
        }
        let answers: Vec<ServeAnswer> = answers
            .into_iter()
            .map(|a| a.expect("every admitted request is answered"))
            .collect();
        let digest = answers_digest(&answers);
        let elapsed_us = match requests.first() {
            Some(first) => last_completion.saturating_sub(first.arrival_us),
            None => 0,
        };
        Ok(ServeRunSummary {
            answers,
            latencies_us: latencies,
            batches,
            max_queue_depth,
            service_us: service_total,
            elapsed_us,
            digest,
        })
    }
}

/// Order-stable content digest over a slice of answers: equal iff every
/// answer is bit-identical (scores and RORs compare as `f64::to_bits`).
/// Latencies and batching are deliberately excluded — the digest pins the
/// invariant that admission policy must never change results.
pub fn answers_digest(answers: &[ServeAnswer]) -> u64 {
    let mut enc: Vec<u64> = Vec::with_capacity(answers.len() * 4);
    for a in answers {
        match a {
            ServeAnswer::Duplicate {
                known_memberships,
                matches,
            } => {
                enc.push(1);
                enc.push(*known_memberships as u64);
                enc.push(matches.len() as u64);
                for m in matches {
                    enc.push(m.candidate);
                    enc.push(m.score.to_bits());
                    enc.push(m.is_duplicate as u64);
                }
            }
            ServeAnswer::Signal { raw, deduped } => {
                enc.push(2);
                for s in [raw, deduped] {
                    enc.extend([s.a, s.b, s.c, s.d, s.ror.to_bits()]);
                }
            }
        }
    }
    stable_hash(&enc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::DedupConfig;
    use adr_synth::{Dataset, SynthConfig};

    fn served_system(seed: u64) -> (DedupSystem, Dataset) {
        let ds = Dataset::generate(&SynthConfig::small(250, 15, seed));
        let config = DedupConfig {
            bootstrap_negatives: 400,
            use_blocking: true,
            knn: fastknn::FastKnnConfig {
                theta: 0.0,
                b: 8,
                ..fastknn::FastKnnConfig::default()
            },
            ..DedupConfig::default()
        };
        let mut sys = DedupSystem::new(Cluster::local(2), config);
        sys.bootstrap(&ds.reports, &ds.duplicate_pairs).unwrap();
        (sys, ds)
    }

    fn at(arrival_us: u64, query: ServeQuery) -> ServeRequest {
        ServeRequest { arrival_us, query }
    }

    #[test]
    fn known_duplicate_member_short_circuits() {
        let (sys, ds) = served_system(1);
        let mut serve = ServeService::attach(&sys, ServeConfig::default()).unwrap();
        let member = ds.duplicate_pairs[0].hi;
        let probe = ds.reports.iter().find(|r| r.id == member).unwrap().clone();
        let out = serve
            .run_open_loop(&[at(0, ServeQuery::Duplicate { report: probe })])
            .unwrap();
        match &out.answers[0] {
            ServeAnswer::Duplicate {
                known_memberships,
                matches,
            } => {
                assert!(*known_memberships > 0, "bootstrapped pair is known");
                assert!(matches.is_empty(), "short-circuit skips classification");
            }
            other => panic!("unexpected answer {other:?}"),
        }
    }

    #[test]
    fn novel_probe_close_to_a_report_is_flagged() {
        let (sys, ds) = served_system(2);
        let mut serve = ServeService::attach(&sys, ServeConfig::default()).unwrap();
        // A verbatim copy of a non-duplicate report under a fresh id: the
        // zero-distance candidate pair must classify as duplicate.
        let dup_members: HashSet<ReportId> = sys
            .store()
            .duplicate_pairs()
            .flat_map(|p| [p.lo, p.hi])
            .collect();
        let mut probe = ds
            .reports
            .iter()
            .find(|r| !dup_members.contains(&r.id))
            .unwrap()
            .clone();
        let original = probe.id;
        probe.id = 9_999_999;
        let out = serve
            .run_open_loop(&[at(0, ServeQuery::Duplicate { report: probe })])
            .unwrap();
        match &out.answers[0] {
            ServeAnswer::Duplicate {
                known_memberships,
                matches,
            } => {
                assert_eq!(*known_memberships, 0);
                let hit = matches
                    .iter()
                    .find(|m| m.candidate == original)
                    .expect("the copied report must be a candidate");
                assert!(hit.is_duplicate, "zero distance must classify positive");
            }
            other => panic!("unexpected answer {other:?}"),
        }
    }

    #[test]
    fn signal_queries_show_ror_inflation_from_duplicates() {
        let (sys, _ds) = served_system(3);
        let mut serve = ServeService::attach(&sys, ServeConfig::default()).unwrap();
        // Aggregate over many drug/event words: raw counts include every
        // duplicate copy, so raw `a` cells must dominate deduped ones.
        let mut raw_a = 0u64;
        let mut dedup_a = 0u64;
        let lex = adr_synth::lexicon::drug_names(10);
        for drug in lex.iter() {
            let word = drug.split_whitespace().next().unwrap().to_string();
            let out = serve
                .run_open_loop(&[at(
                    0,
                    ServeQuery::Signal {
                        drug: word,
                        event: "rash".into(),
                    },
                )])
                .unwrap();
            if let ServeAnswer::Signal { raw, deduped } = &out.answers[0] {
                raw_a += raw.a;
                dedup_a += deduped.a;
                assert!(raw.a >= deduped.a, "dedup can only remove reports");
                assert!(raw.a + raw.b + raw.c + raw.d == raw.a + raw.b + raw.c + raw.d);
            }
        }
        assert!(raw_a >= dedup_a);
    }

    #[test]
    fn batching_policy_never_changes_results() {
        let (sys, ds) = served_system(4);
        let make_requests = || -> Vec<ServeRequest> {
            (0..40u64)
                .map(|i| {
                    if i % 3 == 0 {
                        at(
                            i * 100,
                            ServeQuery::Signal {
                                drug: "panadol".into(),
                                event: "nausea".into(),
                            },
                        )
                    } else {
                        let mut probe = ds.reports[(i as usize * 7) % 200].clone();
                        probe.id = 1_000_000 + i;
                        at(i * 100, ServeQuery::Duplicate { report: probe })
                    }
                })
                .collect()
        };
        let batched = ServeService::attach(&sys, ServeConfig::default())
            .unwrap()
            .run_open_loop(&make_requests())
            .unwrap();
        let single = ServeService::attach(&sys, ServeConfig::default().request_at_a_time())
            .unwrap()
            .run_open_loop(&make_requests())
            .unwrap();
        assert_eq!(batched.answers, single.answers);
        assert_eq!(batched.digest, single.digest);
        assert!(single.batches == 40, "batch=1 dispatches per request");
        assert!(batched.batches <= single.batches);
    }

    #[test]
    fn refresh_is_incremental_and_purges_the_memo() {
        let (mut sys, ds) = served_system(5);
        let mut serve = ServeService::attach(&sys, ServeConfig::default()).unwrap();
        let q = || {
            vec![at(
                0,
                ServeQuery::Signal {
                    drug: "panadol".into(),
                    event: "rash".into(),
                },
            )]
        };
        let before = serve.run_open_loop(&q()).unwrap();
        assert_eq!(serve.memo().len(), 1);
        let again = serve.run_open_loop(&q()).unwrap();
        assert_eq!(serve.memo().hits(), 1, "second ask hits the memo");
        assert_eq!(before.answers, again.answers);
        // Ingest more reports, refresh: the memo purges, counts grow.
        let extra: Vec<adr_model::AdrReport> = (0..10)
            .map(|i| {
                let mut r = ds.reports[i].clone();
                r.id = 2_000_000 + i as u64;
                r
            })
            .collect();
        sys.detect_new(&extra).unwrap();
        let counted_before = serve.raw.reports;
        serve.refresh(&sys).unwrap();
        assert!(serve.memo().is_empty(), "refresh purges the memo");
        assert_eq!(serve.raw.reports, counted_before + 10, "incremental count");
        let after = serve.run_open_loop(&q()).unwrap();
        if let (ServeAnswer::Signal { raw: b, .. }, ServeAnswer::Signal { raw: a, .. }) =
            (&before.answers[0], &after.answers[0])
        {
            assert!(a.a >= b.a, "counts only grow with more reports");
        }
    }

    #[test]
    fn deadline_bounds_queueing_delay_at_low_rate() {
        let (sys, _) = served_system(6);
        let config = ServeConfig {
            deadline_us: 1_000,
            ..ServeConfig::default()
        };
        let mut serve = ServeService::attach(&sys, config).unwrap();
        // Sparse arrivals (10ms apart): every request must dispatch well
        // before a full batch could form, so latency stays near the
        // service floor, far below the inter-arrival gap.
        let requests: Vec<ServeRequest> = (0..20u64)
            .map(|i| {
                at(
                    i * 10_000,
                    ServeQuery::Signal {
                        drug: "panadol".into(),
                        event: "rash".into(),
                    },
                )
            })
            .collect();
        let out = serve.run_open_loop(&requests).unwrap();
        for (i, &l) in out.latencies_us.iter().enumerate() {
            assert!(
                l <= config.deadline_us + config.dispatch_overhead_us + 100 + config.per_request_us,
                "request {i} waited {l}µs — deadline not honoured"
            );
        }
    }
}
