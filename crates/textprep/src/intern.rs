//! Token interning: map each distinct token string to a dense `u32` id.
//!
//! Pairwise field distances (§4.2) only need *set* operations over tokens, so
//! comparing reports never has to hash or even look at string bytes: each
//! report stores a sorted, deduplicated `Vec<u32>` of token ids and the
//! metrics run as sorted-slice merges. Interning happens once per report at
//! ingest; comparisons — the O(pairs) hot path — are allocation-free.
//!
//! Ids are assigned densely in first-seen order, so a corpus processed in a
//! fixed order yields a deterministic interner.

use std::collections::HashMap;

#[derive(Debug, Default, Clone)]
pub struct TokenInterner {
    ids: HashMap<String, u32>,
    /// Arena of interned strings, indexed by id.
    tokens: Vec<String>,
}

impl TokenInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern one token, returning its id.
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = u32::try_from(self.tokens.len()).expect("interner overflow: > 4G tokens");
        self.ids.insert(token.to_string(), id);
        self.tokens.push(token.to_string());
        id
    }

    /// Intern a batch of tokens into a sorted, deduplicated id set — the
    /// representation the sorted-merge set metrics require.
    pub fn intern_set<I, S>(&mut self, tokens: I) -> Vec<u32>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut ids: Vec<u32> = tokens
            .into_iter()
            .map(|t| self.intern(t.as_ref()))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The string a given id was assigned to. Panics on an id this interner
    /// never issued.
    pub fn resolve(&self, id: u32) -> &str {
        &self.tokens[id as usize]
    }

    /// Number of distinct tokens interned.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// A rollback mark: the current token count. Tokens interned after
    /// taking a mark can be undone with [`TokenInterner::truncate`].
    pub fn mark(&self) -> usize {
        self.tokens.len()
    }

    /// Roll back to a [`TokenInterner::mark`], forgetting every token
    /// interned since. Ids assigned before the mark are untouched, so a
    /// retried ingest re-assigns the *same* dense ids it would have gotten
    /// on a first try — the property batch rollback relies on for
    /// bit-identical replays. Marks past the current length are a no-op.
    pub fn truncate(&mut self, mark: usize) {
        for token in self.tokens.drain(mark.min(self.tokens.len())..) {
            self.ids.remove(&token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_dense() {
        let mut interner = TokenInterner::new();
        let a = interner.intern("rhabdomyolysis");
        let b = interner.intern("atorvastatin");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(interner.intern("rhabdomyolysis"), a);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(a), "rhabdomyolysis");
        assert_eq!(interner.resolve(b), "atorvastatin");
    }

    #[test]
    fn intern_set_sorts_and_dedups() {
        let mut interner = TokenInterner::new();
        // Force ids out of lexical order: "zzz" gets id 0.
        interner.intern("zzz");
        let set = interner.intern_set(["zzz", "aaa", "zzz", "mmm"]);
        assert_eq!(set, vec![0, 1, 2]);
        let again = interner.intern_set(["mmm", "aaa"]);
        assert_eq!(again, vec![1, 2]);
    }

    #[test]
    fn set_identity_matches_string_set_identity() {
        let mut interner = TokenInterner::new();
        let x = interner.intern_set(["b", "a", "c", "a"]);
        let y = interner.intern_set(["c", "b", "a"]);
        assert_eq!(x, y, "same string set must intern to same id set");
    }

    #[test]
    fn truncate_rolls_back_to_mark_and_replays_same_ids() {
        let mut interner = TokenInterner::new();
        interner.intern("keep");
        let mark = interner.mark();
        assert_eq!(mark, 1);
        interner.intern_set(["lost", "gone"]);
        assert_eq!(interner.len(), 3);
        interner.truncate(mark);
        assert_eq!(interner.len(), 1);
        assert_eq!(interner.intern("keep"), 0, "pre-mark ids untouched");
        // A replay after rollback hands out the exact ids the failed
        // attempt got — dense, first-seen order.
        assert_eq!(interner.intern("gone"), 1);
        assert_eq!(interner.intern("lost"), 2);
        assert_eq!(interner.resolve(1), "gone");
        // Truncating past the end is a no-op.
        interner.truncate(99);
        assert_eq!(interner.len(), 3);
    }
}
