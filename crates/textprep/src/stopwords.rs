//! English stopword list with spontaneous-report additions.

/// Standard English stopwords plus terms that are boilerplate in ADR report
/// narratives ("patient", "subject", "reported", reference-number scaffolding)
/// and therefore carry no duplicate-detection signal.
pub const STOPWORDS: &[&str] = &[
    // --- core English function words ---
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
    // --- report boilerplate ---
    "patient",
    "subject",
    "report",
    "reported",
    "reporting",
    "reference",
    "number",
    "case",
    "pertaining",
    "received",
    "concerning",
    "regarding",
    "via",
];

/// Is `token` (already lowercased) a stopword?
pub fn is_stopword(token: &str) -> bool {
    // The list is small enough that a sorted binary search beats building a
    // HashSet per call site; it is sorted within each section, so do a plain
    // linear scan — ~150 entries, negligible against the distance math.
    STOPWORDS.contains(&token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "and", "of", "to", "in", "was", "with"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn report_boilerplate_is_stopworded() {
        for w in ["patient", "subject", "reported", "reference", "case"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn medical_content_words_are_kept() {
        for w in [
            "rhabdomyolysis",
            "atorvastatin",
            "headache",
            "vomiting",
            "cough",
            "vaccination",
            "myalgia",
        ] {
            assert!(!is_stopword(w), "{w} must not be a stopword");
        }
    }

    #[test]
    fn list_has_no_duplicates() {
        let mut sorted: Vec<&str> = STOPWORDS.to_vec();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(before, sorted.len(), "duplicate stopword entries");
    }

    #[test]
    fn list_is_all_lowercase() {
        for w in STOPWORDS {
            assert_eq!(*w, w.to_lowercase());
        }
    }
}
