//! The Porter stemmer (M.F. Porter, *An algorithm for suffix stripping*,
//! Program 14(3), 1980), implemented in full: steps 1a–1c, 2, 3, 4, 5a, 5b.
//!
//! Operates on lowercase ASCII words; tokens containing non-ASCII-alphabetic
//! characters are returned unchanged (numbers, codes and accented tokens in
//! report narratives should not be mangled).

/// Stem a lowercase word to its Porter root form.
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
    };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    String::from_utf8(s.b).expect("stemmer operates on ASCII")
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    /// Is `b[i]` a consonant? `y` is a consonant at position 0 or when the
    /// previous letter is a vowel; otherwise it acts as a vowel.
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => i == 0 || !self.is_consonant(i - 1),
            _ => true,
        }
    }

    /// Porter's measure *m* of the first `len` bytes: the number of
    /// vowel-consonant sequences `[C](VC)^m[V]`.
    fn measure(&self, len: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // Skip the optional leading consonant run.
        while i < len && self.is_consonant(i) {
            i += 1;
        }
        loop {
            // Vowel run.
            while i < len && !self.is_consonant(i) {
                i += 1;
            }
            if i >= len {
                return m;
            }
            // Consonant run closes one VC.
            while i < len && self.is_consonant(i) {
                i += 1;
            }
            m += 1;
        }
    }

    /// Does the first `len` bytes contain a vowel (`*v*`)?
    fn has_vowel(&self, len: usize) -> bool {
        (0..len).any(|i| !self.is_consonant(i))
    }

    /// Does the word end with a double consonant (`*d`)?
    fn ends_double_consonant(&self) -> bool {
        let n = self.b.len();
        n >= 2 && self.b[n - 1] == self.b[n - 2] && self.is_consonant(n - 1)
    }

    /// `*o`: stem of length `len` ends consonant-vowel-consonant where the
    /// final consonant is not `w`, `x` or `y`.
    fn ends_cvc(&self, len: usize) -> bool {
        if len < 3 {
            return false;
        }
        let c = self.b[len - 1];
        self.is_consonant(len - 3)
            && !self.is_consonant(len - 2)
            && self.is_consonant(len - 1)
            && c != b'w'
            && c != b'x'
            && c != b'y'
    }

    fn ends_with(&self, suffix: &str) -> bool {
        self.b.ends_with(suffix.as_bytes())
    }

    fn stem_len(&self, suffix: &str) -> usize {
        self.b.len() - suffix.len()
    }

    fn replace(&mut self, suffix: &str, with: &str) {
        let keep = self.b.len() - suffix.len();
        self.b.truncate(keep);
        self.b.extend_from_slice(with.as_bytes());
    }

    /// If the word ends with `suffix` and the remaining stem has measure
    /// `> min_m`, replace the suffix. Returns whether the suffix matched
    /// (even if the measure test failed), so rule lists can stop at the
    /// first matching suffix as Porter specifies.
    fn rule(&mut self, suffix: &str, with: &str, min_m: usize) -> bool {
        if !self.ends_with(suffix) {
            return false;
        }
        let stem_len = self.stem_len(suffix);
        if self.measure(stem_len) > min_m {
            self.replace(suffix, with);
        }
        true
    }

    fn step1a(&mut self) {
        if self.ends_with("sses") {
            self.replace("sses", "ss");
        } else if self.ends_with("ies") {
            self.replace("ies", "i");
        } else if self.ends_with("ss") {
            // keep
        } else if self.ends_with("s") {
            self.replace("s", "");
        }
    }

    fn step1b(&mut self) {
        if self.ends_with("eed") {
            if self.measure(self.stem_len("eed")) > 0 {
                self.replace("eed", "ee");
            }
            return;
        }
        let stripped = if self.ends_with("ed") && self.has_vowel(self.stem_len("ed")) {
            self.replace("ed", "");
            true
        } else if self.ends_with("ing") && self.has_vowel(self.stem_len("ing")) {
            self.replace("ing", "");
            true
        } else {
            false
        };
        if !stripped {
            return;
        }
        if self.ends_with("at") {
            self.replace("at", "ate");
        } else if self.ends_with("bl") {
            self.replace("bl", "ble");
        } else if self.ends_with("iz") {
            self.replace("iz", "ize");
        } else if self.ends_double_consonant() {
            let last = self.b[self.b.len() - 1];
            if last != b'l' && last != b's' && last != b'z' {
                self.b.pop();
            }
        } else if self.measure(self.b.len()) == 1 && self.ends_cvc(self.b.len()) {
            self.b.push(b'e');
        }
    }

    fn step1c(&mut self) {
        if self.ends_with("y") && self.has_vowel(self.stem_len("y")) {
            let n = self.b.len();
            self.b[n - 1] = b'i';
        }
    }

    fn step2(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
        ];
        for (suffix, with) in RULES {
            if self.rule(suffix, with, 0) {
                return;
            }
        }
    }

    fn step3(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for (suffix, with) in RULES {
            if self.rule(suffix, with, 0) {
                return;
            }
        }
    }

    fn step4(&mut self) {
        const RULES: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ion",
            "ou", "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        for suffix in RULES {
            if !self.ends_with(suffix) {
                continue;
            }
            let stem_len = self.stem_len(suffix);
            if *suffix == "ion" {
                // ION only strips after S or T.
                if stem_len == 0 || (self.b[stem_len - 1] != b's' && self.b[stem_len - 1] != b't') {
                    return;
                }
            }
            if self.measure(stem_len) > 1 {
                self.replace(suffix, "");
            }
            return;
        }
    }

    fn step5a(&mut self) {
        if !self.ends_with("e") {
            return;
        }
        let stem_len = self.stem_len("e");
        let m = self.measure(stem_len);
        if m > 1 || (m == 1 && !self.ends_cvc(stem_len)) {
            self.b.pop();
        }
    }

    fn step5b(&mut self) {
        if self.measure(self.b.len()) > 1
            && self.ends_double_consonant()
            && self.b[self.b.len() - 1] == b'l'
        {
            self.b.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check(pairs: &[(&str, &str)]) {
        for (input, expected) in pairs {
            assert_eq!(stem(input), *expected, "stem({input:?})");
        }
    }

    #[test]
    fn step1_examples_from_the_paper() {
        check(&[
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"), // step1b EED->EE then 5a drops the e
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
        ]);
    }

    #[test]
    fn step2_examples() {
        check(&[
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
        ]);
    }

    #[test]
    fn step3_and_4_examples() {
        check(&[
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
        ]);
    }

    #[test]
    fn step5_examples() {
        check(&[
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ]);
    }

    #[test]
    fn medical_vocabulary_conflates_variants() {
        // What duplicate detection actually needs: narrative variants of the
        // same event must map to the same stem.
        assert_eq!(stem("vaccination"), stem("vaccinate"));
        assert_eq!(stem("vaccination"), "vaccin");
        assert_eq!(stem("choking"), stem("choked"));
        assert_eq!(stem("headaches"), stem("headache"));
        assert_eq!(stem("vomiting"), "vomit");
    }

    #[test]
    fn short_and_non_ascii_words_pass_through() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("80mg"), "80mg");
        assert_eq!(stem("naïve"), "naïve");
        assert_eq!(stem("2013"), "2013");
    }

    proptest! {
        #[test]
        fn never_panics_and_never_grows_much(w in "[a-z]{0,20}") {
            let s = stem(&w);
            // Porter can add at most one char (e.g. hopping -> hop + e paths).
            prop_assert!(s.len() <= w.len() + 1);
        }

        #[test]
        fn idempotent_for_most_words(w in "[a-z]{3,12}") {
            // Stemming a stem should be stable for the overwhelming majority
            // of words; full idempotence is not guaranteed by Porter, so we
            // assert the weaker invariant that double-stemming equals
            // triple-stemming (the process reaches a fixed point quickly).
            let s1 = stem(&w);
            let s2 = stem(&s1);
            let s3 = stem(&s2);
            prop_assert_eq!(s2, s3);
        }
    }
}
