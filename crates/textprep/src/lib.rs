//! # textprep — NLP preprocessing for ADR report narratives
//!
//! The paper's §4.2: *"we apply common techniques to tokenize the content in
//! the report description field, remove stop words, and then stem tokenized
//! words to their root forms before computing their distances."*
//!
//! This crate provides exactly that pipeline, from scratch:
//!
//! * [`tokenize`] — lowercasing alphanumeric tokenizer;
//! * [`stopwords`] — a standard English stopword list with medical-report
//!   additions;
//! * [`porter`] — the full Porter (1980) suffix-stripping stemmer;
//! * [`Pipeline`] — tokenize → stop-word filter → stem, the unit the
//!   pairwise-distance module calls per free-text field;
//! * [`TokenInterner`] — string → `u32` interning so token sets compare as
//!   sorted integer slices, never re-hashing strings on the pairwise hot path.

pub mod intern;
pub mod pipeline;
pub mod porter;
pub mod stopwords;
pub mod tokenizer;

pub use intern::TokenInterner;
pub use pipeline::Pipeline;
pub use porter::stem;
pub use stopwords::is_stopword;
pub use tokenizer::tokenize;
