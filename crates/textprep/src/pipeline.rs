//! The tokenize → stopword-filter → stem pipeline of §4.2.

use crate::porter::stem;
use crate::stopwords::is_stopword;
use crate::tokenizer::tokenize;

/// Configurable free-text preprocessing pipeline.
///
/// The default configuration matches the paper: tokenize, drop stopwords,
/// Porter-stem. Both filters can be toggled for ablations.
#[derive(Debug, Clone, Copy)]
pub struct Pipeline {
    /// Drop stopwords after tokenization.
    pub remove_stopwords: bool,
    /// Porter-stem surviving tokens.
    pub stem: bool,
    /// Drop tokens shorter than this many characters (0 = keep all).
    pub min_token_len: usize,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline {
            remove_stopwords: true,
            stem: true,
            min_token_len: 2,
        }
    }
}

impl Pipeline {
    /// The paper's pipeline.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Tokenize only (ablation baseline).
    pub fn tokenize_only() -> Self {
        Pipeline {
            remove_stopwords: false,
            stem: false,
            min_token_len: 0,
        }
    }

    /// Process a free-text field into comparison-ready terms.
    pub fn process(&self, text: &str) -> Vec<String> {
        tokenize(text)
            .into_iter()
            .filter(|t| t.chars().count() >= self.min_token_len)
            .filter(|t| !self.remove_stopwords || !is_stopword(t))
            .map(|t| if self.stem { stem(&t) } else { t })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_strips_boilerplate_and_stems() {
        let p = Pipeline::paper();
        let terms = p.process("The patient experienced uncontrollable coughing and headaches.");
        assert!(!terms.contains(&"the".to_string()));
        assert!(!terms.contains(&"patient".to_string()));
        assert!(terms.contains(&stem("coughing")));
        assert!(terms.contains(&stem("headaches")));
    }

    #[test]
    fn paraphrased_duplicates_share_most_terms() {
        // Condensed from the paper's Table 1(b): two narratives of the same
        // event written by different reporters.
        let p = Pipeline::paper();
        let a = p.process(
            "On 30 April 2013, within hours of vaccination with Boostrix, the subject \
             experienced uncontrollable cough and felt like she was choking.",
        );
        let b = p.process(
            "In the afternoon of 30-Apr-2013, the patient experienced uncontrollable \
             cough for 2 hours, then started choking.",
        );
        let sa: std::collections::HashSet<&String> = a.iter().collect();
        let sb: std::collections::HashSet<&String> = b.iter().collect();
        let inter = sa.intersection(&sb).count();
        assert!(
            inter >= 5,
            "stemmed narratives of the same event should overlap heavily, got {inter}: {a:?} vs {b:?}"
        );
    }

    #[test]
    fn tokenize_only_preserves_everything() {
        let p = Pipeline::tokenize_only();
        assert_eq!(
            p.process("The patient was ill"),
            vec!["the", "patient", "was", "ill"]
        );
    }

    #[test]
    fn min_token_len_filters_single_chars() {
        let p = Pipeline::paper();
        let terms = p.process("x y vomiting");
        assert_eq!(terms, vec![stem("vomiting")]);
    }

    #[test]
    fn empty_text_yields_no_terms() {
        assert!(Pipeline::paper().process("").is_empty());
        assert!(Pipeline::paper().process("the of and").is_empty());
    }
}
