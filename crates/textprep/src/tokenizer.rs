//! Lowercasing alphanumeric tokenizer.

/// Split `text` into lowercase tokens of alphanumeric runs.
///
/// Punctuation, dates like `01-05-2013` and dosage strings like `80 mg`
/// split into their alphanumeric components, which is what makes narratives
/// with differing punctuation conventions comparable (the paper's Table 1
/// duplicates differ exactly this way).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            tokenize("On 30 April 2013, in the evening."),
            vec!["on", "30", "april", "2013", "in", "the", "evening"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(
            tokenize("Atorvastatin CALCIUM"),
            vec!["atorvastatin", "calcium"]
        );
    }

    #[test]
    fn dates_and_doses_split() {
        assert_eq!(tokenize("01-05-2013"), vec!["01", "05", "2013"]);
        assert_eq!(tokenize("80mg"), vec!["80mg"]);
        assert_eq!(tokenize("80 mg"), vec!["80", "mg"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- ,,, !!!").is_empty());
    }

    #[test]
    fn unicode_handled() {
        assert_eq!(tokenize("naïve café"), vec!["naïve", "café"]);
    }

    proptest! {
        #[test]
        fn tokens_are_nonempty_lowercase_alphanumeric(s in ".{0,64}") {
            for t in tokenize(&s) {
                prop_assert!(!t.is_empty());
                prop_assert!(t.chars().all(|c| c.is_alphanumeric()));
                // Lowercasing is idempotent on the output (some uppercase
                // codepoints like 𝐀 have no lowercase mapping and survive).
                prop_assert_eq!(t.to_lowercase(), t.to_lowercase().to_lowercase());
            }
        }

        #[test]
        fn idempotent_on_joined_output(s in "[ a-z0-9]{0,64}") {
            let once = tokenize(&s);
            let again = tokenize(&once.join(" "));
            prop_assert_eq!(once, again);
        }
    }
}
