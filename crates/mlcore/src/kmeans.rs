//! Lloyd's k-means with k-means++ seeding.
//!
//! The paper uses k-means twice: to Voronoi-partition the training pairs
//! (§4.3.1 — "clusters produced by k-means form a Voronoi diagram") and to
//! cluster positive pairs for test-set pruning (§4.3.4).
//!
//! Points are fixed-arity `[f64; D]` arrays (const-generic over `D`): the
//! assignment loops dominate partition builds, and fixed arity lets the
//! distance kernel unroll with no per-point allocation. The accumulation
//! order matches the slice-based kernel bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simmetrics::soa::{assign_min, distances_to_point, VecBatch};
use simmetrics::squared_euclidean_fixed;

/// k-means configuration.
#[derive(Debug, Clone, Copy)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement (squared).
    pub tol: f64,
    /// RNG seed for k-means++ seeding.
    pub seed: u64,
}

impl KMeans {
    /// Standard configuration: 100 iterations, tolerance 1e-9.
    pub fn new(k: usize, seed: u64) -> Self {
        KMeans {
            k,
            max_iters: 100,
            tol: 1e-9,
            seed,
        }
    }

    /// Run k-means++ then Lloyd's algorithm.
    ///
    /// # Panics
    /// Panics on empty data or `k == 0`. If `k > n`, `k` is clamped to `n`.
    pub fn fit<const D: usize>(&self, data: &[[f64; D]]) -> KMeansModel<D> {
        self.fit_batch(&VecBatch::from_rows(data))
    }

    /// Run k-means++ then Lloyd's algorithm over a column batch.
    ///
    /// Lloyd iterations run entirely on the SoA layout: assignment via the
    /// fused [`assign_min`] kernel, centroid update via per-column
    /// accumulators. Both keep the scalar path's per-point and
    /// per-(cluster, dimension) accumulation order, so results are
    /// bit-identical to the historical `[f64; D]` loop.
    ///
    /// # Panics
    /// Panics on empty data or `k == 0`. If `k > n`, `k` is clamped to `n`.
    pub fn fit_batch<const D: usize>(&self, data: &VecBatch<D>) -> KMeansModel<D> {
        assert!(!data.is_empty(), "k-means needs data");
        assert!(self.k > 0, "k must be positive");
        let n = data.len();
        let k = self.k.min(n);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut centroids = plus_plus_init(data, k, &mut rng);
        let mut assign_idx: Vec<u32> = Vec::with_capacity(n);
        let mut assign_d2: Vec<f64> = Vec::with_capacity(n);
        for _ in 0..self.max_iters {
            // Assignment step (fused tiled kernel).
            assign_min(data, &centroids, &mut assign_idx, &mut assign_d2);
            // Update step: column accumulators. Per (cluster, dimension)
            // the additions still happen in point order, matching the
            // row-major scalar update bit for bit.
            let mut sums = vec![[0.0; D]; k];
            let mut counts = vec![0usize; k];
            for &a in &assign_idx {
                counts[a as usize] += 1;
            }
            for (d, col) in (0..D).map(|d| (d, data.col(d))) {
                for (&x, &a) in col.iter().zip(&assign_idx) {
                    sums[a as usize][d] += x;
                }
            }
            let mut movement = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at the point farthest from
                    // its current centroid (standard repair). Distances are
                    // against the partially updated centroid set, exactly
                    // as the scalar loop computed them.
                    assign_min(data, &centroids, &mut assign_idx, &mut assign_d2);
                    let far = assign_d2
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .map(|(i, _)| i)
                        .expect("data non-empty");
                    let far_row = data.row(far);
                    movement += squared_euclidean_fixed(&centroids[c], &far_row);
                    centroids[c] = far_row;
                    continue;
                }
                let mut new = [0.0; D];
                for (n, s) in new.iter_mut().zip(&sums[c]) {
                    *n = s / counts[c] as f64;
                }
                movement += squared_euclidean_fixed(&centroids[c], &new);
                centroids[c] = new;
            }
            if movement <= self.tol {
                break;
            }
        }
        // Final assignment against the converged centroids.
        assign_min(data, &centroids, &mut assign_idx, &mut assign_d2);
        KMeansModel {
            centroids,
            assignments: assign_idx.iter().map(|&a| a as usize).collect(),
        }
    }
}

/// Index and squared distance of the nearest centroid.
pub fn nearest_centroid<const D: usize>(p: &[f64; D], centroids: &[[f64; D]]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = squared_euclidean_fixed(p, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

fn plus_plus_init<const D: usize>(data: &VecBatch<D>, k: usize, rng: &mut StdRng) -> Vec<[f64; D]> {
    let mut centroids: Vec<[f64; D]> = Vec::with_capacity(k);
    centroids.push(data.row(rng.gen_range(0..data.len())));
    let mut dists: Vec<f64> = Vec::with_capacity(data.len());
    distances_to_point(data, &centroids[0], &mut dists);
    let mut fresh: Vec<f64> = Vec::with_capacity(data.len());
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= f64::EPSILON {
            // All points coincide with chosen centroids; pick uniformly.
            rng.gen_range(0..data.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = data.len() - 1;
            for (i, d) in dists.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(data.row(next));
        distances_to_point(data, centroids.last().expect("just pushed"), &mut fresh);
        for (d, &nd) in dists.iter_mut().zip(&fresh) {
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeansModel<const D: usize> {
    /// Cluster centres ("the center of each cluster is calculated and
    /// stored in memory", §4.3.1).
    pub centroids: Vec<[f64; D]>,
    /// Cluster index per training point.
    pub assignments: Vec<usize>,
}

impl<const D: usize> KMeansModel<D> {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Assign an unseen point to its Voronoi cell (closest centre).
    pub fn assign(&self, p: &[f64; D]) -> usize {
        nearest_centroid(p, &self.centroids).0
    }

    /// Cluster sizes.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Within-cluster sum of squared distances (inertia).
    pub fn inertia(&self, data: &[[f64; D]]) -> f64 {
        data.iter()
            .zip(&self.assignments)
            .map(|(p, &a)| squared_euclidean_fixed(p, &self.centroids[a]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<[f64; 2]> {
        let mut data = Vec::new();
        for i in 0..20 {
            let t = i as f64 * 0.01;
            data.push([0.0 + t, 0.0 - t]);
            data.push([10.0 - t, 10.0 + t]);
        }
        data
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blobs();
        let model = KMeans::new(2, 42).fit(&data);
        assert_eq!(model.k(), 2);
        // All even indices (blob A) share a cluster; odd (blob B) the other.
        let a = model.assignments[0];
        let b = model.assignments[1];
        assert_ne!(a, b);
        for (i, &asg) in model.assignments.iter().enumerate() {
            assert_eq!(asg, if i % 2 == 0 { a } else { b });
        }
    }

    #[test]
    fn voronoi_property_holds() {
        // Every point must be closer to its own centre than to any other —
        // the invariant observation 4 of §4.3.2 relies on.
        let data = two_blobs();
        let model = KMeans::new(4, 7).fit(&data);
        for (p, &a) in data.iter().zip(&model.assignments) {
            let own = squared_euclidean_fixed(p, &model.centroids[a]);
            for (j, c) in model.centroids.iter().enumerate() {
                if j != a {
                    assert!(own <= squared_euclidean_fixed(p, c) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = two_blobs();
        let m1 = KMeans::new(3, 5).fit(&data);
        let m2 = KMeans::new(3, 5).fit(&data);
        assert_eq!(m1.assignments, m2.assignments);
        assert_eq!(m1.centroids, m2.centroids);
    }

    #[test]
    fn k_clamped_to_n() {
        let data = vec![[0.0], [1.0]];
        let model = KMeans::new(10, 1).fit(&data);
        assert_eq!(model.k(), 2);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let data = vec![[1.0, 1.0]; 10];
        let model = KMeans::new(3, 1).fit(&data);
        assert_eq!(model.assignments.len(), 10);
    }

    #[test]
    fn assign_routes_new_points() {
        let data = two_blobs();
        let model = KMeans::new(2, 42).fit(&data);
        let near_a = model.assign(&[0.5, 0.5]);
        let near_b = model.assign(&[9.5, 9.5]);
        assert_ne!(near_a, near_b);
        assert_eq!(near_a, model.assignments[0]);
        assert_eq!(near_b, model.assignments[1]);
    }

    #[test]
    fn sizes_sum_to_n() {
        let data = two_blobs();
        let model = KMeans::new(5, 3).fit(&data);
        assert_eq!(model.sizes().iter().sum::<usize>(), data.len());
    }

    #[test]
    fn more_clusters_reduce_inertia() {
        let data = two_blobs();
        let i2 = KMeans::new(2, 9).fit(&data).inertia(&data);
        let i8 = KMeans::new(8, 9).fit(&data).inertia(&data);
        assert!(
            i8 <= i2 + 1e-9,
            "inertia must not grow with k: {i8} vs {i2}"
        );
    }
}
