//! Seeded sampling utilities: shuffles, splits, negative down-sampling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Split indices `0..n` into `(train, test)` with `test_fraction` of items
/// in the test split, after a seeded shuffle.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&test_fraction),
        "test_fraction must be in [0,1]"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let test_len = (n as f64 * test_fraction).round() as usize;
    let test = idx.split_off(n - test_len.min(n));
    (idx, test)
}

/// The Fig. 1 training-store policy: keep *every* positive index, sample at
/// most `max_negatives` negative indices (seeded, without replacement).
///
/// Returns selected indices in ascending order for determinism.
pub fn downsample_negatives(labels: &[bool], max_negatives: usize, seed: u64) -> Vec<usize> {
    let mut positives: Vec<usize> = Vec::new();
    let mut negatives: Vec<usize> = Vec::new();
    for (i, &is_pos) in labels.iter().enumerate() {
        if is_pos {
            positives.push(i);
        } else {
            negatives.push(i);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    negatives.shuffle(&mut rng);
    negatives.truncate(max_negatives);
    let mut out = positives;
    out.extend(negatives);
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_partitions_all_indices() {
        let (train, test) = train_test_split(100, 0.2, 1);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        let all: HashSet<usize> = train.iter().chain(&test).copied().collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        let a = train_test_split(50, 0.3, 7);
        let b = train_test_split(50, 0.3, 7);
        let c = train_test_split(50, 0.3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn extreme_fractions() {
        let (train, test) = train_test_split(10, 0.0, 1);
        assert_eq!((train.len(), test.len()), (10, 0));
        let (train, test) = train_test_split(10, 1.0, 1);
        assert_eq!((train.len(), test.len()), (0, 10));
    }

    #[test]
    fn downsample_keeps_all_positives() {
        let labels: Vec<bool> = (0..100).map(|i| i % 10 == 0).collect();
        let sel = downsample_negatives(&labels, 5, 3);
        let kept_pos = sel.iter().filter(|&&i| labels[i]).count();
        let kept_neg = sel.iter().filter(|&&i| !labels[i]).count();
        assert_eq!(kept_pos, 10, "every positive must survive");
        assert_eq!(kept_neg, 5);
    }

    #[test]
    fn downsample_with_large_budget_keeps_everything() {
        let labels = vec![true, false, false, true];
        let sel = downsample_negatives(&labels, 100, 1);
        assert_eq!(sel, vec![0, 1, 2, 3]);
    }

    #[test]
    fn downsample_deterministic() {
        let labels: Vec<bool> = (0..1000).map(|i| i % 50 == 0).collect();
        assert_eq!(
            downsample_negatives(&labels, 10, 9),
            downsample_negatives(&labels, 10, 9)
        );
    }
}
