//! # mlcore — learning primitives for duplicate detection
//!
//! The machine-learning substrate the paper builds on:
//!
//! * [`knn`] — exact brute-force k-nearest-neighbour search and the plain
//!   majority-vote kNN classifier of the paper's Eq. 1 (the Fast kNN of
//!   §4.3 lives in the `fastknn` crate and layers Voronoi partitioning and
//!   Eq. 5 scoring on top of these primitives);
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding, used both to
//!   Voronoi-partition training pairs (§4.3.1) and to cluster positive
//!   pairs for test-set pruning (§4.3.4);
//! * [`svm`] — a linear soft-margin SVM trained with Pegasos-style
//!   stochastic sub-gradient descent: the comparison baseline of §5.2.1,
//!   plus the cluster-sampled "SVM clustering" variant of Fig. 5(c);
//! * [`eval`] — precision–recall curves and area-under-PR (§5.2.2's metric
//!   of choice for heavily imbalanced data);
//! * [`sample`] — seeded shuffling, stratified splits and negative
//!   down-sampling (the workflow keeps *all* positives but only a sample of
//!   negatives, Fig. 1).

pub mod eval;
pub mod kmeans;
pub mod knn;
pub mod sample;
pub mod svm;

pub use eval::{average_precision, pr_curve, PrPoint};
pub use kmeans::{KMeans, KMeansModel};
pub use knn::{nearest_neighbors, KnnClassifier, Neighbor};
pub use sample::{downsample_negatives, train_test_split};
pub use svm::{LinearSvm, SvmConfig};
