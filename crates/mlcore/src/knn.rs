//! Exact k-nearest-neighbour search and the majority-vote kNN classifier
//! (the paper's Eq. 1).

use simmetrics::squared_euclidean;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A neighbour: index into the reference set plus its distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index into the reference set.
    pub index: usize,
    /// Euclidean distance to the query.
    pub distance: f64,
}

/// Max-heap entry ordered by distance so the heap root is the *worst* of
/// the current k candidates.
struct HeapEntry(Neighbor);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.distance == other.0.distance
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .distance
            .partial_cmp(&other.0.distance)
            .unwrap_or(Ordering::Equal)
            .then(self.0.index.cmp(&other.0.index))
    }
}

/// Exact k nearest neighbours of `query` in `data` by Euclidean distance,
/// sorted ascending by distance (ties broken by index for determinism).
///
/// `O(n log k)` with a bounded max-heap; distances are computed in squared
/// space and square-rooted only for the returned `k`.
pub fn nearest_neighbors(query: &[f64], data: &[Vec<f64>], k: usize) -> Vec<Neighbor> {
    if k == 0 || data.is_empty() {
        return Vec::new();
    }
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    for (index, point) in data.iter().enumerate() {
        let d2 = squared_euclidean(query, point);
        if heap.len() < k {
            heap.push(HeapEntry(Neighbor {
                index,
                distance: d2,
            }));
        } else if d2
            < heap
                .peek()
                .expect("heap non-empty when len == k")
                .0
                .distance
        {
            heap.pop();
            heap.push(HeapEntry(Neighbor {
                index,
                distance: d2,
            }));
        }
    }
    let mut out: Vec<Neighbor> = heap
        .into_iter()
        .map(|e| Neighbor {
            index: e.0.index,
            distance: e.0.distance.sqrt(),
        })
        .collect();
    out.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(Ordering::Equal)
            .then(a.index.cmp(&b.index))
    });
    out
}

/// Plain kNN classifier with ±1 labels and the unweighted majority vote of
/// the paper's Eq. 1.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    /// Number of neighbours (the paper keeps it odd so votes cannot tie).
    pub k: usize,
    points: Vec<Vec<f64>>,
    labels: Vec<i8>,
}

impl KnnClassifier {
    /// Build a classifier over labelled points.
    ///
    /// # Panics
    /// Panics if lengths differ, `k == 0`, or any label is not ±1.
    pub fn new(points: Vec<Vec<f64>>, labels: Vec<i8>, k: usize) -> Self {
        assert_eq!(points.len(), labels.len(), "points/labels length mismatch");
        assert!(k > 0, "k must be positive");
        assert!(
            labels.iter().all(|&l| l == 1 || l == -1),
            "labels must be +1/-1"
        );
        KnnClassifier { k, points, labels }
    }

    /// Size of the reference set.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Is the reference set empty?
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Sum of neighbour labels (Eq. 1's vote): positive ⇒ duplicate.
    pub fn vote(&self, query: &[f64]) -> i32 {
        nearest_neighbors(query, &self.points, self.k)
            .iter()
            .map(|n| self.labels[n.index] as i32)
            .sum()
    }

    /// Majority-vote label; 0-vote ties resolve to −1 (with odd `k` and ±1
    /// labels a tie cannot occur).
    pub fn classify(&self, query: &[f64]) -> i8 {
        if self.vote(query) > 0 {
            1
        } else {
            -1
        }
    }

    /// Distance-weighted score: `Σ_label · 1/(d + ε)` over the k neighbours.
    /// This is the shape of the paper's Eq. 5 applied to a flat reference
    /// set (the partitioned version lives in `fastknn`).
    pub fn weighted_score(&self, query: &[f64]) -> f64 {
        const EPS: f64 = 1e-9;
        nearest_neighbors(query, &self.points, self.k)
            .iter()
            .map(|n| self.labels[n.index] as f64 / (n.distance + EPS))
            .sum()
    }

    /// Class-confidence-weighted vote in the spirit of Liu & Chawla
    /// (PAKDD'11), the imbalance-handling kNN the paper's related work (§6)
    /// compares itself against: each neighbour's vote is scaled by the
    /// inverse prior of its class, so the minority class is not outvoted
    /// merely by being rare.
    pub fn class_weighted_score(&self, query: &[f64]) -> f64 {
        let n_pos = self.labels.iter().filter(|&&l| l == 1).count().max(1) as f64;
        let n_neg = self.labels.iter().filter(|&&l| l == -1).count().max(1) as f64;
        let n = self.labels.len() as f64;
        let (w_pos, w_neg) = (n / (2.0 * n_pos), n / (2.0 * n_neg));
        nearest_neighbors(query, &self.points, self.k)
            .iter()
            .map(|nb| {
                if self.labels[nb.index] == 1 {
                    w_pos
                } else {
                    -w_neg
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
            vec![5.0, 6.0],
        ]
    }

    #[test]
    fn finds_the_closest_points() {
        let nn = nearest_neighbors(&[0.1, 0.1], &grid(), 3);
        let idx: Vec<usize> = nn.iter().map(|n| n.index).collect();
        assert_eq!(idx, vec![0, 1, 2]);
        assert!(nn[0].distance < nn[1].distance);
    }

    #[test]
    fn k_larger_than_data_returns_all() {
        let nn = nearest_neighbors(&[0.0, 0.0], &grid(), 100);
        assert_eq!(nn.len(), 5);
    }

    #[test]
    fn k_zero_or_empty_data() {
        assert!(nearest_neighbors(&[0.0], &[], 3).is_empty());
        assert!(nearest_neighbors(&[0.0, 0.0], &grid(), 0).is_empty());
    }

    #[test]
    fn distances_are_euclidean() {
        let nn = nearest_neighbors(&[0.0, 0.0], &[vec![3.0, 4.0]], 1);
        assert!((nn[0].distance - 5.0).abs() < 1e-12);
    }

    #[test]
    fn classifier_majority_vote() {
        let points = grid();
        let labels = vec![1, 1, 1, -1, -1];
        let clf = KnnClassifier::new(points, labels, 3);
        assert_eq!(clf.classify(&[0.2, 0.2]), 1);
        assert_eq!(clf.classify(&[5.0, 5.5]), -1);
    }

    #[test]
    fn imbalance_swamps_the_majority_vote() {
        // The motivating failure: one positive among many negatives loses
        // the vote even right next to the positive.
        let mut points = vec![vec![0.0, 0.0]];
        let mut labels = vec![1i8];
        for i in 0..20 {
            points.push(vec![2.0 + (i as f64) * 0.1, 2.0]);
            labels.push(-1);
        }
        let clf = KnnClassifier::new(points, labels, 5);
        assert_eq!(
            clf.classify(&[0.05, 0.05]),
            -1,
            "majority vote must fail here — this is what Eq. 5 fixes"
        );
        assert!(
            clf.weighted_score(&[0.05, 0.05]) > 0.0,
            "inverse-distance weighting must recover the positive"
        );
    }

    #[test]
    fn class_weighting_rescues_minority_votes() {
        // One positive among 20 negatives: plain vote loses; the
        // class-confidence weighting makes a single positive neighbour
        // worth as much as the 20 negatives combined.
        let mut points = vec![vec![0.0, 0.0]];
        let mut labels = vec![1i8];
        for i in 0..20 {
            points.push(vec![0.5 + (i as f64) * 0.01, 0.5]);
            labels.push(-1);
        }
        let clf = KnnClassifier::new(points, labels, 3);
        // Query near the positive: neighbourhood = 1 positive + 2 negatives.
        assert!(clf.vote(&[0.05, 0.05]) < 0);
        assert!(
            clf.class_weighted_score(&[0.05, 0.05]) > 0.0,
            "class weighting must rescue the minority neighbour"
        );
        // Query deep in the negative cloud stays negative.
        assert!(clf.class_weighted_score(&[0.55, 0.5]) < 0.0);
    }

    #[test]
    #[should_panic(expected = "labels must be")]
    fn bad_labels_rejected() {
        let _ = KnnClassifier::new(vec![vec![0.0]], vec![2], 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = KnnClassifier::new(vec![vec![0.0]], vec![1, -1], 1);
    }

    proptest! {
        #[test]
        fn neighbors_sorted_and_k_bounded(
            points in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3), 1..40),
            q in prop::collection::vec(-10.0f64..10.0, 3),
            k in 1usize..10,
        ) {
            let nn = nearest_neighbors(&q, &points, k);
            prop_assert_eq!(nn.len(), k.min(points.len()));
            for w in nn.windows(2) {
                prop_assert!(w[0].distance <= w[1].distance + 1e-12);
            }
        }

        #[test]
        fn heap_matches_naive_sort(
            points in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 2), 1..30),
            q in prop::collection::vec(-10.0f64..10.0, 2),
            k in 1usize..8,
        ) {
            let fast: Vec<usize> = nearest_neighbors(&q, &points, k).iter().map(|n| n.index).collect();
            let mut naive: Vec<(f64, usize)> = points
                .iter()
                .enumerate()
                .map(|(i, p)| (simmetrics::euclidean(&q, p), i))
                .collect();
            naive.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let slow: Vec<usize> = naive.iter().take(k).map(|(_, i)| *i).collect();
            prop_assert_eq!(fast, slow);
        }
    }
}
