//! Precision–recall evaluation (§5.2.2).
//!
//! The paper measures classifiers by the area under the precision–recall
//! curve (AUPR), citing Davis & Goadrich: PR curves expose differences that
//! ROC hides on heavily imbalanced data.

/// One point of a precision–recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Decision threshold that produced this point.
    pub threshold: f64,
    /// precision = TP / (TP + FP).
    pub precision: f64,
    /// recall = TP / P.
    pub recall: f64,
}

/// Compute the precision–recall curve from `(score, is_positive)` samples by
/// sweeping the threshold over every distinct score (descending).
///
/// Conventions: ties in score move together (the threshold sits between
/// distinct score values); precision at recall 0 is defined as 1.
///
/// # Panics
/// Panics if there are no positive samples — a PR curve is undefined then.
pub fn pr_curve(scored: &[(f64, bool)]) -> Vec<PrPoint> {
    let total_pos = scored.iter().filter(|(_, p)| *p).count();
    assert!(total_pos > 0, "PR curve needs at least one positive sample");
    let mut sorted: Vec<(f64, bool)> = scored.to_vec();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut curve = vec![PrPoint {
        threshold: f64::INFINITY,
        precision: 1.0,
        recall: 0.0,
    }];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        let score = sorted[i].0;
        // Consume the whole tie group.
        while i < sorted.len() && sorted[i].0 == score {
            if sorted[i].1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        curve.push(PrPoint {
            threshold: score,
            precision: tp as f64 / (tp + fp) as f64,
            recall: tp as f64 / total_pos as f64,
        });
    }
    curve
}

/// Area under the PR curve by the step-wise (average-precision style)
/// estimator: `Σ (r_i − r_{i−1}) · p_i`. In `[0, 1]`.
pub fn average_precision(scored: &[(f64, bool)]) -> f64 {
    let curve = pr_curve(scored);
    let mut area = 0.0;
    for w in curve.windows(2) {
        area += (w[1].recall - w[0].recall) * w[1].precision;
    }
    area
}

/// Confusion counts at a fixed threshold (`score >= threshold` ⇒ positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tally predictions at `threshold`.
    pub fn at_threshold(scored: &[(f64, bool)], threshold: f64) -> Self {
        let mut c = Confusion::default();
        for &(score, actual) in scored {
            match (score >= threshold, actual) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision; 1.0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall; 0.0 when there are no positives.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 harmonic mean (0 when precision + recall is 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_ranking_has_aupr_one() {
        let scored = vec![(0.9, true), (0.8, true), (0.3, false), (0.1, false)];
        assert!((average_precision(&scored) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_has_low_aupr() {
        let scored = vec![(0.9, false), (0.8, false), (0.3, true), (0.1, true)];
        let ap = average_precision(&scored);
        assert!(ap < 0.5, "got {ap}");
    }

    #[test]
    fn random_scores_on_imbalanced_data_give_aupr_near_base_rate() {
        // With 1% positives and uninformative scores, AP ≈ 0.01.
        let mut scored = Vec::new();
        let mut state = 7u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for i in 0..5000 {
            scored.push((next(), i % 100 == 0));
        }
        let ap = average_precision(&scored);
        assert!(
            ap < 0.1,
            "uninformative AP should be near base rate, got {ap}"
        );
    }

    #[test]
    fn curve_starts_at_recall_zero_and_ends_at_one() {
        let scored = vec![(0.9, true), (0.5, false), (0.4, true), (0.2, false)];
        let curve = pr_curve(&scored);
        assert_eq!(curve.first().unwrap().recall, 0.0);
        assert_eq!(curve.first().unwrap().precision, 1.0);
        assert!((curve.last().unwrap().recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_move_together() {
        // Two samples share a score: they must enter the curve in one step.
        let scored = vec![(0.5, true), (0.5, false), (0.1, true)];
        let curve = pr_curve(&scored);
        // Points: start, after the 0.5 group, after 0.1.
        assert_eq!(curve.len(), 3);
        assert!((curve[1].precision - 0.5).abs() < 1e-12);
        assert!((curve[1].recall - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one positive")]
    fn no_positives_rejected() {
        let _ = pr_curve(&[(0.4, false)]);
    }

    #[test]
    fn confusion_counts() {
        let scored = vec![(0.9, true), (0.8, false), (0.3, true), (0.1, false)];
        let c = Confusion::at_threshold(&scored, 0.5);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (1, 1, 1, 1));
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_prediction_conventions() {
        let c = Confusion::at_threshold(&[(0.1, true)], 0.5);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    proptest! {
        #[test]
        fn aupr_in_unit_interval(
            scores in prop::collection::vec((0.0f64..1.0, prop::bool::ANY), 2..60),
        ) {
            prop_assume!(scores.iter().any(|(_, p)| *p));
            let ap = average_precision(&scores);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
        }

        #[test]
        fn recall_is_monotone_along_the_curve(
            scores in prop::collection::vec((0.0f64..1.0, prop::bool::ANY), 2..60),
        ) {
            prop_assume!(scores.iter().any(|(_, p)| *p));
            let curve = pr_curve(&scores);
            for w in curve.windows(2) {
                prop_assert!(w[1].recall >= w[0].recall - 1e-12);
            }
        }
    }
}
