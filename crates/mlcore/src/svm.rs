//! Linear soft-margin SVM trained with Pegasos-style stochastic
//! sub-gradient descent — the baseline classifier of §5.2.1.
//!
//! §5.2.1: "SVM based methods take distance vectors between each pair of
//! reports as input … use a hyperplane to separate distance vectors that
//! represent duplicate report pairs and those representing non-duplicate
//! report pairs." With a near-linear feature space (field distances in
//! `[0,1]`) a linear kernel is the appropriate instantiation; the paper's
//! finding — SVM collapses under extreme label imbalance — is a property of
//! the hinge-loss objective, not the kernel.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SVM hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SvmConfig {
    /// Regularisation strength λ of the Pegasos objective.
    pub lambda: f64,
    /// Number of epochs over the training set.
    pub epochs: usize,
    /// RNG seed for sampling order.
    pub seed: u64,
    /// Weight multiplier applied to the positive-class hinge loss
    /// (1.0 = the paper's vanilla SVM; >1 is a standard imbalance
    /// mitigation exposed for ablations).
    pub positive_weight: f64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        // MLlib 1.x era defaults: regParam 0.01, numIterations 100.
        SvmConfig {
            lambda: 0.01,
            epochs: 100,
            seed: 13,
            positive_weight: 1.0,
        }
    }
}

/// A trained linear SVM: decision function `w·x + b`.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Weight vector.
    pub w: Vec<f64>,
    /// Bias.
    pub b: f64,
}

impl LinearSvm {
    /// Train with dual coordinate descent (Hsieh et al., ICML 2008) on the
    /// L1-loss SVM dual — the algorithm behind liblinear, which the record-
    /// linkage systems of the paper's era used. Deterministic (seeded
    /// permutations), robust to extreme label imbalance where plain SGD's
    /// rare positive updates drown in noise. The bias is learned through an
    /// augmented constant feature.
    ///
    /// `config.lambda` maps to `C = 1 / (lambda * n)`; `config.epochs` is
    /// the number of passes; `config.positive_weight` multiplies `C` for
    /// positive samples (1.0 = vanilla).
    ///
    /// # Panics
    /// Panics on empty input, mismatched lengths or labels outside ±1.
    pub fn train_dual(x: &[Vec<f64>], y: &[i8], config: &SvmConfig) -> Self {
        assert!(!x.is_empty(), "SVM needs training data");
        assert_eq!(x.len(), y.len(), "points/labels length mismatch");
        assert!(y.iter().all(|&l| l == 1 || l == -1), "labels must be +1/-1");
        let n = x.len();
        let dim = x[0].len();
        let c_base = 1.0 / (config.lambda * n as f64);
        // Augmented representation: w has dim+1 entries, last is the bias.
        let mut w = vec![0.0f64; dim + 1];
        let mut alpha = vec![0.0f64; n];
        // Q_ii = x_i·x_i (+1 for the bias feature).
        let qii: Vec<f64> = x.iter().map(|xi| dot(xi, xi) + 1.0).collect();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 0..config.epochs.max(1) {
            // Deterministic shuffle per epoch.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                let yi = y[i] as f64;
                let ci = if y[i] == 1 {
                    c_base * config.positive_weight
                } else {
                    c_base
                };
                // G = y_i (w·x_i + b_feature) - 1
                let g = yi * (dot(&w[..dim], &x[i]) + w[dim]) - 1.0;
                let pg = if alpha[i] <= 0.0 {
                    g.min(0.0)
                } else if alpha[i] >= ci {
                    g.max(0.0)
                } else {
                    g
                };
                if pg.abs() < 1e-12 {
                    continue;
                }
                let old = alpha[i];
                alpha[i] = (old - g / qii[i]).clamp(0.0, ci);
                let delta = (alpha[i] - old) * yi;
                for (wj, xj) in w[..dim].iter_mut().zip(&x[i]) {
                    *wj += delta * xj;
                }
                w[dim] += delta;
            }
        }
        let b = w[dim];
        w.truncate(dim);
        LinearSvm { w, b }
    }
    /// Train on ±1-labelled vectors.
    ///
    /// # Panics
    /// Panics on empty input, mismatched lengths or labels outside ±1.
    pub fn train(x: &[Vec<f64>], y: &[i8], config: &SvmConfig) -> Self {
        assert!(!x.is_empty(), "SVM needs training data");
        assert_eq!(x.len(), y.len(), "points/labels length mismatch");
        assert!(y.iter().all(|&l| l == 1 || l == -1), "labels must be +1/-1");
        let dim = x[0].len();
        let n = x.len();
        let mut w = vec![0.0f64; dim];
        let mut b = 0.0f64;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut t = 0u64;
        for _ in 0..config.epochs {
            for _ in 0..n {
                t += 1;
                let i = rng.gen_range(0..n);
                let eta = 1.0 / (config.lambda * t as f64);
                let yi = y[i] as f64;
                let margin = yi * (dot(&w, &x[i]) + b);
                // L2 shrinkage.
                let shrink = 1.0 - eta * config.lambda;
                for wj in w.iter_mut() {
                    *wj *= shrink;
                }
                if margin < 1.0 {
                    let weight = if y[i] == 1 {
                        config.positive_weight
                    } else {
                        1.0
                    };
                    let step = eta * yi * weight;
                    for (wj, xj) in w.iter_mut().zip(&x[i]) {
                        *wj += step * xj;
                    }
                    b += step;
                }
            }
        }
        LinearSvm { w, b }
    }

    /// Train with full-batch sub-gradient descent in the style of Spark
    /// MLlib 1.x's `SVMWithSGD` — the only SVM available on the paper's
    /// platform (Spark 1.2.1) and therefore the faithful baseline for its
    /// §5.2.1 comparison. MLlib defaults reproduced: `miniBatchFraction =
    /// 1.0` (full batch), step size `1/√t`, L2 regularisation, **no
    /// intercept** (`addIntercept=false`).
    ///
    /// `config.lambda` is the regularisation parameter (MLlib's `regParam`,
    /// default 0.01 era-typical); `config.epochs` maps to `numIterations`
    /// (MLlib default 100). `positive_weight` multiplies positive-sample
    /// gradients (1.0 = vanilla).
    ///
    /// # Panics
    /// Panics on empty input, mismatched lengths or labels outside ±1.
    pub fn train_batch(x: &[Vec<f64>], y: &[i8], config: &SvmConfig) -> Self {
        assert!(!x.is_empty(), "SVM needs training data");
        assert_eq!(x.len(), y.len(), "points/labels length mismatch");
        assert!(y.iter().all(|&l| l == 1 || l == -1), "labels must be +1/-1");
        let n = x.len() as f64;
        let dim = x[0].len();
        let mut w = vec![0.0f64; dim];
        for t in 1..=config.epochs.max(1) {
            // Mean hinge sub-gradient over the full batch.
            let mut grad = vec![0.0f64; dim];
            for (xi, &yi) in x.iter().zip(y) {
                let yi_f = yi as f64;
                if yi_f * dot(&w, xi) < 1.0 {
                    let weight = if yi == 1 { config.positive_weight } else { 1.0 };
                    for (g, &xj) in grad.iter_mut().zip(xi) {
                        *g -= yi_f * weight * xj;
                    }
                }
            }
            let step = 1.0 / (t as f64).sqrt();
            for (wj, g) in w.iter_mut().zip(&grad) {
                *wj -= step * (g / n + config.lambda * *wj);
            }
        }
        LinearSvm { w, b: 0.0 }
    }

    /// Signed distance-like decision value `w·x + b`; positive ⇒ duplicate.
    pub fn decision(&self, x: &[f64]) -> f64 {
        dot(&self.w, x) + self.b
    }

    /// Hard ±1 prediction.
    pub fn predict(&self, x: &[f64]) -> i8 {
        if self.decision(x) > 0.0 {
            1
        } else {
            -1
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable balanced data: class +1 around (0,0), −1 around (4,4).
    fn balanced() -> (Vec<Vec<f64>>, Vec<i8>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let t = (i as f64) * 0.02;
            x.push(vec![t, -t]);
            y.push(1);
            x.push(vec![4.0 + t, 4.0 - t]);
            y.push(-1);
        }
        (x, y)
    }

    #[test]
    fn separates_balanced_data() {
        let (x, y) = balanced();
        let svm = LinearSvm::train(&x, &y, &SvmConfig::default());
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| svm.predict(xi) == yi)
            .count();
        assert!(
            correct as f64 / x.len() as f64 > 0.95,
            "only {correct}/{} correct",
            x.len()
        );
    }

    #[test]
    fn decision_is_monotone_along_the_separating_direction() {
        let (x, y) = balanced();
        let svm = LinearSvm::train(&x, &y, &SvmConfig::default());
        assert!(svm.decision(&[0.0, 0.0]) > svm.decision(&[4.0, 4.0]));
    }

    #[test]
    fn collapses_under_extreme_imbalance() {
        // The paper's core observation (§5.2.2): with a few positives
        // drowning in negatives, the vanilla hinge objective pays almost
        // nothing for misclassifying all positives.
        let mut x = Vec::new();
        let mut y = Vec::new();
        // 5 positives near the origin.
        for i in 0..5 {
            x.push(vec![0.1 * i as f64, 0.1]);
            y.push(1);
        }
        // 2000 negatives filling the space AROUND them.
        let mut rng_state = 1u64;
        let mut next = || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((rng_state >> 33) as f64 / (1u64 << 31) as f64) * 2.0 - 0.5
        };
        for _ in 0..2000 {
            x.push(vec![next(), next()]);
            y.push(-1);
        }
        let svm = LinearSvm::train(&x, &y, &SvmConfig::default());
        let recalled = x
            .iter()
            .zip(&y)
            .filter(|(_, &yi)| yi == 1)
            .filter(|(xi, _)| svm.predict(xi) == 1)
            .count();
        assert!(
            recalled <= 2,
            "vanilla SVM should miss most embedded positives, recalled {recalled}/5"
        );
    }

    #[test]
    fn positive_weighting_recovers_some_recall() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..5 {
            x.push(vec![-2.0 - 0.1 * i as f64, -2.0]);
            y.push(1);
        }
        for i in 0..500 {
            x.push(vec![1.0 + 0.001 * i as f64, 1.0]);
            y.push(-1);
        }
        let vanilla = LinearSvm::train(&x, &y, &SvmConfig::default());
        let weighted = LinearSvm::train(
            &x,
            &y,
            &SvmConfig {
                positive_weight: 100.0,
                ..SvmConfig::default()
            },
        );
        let recall = |svm: &LinearSvm| {
            x.iter()
                .zip(&y)
                .filter(|(_, &yi)| yi == 1)
                .filter(|(xi, _)| svm.predict(xi) == 1)
                .count()
        };
        assert!(recall(&weighted) >= recall(&vanilla));
        assert_eq!(
            recall(&weighted),
            5,
            "separable positives must be found when weighted"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y) = balanced();
        let a = LinearSvm::train(&x, &y, &SvmConfig::default());
        let b = LinearSvm::train(&x, &y, &SvmConfig::default());
        assert_eq!(a.w, b.w);
        assert_eq!(a.b, b.b);
        let c = LinearSvm::train_dual(&x, &y, &SvmConfig::default());
        let d = LinearSvm::train_dual(&x, &y, &SvmConfig::default());
        assert_eq!(c.w, d.w);
        assert_eq!(c.b, d.b);
    }

    #[test]
    fn batch_solver_ranks_but_without_intercept_misclassifies() {
        // MLlib-style full-batch SGD on balanced, shifted data: with no
        // intercept the decision values still RANK the classes (driven by
        // the mean-gradient direction) even where hard classification is
        // poor — the behaviour that shapes the paper's SVM PR curves.
        let (x, y) = balanced();
        let svm = LinearSvm::train_batch(&x, &y, &SvmConfig::default());
        let pos_mean: f64 = x
            .iter()
            .zip(&y)
            .filter(|(_, &yi)| yi == 1)
            .map(|(xi, _)| svm.decision(xi))
            .sum::<f64>()
            / 30.0;
        let neg_mean: f64 = x
            .iter()
            .zip(&y)
            .filter(|(_, &yi)| yi == -1)
            .map(|(xi, _)| svm.decision(xi))
            .sum::<f64>()
            / 30.0;
        assert!(
            pos_mean > neg_mean,
            "batch SGD must rank the classes: {pos_mean} vs {neg_mean}"
        );
        assert_eq!(svm.b, 0.0, "MLlib default addIntercept=false");
    }

    #[test]
    fn batch_solver_is_deterministic() {
        let (x, y) = balanced();
        let a = LinearSvm::train_batch(&x, &y, &SvmConfig::default());
        let b = LinearSvm::train_batch(&x, &y, &SvmConfig::default());
        assert_eq!(a.w, b.w);
    }

    #[test]
    fn dual_solver_separates_balanced_data() {
        let (x, y) = balanced();
        let svm = LinearSvm::train_dual(&x, &y, &SvmConfig::default());
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| svm.predict(xi) == yi)
            .count();
        assert_eq!(correct, x.len(), "separable data must be fully separated");
    }

    #[test]
    fn dual_solver_ranks_under_imbalance() {
        // 3 positives in a sea of 600 negatives — the dual solver must
        // still produce decision values that rank positives above the
        // negative cloud even if the hard classification is all-negative.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..3 {
            x.push(vec![0.1 * i as f64, 0.1]);
            y.push(1);
        }
        for i in 0..600 {
            let t = (i % 25) as f64 * 0.02;
            x.push(vec![2.0 + t, 2.0 - t]);
            y.push(-1);
        }
        let svm = LinearSvm::train_dual(&x, &y, &SvmConfig::default());
        let pos_min = (0..3)
            .map(|i| svm.decision(&x[i]))
            .fold(f64::INFINITY, f64::min);
        let neg_max = (3..x.len())
            .map(|i| svm.decision(&x[i]))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            pos_min > neg_max,
            "dual SVM must rank positives above negatives: {pos_min} vs {neg_max}"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_rejected() {
        let _ = LinearSvm::train(&[vec![0.0]], &[1, -1], &SvmConfig::default());
    }
}
