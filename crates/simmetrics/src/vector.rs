//! Dense-vector distances.
//!
//! The paper compares report pairs by the Euclidean distance between their
//! field-distance vectors (§4.2); k-means and the hyperplane bound of Eq. 7
//! run in the same space.

/// Squared Euclidean distance — the workhorse for nearest-neighbour ranking
/// and k-means assignment (monotone in [`euclidean`], no `sqrt`).
///
/// # Panics
/// Panics when lengths differ: mixed-arity distance vectors indicate a bug
/// upstream, never a recoverable condition.
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dimension mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean (L2) distance.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Squared Euclidean distance over fixed-arity vectors.
///
/// The constant trip count lets the compiler fully unroll the loop and drop
/// every bounds check, while the strictly sequential accumulation order keeps
/// the result **bit-identical** to [`squared_euclidean`] on the same values —
/// the kNN ranking paths rely on that when mixing the two.
#[inline]
pub fn squared_euclidean_fixed<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut acc = 0.0;
    let mut i = 0;
    while i < D {
        let d = a[i] - b[i];
        acc += d * d;
        i += 1;
    }
    acc
}

/// Euclidean (L2) distance over fixed-arity vectors.
#[inline]
pub fn euclidean_fixed<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    squared_euclidean_fixed(a, b).sqrt()
}

/// The unrolled 8-lane kernel for the §4.2 pair-distance space.
#[inline]
pub fn squared_euclidean8(a: &[f64; 8], b: &[f64; 8]) -> f64 {
    squared_euclidean_fixed(a, b)
}

/// Manhattan (L1) distance.
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Minkowski distance of order `p >= 1`.
pub fn minkowski(a: &[f64], b: &[f64], p: f64) -> f64 {
    assert!(p >= 1.0, "Minkowski order must be >= 1, got {p}");
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs().powf(p))
        .sum::<f64>()
        .powf(1.0 / p)
}

/// Cosine similarity in `[-1, 1]`; zero vectors have similarity 0 with
/// everything (including each other) by convention.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn euclidean_known() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[], &[]), 0.0);
    }

    #[test]
    fn manhattan_known() {
        assert_eq!(manhattan(&[1.0, 2.0], &[4.0, 0.0]), 5.0);
    }

    #[test]
    fn minkowski_interpolates() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!((minkowski(&a, &b, 1.0) - manhattan(&a, &b)).abs() < 1e-12);
        assert!((minkowski(&a, &b, 2.0) - euclidean(&a, &b)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let _ = euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn cosine_known() {
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 1.0], &[2.0, 2.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    proptest! {
        #[test]
        fn euclidean_symmetry_and_nonneg(
            a in prop::collection::vec(-100.0f64..100.0, 4),
            b in prop::collection::vec(-100.0f64..100.0, 4),
        ) {
            let d = euclidean(&a, &b);
            prop_assert!(d >= 0.0);
            prop_assert!((d - euclidean(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn euclidean_triangle(
            a in prop::collection::vec(-10.0f64..10.0, 3),
            b in prop::collection::vec(-10.0f64..10.0, 3),
            c in prop::collection::vec(-10.0f64..10.0, 3),
        ) {
            prop_assert!(euclidean(&a, &c) <= euclidean(&a, &b) + euclidean(&b, &c) + 1e-9);
        }

        #[test]
        fn identity_of_indiscernibles(a in prop::collection::vec(-10.0f64..10.0, 5)) {
            prop_assert_eq!(euclidean(&a, &a), 0.0);
            prop_assert_eq!(manhattan(&a, &a), 0.0);
        }

        // The satellite property: the unrolled fixed-arity kernel matches the
        // slice version to within 1 ulp (in fact bit-exactly — the
        // accumulation order is identical).
        #[test]
        fn fixed_kernel_matches_slice_within_one_ulp(
            a in prop::collection::vec(-100.0f64..100.0, 8),
            b in prop::collection::vec(-100.0f64..100.0, 8),
        ) {
            let fa: [f64; 8] = a.clone().try_into().unwrap();
            let fb: [f64; 8] = b.clone().try_into().unwrap();
            let slice = squared_euclidean(&a, &b);
            let fixed = squared_euclidean8(&fa, &fb);
            let ulp_gap = (slice.to_bits() as i64 - fixed.to_bits() as i64).abs();
            prop_assert!(ulp_gap <= 1, "slice {slice} vs fixed {fixed} ({ulp_gap} ulps)");
            prop_assert_eq!(euclidean_fixed(&fa, &fb).to_bits(), euclidean(&a, &b).to_bits());
        }

        #[test]
        fn cosine_bounded(
            a in prop::collection::vec(-10.0f64..10.0, 4),
            b in prop::collection::vec(-10.0f64..10.0, 4),
        ) {
            let c = cosine_similarity(&a, &b);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
        }
    }
}
