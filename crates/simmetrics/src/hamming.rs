//! Hamming distance for equal-length sequences.

/// Hamming distance between two equal-length strings (number of positions
/// whose characters differ), compared over Unicode scalar values.
///
/// Returns `None` when the lengths differ — Hamming distance is undefined
/// there, and silently substituting another metric would corrupt
/// field-distance vectors.
pub fn hamming(a: &str, b: &str) -> Option<usize> {
    let mut ia = a.chars();
    let mut ib = b.chars();
    let mut dist = 0usize;
    loop {
        match (ia.next(), ib.next()) {
            (Some(ca), Some(cb)) => {
                if ca != cb {
                    dist += 1;
                }
            }
            (None, None) => return Some(dist),
            _ => return None,
        }
    }
}

/// Hamming distance over arbitrary comparable slices.
pub fn hamming_slice<T: PartialEq>(a: &[T], b: &[T]) -> Option<usize> {
    if a.len() != b.len() {
        return None;
    }
    Some(a.iter().zip(b).filter(|(x, y)| x != y).count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_example() {
        assert_eq!(hamming("karolin", "kathrin"), Some(3));
        assert_eq!(hamming("1011101", "1001001"), Some(2));
    }

    #[test]
    fn equal_strings_have_zero() {
        assert_eq!(hamming("abc", "abc"), Some(0));
        assert_eq!(hamming("", ""), Some(0));
    }

    #[test]
    fn unequal_lengths_are_undefined() {
        assert_eq!(hamming("ab", "abc"), None);
        assert_eq!(hamming("abc", ""), None);
    }

    #[test]
    fn slice_variant_matches() {
        assert_eq!(hamming_slice(&[1, 2, 3], &[1, 9, 3]), Some(1));
        assert_eq!(hamming_slice::<u8>(&[], &[]), Some(0));
        assert_eq!(hamming_slice(&[1], &[1, 2]), None);
    }

    proptest! {
        #[test]
        fn symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            prop_assert_eq!(hamming(&a, &b), hamming(&b, &a));
        }

        #[test]
        fn bounded_by_length(a in "[a-z]{8}", b in "[a-z]{8}") {
            let d = hamming(&a, &b).unwrap();
            prop_assert!(d <= 8);
        }
    }
}
