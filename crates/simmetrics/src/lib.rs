//! # simmetrics — similarity and distance metrics for record matching
//!
//! Field-matching building blocks for duplicate detection, as surveyed in
//! §1–§4.2 of Wang & Karimi (EDBT 2016):
//!
//! * [`mod@levenshtein`] — edit distance (Levenshtein \[13\] in the paper)
//!   and the Damerau / optimal-string-alignment variant;
//! * [`mod@hamming`] — Hamming distance \[8\];
//! * [`mod@jaro`] — Jaro and Jaro–Winkler similarity (record-linkage
//!   classics);
//! * [`token`] — Jaccard \[3\], Dice, overlap and cosine over token sets;
//! * [`sorted`] — the same set metrics as allocation-free merge walks over
//!   sorted deduplicated slices (interned token ids on the hot path);
//! * [`vector`] — Euclidean / Manhattan / Minkowski / cosine over dense
//!   `f64` vectors (the paper compares *distance vectors of report pairs*
//!   with Euclidean distance);
//! * [`soa`] — struct-of-arrays [`soa::VecBatch`] column batches with
//!   tiled, autovectorizing distance kernels (1×N, M×N block, fused
//!   centre assignment), bit-identical to the scalar per-pair path;
//! * [`field`] — the paper's §4.2 field-distance rules: 0/1 for numeric and
//!   categorical fields, Jaccard over token sets for string fields.
//!
//! All distances are in `[0, 1]` unless documented otherwise; similarities
//! are `1 - distance` where both are defined.

pub mod field;
pub mod hamming;
pub mod jaro;
pub mod levenshtein;
pub mod soa;
pub mod sorted;
pub mod token;
pub mod vector;

pub use field::{FieldDistance, FieldKind};
pub use hamming::hamming;
pub use jaro::{jaro, jaro_winkler};
pub use levenshtein::{damerau_levenshtein, levenshtein, normalized_levenshtein};
pub use sorted::{
    cosine_tokens_sorted, dice_sorted, intersect_gallop_into, intersection_size_sorted,
    jaccard_distance_sorted, jaccard_similarity_sorted, overlap_coefficient_sorted,
    union_k_sorted_into,
};
pub use token::{cosine_tokens, dice, jaccard_distance, jaccard_similarity, overlap_coefficient};
pub use vector::{
    cosine_similarity, euclidean, euclidean_fixed, manhattan, minkowski, squared_euclidean,
    squared_euclidean8, squared_euclidean_fixed,
};
