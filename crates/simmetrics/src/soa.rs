//! Struct-of-arrays vector batches and tiled, autovectorizing distance
//! kernels.
//!
//! The per-pair kernels in [`crate::vector`] walk one `[f64; D]` row at a
//! time: the D-step accumulation is a serial dependency chain, so the CPU's
//! SIMD lanes sit idle and every row costs a full add-latency ladder. The
//! batch kernels here flip the layout: a [`VecBatch`] stores each of the D
//! dimensions as one contiguous column, and the kernels iterate *points*
//! in the inner loop — every point carries an independent accumulator, so
//! LLVM autovectorizes the loop across points without any reassociation
//! (and therefore without `-ffast-math`, `unsafe`, or intrinsics).
//!
//! **Bit-identity.** Each point's squared distance is still accumulated in
//! ascending-dimension order, exactly like
//! [`squared_euclidean_fixed`](crate::squared_euclidean_fixed); only the
//! loop *nesting* changes, never the per-result operation order. Every
//! kernel here is therefore bit-for-bit interchangeable with its scalar
//! counterpart — the property the kNN total order `(distance², id)` and the
//! seeded k-means digests rely on, pinned by this module's proptests.
//!
//! **Tiling.** The block kernels tile twice. Points are walked in
//! [`TILE_COLS`]-wide column tiles (8 columns × 256 points × 8 B = 16 KiB —
//! L1-resident), so each point tile is re-streamed from L1 rather than from
//! memory. Queries (or centres) are register-blocked [`TILE_ROWS`] at a
//! time: every column load is reused for all [`TILE_ROWS`] accumulators,
//! and because the per-query dimension chains are mutually independent they
//! pipeline through the FP units instead of stalling on add latency — the
//! same register-tiling that dense linear-algebra kernels use.

/// Points per column tile: `D × TILE_COLS × 8 B` of column data ≈ 16 KiB
/// for the 8-dimensional pair space — comfortably inside a 32 KiB L1d
/// alongside the accumulator tile.
pub const TILE_COLS: usize = 256;

/// Queries (or centres) per register block of a block kernel: one column
/// load feeds `TILE_ROWS` independent accumulator chains, hiding FP-add
/// latency while keeping the accumulators (`TILE_ROWS` vector registers
/// once the point loop vectorizes) within the register file.
pub const TILE_ROWS: usize = 8;

/// A batch of fixed-arity vectors in struct-of-arrays layout: dimension `d`
/// of every vector lives in the contiguous column `col(d)`, with the
/// caller's id and label carried in parallel arrays.
///
/// Rows are append-only and keep insertion order; [`VecBatch::row`]
/// reassembles the array-of-structs view on demand, and the AoS → SoA → AoS
/// round trip is lossless (bit-for-bit, ids and labels included).
#[derive(Debug, Clone, PartialEq)]
pub struct VecBatch<const D: usize> {
    ids: Vec<u64>,
    labels: Vec<bool>,
    cols: Vec<Vec<f64>>,
}

impl<const D: usize> Default for VecBatch<D> {
    /// Same as [`VecBatch::new`] — a derived `Default` would construct zero
    /// columns instead of `D` empty ones.
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> VecBatch<D> {
    /// Empty batch.
    pub fn new() -> Self {
        VecBatch {
            ids: Vec::new(),
            labels: Vec::new(),
            cols: (0..D).map(|_| Vec::new()).collect(),
        }
    }

    /// Empty batch with row capacity `n` in every column.
    pub fn with_capacity(n: usize) -> Self {
        VecBatch {
            ids: Vec::with_capacity(n),
            labels: Vec::with_capacity(n),
            cols: (0..D).map(|_| Vec::with_capacity(n)).collect(),
        }
    }

    /// Batch of plain vectors: ids are the row indices, labels all `false`.
    pub fn from_rows(rows: &[[f64; D]]) -> Self {
        let mut batch = Self::with_capacity(rows.len());
        for (i, r) in rows.iter().enumerate() {
            batch.push(i as u64, r, false);
        }
        batch
    }

    /// Append one row.
    pub fn push(&mut self, id: u64, vector: &[f64; D], label: bool) {
        self.ids.push(id);
        self.labels.push(label);
        for (col, &x) in self.cols.iter_mut().zip(vector.iter()) {
            col.push(x);
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Drop all rows, keeping every column's allocation (scratch reuse).
    pub fn clear(&mut self) {
        self.ids.clear();
        self.labels.clear();
        for col in &mut self.cols {
            col.clear();
        }
    }

    /// Column `d` (one value per row).
    #[inline]
    pub fn col(&self, d: usize) -> &[f64] {
        &self.cols[d]
    }

    /// Row ids, in insertion order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Row labels, in insertion order.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Id of row `i`.
    #[inline]
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// Label of row `i`.
    #[inline]
    pub fn label(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// Reassemble row `i` as an array-of-structs vector.
    #[inline]
    pub fn row(&self, i: usize) -> [f64; D] {
        std::array::from_fn(|d| self.cols[d][i])
    }

    /// Mutable row ids — for renumbering a concatenated batch in place
    /// (the duplicate-detection pipeline reindexes pair rows 0..n before
    /// classification).
    pub fn ids_mut(&mut self) -> &mut [u64] {
        &mut self.ids
    }

    /// Append every row of `other`, column-wise, preserving order — the
    /// driver-side concatenation for per-partition batches coming back from
    /// the engine.
    pub fn append(&mut self, other: &Self) {
        self.ids.extend_from_slice(&other.ids);
        self.labels.extend_from_slice(&other.labels);
        for (c, oc) in self.cols.iter_mut().zip(&other.cols) {
            c.extend_from_slice(oc);
        }
    }

    /// New batch holding rows `idx[0], idx[1], …` of `self`, in that order
    /// (a permutation gather; indices may also repeat or skip rows).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn gather(&self, idx: &[usize]) -> Self {
        let mut out = Self::with_capacity(idx.len());
        out.ids.extend(idx.iter().map(|&i| self.ids[i]));
        out.labels.extend(idx.iter().map(|&i| self.labels[i]));
        for (oc, c) in out.cols.iter_mut().zip(&self.cols) {
            oc.extend(idx.iter().map(|&i| c[i]));
        }
        out
    }

    /// Split off the rows from `at` onward into a new batch (cf.
    /// [`Vec::split_off`]).
    pub fn split_off(&mut self, at: usize) -> Self {
        VecBatch {
            ids: self.ids.split_off(at),
            labels: self.labels.split_off(at),
            cols: self.cols.iter_mut().map(|c| c.split_off(at)).collect(),
        }
    }

    /// Serialize the batch **column-wise**: row count, then ids, then
    /// labels, then each of the `D` columns contiguously — the SoA layout
    /// on disk, no re-rowifying. `f64` values travel as raw bits, so the
    /// encode → decode round trip is bit-exact (NaN payloads and signed
    /// zeros included). This is the out-of-core spill format.
    pub fn encode_columns(&self, out: &mut Vec<u8>) {
        let n = self.len();
        out.reserve(8 + n * (8 + 1 + D * 8));
        out.extend_from_slice(&(n as u64).to_le_bytes());
        for &id in &self.ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        for &l in &self.labels {
            out.push(l as u8);
        }
        for col in &self.cols {
            for &x in col {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
    }

    /// Rebuild a batch serialized by [`VecBatch::encode_columns`]. Returns
    /// `None` when the byte length does not match the encoded row count
    /// (truncated or garbled input).
    pub fn decode_columns(bytes: &[u8]) -> Option<Self> {
        let n = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?) as usize;
        if bytes.len() != 8 + n * (8 + 1 + D * 8) {
            return None;
        }
        let mut at = 8;
        let ids: Vec<u64> = bytes[at..at + n * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        at += n * 8;
        let labels: Vec<bool> = bytes[at..at + n].iter().map(|&b| b != 0).collect();
        at += n;
        let cols: Vec<Vec<f64>> = (0..D)
            .map(|_| {
                let col = bytes[at..at + n * 8]
                    .chunks_exact(8)
                    .map(|c| {
                        f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                    })
                    .collect();
                at += n * 8;
                col
            })
            .collect();
        Some(VecBatch { ids, labels, cols })
    }

    /// Copy the rows into contiguous chunks of at most `chunk_len` rows
    /// (the last chunk may be shorter), preserving order — the driver-side
    /// splitter for handing each engine partition one contiguous batch.
    pub fn chunk_rows(&self, chunk_len: usize) -> Vec<Self> {
        assert!(chunk_len > 0, "chunk length must be positive");
        let mut out = Vec::with_capacity(self.len().div_ceil(chunk_len));
        let mut start = 0;
        while start < self.len() {
            let end = (start + chunk_len).min(self.len());
            let mut chunk = Self::with_capacity(end - start);
            chunk.ids.extend_from_slice(&self.ids[start..end]);
            chunk.labels.extend_from_slice(&self.labels[start..end]);
            for (cc, c) in chunk.cols.iter_mut().zip(&self.cols) {
                cc.extend_from_slice(&c[start..end]);
            }
            out.push(chunk);
            start = end;
        }
        out
    }
}

/// Squared Euclidean distances from every row of `points` to the single
/// query `q`, written to `out` (resized to `points.len()`).
///
/// 1×N kernel: the point loop vectorizes (each lane owns one point's
/// accumulator) and the fully-unrolled dimension loop keeps that
/// accumulator in a register instead of round-tripping it through memory
/// once per dimension. Per point the accumulation order is
/// ascending-dimension: bit-identical to
/// [`squared_euclidean_fixed`](crate::squared_euclidean_fixed).
pub fn distances_to_point<const D: usize>(points: &VecBatch<D>, q: &[f64; D], out: &mut Vec<f64>) {
    distances_to_point_range(points, q, 0, points.len(), out);
}

/// [`distances_to_point`] restricted to rows `start..end`: `out` is resized
/// to `end - start` and `out[i]` is the squared distance from row
/// `start + i` to `q`.
///
/// Same per-row ascending-dimension accumulation as the full kernel, so the
/// value computed for a row is **position-independent** — bit-identical to
/// what the full kernel would produce at that row. This is what lets the
/// pruning engine evaluate only the admissible window of a sorted Voronoi
/// cell without perturbing kNN results.
pub fn distances_to_point_range<const D: usize>(
    points: &VecBatch<D>,
    q: &[f64; D],
    start: usize,
    end: usize,
    out: &mut Vec<f64>,
) {
    debug_assert!(start <= end && end <= points.len());
    out.clear();
    out.resize(end - start, 0.0);
    let cols: [&[f64]; D] = std::array::from_fn(|d| &points.col(d)[start..end]);
    for (i, acc) in out.iter_mut().enumerate() {
        let mut a = 0.0;
        for (col, &qd) in cols.iter().zip(q.iter()) {
            let diff = col[i] - qd;
            a += diff * diff;
        }
        *acc = a;
    }
}

/// M×N squared-distance block: `out[r * points.len() + c]` is the squared
/// Euclidean distance from query row `r` to point row `c`.
///
/// Register-tiled [`TILE_ROWS`]×[`TILE_COLS`]: within an L1-resident point
/// tile, [`TILE_ROWS`] queries share every column load and carry
/// [`TILE_ROWS`] independent accumulator chains through the point loop —
/// the chains hide FP-add latency and the loop vectorizes across points.
/// Bit-identical to the scalar per-pair kernel (see module docs).
pub fn distances_block<const D: usize>(
    queries: &VecBatch<D>,
    points: &VecBatch<D>,
    out: &mut Vec<f64>,
) {
    let m = queries.len();
    let n = points.len();
    out.clear();
    out.resize(m * n, 0.0);
    let cols: [&[f64]; D] = std::array::from_fn(|d| &points.col(d)[..n]);
    let mut t0 = 0;
    while t0 < n {
        let t1 = (t0 + TILE_COLS).min(n);
        let mut r0 = 0;
        while r0 + TILE_ROWS <= m {
            let qb: [[f64; D]; TILE_ROWS] = std::array::from_fn(|q| queries.row(r0 + q));
            for i in t0..t1 {
                let mut acc = [0.0f64; TILE_ROWS];
                for (d, col) in cols.iter().enumerate() {
                    let x = col[i];
                    for (a, qr) in acc.iter_mut().zip(&qb) {
                        let diff = x - qr[d];
                        *a += diff * diff;
                    }
                }
                for (q, &a) in acc.iter().enumerate() {
                    out[(r0 + q) * n + i] = a;
                }
            }
            r0 += TILE_ROWS;
        }
        // Remainder queries (fewer than a register block): one row each.
        for r in r0..m {
            let qr = queries.row(r);
            for i in t0..t1 {
                let mut a = 0.0;
                for (col, &qd) in cols.iter().zip(qr.iter()) {
                    let diff = col[i] - qd;
                    a += diff * diff;
                }
                out[r * n + i] = a;
            }
        }
        t0 = t1;
    }
}

/// Fused centre assignment: for every row of `points`, the index and
/// squared distance of its nearest centre (first index wins ties, strict
/// `<` — the exact semantics of `mlcore::kmeans::nearest_centroid`).
///
/// Works one [`TILE_COLS`] point tile at a time with the centres
/// register-blocked [`TILE_ROWS`] at a time: within a point tile each
/// column load feeds [`TILE_ROWS`] independent accumulator chains, the
/// block's distances fold into the running best with branchless selects in
/// ascending centre order, and no M×N distance matrix is ever
/// materialised. With no centres every row reports index 0 at distance
/// `+∞`, matching the scalar fallback.
pub fn assign_min<const D: usize>(
    points: &VecBatch<D>,
    centers: &[[f64; D]],
    out_idx: &mut Vec<u32>,
    out_d2: &mut Vec<f64>,
) {
    let n = points.len();
    out_idx.clear();
    out_idx.resize(n, 0);
    out_d2.clear();
    out_d2.resize(n, f64::INFINITY);
    let cols: [&[f64]; D] = std::array::from_fn(|d| &points.col(d)[..n]);
    let mut t0 = 0;
    while t0 < n {
        let t1 = (t0 + TILE_COLS).min(n);
        let mut c0 = 0;
        while c0 + TILE_ROWS <= centers.len() {
            let cb = &centers[c0..c0 + TILE_ROWS];
            for i in t0..t1 {
                let mut acc = [0.0f64; TILE_ROWS];
                for (d, col) in cols.iter().enumerate() {
                    let x = col[i];
                    for (a, cr) in acc.iter_mut().zip(cb) {
                        let diff = x - cr[d];
                        *a += diff * diff;
                    }
                }
                // Branchless ascending fold — first strict minimum wins,
                // exactly the scalar scan order.
                let mut best_d = out_d2[i];
                let mut best_i = out_idx[i];
                for (q, &a) in acc.iter().enumerate() {
                    let better = a < best_d;
                    best_d = if better { a } else { best_d };
                    best_i = if better { (c0 + q) as u32 } else { best_i };
                }
                out_d2[i] = best_d;
                out_idx[i] = best_i;
            }
            c0 += TILE_ROWS;
        }
        // Remainder centres (fewer than a register block): one each.
        for (ci, c) in centers.iter().enumerate().skip(c0) {
            for i in t0..t1 {
                let mut a = 0.0;
                for (col, &qd) in cols.iter().zip(c.iter()) {
                    let diff = col[i] - qd;
                    a += diff * diff;
                }
                if a < out_d2[i] {
                    out_d2[i] = a;
                    out_idx[i] = ci as u32;
                }
            }
        }
        t0 = t1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::squared_euclidean_fixed;
    use proptest::prelude::*;

    fn rows(n: usize, seed: u64) -> Vec<[f64; 8]> {
        // Cheap deterministic pseudo-data with exercised mantissa bits.
        (0..n)
            .map(|i| {
                std::array::from_fn(|d| {
                    let x = (i as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(seed + d as u64);
                    (x % 10_000) as f64 / 997.0
                })
            })
            .collect()
    }

    #[test]
    fn round_trip_aos_soa_aos_is_lossless() {
        let data = rows(100, 3);
        let mut batch = VecBatch::<8>::with_capacity(data.len());
        for (i, r) in data.iter().enumerate() {
            batch.push(1000 + i as u64, r, i % 3 == 0);
        }
        assert_eq!(batch.len(), data.len());
        for (i, r) in data.iter().enumerate() {
            assert_eq!(&batch.row(i), r, "row {i}");
            assert_eq!(batch.id(i), 1000 + i as u64);
            assert_eq!(batch.label(i), i % 3 == 0);
        }
    }

    /// The sizes the tiled loops must get right: empty, single, and every
    /// tile boundary (tile−1, tile, tile+1) for both the column and the row
    /// tiling.
    fn boundary_sizes() -> Vec<usize> {
        vec![
            0,
            1,
            TILE_ROWS - 1,
            TILE_ROWS,
            TILE_ROWS + 1,
            TILE_COLS - 1,
            TILE_COLS,
            TILE_COLS + 1,
        ]
    }

    #[test]
    fn distances_to_point_matches_scalar_at_tile_boundaries() {
        let q = rows(1, 9)[0];
        let mut out = Vec::new();
        for n in boundary_sizes() {
            let data = rows(n, 17);
            let batch = VecBatch::<8>::from_rows(&data);
            distances_to_point(&batch, &q, &mut out);
            assert_eq!(out.len(), n);
            for (i, r) in data.iter().enumerate() {
                assert_eq!(
                    out[i].to_bits(),
                    squared_euclidean_fixed(r, &q).to_bits(),
                    "row {i} of {n}"
                );
            }
        }
    }

    #[test]
    fn distances_block_matches_scalar_at_tile_boundaries() {
        let mut out = Vec::new();
        for m in boundary_sizes() {
            for n in [0usize, 1, TILE_COLS - 1, TILE_COLS + 1] {
                let qs = rows(m, 5);
                let ps = rows(n, 23);
                let queries = VecBatch::<8>::from_rows(&qs);
                let points = VecBatch::<8>::from_rows(&ps);
                distances_block(&queries, &points, &mut out);
                assert_eq!(out.len(), m * n);
                for (r, q) in qs.iter().enumerate() {
                    for (c, p) in ps.iter().enumerate() {
                        assert_eq!(
                            out[r * n + c].to_bits(),
                            squared_euclidean_fixed(q, p).to_bits(),
                            "({r},{c}) of {m}x{n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn assign_min_matches_scalar_at_tile_boundaries() {
        let centers: Vec<[f64; 8]> = rows(13, 41);
        let mut idx = Vec::new();
        let mut d2 = Vec::new();
        for n in boundary_sizes() {
            let data = rows(n, 29);
            let batch = VecBatch::<8>::from_rows(&data);
            assign_min(&batch, &centers, &mut idx, &mut d2);
            assert_eq!(idx.len(), n);
            for (i, p) in data.iter().enumerate() {
                // Reference: first strict minimum, like nearest_centroid.
                let mut best = (0usize, f64::INFINITY);
                for (ci, c) in centers.iter().enumerate() {
                    let d = squared_euclidean_fixed(p, c);
                    if d < best.1 {
                        best = (ci, d);
                    }
                }
                assert_eq!(idx[i] as usize, best.0, "row {i} of {n}");
                assert_eq!(d2[i].to_bits(), best.1.to_bits(), "row {i} of {n}");
            }
        }
    }

    #[test]
    fn assign_min_without_centers_reports_infinity() {
        let batch = VecBatch::<8>::from_rows(&rows(5, 1));
        let (mut idx, mut d2) = (Vec::new(), Vec::new());
        assign_min(&batch, &[], &mut idx, &mut d2);
        assert_eq!(idx, vec![0; 5]);
        assert!(d2.iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn split_off_and_chunk_rows_preserve_rows() {
        let data = rows(10, 7);
        let mut batch = VecBatch::<8>::from_rows(&data);
        let tail = batch.split_off(6);
        assert_eq!(batch.len(), 6);
        assert_eq!(tail.len(), 4);
        assert_eq!(tail.row(0), data[6]);
        assert_eq!(tail.id(0), 6);

        let whole = VecBatch::<8>::from_rows(&data);
        let chunks = whole.chunk_rows(4);
        assert_eq!(chunks.iter().map(VecBatch::len).sum::<usize>(), 10);
        assert_eq!(chunks.len(), 3);
        let mut i = 0;
        for chunk in &chunks {
            for r in 0..chunk.len() {
                assert_eq!(chunk.row(r), data[i]);
                assert_eq!(chunk.id(r), i as u64);
                i += 1;
            }
        }
    }

    #[test]
    fn append_concatenates_column_wise() {
        let data = rows(10, 11);
        let mut a = VecBatch::<8>::from_rows(&data[..6]);
        let b = VecBatch::<8>::from_rows(&data[6..]);
        a.append(&b);
        assert_eq!(a.len(), 10);
        for (i, r) in data.iter().enumerate() {
            assert_eq!(a.row(i), *r, "row {i}");
        }
        // from_rows numbers each source batch from zero; renumber globally.
        for (i, id) in a.ids_mut().iter_mut().enumerate() {
            *id = i as u64;
        }
        assert_eq!(a.ids(), (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn column_codec_round_trips_bit_exactly() {
        let mut batch = VecBatch::<3>::new();
        batch.push(7, &[f64::NAN, -0.0, 1.0 / 3.0], true);
        batch.push(u64::MAX, &[f64::INFINITY, f64::MIN_POSITIVE, -2.5], false);
        let mut bytes = Vec::new();
        batch.encode_columns(&mut bytes);
        assert_eq!(bytes.len(), 8 + 2 * (8 + 1 + 3 * 8));
        let back = VecBatch::<3>::decode_columns(&bytes).expect("well-formed");
        assert_eq!(back.ids(), batch.ids());
        assert_eq!(back.labels(), batch.labels());
        for d in 0..3 {
            let bits: Vec<u64> = back.col(d).iter().map(|x| x.to_bits()).collect();
            let expect: Vec<u64> = batch.col(d).iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits, expect, "column {d} must survive bit-exactly");
        }
        // Truncation and arity mismatch refuse to decode.
        assert!(VecBatch::<3>::decode_columns(&bytes[..bytes.len() - 1]).is_none());
        assert!(VecBatch::<4>::decode_columns(&bytes).is_none());
        // Empty batch round-trips too.
        let mut empty_bytes = Vec::new();
        VecBatch::<3>::new().encode_columns(&mut empty_bytes);
        assert_eq!(
            VecBatch::<3>::decode_columns(&empty_bytes).unwrap().len(),
            0
        );
    }

    #[test]
    fn gather_permutes_repeats_and_skips() {
        let data = rows(5, 13);
        let mut batch = VecBatch::<8>::with_capacity(5);
        for (i, r) in data.iter().enumerate() {
            batch.push(100 + i as u64, r, i % 2 == 0);
        }
        let picked = batch.gather(&[4, 0, 0, 2]);
        assert_eq!(picked.len(), 4);
        assert_eq!(picked.row(0), data[4]);
        assert_eq!(picked.row(1), data[0]);
        assert_eq!(picked.row(2), data[0]);
        assert_eq!(picked.row(3), data[2]);
        assert_eq!(picked.ids(), &[104, 100, 100, 102]);
        assert_eq!(picked.labels(), &[true, true, true, true]);
    }

    proptest! {
        /// Every kernel is bit-identical to the scalar per-pair path on
        /// arbitrary shapes — the contract the kNN total order rests on.
        #[test]
        fn kernels_are_bit_identical_to_scalar(
            seed in 0u64..10_000,
            n_pts in 0usize..600,
            n_qs in 0usize..12,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let pts: Vec<[f64; 4]> = (0..n_pts)
                .map(|_| std::array::from_fn(|_| rng.gen_range(-100.0..100.0)))
                .collect();
            let qs: Vec<[f64; 4]> = (0..n_qs)
                .map(|_| std::array::from_fn(|_| rng.gen_range(-100.0..100.0)))
                .collect();
            let points = VecBatch::<4>::from_rows(&pts);
            let queries = VecBatch::<4>::from_rows(&qs);
            let mut out = Vec::new();
            distances_block(&queries, &points, &mut out);
            let mut row = Vec::new();
            for (r, q) in qs.iter().enumerate() {
                distances_to_point(&points, q, &mut row);
                for (c, p) in pts.iter().enumerate() {
                    let scalar = squared_euclidean_fixed(q, p);
                    prop_assert_eq!(out[r * pts.len() + c].to_bits(), scalar.to_bits());
                    prop_assert_eq!(row[c].to_bits(), scalar.to_bits());
                }
            }
            let (mut idx, mut d2) = (Vec::new(), Vec::new());
            assign_min(&points, &qs, &mut idx, &mut d2);
            for (i, p) in pts.iter().enumerate() {
                let mut best = (0usize, f64::INFINITY);
                for (ci, c) in qs.iter().enumerate() {
                    let d = squared_euclidean_fixed(p, c);
                    if d < best.1 {
                        best = (ci, d);
                    }
                }
                prop_assert_eq!(idx[i] as usize, best.0);
                prop_assert_eq!(d2[i].to_bits(), best.1.to_bits());
            }
        }

        /// The ranged kernel is bit-identical to the corresponding window of
        /// the full kernel for every sub-range — what makes windowed pruning
        /// scans lossless.
        #[test]
        fn ranged_kernel_matches_full_kernel_windows(
            seed in 0u64..10_000,
            n_pts in 0usize..80,
            bounds in (0usize..81, 0usize..81),
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let pts: Vec<[f64; 4]> = (0..n_pts)
                .map(|_| std::array::from_fn(|_| rng.gen_range(-100.0..100.0)))
                .collect();
            let q: [f64; 4] = std::array::from_fn(|_| rng.gen_range(-100.0..100.0));
            let points = VecBatch::<4>::from_rows(&pts);
            let (lo, hi) = (bounds.0.min(n_pts), bounds.1.min(n_pts));
            let (start, end) = (lo.min(hi), lo.max(hi));
            let mut full = Vec::new();
            distances_to_point(&points, &q, &mut full);
            let mut window = Vec::new();
            distances_to_point_range(&points, &q, start, end, &mut window);
            prop_assert_eq!(window.len(), end - start);
            for (i, w) in window.iter().enumerate() {
                prop_assert_eq!(w.to_bits(), full[start + i].to_bits());
            }
        }
    }
}
