//! Set-based similarities over token collections.
//!
//! The paper's Eq. 4 measures string fields with the Jaccard coefficient
//! over token sets: `d(S1, S2) = 1 − |S1 ∩ S2| / |S1 ∪ S2|`.

use std::collections::HashSet;
use std::hash::Hash;

fn intersection_union<T: Hash + Eq>(a: &[T], b: &[T]) -> (usize, usize, usize, usize) {
    let sa: HashSet<&T> = a.iter().collect();
    let sb: HashSet<&T> = b.iter().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    (inter, union, sa.len(), sb.len())
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` over the *sets* of tokens.
/// Two empty collections are defined as identical (similarity 1).
pub fn jaccard_similarity<T: Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    let (inter, union, ..) = intersection_union(a, b);
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

/// Jaccard distance, the paper's Eq. 4: `1 − jaccard_similarity`.
pub fn jaccard_distance<T: Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    1.0 - jaccard_similarity(a, b)
}

/// Sørensen–Dice coefficient `2|A ∩ B| / (|A| + |B|)` over token sets.
pub fn dice<T: Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    let (inter, _, la, lb) = intersection_union(a, b);
    if la + lb == 0 {
        return 1.0;
    }
    2.0 * inter as f64 / (la + lb) as f64
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)` over token sets.
pub fn overlap_coefficient<T: Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    let (inter, _, la, lb) = intersection_union(a, b);
    let min = la.min(lb);
    if min == 0 {
        return if la.max(lb) == 0 { 1.0 } else { 0.0 };
    }
    inter as f64 / min as f64
}

/// Cosine similarity between token *sets* (binary weights):
/// `|A ∩ B| / sqrt(|A| · |B|)`.
pub fn cosine_tokens<T: Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    let (inter, _, la, lb) = intersection_union(a, b);
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    inter as f64 / ((la as f64) * (lb as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn toks(s: &str) -> Vec<&str> {
        s.split_whitespace().collect()
    }

    #[test]
    fn jaccard_known_values() {
        let a = toks("patient experienced severe headache");
        let b = toks("patient reported severe headache");
        // sets: {patient, experienced, severe, headache} vs {patient, reported, severe, headache}
        // inter 3, union 5.
        assert!((jaccard_similarity(&a, &b) - 0.6).abs() < 1e-12);
        assert!((jaccard_distance(&a, &b) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn duplicates_within_input_do_not_count_twice() {
        let a = vec!["x", "x", "y"];
        let b = vec!["x", "y", "y"];
        assert_eq!(jaccard_similarity(&a, &b), 1.0);
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<&str> = vec![];
        assert_eq!(jaccard_similarity::<&str>(&e, &e), 1.0);
        assert_eq!(jaccard_distance::<&str>(&e, &e), 0.0);
        assert_eq!(jaccard_similarity(&e, &toks("a b")), 0.0);
        assert_eq!(dice::<&str>(&e, &e), 1.0);
        assert_eq!(overlap_coefficient::<&str>(&e, &e), 1.0);
        assert_eq!(overlap_coefficient(&e, &toks("a")), 0.0);
        assert_eq!(cosine_tokens::<&str>(&e, &e), 1.0);
        assert_eq!(cosine_tokens(&e, &toks("a")), 0.0);
    }

    #[test]
    fn dice_and_overlap_known() {
        let a = toks("a b c");
        let b = toks("b c d");
        assert!((dice(&a, &b) - 4.0 / 6.0).abs() < 1e-12);
        assert!((overlap_coefficient(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cosine_tokens(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn all_in_unit_interval(a in prop::collection::vec("[a-d]{1,2}", 0..8),
                                b in prop::collection::vec("[a-d]{1,2}", 0..8)) {
            for v in [jaccard_similarity(&a, &b), dice(&a, &b),
                      overlap_coefficient(&a, &b), cosine_tokens(&a, &b)] {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
            }
        }

        #[test]
        fn symmetric(a in prop::collection::vec("[a-d]{1,2}", 0..8),
                     b in prop::collection::vec("[a-d]{1,2}", 0..8)) {
            prop_assert_eq!(jaccard_similarity(&a, &b), jaccard_similarity(&b, &a));
            prop_assert_eq!(dice(&a, &b), dice(&b, &a));
        }

        #[test]
        fn self_similarity(a in prop::collection::vec("[a-d]{1,2}", 1..8)) {
            prop_assert_eq!(jaccard_similarity(&a, &a), 1.0);
            prop_assert_eq!(dice(&a, &a), 1.0);
        }

        #[test]
        fn overlap_dominates_jaccard(a in prop::collection::vec("[a-d]{1,2}", 1..8),
                                     b in prop::collection::vec("[a-d]{1,2}", 1..8)) {
            prop_assert!(overlap_coefficient(&a, &b) >= jaccard_similarity(&a, &b) - 1e-12);
        }
    }
}
