//! Edit distances: Levenshtein and Damerau (optimal string alignment).

/// Levenshtein edit distance between two strings, computed over Unicode
/// scalar values with the classic two-row dynamic program (`O(|a|·|b|)`
/// time, `O(min)` space).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the inner dimension the shorter one.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein distance normalised by the longer string's length, in
/// `[0, 1]`. Two empty strings have distance 0.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max = la.max(lb);
    if max == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / max as f64
}

/// Damerau–Levenshtein distance in the *optimal string alignment* variant:
/// edit distance where adjacent transposition counts as one operation (each
/// substring edited at most once). Catches the keyboard transpositions that
/// dominate hand-entered ADR reports.
#[allow(clippy::needless_range_loop)] // the transposition lookback needs raw indices
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let width = m + 1;
    let mut d = vec![0usize; (n + 1) * width];
    for i in 0..=n {
        d[i * width] = i;
    }
    for j in 0..=m {
        d[j] = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[(i - 1) * width + j] + 1)
                .min(d[i * width + j - 1] + 1)
                .min(d[(i - 1) * width + j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[(i - 2) * width + j - 2] + 1);
            }
            d[i * width + j] = best;
        }
    }
    d[n * width + m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn unicode_is_per_char_not_per_byte() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("über", "uber"), 1);
    }

    #[test]
    fn normalized_range() {
        assert_eq!(normalized_levenshtein("", ""), 0.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 0.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 1.0);
        let d = normalized_levenshtein("atorvastatin", "atorvastatim");
        assert!(d > 0.0 && d < 0.1);
    }

    #[test]
    fn damerau_counts_transposition_as_one() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(damerau_levenshtein("rhabdomyolysis", "rhabdomoylysis"), 1);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
    }

    proptest! {
        #[test]
        fn symmetric(a in ".{0,20}", b in ".{0,20}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
        }

        #[test]
        fn identity(a in ".{0,24}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
            prop_assert_eq!(damerau_levenshtein(&a, &a), 0);
        }

        #[test]
        fn bounded_by_longer_length(a in ".{0,16}", b in ".{0,16}") {
            let max = a.chars().count().max(b.chars().count());
            prop_assert!(levenshtein(&a, &b) <= max);
            prop_assert!(damerau_levenshtein(&a, &b) <= max);
        }

        #[test]
        fn damerau_never_exceeds_levenshtein(a in ".{0,16}", b in ".{0,16}") {
            prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
        }

        #[test]
        fn triangle_inequality(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn normalized_in_unit_interval(a in ".{0,16}", b in ".{0,16}") {
            let d = normalized_levenshtein(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }
}
