//! Field-distance rules of §4.2.
//!
//! > "For a numerical field, if the values of two reports in the field is
//! > the same, the distance is 0, otherwise 1. The same calculation applies
//! > to categorical field types. For fields of string type, we use Jaccard
//! > similarity coefficient to measure the distance."

use crate::token::jaccard_distance;
use serde::{Deserialize, Serialize};

/// How a field participates in distance computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldKind {
    /// Numeric field: exact-match 0/1 distance.
    Numeric,
    /// Categorical field (sex, state, onset date, …): exact-match 0/1.
    Categorical,
    /// String field: Jaccard distance over token sets.
    Text,
}

/// Field-level distance dispatcher implementing the paper's rules.
///
/// Missing values: when *both* sides are missing the field carries no
/// signal and we define the distance as 0 (the WHO hit–miss practice);
/// when exactly one side is missing, the values differ, distance 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct FieldDistance;

impl FieldDistance {
    /// 0/1 distance for numeric fields (`None` = missing value).
    pub fn numeric(a: Option<f64>, b: Option<f64>) -> f64 {
        match (a, b) {
            (None, None) => 0.0,
            (Some(x), Some(y)) if x == y => 0.0,
            _ => 1.0,
        }
    }

    /// 0/1 distance for categorical fields.
    pub fn categorical(a: Option<&str>, b: Option<&str>) -> f64 {
        match (a, b) {
            (None, None) => 0.0,
            (Some(x), Some(y)) if x == y => 0.0,
            _ => 1.0,
        }
    }

    /// Jaccard distance over pre-tokenised string fields (Eq. 4).
    pub fn text(a: &[String], b: &[String]) -> f64 {
        jaccard_distance(a, b)
    }

    /// Jaccard distance treating a raw string as whitespace tokens — for
    /// short fields (drug names, ADR names) that need no NLP pipeline.
    pub fn text_raw(a: &str, b: &str) -> f64 {
        let ta: Vec<&str> = a.split_whitespace().collect();
        let tb: Vec<&str> = b.split_whitespace().collect();
        jaccard_distance(&ta, &tb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_rule() {
        assert_eq!(FieldDistance::numeric(Some(46.0), Some(46.0)), 0.0);
        assert_eq!(FieldDistance::numeric(Some(84.0), Some(34.0)), 1.0);
        assert_eq!(FieldDistance::numeric(None, None), 0.0);
        assert_eq!(FieldDistance::numeric(Some(46.0), None), 1.0);
    }

    #[test]
    fn categorical_rule() {
        assert_eq!(FieldDistance::categorical(Some("M"), Some("M")), 0.0);
        assert_eq!(FieldDistance::categorical(Some("M"), Some("F")), 1.0);
        assert_eq!(FieldDistance::categorical(None, None), 0.0);
        assert_eq!(FieldDistance::categorical(None, Some("F")), 1.0);
    }

    #[test]
    fn text_rule_is_jaccard() {
        let a = vec!["rhabdomyolysis".to_string()];
        let b = vec!["rhabdomyolysis".to_string()];
        assert_eq!(FieldDistance::text(&a, &b), 0.0);
        let c = vec!["vomiting".to_string(), "pyrexia".to_string()];
        let d = vec!["vomiting".to_string(), "cough".to_string()];
        // inter 1, union 3 -> distance 2/3
        assert!((FieldDistance::text(&c, &d) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn text_raw_tokenises_on_whitespace() {
        let d = FieldDistance::text_raw("influenza vaccine", "influenza vaccine dtpa");
        assert!((d - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(FieldDistance::text_raw("", ""), 0.0);
    }

    #[test]
    fn table1_example_fields() {
        // Report A vs B from the paper's Table 1(a): same age/sex/drug/ADR,
        // different outcome description.
        assert_eq!(FieldDistance::numeric(Some(46.0), Some(46.0)), 0.0);
        assert_eq!(FieldDistance::categorical(Some("M"), Some("M")), 0.0);
        assert_eq!(
            FieldDistance::categorical(Some("Unknown"), Some("Recovered")),
            1.0
        );
        assert_eq!(FieldDistance::text_raw("Atorvastatin", "Atorvastatin"), 0.0);
    }
}
