//! Set similarities over **sorted, deduplicated** slices.
//!
//! These are the allocation-free counterparts of the generic `HashSet`-based
//! metrics in [`crate::token`]: operands are pre-sorted deduplicated slices
//! (interned `u32` token ids in the dedup pipeline) and the intersection size
//! comes from a single merge walk — no allocation, no hashing, no string
//! bytes touched at comparison time. The `HashSet` versions stay as the
//! reference oracle; property tests assert exact agreement.
//!
//! Every function follows the same empty-set conventions as `token`:
//! two empty sets are identical (similarity 1), an empty vs non-empty set has
//! similarity 0.

/// `|A ∩ B|` for sorted deduplicated slices, by merge walk.
#[inline]
pub fn intersection_size_sorted<T: Ord>(a: &[T], b: &[T]) -> usize {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "lhs not sorted+deduped");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "rhs not sorted+deduped");
    let mut inter = 0;
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` over sorted deduplicated slices.
#[inline]
pub fn jaccard_similarity_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    let inter = intersection_size_sorted(a, b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

/// Jaccard distance (Eq. 4) over sorted deduplicated slices.
#[inline]
pub fn jaccard_distance_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    1.0 - jaccard_similarity_sorted(a, b)
}

/// Sørensen–Dice coefficient over sorted deduplicated slices.
#[inline]
pub fn dice_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    2.0 * intersection_size_sorted(a, b) as f64 / (a.len() + b.len()) as f64
}

/// Overlap coefficient over sorted deduplicated slices.
#[inline]
pub fn overlap_coefficient_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    let min = a.len().min(b.len());
    if min == 0 {
        return if a.len().max(b.len()) == 0 { 1.0 } else { 0.0 };
    }
    intersection_size_sorted(a, b) as f64 / min as f64
}

/// Cosine similarity between token sets (binary weights) over sorted
/// deduplicated slices.
#[inline]
pub fn cosine_tokens_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    intersection_size_sorted(a, b) as f64 / ((a.len() as f64) * (b.len() as f64)).sqrt()
}

/// Exponential (galloping) search: smallest index in `a[lo..]` whose element
/// is `>= needle`, found by doubling strides then binary-searching the last
/// bracket. `O(log gap)` instead of `O(gap)` — the win when one list is much
/// shorter than the other.
#[inline]
fn gallop_to<T: Ord>(a: &[T], lo: usize, needle: &T) -> usize {
    let mut hi = lo + 1;
    while hi < a.len() && a[hi] < *needle {
        let step = hi - lo;
        hi += step * 2;
    }
    let hi = hi.min(a.len());
    // Invariant: a[lo..] may contain needle, a[..lo] is all < needle, and
    // a[hi..] (if the gallop stopped early) is all >= some element >= needle.
    lo + a[lo..hi].partition_point(|x| x < needle)
}

/// `A ∩ B` for sorted deduplicated slices, appended to `out`, with galloping
/// jumps driven by the shorter list.
///
/// Produces the same elements as the merge walk in
/// [`intersection_size_sorted`] but skips runs of the longer list in
/// `O(log run)` — asymptotically `O(min·log(max/min))`, which matters for
/// posting-list candidate generation where a new report's key list meets a
/// hot block thousands of entries long. `out` is **not** cleared: callers
/// accumulate into reused scratch.
pub fn intersect_gallop_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "lhs not sorted+deduped");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "rhs not sorted+deduped");
    // Drive from the shorter side so each probe gallops the longer one.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut j = 0;
    for x in short {
        if j >= long.len() {
            break;
        }
        j = gallop_to(long, j, x);
        if j < long.len() && long[j] == *x {
            out.push(*x);
            j += 1;
        }
    }
}

/// Union of `k` sorted deduplicated lists, appended to `out` sorted and
/// deduplicated, by k-way merge.
///
/// The cursor set is scanned linearly per emitted element (`O(k)` with the
/// k's this engine sees — a report touches a handful of block keys), which
/// beats a heap's allocation and constant factor until k is large. `out` is
/// **not** cleared; `cursors` is caller-owned scratch (cleared and refilled)
/// so warm calls allocate nothing.
pub fn union_k_sorted_into<T: Ord + Copy>(
    lists: &[&[T]],
    cursors: &mut Vec<usize>,
    out: &mut Vec<T>,
) {
    for l in lists {
        debug_assert!(l.windows(2).all(|w| w[0] < w[1]), "list not sorted+deduped");
    }
    cursors.clear();
    cursors.resize(lists.len(), 0);
    loop {
        // Smallest head across all non-exhausted lists.
        let mut min: Option<T> = None;
        for (l, &c) in lists.iter().zip(cursors.iter()) {
            if c < l.len() {
                let head = l[c];
                min = Some(match min {
                    Some(m) if m <= head => m,
                    _ => head,
                });
            }
        }
        let Some(m) = min else { break };
        out.push(m);
        // Advance every cursor sitting on the emitted value (dedup for free).
        for (l, c) in lists.iter().zip(cursors.iter_mut()) {
            if *c < l.len() && l[*c] == m {
                *c += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{cosine_tokens, dice, jaccard_similarity, overlap_coefficient};
    use proptest::prelude::*;
    use textprep::TokenInterner;

    fn sorted_set(tokens: &[String]) -> Vec<String> {
        let mut s = tokens.to_vec();
        s.sort();
        s.dedup();
        s
    }

    #[test]
    fn merge_walk_known_values() {
        assert_eq!(intersection_size_sorted(&[1u32, 3, 5], &[2, 3, 5, 9]), 2);
        assert_eq!(intersection_size_sorted::<u32>(&[], &[]), 0);
        assert!((jaccard_similarity_sorted(&[1u32, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gallop_intersection_known_values() {
        let mut out = Vec::new();
        intersect_gallop_into(&[3u32, 7, 200], &(0u32..1000).collect::<Vec<_>>(), &mut out);
        assert_eq!(out, vec![3, 7, 200]);
        out.clear();
        intersect_gallop_into(&[1u32, 2], &[5u32, 6], &mut out);
        assert!(out.is_empty());
        // Accumulates without clearing.
        out.push(99);
        intersect_gallop_into(&[4u32], &[4u32], &mut out);
        assert_eq!(out, vec![99, 4]);
    }

    #[test]
    fn union_k_known_values() {
        let mut out = Vec::new();
        let mut cursors = Vec::new();
        union_k_sorted_into(
            &[&[1u32, 4, 9][..], &[2, 4][..], &[][..], &[9, 10][..]],
            &mut cursors,
            &mut out,
        );
        assert_eq!(out, vec![1, 2, 4, 9, 10]);
        out.clear();
        union_k_sorted_into::<u32>(&[], &mut cursors, &mut out);
        assert!(out.is_empty());
    }

    fn sorted_u32_set(v: &[u32]) -> Vec<u32> {
        let mut s = v.to_vec();
        s.sort_unstable();
        s.dedup();
        s
    }

    proptest! {
        // The satellite property: interned sorted-slice metrics agree exactly
        // (bit-for-bit) with the HashSet reference oracle on arbitrary lists.
        #[test]
        fn interned_metrics_match_hashset_oracle(
            a in prop::collection::vec("[a-d]{1,2}", 0..10),
            b in prop::collection::vec("[a-d]{1,2}", 0..10),
        ) {
            let mut interner = TokenInterner::new();
            let ia = interner.intern_set(&a);
            let ib = interner.intern_set(&b);
            prop_assert_eq!(jaccard_similarity_sorted(&ia, &ib), jaccard_similarity(&a, &b));
            prop_assert_eq!(dice_sorted(&ia, &ib), dice(&a, &b));
            prop_assert_eq!(overlap_coefficient_sorted(&ia, &ib), overlap_coefficient(&a, &b));
            prop_assert_eq!(cosine_tokens_sorted(&ia, &ib), cosine_tokens(&a, &b));
        }

        // Same agreement without an interner: sorted string slices.
        #[test]
        fn sorted_string_metrics_match_hashset_oracle(
            a in prop::collection::vec("[a-d]{1,2}", 0..10),
            b in prop::collection::vec("[a-d]{1,2}", 0..10),
        ) {
            let sa = sorted_set(&a);
            let sb = sorted_set(&b);
            prop_assert_eq!(jaccard_similarity_sorted(&sa, &sb), jaccard_similarity(&a, &b));
            prop_assert_eq!(dice_sorted(&sa, &sb), dice(&a, &b));
            prop_assert_eq!(overlap_coefficient_sorted(&sa, &sb), overlap_coefficient(&a, &b));
            prop_assert_eq!(cosine_tokens_sorted(&sa, &sb), cosine_tokens(&a, &b));
        }

        // Galloping intersection agrees element-for-element with the HashSet
        // oracle on arbitrary (possibly wildly size-imbalanced) inputs.
        #[test]
        fn gallop_intersection_matches_hashset_oracle(
            a in prop::collection::vec(0u32..64, 0..40),
            b in prop::collection::vec(0u32..2000, 0..200),
        ) {
            let sa = sorted_u32_set(&a);
            let sb = sorted_u32_set(&b);
            let mut got = Vec::new();
            intersect_gallop_into(&sa, &sb, &mut got);
            let oracle: std::collections::HashSet<u32> = sa
                .iter()
                .filter(|x| sb.binary_search(x).is_ok())
                .copied()
                .collect();
            let mut want: Vec<u32> = oracle.into_iter().collect();
            want.sort_unstable();
            prop_assert_eq!(got.clone(), want);
            prop_assert_eq!(got.len(), intersection_size_sorted(&sa, &sb));
        }

        // K-way union agrees with the HashSet oracle for any list count.
        #[test]
        fn union_k_matches_hashset_oracle(
            lists in prop::collection::vec(prop::collection::vec(0u32..50, 0..20), 0..6),
        ) {
            let sorted: Vec<Vec<u32>> = lists.iter().map(|l| sorted_u32_set(l)).collect();
            let refs: Vec<&[u32]> = sorted.iter().map(|l| l.as_slice()).collect();
            let mut got = Vec::new();
            let mut cursors = Vec::new();
            union_k_sorted_into(&refs, &mut cursors, &mut got);
            let oracle: std::collections::HashSet<u32> =
                lists.iter().flatten().copied().collect();
            let mut want: Vec<u32> = oracle.into_iter().collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
