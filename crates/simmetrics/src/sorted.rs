//! Set similarities over **sorted, deduplicated** slices.
//!
//! These are the allocation-free counterparts of the generic `HashSet`-based
//! metrics in [`crate::token`]: operands are pre-sorted deduplicated slices
//! (interned `u32` token ids in the dedup pipeline) and the intersection size
//! comes from a single merge walk — no allocation, no hashing, no string
//! bytes touched at comparison time. The `HashSet` versions stay as the
//! reference oracle; property tests assert exact agreement.
//!
//! Every function follows the same empty-set conventions as `token`:
//! two empty sets are identical (similarity 1), an empty vs non-empty set has
//! similarity 0.

/// `|A ∩ B|` for sorted deduplicated slices, by merge walk.
#[inline]
pub fn intersection_size_sorted<T: Ord>(a: &[T], b: &[T]) -> usize {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "lhs not sorted+deduped");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "rhs not sorted+deduped");
    let mut inter = 0;
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` over sorted deduplicated slices.
#[inline]
pub fn jaccard_similarity_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    let inter = intersection_size_sorted(a, b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

/// Jaccard distance (Eq. 4) over sorted deduplicated slices.
#[inline]
pub fn jaccard_distance_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    1.0 - jaccard_similarity_sorted(a, b)
}

/// Sørensen–Dice coefficient over sorted deduplicated slices.
#[inline]
pub fn dice_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    2.0 * intersection_size_sorted(a, b) as f64 / (a.len() + b.len()) as f64
}

/// Overlap coefficient over sorted deduplicated slices.
#[inline]
pub fn overlap_coefficient_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    let min = a.len().min(b.len());
    if min == 0 {
        return if a.len().max(b.len()) == 0 { 1.0 } else { 0.0 };
    }
    intersection_size_sorted(a, b) as f64 / min as f64
}

/// Cosine similarity between token sets (binary weights) over sorted
/// deduplicated slices.
#[inline]
pub fn cosine_tokens_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    intersection_size_sorted(a, b) as f64 / ((a.len() as f64) * (b.len() as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{cosine_tokens, dice, jaccard_similarity, overlap_coefficient};
    use proptest::prelude::*;
    use textprep::TokenInterner;

    fn sorted_set(tokens: &[String]) -> Vec<String> {
        let mut s = tokens.to_vec();
        s.sort();
        s.dedup();
        s
    }

    #[test]
    fn merge_walk_known_values() {
        assert_eq!(intersection_size_sorted(&[1u32, 3, 5], &[2, 3, 5, 9]), 2);
        assert_eq!(intersection_size_sorted::<u32>(&[], &[]), 0);
        assert!((jaccard_similarity_sorted(&[1u32, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    proptest! {
        // The satellite property: interned sorted-slice metrics agree exactly
        // (bit-for-bit) with the HashSet reference oracle on arbitrary lists.
        #[test]
        fn interned_metrics_match_hashset_oracle(
            a in prop::collection::vec("[a-d]{1,2}", 0..10),
            b in prop::collection::vec("[a-d]{1,2}", 0..10),
        ) {
            let mut interner = TokenInterner::new();
            let ia = interner.intern_set(&a);
            let ib = interner.intern_set(&b);
            prop_assert_eq!(jaccard_similarity_sorted(&ia, &ib), jaccard_similarity(&a, &b));
            prop_assert_eq!(dice_sorted(&ia, &ib), dice(&a, &b));
            prop_assert_eq!(overlap_coefficient_sorted(&ia, &ib), overlap_coefficient(&a, &b));
            prop_assert_eq!(cosine_tokens_sorted(&ia, &ib), cosine_tokens(&a, &b));
        }

        // Same agreement without an interner: sorted string slices.
        #[test]
        fn sorted_string_metrics_match_hashset_oracle(
            a in prop::collection::vec("[a-d]{1,2}", 0..10),
            b in prop::collection::vec("[a-d]{1,2}", 0..10),
        ) {
            let sa = sorted_set(&a);
            let sb = sorted_set(&b);
            prop_assert_eq!(jaccard_similarity_sorted(&sa, &sb), jaccard_similarity(&a, &b));
            prop_assert_eq!(dice_sorted(&sa, &sb), dice(&a, &b));
            prop_assert_eq!(overlap_coefficient_sorted(&sa, &sb), overlap_coefficient(&a, &b));
            prop_assert_eq!(cosine_tokens_sorted(&sa, &sb), cosine_tokens(&a, &b));
        }
    }
}
