//! Jaro and Jaro–Winkler similarity — record-linkage staples for short
//! identifying strings (names, trade names).

/// Jaro similarity in `[0, 1]`; 1 means identical, 0 means no matching
/// characters within the match window.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut a_matches: Vec<char> = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == *ca {
                b_matched[j] = true;
                a_matches.push(*ca);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    let b_matches: Vec<char> = b
        .iter()
        .zip(&b_matched)
        .filter(|(_, &matched)| matched)
        .map(|(c, _)| *c)
        .collect();
    let transpositions = a_matches
        .iter()
        .zip(&b_matches)
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro–Winkler similarity: Jaro boosted by up to 4 characters of common
/// prefix with scaling factor `p = 0.1`.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    const PREFIX_SCALE: f64 = 0.1;
    const MAX_PREFIX: usize = 4;
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(MAX_PREFIX)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * PREFIX_SCALE * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx(x: f64, y: f64) -> bool {
        (x - y).abs() < 1e-3
    }

    #[test]
    fn textbook_values() {
        assert!(approx(jaro("MARTHA", "MARHTA"), 0.944));
        assert!(approx(jaro("DIXON", "DICKSONX"), 0.767));
        assert!(approx(jaro("JELLYFISH", "SMELLYFISH"), 0.896));
    }

    #[test]
    fn winkler_boosts_common_prefix() {
        assert!(approx(jaro_winkler("MARTHA", "MARHTA"), 0.961));
        assert!(
            jaro_winkler("atorvastatin", "atorvastatim") > jaro("atorvastatin", "atorvastatim")
        );
    }

    #[test]
    fn identical_and_disjoint() {
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    proptest! {
        #[test]
        fn in_unit_interval(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let j = jaro(&a, &b);
            let jw = jaro_winkler(&a, &b);
            prop_assert!((0.0..=1.0).contains(&j));
            prop_assert!((0.0..=1.0).contains(&jw));
            prop_assert!(jw >= j - 1e-12, "winkler never lowers jaro");
        }

        #[test]
        fn symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            prop_assert!((jaro(&a, &b) - jaro(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn self_similarity_is_one(a in "[a-z]{1,12}") {
            prop_assert_eq!(jaro(&a, &a), 1.0);
            prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
        }
    }
}
