//! Serving-layer contract on the distributed classifier: how probe rows are
//! grouped into micro-batches must never show through in the results.
//!
//! The serve admission queue coalesces probes into whatever batch sizes the
//! arrival process produces, so [`fastknn::FastKnn::classify_batch`] must be
//! **bit-identical** (scores compared as `f64::to_bits`) across batch
//! compositions — the same rows classified one at a time, 16 at a time, or
//! all at once — and across engine parallelism. The one requirement on the
//! caller is stable row ids: the balanced Voronoi assignment tie-breaks on
//! the row id, so ids must belong to the *row*, not its batch position
//! (exactly what `dedup::serve` does by hashing the probe–candidate pair).

use fastknn::{FastKnn, FastKnnConfig, LabeledPair, ScoredPair, VecBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparklet::Cluster;

const ROWS: usize = 1024;

fn training(seed: u64) -> Vec<LabeledPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..900)
        .map(|i| {
            let positive = rng.gen_bool(0.05);
            let center = if positive { 0.25 } else { 0.75 };
            LabeledPair {
                id: i as u64,
                vector: std::array::from_fn(|_| center + rng.gen_range(-0.25..0.25)),
                positive,
            }
        })
        .collect()
}

/// `ROWS` probe rows with ids that are a property of the row itself (id =
/// row index here), so every batch split presents identical (id, vector)
/// pairs.
fn probes(seed: u64) -> VecBatch<8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = VecBatch::with_capacity(ROWS);
    for i in 0..ROWS {
        let vector: [f64; 8] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
        batch.push(i as u64, &vector, false);
    }
    batch
}

/// Classify the probe set in micro-batches of `size`, concatenating the
/// per-batch results in row order.
fn classify_in_batches(model: &FastKnn<8>, all: &VecBatch<8>, size: usize) -> Vec<ScoredPair> {
    let mut out = Vec::with_capacity(all.len());
    for chunk in all.chunk_rows(size) {
        out.extend(model.classify_batch(&chunk).unwrap());
    }
    out.sort_by_key(|s| s.id);
    out
}

fn bits(results: &[ScoredPair]) -> Vec<(u64, u64, bool, bool)> {
    results
        .iter()
        .map(|s| (s.id, s.score.to_bits(), s.positive, s.shortcut))
        .collect()
}

#[test]
fn results_are_bit_identical_across_batch_sizes_and_partitions() {
    let train = training(11);
    let all = probes(12);
    let mut reference: Option<Vec<(u64, u64, bool, bool)>> = None;
    for workers in [1usize, 4, 16] {
        let cluster = Cluster::local(workers);
        let config = FastKnnConfig {
            b: 8,
            theta: 0.4,
            ..FastKnnConfig::default()
        };
        let model = FastKnn::fit(&cluster, &train, config).unwrap();
        for size in [1usize, 16, 1024] {
            let got = bits(&classify_in_batches(&model, &all, size));
            assert_eq!(got.len(), ROWS);
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(
                    &got, want,
                    "classification diverged at {workers} workers, batch size {size}"
                ),
            }
        }
    }
}

/// The theta shortcut is the most composition-suspicious path (it truncates
/// the neighbourhood search): pin bit-identity for it separately with an
/// aggressive threshold so many rows take the shortcut.
#[test]
fn shortcut_heavy_results_are_bit_identical_across_batch_sizes() {
    let train = training(31);
    let all = probes(32);
    let cluster = Cluster::local(4);
    let config = FastKnnConfig {
        b: 6,
        theta: 1.5,
        ..FastKnnConfig::default()
    };
    let model = FastKnn::fit(&cluster, &train, config).unwrap();
    let whole = bits(&classify_in_batches(&model, &all, 1024));
    assert!(
        whole.iter().any(|&(_, _, _, shortcut)| shortcut),
        "theta 1.5 must exercise the shortcut path"
    );
    for size in [1usize, 16] {
        assert_eq!(
            bits(&classify_in_batches(&model, &all, size)),
            whole,
            "shortcut path diverged at batch size {size}"
        );
    }
}
