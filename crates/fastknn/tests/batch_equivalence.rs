//! Satellite property of the SoA refactor: the distributed batch engine is
//! *exact*. For random workloads, cluster counts, and engine partition
//! counts (1/4/16 workers), [`FastKnn::classify_batch`] over a [`VecBatch`]
//! must produce classifications identical to the per-pair brute-force
//! reference, which never touches the SoA layout.

use fastknn::serial::classify_brute;
use fastknn::{FastKnn, FastKnnConfig, LabeledPair, UnlabeledPair, VecBatch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparklet::Cluster;

fn workload(
    seed: u64,
    n_train: usize,
    n_test: usize,
) -> (Vec<LabeledPair>, Vec<UnlabeledPair>, VecBatch<8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let train: Vec<LabeledPair> = (0..n_train)
        .map(|i| {
            let positive = rng.gen_bool(0.06);
            let center = if positive { 0.25 } else { 0.75 };
            LabeledPair {
                id: i as u64,
                vector: std::array::from_fn(|_| center + rng.gen_range(-0.25..0.25)),
                positive,
            }
        })
        .collect();
    let test: Vec<UnlabeledPair> = (0..n_test)
        .map(|i| UnlabeledPair {
            id: i as u64,
            vector: std::array::from_fn(|_| rng.gen_range(0.0..1.0)),
        })
        .collect();
    let mut batch = VecBatch::with_capacity(test.len());
    for t in &test {
        batch.push(t.id, &t.vector, false);
    }
    (train, test, batch)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn distributed_batch_equals_per_pair_brute(
        seed in 0u64..1_000,
        workers in prop::sample::select(vec![1usize, 4, 16]),
        b in 2usize..12,
        c in 1usize..4,
        k in prop::sample::select(vec![3usize, 7]),
    ) {
        let (train, test, batch) = workload(seed, 400, 60);
        let config = FastKnnConfig { k, b, c, theta: 0.4, seed: seed ^ 0xABCD, prune: true };
        let cluster = Cluster::local(workers);
        let model = FastKnn::fit(&cluster, &train, config).unwrap();
        let got = model.classify_batch(&batch).unwrap();
        let expect = classify_brute(&train, &test, k, 0.4);
        prop_assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            prop_assert_eq!(g.id, e.id);
            prop_assert_eq!(g.positive, e.positive, "classification for id {}", g.id);
            // Same contract as the serial suite: shortcut pairs are provably
            // negative but carry a truncated neighbourhood, so only
            // non-shortcut scores are exact.
            if !g.shortcut {
                prop_assert!(
                    (g.score - e.score).abs() < 1e-9,
                    "score for id {}: {} vs {}", g.id, g.score, e.score
                );
            }
        }
    }
}
