//! Pins the batch classifier's zero-allocation contract: once the scratch
//! arena and output vector are warm, [`fastknn::serial::classify_batch`]
//! must not touch the heap at all.
//!
//! A counting global allocator makes the contract falsifiable — any stray
//! `Vec` growth, `clear`-then-`collect`, or hidden clone inside the hot
//! loop turns the count non-zero and fails the test.

use fastknn::serial::classify_batch;
use fastknn::voronoi::VoronoiPartition;
use fastknn::{
    from_unlabeled, ClassifyScratch, LabeledPair, ScoredPair, ScratchPool, UnlabeledPair, VecBatch,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn synthetic_train(n: usize, seed: u64) -> Vec<LabeledPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let positive = rng.gen_bool(0.04);
            let center = if positive { 0.2 } else { 0.8 };
            let vector = std::array::from_fn(|_| center + rng.gen_range(-0.2..0.2));
            LabeledPair {
                id: i as u64,
                vector,
                positive,
            }
        })
        .collect()
}

#[test]
fn warm_classify_batch_does_not_allocate() {
    let train = synthetic_train(1_500, 9);
    let partition = VoronoiPartition::build(&train, 8, 41);
    let mut rng = StdRng::seed_from_u64(77);
    let tests: Vec<UnlabeledPair> = (0..200)
        .map(|i| UnlabeledPair {
            id: i as u64,
            vector: std::array::from_fn(|_| rng.gen_range(0.0..1.0)),
        })
        .collect();
    let batch = from_unlabeled(&tests);

    let mut scratch = ClassifyScratch::default();
    let mut out = Vec::new();
    // Warm-up: sizes every scratch buffer and the output vector. Two calls
    // so the Neighborhood reaches its k-capacity on every path.
    classify_batch(&partition, &batch, 7, 0.5, &mut scratch, &mut out);
    classify_batch(&partition, &batch, 7, 0.5, &mut scratch, &mut out);
    let cold = out.clone();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    classify_batch(&partition, &batch, 7, 0.5, &mut scratch, &mut out);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm classify_batch must not allocate ({} allocations observed)",
        after - before
    );
    assert_eq!(out, cold, "warm call must reproduce the cold result");
}

/// The serving path keeps several micro-batches in flight at once, each
/// holding a [`ScratchPool`] scratch while it classifies. Once the pool is
/// warm (one scratch per in-flight batch, every buffer sized), steady-state
/// serving must not touch the heap: pop-use-push through the pool plus the
/// classify kernel itself, all allocation-free.
#[test]
fn warm_scratch_pool_with_many_in_flight_batches_does_not_allocate() {
    const IN_FLIGHT: usize = 8;
    let train = synthetic_train(1_200, 21);
    let partition = VoronoiPartition::build(&train, 8, 43);
    let mut rng = StdRng::seed_from_u64(99);
    // One probe batch per in-flight serve batch, sizes varied like a real
    // admission queue's output.
    let batches: Vec<VecBatch<8>> = (0..IN_FLIGHT)
        .map(|b| {
            let rows = 1 + b * 17;
            let tests: Vec<UnlabeledPair> = (0..rows)
                .map(|i| UnlabeledPair {
                    id: (b * 1000 + i) as u64,
                    vector: std::array::from_fn(|_| rng.gen_range(0.0..1.0)),
                })
                .collect();
            from_unlabeled(&tests)
        })
        .collect();
    let pool = ScratchPool::<8>::new();
    let mut outs: Vec<Vec<ScoredPair>> = vec![Vec::new(); IN_FLIGHT];

    // Nested checkouts hold IN_FLIGHT scratches simultaneously, forcing the
    // pool to own that many; the recursion mirrors overlapping batches.
    let run = |pool: &ScratchPool<8>, outs: &mut Vec<Vec<ScoredPair>>| {
        fn nest(
            i: usize,
            pool: &ScratchPool<8>,
            partition: &VoronoiPartition<8>,
            batches: &[VecBatch<8>],
            outs: &mut Vec<Vec<ScoredPair>>,
        ) {
            if i == batches.len() {
                return;
            }
            pool.with(|s| {
                classify_batch(partition, &batches[i], 7, 0.5, s, &mut outs[i]);
                nest(i + 1, pool, partition, batches, outs);
            });
        }
        nest(0, pool, &partition, &batches, outs);
    };

    // Warm-up twice: the pool grows to IN_FLIGHT scratches and every
    // buffer (and output vector) reaches steady-state capacity.
    run(&pool, &mut outs);
    run(&pool, &mut outs);
    let cold = outs.clone();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    run(&pool, &mut outs);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm pool serving must not allocate ({} allocations observed)",
        after - before
    );
    assert_eq!(outs, cold, "warm pass must reproduce the cold results");
}
