//! Algorithm 1 — additional-partition selection (§4.3.2).
//!
//! After stage 1 (intra-cluster kNN merged with the positive distances),
//! decide which *other* Voronoi cells could still contain closer
//! neighbours:
//!
//! * lines 2–5 (observations 1–3): if the current k-th neighbour is closer
//!   than the nearest positive pair, the true kNN can contain no positive —
//!   the pair is classified negative without any cross-cluster search;
//! * lines 6–12 (observation 4): otherwise cell `T_j` is consulted only if
//!   the k-th neighbour distance exceeds `d(s, h_ij)`, the distance to the
//!   hyperplane separating the assigned cell from `T_j` (Eq. 7), since by
//!   the triangle inequality no point behind a farther hyperplane can beat
//!   the current k-th neighbour.
//!
//! Inputs arrive **squared** (the candidate-generation space); the shortcut
//! test compares squares directly, and a single root is taken only when the
//! Eq. 7 hyperplane comparison — a linear distance — is actually needed.

use crate::voronoi::hyperplane_distance;

/// Algorithm 1. Returns the indices of additional clusters to search;
/// an empty result with `kth_distance_sq <= min_positive_distance_sq` means
/// the shortcut fired (no positive can be in the true kNN).
///
/// * `s` — the test vector;
/// * `assigned` — index of the Voronoi cell `s` belongs to;
/// * `kth_distance_sq` — `d(s, s_k)²`, squared distance to the current k-th
///   nearest neighbour (`+∞` when fewer than k are known);
/// * `min_positive_distance_sq` — `min(s, T⁺)²`;
/// * `centers` — all cluster centres.
pub fn additional_partitions<const D: usize>(
    s: &[f64; D],
    assigned: usize,
    kth_distance_sq: f64,
    min_positive_distance_sq: f64,
    centers: &[[f64; D]],
) -> Vec<usize> {
    let mut partitions = Vec::new();
    additional_partitions_into(
        s,
        assigned,
        kth_distance_sq,
        min_positive_distance_sq,
        centers,
        &mut partitions,
    );
    partitions
}

/// Algorithm 1 into a caller-owned buffer (cleared first) — the
/// allocation-free variant the batch classifier's scratch arena uses.
pub fn additional_partitions_into<const D: usize>(
    s: &[f64; D],
    assigned: usize,
    kth_distance_sq: f64,
    min_positive_distance_sq: f64,
    centers: &[[f64; D]],
    out: &mut Vec<usize>,
) {
    out.clear();
    // Lines 2–5: all-negative shortcut (monotone in the square).
    if kth_distance_sq <= min_positive_distance_sq {
        return;
    }
    // Lines 6–12: hyperplane pruning. Eq. 7 yields a linear distance, so
    // take the one root here rather than squaring every hyperplane bound
    // (which can be negative under balanced tie-assignment).
    let kth_distance = kth_distance_sq.sqrt();
    let pi = &centers[assigned];
    for (j, pj) in centers.iter().enumerate() {
        if j == assigned {
            continue;
        }
        if kth_distance > hyperplane_distance(s, pi, pj) {
            out.push(j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use simmetrics::euclidean;

    fn centers() -> Vec<[f64; 2]> {
        vec![[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [50.0, 50.0]]
    }

    fn sq(d: f64) -> f64 {
        d * d
    }

    #[test]
    fn shortcut_returns_no_partitions() {
        // k-th neighbour at 1.0, nearest positive at 5.0: stop.
        let out = additional_partitions(&[1.0, 1.0], 0, sq(1.0), sq(5.0), &centers());
        assert!(out.is_empty());
    }

    #[test]
    fn tight_neighborhood_prunes_everything() {
        // s at the origin with k-th distance 1.0: hyperplanes to the other
        // cells are ~5, ~5 and ~35 away.
        let out = additional_partitions(&[0.0, 0.0], 0, sq(1.0), sq(0.5), &centers());
        assert!(out.is_empty());
    }

    #[test]
    fn loose_neighborhood_selects_nearby_cells_only() {
        // k-th distance 6 crosses the hyperplanes to cells 1 and 2 (5 away)
        // but not to the far cell 3.
        let out = additional_partitions(&[0.0, 0.0], 0, sq(6.0), sq(0.5), &centers());
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn infinite_kth_distance_selects_all_other_cells() {
        // Fewer than k neighbours known: every cell may contribute.
        let out = additional_partitions(&[0.0, 0.0], 0, f64::INFINITY, sq(0.5), &centers());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn assigned_cell_is_never_selected() {
        let out = additional_partitions(&[0.0, 0.0], 0, sq(1e9), 0.0, &centers());
        assert!(!out.contains(&0));
    }

    #[test]
    fn negative_hyperplane_bound_still_selects() {
        // Under balanced tie-assignment s can sit marginally closer to pj
        // than to its assigned pi; the Eq. 7 bound is then negative and the
        // cell must always be searched, however small the neighbourhood.
        let cs = vec![[0.0f64, 0.0], [1.0, 0.0]];
        let out = additional_partitions(&[0.9, 0.0], 0, sq(1e-6), 0.0, &cs);
        assert_eq!(out, vec![1]);
    }

    proptest! {
        /// Soundness of the pruning rule: if a point x in cell j is closer
        /// to s than kth_distance, then j MUST be selected.
        #[test]
        fn never_prunes_a_cell_containing_a_closer_point(
            s in prop::collection::vec(-3.0f64..3.0, 2),
            x in prop::collection::vec(-20.0f64..20.0, 2),
            slack in 0.01f64..5.0,
        ) {
            let s: [f64; 2] = s.try_into().unwrap();
            let x: [f64; 2] = x.try_into().unwrap();
            let cs = centers();
            // s must live in cell 0 for the setup to apply.
            prop_assume!(nearest(&s, &cs) == 0);
            let xj = nearest(&x, &cs);
            prop_assume!(xj != 0);
            // Choose kth so that x is strictly inside the neighbourhood.
            let kth = euclidean(&s, &x) + slack;
            let selected = additional_partitions(&s, 0, kth * kth, 0.0, &cs);
            prop_assert!(
                selected.contains(&xj),
                "cell {xj} holds a point at distance {} < kth {kth} but was pruned",
                euclidean(&s, &x)
            );
        }
    }

    fn nearest(p: &[f64; 2], centers: &[[f64; 2]]) -> usize {
        let mut best = (0usize, f64::INFINITY);
        for (i, c) in centers.iter().enumerate() {
            let d = euclidean(p, c);
            if d < best.1 {
                best = (i, d);
            }
        }
        best.0
    }
}
