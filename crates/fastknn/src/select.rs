//! Algorithm 1 — additional-partition selection (§4.3.2).
//!
//! After stage 1 (intra-cluster kNN merged with the positive distances),
//! decide which *other* Voronoi cells could still contain closer
//! neighbours:
//!
//! * lines 2–5 (observations 1–3): if the current k-th neighbour is closer
//!   than the nearest positive pair, the true kNN can contain no positive —
//!   the pair is classified negative without any cross-cluster search;
//! * lines 6–12 (observation 4): otherwise cell `T_j` is consulted only if
//!   the k-th neighbour distance exceeds `d(s, h_ij)`, the distance to the
//!   hyperplane separating the assigned cell from `T_j` (Eq. 7), since by
//!   the triangle inequality no point behind a farther hyperplane can beat
//!   the current k-th neighbour.
//!
//! Inputs arrive **squared** (the candidate-generation space); the shortcut
//! test compares squares directly, and a single root is taken only when the
//! Eq. 7 hyperplane comparison — a linear distance — is actually needed.

use crate::prune::admissible_radius;
use crate::voronoi::{hyperplane_distance, VoronoiPartition};
use simmetrics::squared_euclidean_fixed;

/// Algorithm 1. Returns the indices of additional clusters to search;
/// an empty result with `kth_distance_sq <= min_positive_distance_sq` means
/// the shortcut fired (no positive can be in the true kNN).
///
/// * `s` — the test vector;
/// * `assigned` — index of the Voronoi cell `s` belongs to;
/// * `kth_distance_sq` — `d(s, s_k)²`, squared distance to the current k-th
///   nearest neighbour (`+∞` when fewer than k are known);
/// * `min_positive_distance_sq` — `min(s, T⁺)²`;
/// * `centers` — all cluster centres.
pub fn additional_partitions<const D: usize>(
    s: &[f64; D],
    assigned: usize,
    kth_distance_sq: f64,
    min_positive_distance_sq: f64,
    centers: &[[f64; D]],
) -> Vec<usize> {
    let mut partitions = Vec::new();
    additional_partitions_into(
        s,
        assigned,
        kth_distance_sq,
        min_positive_distance_sq,
        centers,
        &mut partitions,
    );
    partitions
}

/// Algorithm 1 into a caller-owned buffer (cleared first) — the
/// allocation-free variant the batch classifier's scratch arena uses.
pub fn additional_partitions_into<const D: usize>(
    s: &[f64; D],
    assigned: usize,
    kth_distance_sq: f64,
    min_positive_distance_sq: f64,
    centers: &[[f64; D]],
    out: &mut Vec<usize>,
) {
    out.clear();
    // Lines 2–5: all-negative shortcut (monotone in the square).
    if kth_distance_sq <= min_positive_distance_sq {
        return;
    }
    // Lines 6–12: hyperplane pruning. Eq. 7 yields a linear distance, so
    // take the one root here rather than squaring every hyperplane bound
    // (which can be negative under balanced tie-assignment).
    let kth_distance = kth_distance_sq.sqrt();
    let pi = &centers[assigned];
    for (j, pj) in centers.iter().enumerate() {
        if j == assigned {
            continue;
        }
        if kth_distance > hyperplane_distance(s, pi, pj) {
            out.push(j);
        }
    }
}

/// Algorithm 1 with an additional **annulus bound** per surviving cell:
/// every resident of cell `j` lies in the annulus
/// `d(x, p_j) ∈ [lo_j, hi_j]` recorded by
/// [`VoronoiPartition::cell_radius_bounds`], so by the triangle inequality
/// `d(s, x) ≥ max(d(s, p_j) − hi_j, lo_j − d(s, p_j))`. Cells whose bound
/// exceeds the (slackened) k-th-neighbour cutoff are skipped **wholesale**
/// even when Eq. 7's hyperplane test would probe them — the hyperplane
/// bound knows only the cell's half-space, not how far its actual members
/// sit from the centre.
///
/// Returns `(cells skipped, residents those cells held)` — the second
/// component is exactly the distance evaluations the wholesale skips
/// avoided. Selection is lossless for the same reason the window scan is: a
/// skipped cell's residents are all strictly farther than k known
/// candidates (slack keeps equality ties). Cells without radius metadata
/// fall back to the plain hyperplane test.
pub fn additional_partitions_pruned_into<const D: usize>(
    s: &[f64; D],
    assigned: usize,
    kth_distance_sq: f64,
    min_positive_distance_sq: f64,
    partition: &VoronoiPartition<D>,
    out: &mut Vec<usize>,
) -> (u64, u64) {
    out.clear();
    if kth_distance_sq <= min_positive_distance_sq {
        return (0, 0);
    }
    let kth_distance = kth_distance_sq.sqrt();
    let pi = &partition.centers[assigned];
    let mut skipped = 0u64;
    let mut residents = 0u64;
    for (j, pj) in partition.centers.iter().enumerate() {
        if j == assigned {
            continue;
        }
        if kth_distance > hyperplane_distance(s, pi, pj) {
            if let Some((lo, hi)) = partition.cell_radius_bounds(j) {
                let dsj = squared_euclidean_fixed(s, pj).sqrt();
                let r = admissible_radius(dsj, kth_distance_sq);
                if dsj - hi > r || lo - dsj > r {
                    skipped += 1;
                    residents += partition.negative_clusters[j].len() as u64;
                    continue;
                }
            }
            out.push(j);
        }
    }
    (skipped, residents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use simmetrics::euclidean;

    fn centers() -> Vec<[f64; 2]> {
        vec![[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [50.0, 50.0]]
    }

    fn sq(d: f64) -> f64 {
        d * d
    }

    #[test]
    fn shortcut_returns_no_partitions() {
        // k-th neighbour at 1.0, nearest positive at 5.0: stop.
        let out = additional_partitions(&[1.0, 1.0], 0, sq(1.0), sq(5.0), &centers());
        assert!(out.is_empty());
    }

    #[test]
    fn tight_neighborhood_prunes_everything() {
        // s at the origin with k-th distance 1.0: hyperplanes to the other
        // cells are ~5, ~5 and ~35 away.
        let out = additional_partitions(&[0.0, 0.0], 0, sq(1.0), sq(0.5), &centers());
        assert!(out.is_empty());
    }

    #[test]
    fn loose_neighborhood_selects_nearby_cells_only() {
        // k-th distance 6 crosses the hyperplanes to cells 1 and 2 (5 away)
        // but not to the far cell 3.
        let out = additional_partitions(&[0.0, 0.0], 0, sq(6.0), sq(0.5), &centers());
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn infinite_kth_distance_selects_all_other_cells() {
        // Fewer than k neighbours known: every cell may contribute.
        let out = additional_partitions(&[0.0, 0.0], 0, f64::INFINITY, sq(0.5), &centers());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn assigned_cell_is_never_selected() {
        let out = additional_partitions(&[0.0, 0.0], 0, sq(1e9), 0.0, &centers());
        assert!(!out.contains(&0));
    }

    #[test]
    fn negative_hyperplane_bound_still_selects() {
        // Under balanced tie-assignment s can sit marginally closer to pj
        // than to its assigned pi; the Eq. 7 bound is then negative and the
        // cell must always be searched, however small the neighbourhood.
        let cs = vec![[0.0f64, 0.0], [1.0, 0.0]];
        let out = additional_partitions(&[0.9, 0.0], 0, sq(1e-6), 0.0, &cs);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn annulus_selection_is_a_subset_of_hyperplane_selection() {
        use crate::types::LabeledPair;
        let mut train = Vec::new();
        for i in 0..40 {
            let t = i as f64 * 0.02;
            train.push(LabeledPair::new(i, [t, t], false));
            train.push(LabeledPair::new(100 + i, [6.0 + t, 6.0 - t], false));
            train.push(LabeledPair::new(200 + i, [12.0, t], false));
        }
        let vp = VoronoiPartition::build(&train, 3, 5);
        let s = [0.2, 0.2];
        let assigned = vp.assign(&s);
        for kth in [0.5f64, 2.0, 7.0, 50.0] {
            let plain = additional_partitions(&s, assigned, kth * kth, 0.0, &vp.centers);
            let mut pruned = Vec::new();
            let (skipped, residents) =
                additional_partitions_pruned_into(&s, assigned, kth * kth, 0.0, &vp, &mut pruned);
            assert!(pruned.iter().all(|c| plain.contains(c)));
            assert_eq!(plain.len(), pruned.len() + skipped as usize);
            let selected_residents: usize =
                pruned.iter().map(|&c| vp.negative_clusters[c].len()).sum();
            let plain_residents: usize = plain.iter().map(|&c| vp.negative_clusters[c].len()).sum();
            assert_eq!(plain_residents, selected_residents + residents as usize);
        }
    }

    proptest! {
        /// Annulus-pruned selection stays sound on built partitions: a cell
        /// holding a resident strictly inside the neighbourhood is never
        /// skipped.
        #[test]
        fn annulus_pruning_never_skips_a_cell_with_a_closer_resident(
            seed in 0u64..2_000,
            s in prop::collection::vec(0.0f64..1.0, 2),
            kth in 0.05f64..1.5,
        ) {
            use crate::types::LabeledPair;
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let train: Vec<LabeledPair<2>> = (0..120)
                .map(|i| {
                    let v = [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
                    LabeledPair::new(i, v, false)
                })
                .collect();
            let vp = VoronoiPartition::build(&train, 4, seed);
            let s: [f64; 2] = s.try_into().unwrap();
            let assigned = vp.assign(&s);
            let mut selected = Vec::new();
            additional_partitions_pruned_into(
                &s, assigned, kth * kth, 0.0, &vp, &mut selected);
            for (j, cell) in vp.negative_clusters.iter().enumerate() {
                if j == assigned {
                    continue;
                }
                let holds_closer = (0..cell.len())
                    .any(|r| euclidean(&s, &cell.row(r)) < kth);
                if holds_closer {
                    prop_assert!(
                        selected.contains(&j),
                        "cell {j} holds a resident closer than kth {kth} but was pruned"
                    );
                }
            }
        }

        /// Soundness of the pruning rule: if a point x in cell j is closer
        /// to s than kth_distance, then j MUST be selected.
        #[test]
        fn never_prunes_a_cell_containing_a_closer_point(
            s in prop::collection::vec(-3.0f64..3.0, 2),
            x in prop::collection::vec(-20.0f64..20.0, 2),
            slack in 0.01f64..5.0,
        ) {
            let s: [f64; 2] = s.try_into().unwrap();
            let x: [f64; 2] = x.try_into().unwrap();
            let cs = centers();
            // s must live in cell 0 for the setup to apply.
            prop_assume!(nearest(&s, &cs) == 0);
            let xj = nearest(&x, &cs);
            prop_assume!(xj != 0);
            // Choose kth so that x is strictly inside the neighbourhood.
            let kth = euclidean(&s, &x) + slack;
            let selected = additional_partitions(&s, 0, kth * kth, 0.0, &cs);
            prop_assert!(
                selected.contains(&xj),
                "cell {xj} holds a point at distance {} < kth {kth} but was pruned",
                euclidean(&s, &x)
            );
        }
    }

    fn nearest(p: &[f64; 2], centers: &[[f64; 2]]) -> usize {
        let mut best = (0usize, f64::INFINITY);
        for (i, c) in centers.iter().enumerate() {
            let d = euclidean(p, c);
            if d < best.1 {
                best = (i, d);
            }
        }
        best.0
    }
}
