//! Core data types flowing through the Fast kNN pipeline.

use serde::{Deserialize, Serialize};

/// A labelled training pair: the distance vector of a report pair plus its
/// duplicate / non-duplicate label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledPair {
    /// Caller-assigned identifier (e.g. an index into the pair store).
    pub id: u64,
    /// Field-distance vector of the report pair (§4.2).
    pub vector: Vec<f64>,
    /// `true` = duplicate (+1), `false` = non-duplicate (−1).
    pub positive: bool,
}

impl LabeledPair {
    /// Convenience constructor.
    pub fn new(id: u64, vector: Vec<f64>, positive: bool) -> Self {
        LabeledPair {
            id,
            vector,
            positive,
        }
    }
}

/// An unlabelled (test) pair awaiting classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnlabeledPair {
    /// Caller-assigned identifier.
    pub id: u64,
    /// Field-distance vector.
    pub vector: Vec<f64>,
}

impl UnlabeledPair {
    /// Convenience constructor.
    pub fn new(id: u64, vector: Vec<f64>) -> Self {
        UnlabeledPair { id, vector }
    }
}

/// A bounded k-nearest neighbourhood: `(distance, is_positive)` entries kept
/// sorted ascending by distance and truncated to `k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Neighborhood {
    /// Capacity (the `k` of kNN).
    pub k: usize,
    /// Sorted `(distance, is_positive)` entries, at most `k`.
    pub entries: Vec<(f64, bool)>,
}

impl Neighborhood {
    /// Empty neighbourhood of capacity `k`.
    pub fn new(k: usize) -> Self {
        Neighborhood {
            k,
            entries: Vec::with_capacity(k),
        }
    }

    /// Insert a candidate, keeping the `k` closest.
    pub fn push(&mut self, distance: f64, positive: bool) {
        let pos = self
            .entries
            .partition_point(|(d, _)| *d <= distance);
        self.entries.insert(pos, (distance, positive));
        if self.entries.len() > self.k {
            self.entries.pop();
        }
    }

    /// Merge another neighbourhood (disjoint candidate sets assumed).
    pub fn merge(mut self, other: Neighborhood) -> Neighborhood {
        for (d, p) in other.entries {
            self.push(d, p);
        }
        self
    }

    /// Distance of the current k-th (worst) neighbour; `+∞` while fewer
    /// than `k` entries are known (any candidate could still enter).
    pub fn kth_distance(&self) -> f64 {
        if self.entries.len() < self.k {
            f64::INFINITY
        } else {
            self.entries.last().map(|(d, _)| *d).unwrap_or(f64::INFINITY)
        }
    }

    /// Does the neighbourhood contain any positive?
    pub fn has_positive(&self) -> bool {
        self.entries.iter().any(|(_, p)| *p)
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the neighbourhood empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Classification output for one test pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredPair {
    /// Test-pair identifier.
    pub id: u64,
    /// Eq. 5 inverse-distance score.
    pub score: f64,
    /// Eq. 6 label at the model's θ: `true` = duplicate.
    pub positive: bool,
    /// Whether the all-negative shortcut resolved this pair (its
    /// neighbourhood is then a superset-bound approximation; the label is
    /// still exact).
    pub shortcut: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn neighborhood_keeps_k_closest_sorted() {
        let mut n = Neighborhood::new(3);
        for d in [5.0, 1.0, 3.0, 2.0, 4.0] {
            n.push(d, false);
        }
        let dists: Vec<f64> = n.entries.iter().map(|(d, _)| *d).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
        assert_eq!(n.kth_distance(), 3.0);
    }

    #[test]
    fn kth_distance_is_infinite_until_full() {
        let mut n = Neighborhood::new(3);
        n.push(1.0, true);
        assert_eq!(n.kth_distance(), f64::INFINITY);
        n.push(2.0, false);
        n.push(3.0, false);
        assert_eq!(n.kth_distance(), 3.0);
    }

    #[test]
    fn merge_is_a_topk_union() {
        let mut a = Neighborhood::new(2);
        a.push(1.0, true);
        a.push(4.0, false);
        let mut b = Neighborhood::new(2);
        b.push(2.0, false);
        b.push(3.0, false);
        let m = a.merge(b);
        let dists: Vec<f64> = m.entries.iter().map(|(d, _)| *d).collect();
        assert_eq!(dists, vec![1.0, 2.0]);
        assert!(m.has_positive());
    }

    #[test]
    fn has_positive_detects_labels() {
        let mut n = Neighborhood::new(2);
        n.push(1.0, false);
        assert!(!n.has_positive());
        n.push(0.5, true);
        assert!(n.has_positive());
    }

    proptest! {
        #[test]
        fn neighborhood_invariants(
            ds in prop::collection::vec((0.0f64..10.0, prop::bool::ANY), 0..40),
            k in 1usize..8,
        ) {
            let mut n = Neighborhood::new(k);
            for (d, p) in &ds {
                n.push(*d, *p);
            }
            prop_assert!(n.len() <= k);
            for w in n.entries.windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
            }
            // The kept entries are exactly the k smallest distances.
            let mut all: Vec<f64> = ds.iter().map(|(d, _)| *d).collect();
            all.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let expect: Vec<f64> = all.into_iter().take(k).collect();
            let got: Vec<f64> = n.entries.iter().map(|(d, _)| *d).collect();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn merge_equals_bulk_insert(
            xs in prop::collection::vec((0.0f64..10.0, prop::bool::ANY), 0..20),
            ys in prop::collection::vec((0.0f64..10.0, prop::bool::ANY), 0..20),
            k in 1usize..6,
        ) {
            let mut a = Neighborhood::new(k);
            for (d, p) in &xs { a.push(*d, *p); }
            let mut b = Neighborhood::new(k);
            for (d, p) in &ys { b.push(*d, *p); }
            let merged = a.merge(b);
            let mut bulk = Neighborhood::new(k);
            for (d, p) in xs.iter().chain(&ys) { bulk.push(*d, *p); }
            let md: Vec<f64> = merged.entries.iter().map(|(d, _)| *d).collect();
            let bd: Vec<f64> = bulk.entries.iter().map(|(d, _)| *d).collect();
            prop_assert_eq!(md, bd);
        }
    }
}
