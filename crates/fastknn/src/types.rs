//! Core data types flowing through the Fast kNN pipeline.
//!
//! Pair vectors are fixed-arity `[f64; D]` arrays (const-generic, defaulting
//! to [`PAIR_DIMS`] — the §4.2 eight-field distance space) so that training
//! pairs are `Copy` and the classification hot path never heap-allocates or
//! clones per pair. Neighbourhoods store **squared** distances: ranking is
//! monotone in the square, so `sqrt` is deferred to the Eq. 5 scoring
//! boundary (see [`crate::score::score_neighbors`]).

use serde::{Deserialize, Serialize};

/// Default pair-vector arity: the eight detection fields of §4.2.
///
/// Kept as a local constant (rather than importing `adr-model`) so the
/// classifier stays schema-agnostic; `dedup` statically asserts the two
/// constants agree.
pub const PAIR_DIMS: usize = 8;

/// A labelled training pair: the distance vector of a report pair plus its
/// duplicate / non-duplicate label.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabeledPair<const D: usize = PAIR_DIMS> {
    /// Caller-assigned identifier (e.g. an index into the pair store).
    pub id: u64,
    /// Field-distance vector of the report pair (§4.2).
    pub vector: [f64; D],
    /// `true` = duplicate (+1), `false` = non-duplicate (−1).
    pub positive: bool,
}

impl<const D: usize> LabeledPair<D> {
    /// Convenience constructor.
    pub fn new(id: u64, vector: [f64; D], positive: bool) -> Self {
        LabeledPair {
            id,
            vector,
            positive,
        }
    }
}

/// An unlabelled (test) pair awaiting classification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnlabeledPair<const D: usize = PAIR_DIMS> {
    /// Caller-assigned identifier.
    pub id: u64,
    /// Field-distance vector.
    pub vector: [f64; D],
}

impl<const D: usize> UnlabeledPair<D> {
    /// Convenience constructor.
    pub fn new(id: u64, vector: [f64; D]) -> Self {
        UnlabeledPair { id, vector }
    }
}

/// A bounded k-nearest neighbourhood: `(squared distance, candidate id,
/// is_positive)` entries kept sorted ascending and truncated to `k`.
///
/// Distances are stored **squared** — candidate generation compares in
/// squared space and only Eq. 5 scoring takes the root.
///
/// Equal-distance ties are broken by candidate id, so the kept set is a
/// *total-order* top-k: the result is the `k` smallest `(distance_sq, id)`
/// keys of everything ever offered, independent of insertion order. That is
/// what makes distributed classification identical across partition counts
/// and worker schedules — shuffle bucket concatenation order is
/// thread-dependent, and encounter-order tie-breaking would leak it into
/// the output (pinned by the `insertion_order_is_irrelevant` proptest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Neighborhood {
    /// Capacity (the `k` of kNN).
    pub k: usize,
    /// Sorted `(squared distance, candidate id, is_positive)` entries, at
    /// most `k`.
    pub entries: Vec<(f64, u64, bool)>,
}

impl Default for Neighborhood {
    /// A capacity-0 placeholder for scratch arenas; [`Neighborhood::reset`]
    /// gives it a real `k` before use.
    fn default() -> Self {
        Neighborhood::new(0)
    }
}

impl Neighborhood {
    /// Empty neighbourhood of capacity `k`.
    pub fn new(k: usize) -> Self {
        Neighborhood {
            k,
            entries: Vec::with_capacity(k),
        }
    }

    /// Insert a candidate by **squared** distance (ties broken by `id`),
    /// keeping the `k` closest.
    pub fn push_sq(&mut self, distance_sq: f64, id: u64, positive: bool) {
        let pos = self
            .entries
            .partition_point(|(d, i, _)| *d < distance_sq || (*d == distance_sq && *i <= id));
        self.entries.insert(pos, (distance_sq, id, positive));
        if self.entries.len() > self.k {
            self.entries.pop();
        }
    }

    /// Reset to an empty neighbourhood of capacity `k`, keeping the entry
    /// buffer's allocation (scratch-arena reuse on the batch path).
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.entries.clear();
    }

    /// Merge another neighbourhood (disjoint candidate sets assumed).
    pub fn merge(mut self, other: Neighborhood) -> Neighborhood {
        for (d, i, p) in other.entries {
            self.push_sq(d, i, p);
        }
        self
    }

    /// Squared distance of the current k-th (worst) neighbour; `+∞` while
    /// fewer than `k` entries are known (any candidate could still enter).
    pub fn kth_distance_sq(&self) -> f64 {
        if self.entries.len() < self.k {
            f64::INFINITY
        } else {
            self.entries
                .last()
                .map(|(d, _, _)| *d)
                .unwrap_or(f64::INFINITY)
        }
    }

    /// Does the neighbourhood contain any positive?
    pub fn has_positive(&self) -> bool {
        self.entries.iter().any(|(_, _, p)| *p)
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the neighbourhood empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Classification output for one test pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredPair {
    /// Test-pair identifier.
    pub id: u64,
    /// Eq. 5 inverse-distance score.
    pub score: f64,
    /// Eq. 6 label at the model's θ: `true` = duplicate.
    pub positive: bool,
    /// Whether the all-negative shortcut resolved this pair (its
    /// neighbourhood is then a superset-bound approximation; the label is
    /// still exact).
    pub shortcut: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pairs_are_copy_and_stack_sized() {
        // The whole point of the fixed-arity representation: a LabeledPair
        // moves by memcpy, no heap in sight.
        fn assert_copy<T: Copy>() {}
        assert_copy::<LabeledPair>();
        assert_copy::<UnlabeledPair>();
        assert_eq!(
            std::mem::size_of::<LabeledPair>(),
            std::mem::size_of::<u64>() + PAIR_DIMS * 8 + 8,
        );
        let p = LabeledPair::new(7, [0.5; PAIR_DIMS], true);
        let q = p; // Copy, not move.
        assert_eq!(p, q);
    }

    #[test]
    fn neighborhood_keeps_k_closest_sorted() {
        let mut n = Neighborhood::new(3);
        for (i, d) in [5.0, 1.0, 3.0, 2.0, 4.0].into_iter().enumerate() {
            n.push_sq(d, i as u64, false);
        }
        let dists: Vec<f64> = n.entries.iter().map(|(d, _, _)| *d).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
        assert_eq!(n.kth_distance_sq(), 3.0);
    }

    #[test]
    fn kth_distance_is_infinite_until_full() {
        let mut n = Neighborhood::new(3);
        n.push_sq(1.0, 0, true);
        assert_eq!(n.kth_distance_sq(), f64::INFINITY);
        n.push_sq(2.0, 1, false);
        n.push_sq(3.0, 2, false);
        assert_eq!(n.kth_distance_sq(), 3.0);
    }

    #[test]
    fn merge_is_a_topk_union() {
        let mut a = Neighborhood::new(2);
        a.push_sq(1.0, 0, true);
        a.push_sq(4.0, 1, false);
        let mut b = Neighborhood::new(2);
        b.push_sq(2.0, 2, false);
        b.push_sq(3.0, 3, false);
        let m = a.merge(b);
        let dists: Vec<f64> = m.entries.iter().map(|(d, _, _)| *d).collect();
        assert_eq!(dists, vec![1.0, 2.0]);
        assert!(m.has_positive());
    }

    #[test]
    fn has_positive_detects_labels() {
        let mut n = Neighborhood::new(2);
        n.push_sq(1.0, 0, false);
        assert!(!n.has_positive());
        n.push_sq(0.5, 1, true);
        assert!(n.has_positive());
    }

    #[test]
    fn equal_distances_break_ties_by_id() {
        // Offer three candidates at the same distance in two different
        // orders; capacity 2 must keep the two smallest ids both times.
        let mut a = Neighborhood::new(2);
        a.push_sq(1.0, 30, true);
        a.push_sq(1.0, 10, false);
        a.push_sq(1.0, 20, false);
        let mut b = Neighborhood::new(2);
        b.push_sq(1.0, 10, false);
        b.push_sq(1.0, 20, false);
        b.push_sq(1.0, 30, true);
        assert_eq!(a.entries, b.entries);
        let ids: Vec<u64> = a.entries.iter().map(|(_, i, _)| *i).collect();
        assert_eq!(ids, vec![10, 20]);
        assert!(!a.has_positive(), "id 30's positive label must be evicted");
    }

    /// Sort key of the total order the neighbourhood maintains.
    fn key(e: &(f64, u64, bool)) -> (u64, u64) {
        (e.0.to_bits(), e.1)
    }

    proptest! {
        #[test]
        fn neighborhood_invariants(
            ds in prop::collection::vec((0.0f64..10.0, prop::bool::ANY), 0..40),
            k in 1usize..8,
        ) {
            let mut n = Neighborhood::new(k);
            for (i, (d, p)) in ds.iter().enumerate() {
                n.push_sq(*d, i as u64, *p);
            }
            prop_assert!(n.len() <= k);
            for w in n.entries.windows(2) {
                prop_assert!(key(&w[0]) <= key(&w[1]));
            }
            // The kept entries are exactly the k smallest (distance, id) keys.
            let mut all: Vec<(f64, u64, bool)> = ds
                .iter()
                .enumerate()
                .map(|(i, (d, p))| (*d, i as u64, *p))
                .collect();
            all.sort_by_key(key);
            let expect: Vec<(f64, u64, bool)> = all.into_iter().take(k).collect();
            prop_assert_eq!(&n.entries, &expect);
        }

        #[test]
        fn insertion_order_is_irrelevant(
            ds in prop::collection::vec((0.0f64..4.0, prop::bool::ANY), 0..24),
            k in 1usize..6,
            rot in 0usize..24,
        ) {
            // Identical candidate sets offered in different orders (a
            // rotation and a reversal, which is what shuffle-chunk
            // concatenation order amounts to) must yield identical entries
            // — labels included.
            let items: Vec<(f64, u64, bool)> = ds
                .iter()
                .enumerate()
                .map(|(i, (d, p))| ((d * 4.0).round() / 4.0, i as u64, *p))
                .collect();
            let mut fwd = Neighborhood::new(k);
            for (d, i, p) in &items { fwd.push_sq(*d, *i, *p); }
            let mut rev = Neighborhood::new(k);
            for (d, i, p) in items.iter().rev() { rev.push_sq(*d, *i, *p); }
            let mut rotated = Neighborhood::new(k);
            let r = if items.is_empty() { 0 } else { rot % items.len() };
            for (d, i, p) in items[r..].iter().chain(&items[..r]) {
                rotated.push_sq(*d, *i, *p);
            }
            prop_assert_eq!(&fwd.entries, &rev.entries);
            prop_assert_eq!(&fwd.entries, &rotated.entries);
        }

        #[test]
        fn merge_equals_bulk_insert(
            xs in prop::collection::vec((0.0f64..10.0, prop::bool::ANY), 0..20),
            ys in prop::collection::vec((0.0f64..10.0, prop::bool::ANY), 0..20),
            k in 1usize..6,
        ) {
            let label = |off: u64, v: &[(f64, bool)]| -> Vec<(f64, u64, bool)> {
                v.iter()
                    .enumerate()
                    .map(|(i, (d, p))| (*d, off + i as u64, *p))
                    .collect()
            };
            let xs = label(0, &xs);
            let ys = label(1000, &ys);
            let mut a = Neighborhood::new(k);
            for (d, i, p) in &xs { a.push_sq(*d, *i, *p); }
            let mut b = Neighborhood::new(k);
            for (d, i, p) in &ys { b.push_sq(*d, *i, *p); }
            let merged = a.merge(b);
            let mut bulk = Neighborhood::new(k);
            for (d, i, p) in xs.iter().chain(&ys) { bulk.push_sq(*d, *i, *p); }
            prop_assert_eq!(&merged.entries, &bulk.entries);
        }
    }
}
