//! Spill codecs for the payloads the classifier shuffles and caches.
//!
//! The engine's disk tier ([`sparklet::SpillManager`]) serializes whole
//! `Vec<T>` slabs — one shuffle bucket or one cache block at a time — and
//! needs a codec per element type. [`register_spill_codecs`] installs one
//! for every type Algorithm 2 moves through a wide dependency:
//!
//! * `(cluster id, Arc<VecBatch>)` — the cached negative training cells.
//!   Encoded **column-wise** via [`VecBatch::encode_columns`]: the on-disk
//!   layout mirrors the SoA layout, no re-rowifying.
//! * `(cluster id, UnlabeledPair)` — stage-1 test-pair assignment shuffle.
//!   Fixed width; [`UnlabeledPair`] implements [`FixedBytes`] here.
//! * `(cluster id, (id, vector, kth²))` — stage-2 probe shuffle, carrying
//!   the stage-1 k-th-neighbour cutoff. Fixed width via the tuple/array
//!   [`FixedBytes`] impls.
//! * `(test id, Neighborhood)` — the top-k merge shuffle. Variable length
//!   (a neighbourhood holds up to `k` entries), so it gets an explicit
//!   codec; entries are written sorted and reloaded verbatim.
//!
//! Every `f64` travels as raw bits, so a spilled payload decodes
//! bit-identically — detection digests do not change when spill kicks in.
//! [`crate::FastKnn::fit`] registers these once per model; registration is
//! idempotent (re-registering replaces the codec with an equal one).

use crate::soa::VecBatch;
use crate::types::{Neighborhood, UnlabeledPair};
use sparklet::{FixedBytes, SpillManager};
use std::sync::Arc;

impl<const D: usize> FixedBytes for UnlabeledPair<D> {
    const WIDTH: usize = 8 + D * 8;
    fn write_to(&self, out: &mut Vec<u8>) {
        self.id.write_to(out);
        self.vector.write_to(out);
    }
    fn read_from(bytes: &[u8]) -> Self {
        UnlabeledPair {
            id: u64::read_from(&bytes[..8]),
            vector: <[f64; D]>::read_from(&bytes[8..]),
        }
    }
}

/// Register the classifier's spill codecs on a cluster's disk tier.
pub fn register_spill_codecs<const D: usize>(spill: &SpillManager) {
    spill.register_fixed::<(usize, UnlabeledPair<D>)>();
    spill.register_fixed::<(usize, (u64, [f64; D], f64))>();
    spill.register_codec::<(u64, Neighborhood), _, _>(encode_hoods, decode_hoods);
    spill.register_codec::<(usize, Arc<VecBatch<D>>), _, _>(encode_cells::<D>, decode_cells::<D>);
}

fn encode_hoods(items: &[(u64, Neighborhood)], out: &mut Vec<u8>) {
    for (id, hood) in items {
        id.write_to(out);
        (hood.k as u64).write_to(out);
        (hood.entries.len() as u64).write_to(out);
        for &(d_sq, cand, pos) in &hood.entries {
            d_sq.write_to(out);
            cand.write_to(out);
            out.push(pos as u8);
        }
    }
}

fn decode_hoods(bytes: &[u8]) -> Option<Vec<(u64, Neighborhood)>> {
    let mut v = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        let id = u64::read_from(bytes.get(at..at + 8)?);
        let k = u64::read_from(bytes.get(at + 8..at + 16)?) as usize;
        let n = u64::read_from(bytes.get(at + 16..at + 24)?) as usize;
        at += 24;
        let mut hood = Neighborhood::new(k);
        for _ in 0..n {
            // Entries were written in sorted order; reload verbatim instead
            // of re-inserting (push_sq would re-derive the same order, but
            // verbatim reload cannot even in principle perturb it).
            let d_sq = f64::read_from(bytes.get(at..at + 8)?);
            let cand = u64::read_from(bytes.get(at + 8..at + 16)?);
            let pos = *bytes.get(at + 16)? != 0;
            at += 17;
            hood.entries.push((d_sq, cand, pos));
        }
        v.push((id, hood));
    }
    Some(v)
}

fn encode_cells<const D: usize>(items: &[(usize, Arc<VecBatch<D>>)], out: &mut Vec<u8>) {
    for (cid, cell) in items {
        cid.write_to(out);
        cell.encode_columns(out);
    }
}

fn decode_cells<const D: usize>(bytes: &[u8]) -> Option<Vec<(usize, Arc<VecBatch<D>>)>> {
    let mut v = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        let cid = usize::read_from(bytes.get(at..at + 8)?);
        at += 8;
        // encode_columns is self-delimiting: the row count in its first 8
        // bytes fixes the span.
        let rows = u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?) as usize;
        let span = 8 + rows * (8 + 1 + D * 8);
        let cell = VecBatch::<D>::decode_columns(bytes.get(at..at + span)?)?;
        at += span;
        v.push((cid, Arc::new(cell)));
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sparklet::ClusterMetrics;

    fn mgr() -> SpillManager {
        let m = SpillManager::new(1, true, 1024, ClusterMetrics::new());
        register_spill_codecs::<4>(&m);
        m
    }

    fn round_trip<T: Clone + Send + Sync + 'static>(m: &SpillManager, data: Vec<T>) -> Vec<T> {
        let payload: Arc<dyn std::any::Any + Send + Sync> = Arc::new(data);
        let slot = m.write(0, &*payload).expect("codec registered");
        let back = m.read(&slot).expect("slot valid");
        <dyn std::any::Any>::downcast_ref::<Vec<T>>(&*back)
            .expect("payload type")
            .clone()
    }

    #[test]
    fn unlabeled_pairs_round_trip_bit_exactly() {
        let m = mgr();
        let data: Vec<(usize, UnlabeledPair<4>)> = (0..50)
            .map(|i| {
                (
                    i % 7,
                    UnlabeledPair::new(i as u64, [i as f64 * 0.1, -0.0, f64::NAN, 3.5]),
                )
            })
            .collect();
        let back = round_trip(&m, data.clone());
        assert_eq!(back.len(), data.len());
        for ((ka, a), (kb, b)) in data.iter().zip(&back) {
            assert_eq!(ka, kb);
            assert_eq!(a.id, b.id);
            let bits_a: Vec<u64> = a.vector.iter().map(|x| x.to_bits()).collect();
            let bits_b: Vec<u64> = b.vector.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits_a, bits_b);
        }
    }

    #[test]
    fn probes_round_trip() {
        let m = mgr();
        // Probe payload: (target cell, (test id, vector, stage-1 kth²)).
        // The cutoff must survive bit-exactly — including +∞ (prune off or
        // fewer than k stage-1 neighbours).
        type Probe = (usize, (u64, [f64; 4], f64));
        let data: Vec<Probe> = (0..20)
            .map(|i: usize| {
                let kth = if i.is_multiple_of(3) {
                    f64::INFINITY
                } else {
                    0.125 * i as f64
                };
                (i, (1000 + i as u64, [0.25 * i as f64; 4], kth))
            })
            .collect();
        assert_eq!(round_trip(&m, data.clone()), data);
    }

    #[test]
    fn neighborhoods_round_trip_entries_and_capacity() {
        let m = mgr();
        let mut a = Neighborhood::new(3);
        a.push_sq(2.0, 5, true);
        a.push_sq(1.0, 9, false);
        let b = Neighborhood::new(7); // empty but with a real k
        let data = vec![(11u64, a), (22u64, b)];
        let back = round_trip(&m, data.clone());
        assert_eq!(back, data, "k, entry order and labels all survive");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The disk tier's invariant, stated as a property: chunk a batch,
        /// scatter the chunks over partitions, spill every partition and
        /// read it back — the reassembled batch is bit-identical to the
        /// resident one, for every chunking × partitioning the engine uses.
        /// Vectors are drawn as raw bit patterns so NaNs, infinities and
        /// signed zeros are all exercised.
        #[test]
        fn spilled_vecbatch_columns_reassemble_bit_identically(
            seed in 0u64..10_000,
            n_rows in 0usize..200,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let m = mgr();
            let mut whole = VecBatch::<4>::new();
            for id in 0..n_rows as u64 {
                let bits: [u64; 4] = std::array::from_fn(|_| rng.gen());
                whole.push(id, &bits.map(f64::from_bits), rng.gen());
            }
            for chunk_len in [1usize, 64, 1024] {
                for parts in [1usize, 4, 16] {
                    let mut partitions: Vec<Vec<(usize, Arc<VecBatch<4>>)>> =
                        vec![Vec::new(); parts];
                    for (i, chunk) in whole.chunk_rows(chunk_len).into_iter().enumerate() {
                        partitions[i % parts].push((i, Arc::new(chunk)));
                    }
                    let mut restored: Vec<(usize, Arc<VecBatch<4>>)> = Vec::new();
                    for p in partitions {
                        restored.extend(round_trip(&m, p));
                    }
                    restored.sort_by_key(|(i, _)| *i);
                    let mut rebuilt = VecBatch::<4>::new();
                    for (_, c) in &restored {
                        rebuilt.append(c);
                    }
                    prop_assert_eq!(rebuilt.ids(), whole.ids());
                    prop_assert_eq!(rebuilt.labels(), whole.labels());
                    for d in 0..4 {
                        let got: Vec<u64> =
                            rebuilt.col(d).iter().map(|x| x.to_bits()).collect();
                        let want: Vec<u64> =
                            whole.col(d).iter().map(|x| x.to_bits()).collect();
                        prop_assert_eq!(got, want, "column {} drifted", d);
                    }
                }
            }
        }
    }

    #[test]
    fn negative_cells_round_trip_column_wise() {
        let m = mgr();
        let mut cell = VecBatch::<4>::new();
        cell.push(1, &[0.1, 0.2, 0.3, 0.4], false);
        cell.push(2, &[f64::MIN_POSITIVE, -1.0, 0.0, 9.9], true);
        let data = vec![
            (3usize, Arc::new(cell)),
            (4usize, Arc::new(VecBatch::new())),
        ];
        let back = round_trip(&m, data.clone());
        assert_eq!(back.len(), 2);
        for ((ka, a), (kb, b)) in data.iter().zip(&back) {
            assert_eq!(ka, kb);
            assert_eq!(a.ids(), b.ids());
            assert_eq!(a.labels(), b.labels());
            for d in 0..4 {
                let bits_a: Vec<u64> = a.col(d).iter().map(|x| x.to_bits()).collect();
                let bits_b: Vec<u64> = b.col(d).iter().map(|x| x.to_bits()).collect();
                assert_eq!(bits_a, bits_b);
            }
        }
    }
}
