//! # fastknn — Voronoi-partitioned Fast kNN classification
//!
//! The primary contribution of Wang & Karimi (EDBT 2016), §4.3: a kNN
//! classifier for *highly imbalanced* labelled-pair data, parallelised over
//! a Spark-style engine ([`sparklet`]) with the paper's two pruning devices:
//!
//! 1. **Voronoi partitioning** (§4.3.1): k-means clusters the training
//!    pairs; each test pair is assigned to its nearest cluster centre and
//!    stage 1 searches only that cluster.
//! 2. **Additional-partition selection** (Algorithm 1, §4.3.2): stage 2
//!    consults a neighbouring cluster only when the test pair's current
//!    k-th neighbour distance exceeds its distance to the separating
//!    hyperplane (Eq. 7) — and is skipped entirely when every current
//!    neighbour is negative and closer than the nearest positive
//!    (observations 1–3, exploiting label imbalance).
//!
//! Classification uses the inverse-distance score of Eq. 5 with threshold θ
//! (Eq. 6). §4.3.4's *test-set pruning* — clustering the positive pairs and
//! discarding test pairs outside every positive cluster's `dcp + f(θ)`
//! ball — is implemented in [`prune`].
//!
//! The distributed classifier is *label-exact* with respect to brute-force
//! kNN: when the positive shortcut does not fire it returns the exact
//! k-nearest neighbourhood (Algorithm 1's bound is conservative), and when
//! it does fire the true neighbourhood is provably all-negative. The test
//! suite checks this equivalence against [`serial`].

pub mod classify;
pub mod prune;
pub mod score;
pub mod select;
pub mod serial;
pub mod soa;
pub mod spill;
pub mod types;
pub mod voronoi;

pub use classify::{FastKnn, FastKnnConfig};
pub use prune::{
    admissible_radius, scan_cell_pruned, CellScanStats, TestPruner, PRUNE_SLACK_ABS,
    PRUNE_SLACK_REL,
};
pub use score::{label_for, score_neighbors, SCORE_EPS};
pub use select::{
    additional_partitions, additional_partitions_into, additional_partitions_pruned_into,
};
pub use soa::{
    from_labeled, from_unlabeled, to_labeled, to_unlabeled, ClassifyScratch, ScratchPool, VecBatch,
};
pub use spill::register_spill_codecs;
pub use types::{LabeledPair, Neighborhood, ScoredPair, UnlabeledPair, PAIR_DIMS};
pub use voronoi::{hyperplane_distance, VoronoiPartition};

/// Counter names published to [`sparklet::ClusterMetrics`] — the quantities
/// Figs. 7 and 8 of the paper plot.
pub mod counters {
    /// Test-to-centre distance computations (assignment step).
    pub const CENTER_COMPARISONS: &str = "fastknn.center_comparisons";
    /// Stage-1 intra-cluster pair comparisons (Fig. 7a).
    pub const INTRA_COMPARISONS: &str = "fastknn.intra_comparisons";
    /// Comparisons against the global positive set.
    pub const POSITIVE_COMPARISONS: &str = "fastknn.positive_comparisons";
    /// Stage-2 cross-cluster pair comparisons (Fig. 7c).
    pub const CROSS_COMPARISONS: &str = "fastknn.cross_comparisons";
    /// Additional clusters selected by Algorithm 1 (Fig. 7b).
    pub const ADDITIONAL_CLUSTERS: &str = "fastknn.additional_clusters";
    /// Tests resolved by the all-negative shortcut (observations 1–3).
    pub const SHORTCUT_SKIPS: &str = "fastknn.shortcut_skips";
    /// Voronoi cells skipped wholesale by the annulus bound (lossless).
    pub const PRUNE_CELLS_SKIPPED: &str = "fastknn.prune_cells_skipped";
    /// Cell residents rejected by the triangle-inequality window (lossless).
    pub const PRUNE_BOUND_REJECTED: &str = "fastknn.prune_bound_rejected";
    /// Distance evaluations avoided: bound-rejected residents plus the
    /// populations of wholesale-skipped cells.
    pub const PRUNE_EVALS_AVOIDED: &str = "fastknn.prune_evals_avoided";
}
