//! Serial reference implementations.
//!
//! [`classify_brute`] is the ground truth the distributed Fast kNN is tested
//! against: exact kNN over the full training set with Eq. 5 scoring.
//! [`classify_fast_serial`] runs the same two-stage Voronoi algorithm as the
//! distributed path but single-threaded — useful for unit-testing the
//! algorithm without an engine, and for isolating engine effects in
//! benchmarks.
//!
//! Both run the candidate loops entirely in squared-distance space over
//! fixed-arity vectors: no allocation, no `sqrt` until Eq. 5 scoring.

use crate::score::{label_for, score_neighbors};
use crate::select::additional_partitions;
use crate::types::{LabeledPair, Neighborhood, ScoredPair, UnlabeledPair};
use crate::voronoi::VoronoiPartition;
use simmetrics::squared_euclidean_fixed;

/// Exact brute-force kNN classification with Eq. 5 scoring.
pub fn classify_brute<const D: usize>(
    train: &[LabeledPair<D>],
    test: &[UnlabeledPair<D>],
    k: usize,
    theta: f64,
) -> Vec<ScoredPair> {
    test.iter()
        .map(|t| {
            let mut hood = Neighborhood::new(k);
            for pair in train {
                hood.push_sq(
                    squared_euclidean_fixed(&t.vector, &pair.vector),
                    pair.id,
                    pair.positive,
                );
            }
            let score = score_neighbors(&hood);
            ScoredPair {
                id: t.id,
                score,
                positive: label_for(score, theta),
                shortcut: false,
            }
        })
        .collect()
}

/// Single-threaded Fast kNN: identical algorithm to the distributed
/// classifier (stage 1 intra-cluster + positives, Algorithm 1 selection,
/// stage 2 cross-cluster), without the engine.
pub fn classify_fast_serial<const D: usize>(
    partition: &VoronoiPartition<D>,
    test: &[UnlabeledPair<D>],
    k: usize,
    theta: f64,
) -> Vec<ScoredPair> {
    test.iter()
        .map(|t| {
            let assigned = partition.assign(&t.vector);
            let mut hood = Neighborhood::new(k);
            for pair in &partition.negative_clusters[assigned] {
                hood.push_sq(
                    squared_euclidean_fixed(&t.vector, &pair.vector),
                    pair.id,
                    pair.positive,
                );
            }
            // Algorithm 1 line 2: d(s, s_k) over the intra-cluster
            // neighbours only, BEFORE merging the positives.
            let intra_kth_sq = hood.kth_distance_sq();
            let mut min_pos_sq = f64::INFINITY;
            for pair in &partition.positives {
                let d_sq = squared_euclidean_fixed(&t.vector, &pair.vector);
                min_pos_sq = min_pos_sq.min(d_sq);
                hood.push_sq(d_sq, pair.id, true);
            }
            let shortcut = intra_kth_sq <= min_pos_sq;
            if !shortcut {
                let extra = additional_partitions(
                    &t.vector,
                    assigned,
                    intra_kth_sq,
                    min_pos_sq,
                    &partition.centers,
                );
                for cid in extra {
                    for pair in &partition.negative_clusters[cid] {
                        hood.push_sq(
                            squared_euclidean_fixed(&t.vector, &pair.vector),
                            pair.id,
                            pair.positive,
                        );
                    }
                }
            }
            let score = score_neighbors(&hood);
            ScoredPair {
                id: t.id,
                score,
                positive: label_for(score, theta),
                shortcut,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_workload(
        n_neg: usize,
        n_pos: usize,
        n_test: usize,
        seed: u64,
    ) -> (Vec<LabeledPair<4>>, Vec<UnlabeledPair<4>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Vec::new();
        for i in 0..n_neg {
            let v: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
            train.push(LabeledPair::new(i as u64, v, false));
        }
        for i in 0..n_pos {
            // Positives concentrated in a corner (duplicates have small
            // field distances).
            let v: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..0.15));
            train.push(LabeledPair::new((n_neg + i) as u64, v, true));
        }
        let test = (0..n_test)
            .map(|i| {
                let v: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
                UnlabeledPair::new(i as u64, v)
            })
            .collect();
        (train, test)
    }

    #[test]
    fn brute_force_scores_obvious_cases() {
        let train = vec![
            LabeledPair::new(0, [0.0, 0.0], true),
            LabeledPair::new(1, [1.0, 1.0], false),
            LabeledPair::new(2, [1.1, 1.0], false),
        ];
        let test = vec![
            UnlabeledPair::new(0, [0.01, 0.01]),
            UnlabeledPair::new(1, [1.05, 1.0]),
        ];
        let out = classify_brute(&train, &test, 3, 0.0);
        assert!(out[0].positive, "next to the positive");
        assert!(!out[1].positive, "between the negatives");
    }

    #[test]
    fn fast_serial_matches_brute_force_labels_and_scores() {
        let (train, test) = random_workload(400, 12, 60, 11);
        let brute = classify_brute(&train, &test, 7, 0.0);
        for b in [2usize, 5, 10] {
            let vp = VoronoiPartition::build(&train, b, 99);
            let fast = classify_fast_serial(&vp, &test, 7, 0.0);
            for (bf, ff) in brute.iter().zip(&fast) {
                assert_eq!(bf.id, ff.id);
                assert_eq!(
                    bf.positive, ff.positive,
                    "label mismatch at id {} with b={b}",
                    bf.id
                );
                if !ff.shortcut {
                    assert!(
                        (bf.score - ff.score).abs() < 1e-9,
                        "non-shortcut scores must be exact at id {} with b={b}: {} vs {}",
                        bf.id,
                        bf.score,
                        ff.score
                    );
                }
            }
        }
    }

    #[test]
    fn shortcut_pairs_are_still_labelled_negative_by_brute_force() {
        let (train, test) = random_workload(300, 5, 80, 23);
        let vp = VoronoiPartition::build(&train, 6, 1);
        let fast = classify_fast_serial(&vp, &test, 5, 0.0);
        let brute = classify_brute(&train, &test, 5, 0.0);
        let mut shortcut_count = 0;
        for (ff, bf) in fast.iter().zip(&brute) {
            if ff.shortcut {
                shortcut_count += 1;
                assert!(!bf.positive, "shortcut fired on a true-kNN-positive pair");
            }
        }
        assert!(shortcut_count > 0, "workload should exercise the shortcut");
    }

    #[test]
    fn no_positives_in_training_shortcuts_everything() {
        let (mut train, test) = random_workload(100, 0, 20, 5);
        train.retain(|p| !p.positive);
        let vp = VoronoiPartition::build(&train, 4, 2);
        let fast = classify_fast_serial(&vp, &test, 3, 0.0);
        assert!(fast.iter().all(|s| s.shortcut && !s.positive));
    }
}
