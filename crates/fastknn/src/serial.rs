//! Serial reference implementations.
//!
//! [`classify_brute`] is the ground truth the distributed Fast kNN is tested
//! against: exact kNN over the full training set with Eq. 5 scoring.
//! [`classify_fast_serial`] runs the same two-stage Voronoi algorithm as the
//! distributed path but single-threaded — useful for unit-testing the
//! algorithm without an engine, and for isolating engine effects in
//! benchmarks.
//!
//! Both run the candidate loops entirely in squared-distance space.
//! [`classify_batch`] is the SoA engine underneath: every candidate scan is
//! a tiled column-kernel sweep, and all working state lives in a caller-owned
//! [`ClassifyScratch`] — after warm-up it performs **zero heap allocation**
//! (pinned by the `zero_alloc` integration test).

use crate::prune::scan_cell_pruned;
use crate::score::{label_for, score_neighbors};
use crate::select::additional_partitions_pruned_into;
use crate::soa::{distances_to_point, from_unlabeled, ClassifyScratch, VecBatch};
use crate::types::{LabeledPair, Neighborhood, ScoredPair, UnlabeledPair};
use crate::voronoi::VoronoiPartition;
use simmetrics::squared_euclidean_fixed;

/// Exact brute-force kNN classification with Eq. 5 scoring.
pub fn classify_brute<const D: usize>(
    train: &[LabeledPair<D>],
    test: &[UnlabeledPair<D>],
    k: usize,
    theta: f64,
) -> Vec<ScoredPair> {
    test.iter()
        .map(|t| {
            let mut hood = Neighborhood::new(k);
            for pair in train {
                hood.push_sq(
                    squared_euclidean_fixed(&t.vector, &pair.vector),
                    pair.id,
                    pair.positive,
                );
            }
            let score = score_neighbors(&hood);
            ScoredPair {
                id: t.id,
                score,
                positive: label_for(score, theta),
                shortcut: false,
            }
        })
        .collect()
}

/// Single-threaded Fast kNN: identical algorithm to the distributed
/// classifier (stage 1 intra-cluster + positives, Algorithm 1 selection,
/// stage 2 cross-cluster), without the engine. Thin wrapper over
/// [`classify_batch`] with a fresh scratch.
pub fn classify_fast_serial<const D: usize>(
    partition: &VoronoiPartition<D>,
    test: &[UnlabeledPair<D>],
    k: usize,
    theta: f64,
) -> Vec<ScoredPair> {
    let batch = from_unlabeled(test);
    let mut scratch = ClassifyScratch::default();
    let mut out = Vec::with_capacity(test.len());
    classify_batch(partition, &batch, k, theta, &mut scratch, &mut out);
    out
}

/// Fast kNN over a column batch of test pairs, appending one [`ScoredPair`]
/// per row to `out` (cleared first).
///
/// All candidate scans run as tiled [`distances_to_point`] sweeps over the
/// partition's SoA cells; every buffer lives in `scratch`, so a warm call
/// allocates nothing. Results are bit-identical to the historical per-pair
/// path: the kernels preserve the scalar accumulation order, and the
/// neighbourhood's `(distance², id)` total order makes candidate push order
/// irrelevant.
pub fn classify_batch<const D: usize>(
    partition: &VoronoiPartition<D>,
    tests: &VecBatch<D>,
    k: usize,
    theta: f64,
    scratch: &mut ClassifyScratch<D>,
    out: &mut Vec<ScoredPair>,
) {
    out.clear();
    let ClassifyScratch {
        hood,
        dists,
        pos_dists,
        extra,
    } = scratch;
    for i in 0..tests.len() {
        let v = tests.row(i);
        let assigned = partition.assign(&v);
        hood.reset(k);
        let cell = &partition.negative_clusters[assigned];
        // Triangle-inequality window scan over the sorted cell — the hood
        // it fills is bit-identical to pushing every resident.
        let ds = squared_euclidean_fixed(&v, &partition.centers[assigned]).sqrt();
        let cds = partition
            .center_dists
            .get(assigned)
            .map(|c| c.as_slice())
            .unwrap_or(&[]);
        scan_cell_pruned(cell, cds, &v, ds, f64::INFINITY, hood, dists);
        // Algorithm 1 line 2: d(s, s_k) over the intra-cluster neighbours
        // only, BEFORE merging the positives.
        let intra_kth_sq = hood.kth_distance_sq();
        distances_to_point(&partition.positives, &v, pos_dists);
        let mut min_pos_sq = f64::INFINITY;
        for (j, &d_sq) in pos_dists.iter().enumerate() {
            min_pos_sq = min_pos_sq.min(d_sq);
            hood.push_sq(d_sq, partition.positives.id(j), true);
        }
        let shortcut = intra_kth_sq <= min_pos_sq;
        if !shortcut {
            additional_partitions_pruned_into(
                &v,
                assigned,
                intra_kth_sq,
                min_pos_sq,
                partition,
                extra,
            );
            for &cid in extra.iter() {
                let cell = &partition.negative_clusters[cid];
                let ds = squared_euclidean_fixed(&v, &partition.centers[cid]).sqrt();
                let cds = partition
                    .center_dists
                    .get(cid)
                    .map(|c| c.as_slice())
                    .unwrap_or(&[]);
                // The cross-cell scan inherits the running cutoff: the hood
                // already holds the intra candidates and positives, so
                // hood.kth alone tightens the window.
                scan_cell_pruned(cell, cds, &v, ds, f64::INFINITY, hood, dists);
            }
        }
        let score = score_neighbors(hood);
        out.push(ScoredPair {
            id: tests.id(i),
            score,
            positive: label_for(score, theta),
            shortcut,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_workload(
        n_neg: usize,
        n_pos: usize,
        n_test: usize,
        seed: u64,
    ) -> (Vec<LabeledPair<4>>, Vec<UnlabeledPair<4>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Vec::new();
        for i in 0..n_neg {
            let v: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
            train.push(LabeledPair::new(i as u64, v, false));
        }
        for i in 0..n_pos {
            // Positives concentrated in a corner (duplicates have small
            // field distances).
            let v: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..0.15));
            train.push(LabeledPair::new((n_neg + i) as u64, v, true));
        }
        let test = (0..n_test)
            .map(|i| {
                let v: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
                UnlabeledPair::new(i as u64, v)
            })
            .collect();
        (train, test)
    }

    #[test]
    fn brute_force_scores_obvious_cases() {
        let train = vec![
            LabeledPair::new(0, [0.0, 0.0], true),
            LabeledPair::new(1, [1.0, 1.0], false),
            LabeledPair::new(2, [1.1, 1.0], false),
        ];
        let test = vec![
            UnlabeledPair::new(0, [0.01, 0.01]),
            UnlabeledPair::new(1, [1.05, 1.0]),
        ];
        let out = classify_brute(&train, &test, 3, 0.0);
        assert!(out[0].positive, "next to the positive");
        assert!(!out[1].positive, "between the negatives");
    }

    #[test]
    fn fast_serial_matches_brute_force_labels_and_scores() {
        let (train, test) = random_workload(400, 12, 60, 11);
        let brute = classify_brute(&train, &test, 7, 0.0);
        for b in [2usize, 5, 10] {
            let vp = VoronoiPartition::build(&train, b, 99);
            let fast = classify_fast_serial(&vp, &test, 7, 0.0);
            for (bf, ff) in brute.iter().zip(&fast) {
                assert_eq!(bf.id, ff.id);
                assert_eq!(
                    bf.positive, ff.positive,
                    "label mismatch at id {} with b={b}",
                    bf.id
                );
                if !ff.shortcut {
                    assert!(
                        (bf.score - ff.score).abs() < 1e-9,
                        "non-shortcut scores must be exact at id {} with b={b}: {} vs {}",
                        bf.id,
                        bf.score,
                        ff.score
                    );
                }
            }
        }
    }

    #[test]
    fn shortcut_pairs_are_still_labelled_negative_by_brute_force() {
        let (train, test) = random_workload(300, 5, 80, 23);
        let vp = VoronoiPartition::build(&train, 6, 1);
        let fast = classify_fast_serial(&vp, &test, 5, 0.0);
        let brute = classify_brute(&train, &test, 5, 0.0);
        let mut shortcut_count = 0;
        for (ff, bf) in fast.iter().zip(&brute) {
            if ff.shortcut {
                shortcut_count += 1;
                assert!(!bf.positive, "shortcut fired on a true-kNN-positive pair");
            }
        }
        assert!(shortcut_count > 0, "workload should exercise the shortcut");
    }

    #[test]
    fn classify_batch_is_stable_across_scratch_reuse() {
        // A warm scratch (carrying a stale hood, distance buffers and
        // Algorithm 1 output from another workload) must not leak into the
        // next call's results.
        let (train, test) = random_workload(300, 8, 50, 31);
        let vp = VoronoiPartition::build(&train, 5, 17);
        let batch = from_unlabeled(&test);
        let mut scratch = ClassifyScratch::default();
        let mut first = Vec::new();
        classify_batch(&vp, &batch, 7, 0.0, &mut scratch, &mut first);
        let (other_train, other_test) = random_workload(100, 4, 30, 99);
        let other_vp = VoronoiPartition::build(&other_train, 3, 1);
        let mut other = Vec::new();
        classify_batch(
            &other_vp,
            &from_unlabeled(&other_test),
            3,
            0.0,
            &mut scratch,
            &mut other,
        );
        let mut second = Vec::new();
        classify_batch(&vp, &batch, 7, 0.0, &mut scratch, &mut second);
        assert_eq!(first, second);
    }

    #[test]
    fn no_positives_in_training_shortcuts_everything() {
        let (mut train, test) = random_workload(100, 0, 20, 5);
        train.retain(|p| !p.positive);
        let vp = VoronoiPartition::build(&train, 4, 2);
        let fast = classify_fast_serial(&vp, &test, 3, 0.0);
        assert!(fast.iter().all(|s| s.shortcut && !s.positive));
    }
}
