//! Algorithm 2 — distributed Fast kNN classification on sparklet.
//!
//! Maps the paper's Spark-primitive formulation onto the engine one-for-one:
//!
//! | Algorithm 2 step | here |
//! |---|---|
//! | 1. k-means partition of `T` into `b` clusters | [`VoronoiPartition::build`] at [`FastKnn::fit`] |
//! | 2–3. map: assign each `s ∈ S` its closest centre | per-block `map` + `partition_by` on cluster id |
//! | 4. split `S` into `c` partitions | driver loop over `c` test blocks |
//! | 6–8. join with `T⁻` on cluster id + top-k aggregate | `zip_partitions` of the block with the cached negative-cluster dataset |
//! | 9–10. distances to `T⁺`, merge | same task (positives are broadcast) |
//! | 11–12. Algorithm 1 partition selection | [`additional_partitions_into`] inside the task |
//! | 13–15. join with additional partitions, union + reduce to merge top-k | probe shuffle + second `zip_partitions` + `union` + `reduce_by_key` |
//! | 17. score per Eq. 5 | `map` over merged neighbourhoods |
//!
//! Each task works on contiguous struct-of-arrays batches: the cached
//! negative dataset is one `Arc<VecBatch>` per Voronoi cell, test blocks are
//! parallelized as contiguous [`VecBatch`] chunks, and every candidate scan
//! inside a task is a tiled column-kernel sweep. Per-task working buffers
//! come from a shared [`ScratchPool`], so steady-state classification does
//! not allocate distance buffers per test pair. Shuffled records (probes,
//! neighbourhood bases) still carry stack arrays, not heap vectors.

use crate::counters;
use crate::prune::scan_cell_pruned;
use crate::score::{label_for, score_neighbors};
use crate::select::{additional_partitions_into, additional_partitions_pruned_into};
use crate::soa::{distances_to_point, from_unlabeled, ScratchPool, VecBatch};
use crate::types::{LabeledPair, Neighborhood, ScoredPair, UnlabeledPair, PAIR_DIMS};
use crate::voronoi::VoronoiPartition;
use simmetrics::squared_euclidean_fixed;
use sparklet::partitioner::IndexPartitioner;
use sparklet::{Cluster, EventKind, PairRdd, Rdd, Result};
use std::sync::Arc;

/// Fast kNN hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct FastKnnConfig {
    /// Number of neighbours `k` (odd in the paper; Eq. 5 does not require
    /// it, but the Eq. 1 baseline does).
    pub k: usize,
    /// Number of training clusters `b` (the Fig. 7/8 knob).
    pub b: usize,
    /// Number of test blocks `c` (the Fig. 9 "block number" knob).
    pub c: usize,
    /// Score threshold θ of Eq. 6.
    pub theta: f64,
    /// Seed for k-means.
    pub seed: u64,
    /// Bound-driven candidate pruning: triangle-inequality window scans
    /// over distance-sorted cells plus annulus cell skips. Lossless — the
    /// classification is bit-identical either way — so `false` exists only
    /// to measure what the bounds save (see `bench_prune`).
    pub prune: bool,
}

impl Default for FastKnnConfig {
    fn default() -> Self {
        FastKnnConfig {
            k: 9,
            b: 32,
            c: 4,
            theta: 0.0,
            seed: 2016,
            prune: true,
        }
    }
}

/// Intermediate record between stage 1 and stage 2.
#[derive(Clone)]
enum StageOut<const D: usize> {
    /// Resolved by the all-negative shortcut.
    Done(ScoredPair),
    /// Needs cross-cluster search: stage-1 neighbourhood (sent once).
    Base { id: u64, hood: Neighborhood },
    /// Probe to run against cluster `target`. Carries the stage-1
    /// neighbourhood's k-th distance² so the stage-2 scan starts with a
    /// tight cutoff: any candidate beyond it is already beaten by k known
    /// candidates and cannot enter the merged top-k. `+∞` when pruning is
    /// off (scan everything).
    Probe {
        target: usize,
        id: u64,
        vector: [f64; D],
        kth_sq: f64,
    },
}

/// A stage-2 probe keyed by its target cell: `(id, vector, kth_sq)` — the
/// test pair plus its stage-1 initial cutoff (see [`StageOut::Probe`]).
type Probe<const D: usize> = (usize, (u64, [f64; D], f64));

/// A fitted distributed Fast kNN model bound to a [`Cluster`].
pub struct FastKnn<const D: usize = PAIR_DIMS> {
    config: FastKnnConfig,
    cluster: Cluster,
    voronoi: Arc<VoronoiPartition<D>>,
    /// Negative training cells keyed by cluster id — one contiguous
    /// `Arc<VecBatch>` per Voronoi cell, partitioned so cell `i` lives in
    /// engine partition `i` and cached in the block manager (the paper
    /// relies on Spark's in-memory RDD caching for exactly this dataset).
    negatives: Rdd<(usize, Arc<VecBatch<D>>)>,
    /// Per-worker scratch buffers shared by all classification tasks.
    scratch: Arc<ScratchPool<D>>,
}

impl<const D: usize> FastKnn<D> {
    /// Partition the training set and cache the negative clusters on the
    /// engine. This is Algorithm 2 step 1 plus the training-side `join`
    /// preparation.
    pub fn fit(
        cluster: &Cluster,
        train: &[LabeledPair<D>],
        config: FastKnnConfig,
    ) -> Result<FastKnn<D>> {
        // Install spill codecs before any job runs: the negative-cell cache
        // and all three classification shuffles must be able to overflow to
        // the disk tier instead of aborting under a tight memory budget.
        crate::spill::register_spill_codecs::<D>(cluster.spill());
        let voronoi = Arc::new(VoronoiPartition::build(train, config.b, config.seed));
        let b = voronoi.b();
        let keyed: Vec<(usize, Arc<VecBatch<D>>)> = voronoi
            .negative_clusters
            .iter()
            .enumerate()
            .map(|(cid, cell)| (cid, Arc::new(cell.clone())))
            .collect();
        let negatives = cluster
            .parallelize(keyed, b)
            .partition_by(Arc::new(IndexPartitioner::new(b)))
            .cache();
        // Materialise the cache so classification jobs hit memory.
        negatives.count()?;
        Ok(FastKnn {
            config,
            cluster: cluster.clone(),
            voronoi,
            negatives,
            scratch: Arc::new(ScratchPool::new()),
        })
    }

    /// The model's Voronoi partition (centres, cluster sizes, positives).
    pub fn voronoi(&self) -> &VoronoiPartition<D> {
        &self.voronoi
    }

    /// The configuration the model was fitted with.
    pub fn config(&self) -> &FastKnnConfig {
        &self.config
    }

    /// Classify a test set. Returns one [`ScoredPair`] per input, sorted by
    /// id. Thin row-wrapper over [`FastKnn::classify_batch`].
    pub fn classify(&self, test: &[UnlabeledPair<D>]) -> Result<Vec<ScoredPair>> {
        self.classify_batch(&from_unlabeled(test))
    }

    /// Classify a column batch of test pairs. Returns one [`ScoredPair`]
    /// per row, sorted by id. Runs `c` sequential blocks, each a stage-1
    /// `zip_partitions` against the cached negative clusters followed (when
    /// needed) by a stage-2 probe shuffle.
    pub fn classify_batch(&self, test: &VecBatch<D>) -> Result<Vec<ScoredPair>> {
        let mut results: Vec<ScoredPair> = Vec::with_capacity(test.len());
        let c = self.config.c.max(1);
        let block_size = test.len().div_ceil(c).max(1);
        for block in test.chunk_rows(block_size) {
            results.extend(self.classify_block(block)?);
        }
        results.sort_by_key(|s| s.id);
        Ok(results)
    }

    fn classify_block(&self, block: VecBatch<D>) -> Result<Vec<ScoredPair>> {
        let b = self.voronoi.b();
        let k = self.config.k;
        let theta = self.config.theta;
        let prune = self.config.prune;
        let voronoi = self.voronoi.clone();
        let snap = |name: &str| self.cluster.metrics().counter(name).get();
        let before = [
            snap(counters::PRUNE_CELLS_SKIPPED),
            snap(counters::PRUNE_BOUND_REJECTED),
            snap(counters::PRUNE_EVALS_AVOIDED),
            snap(counters::INTRA_COMPARISONS),
            snap(counters::CROSS_COMPARISONS),
        ];

        // Steps 2–3: assign each test pair to its Voronoi cell. Each
        // assignment partition receives one contiguous sub-batch.
        let n_parts = b.min(block.len()).max(1);
        let chunk_len = block.len().div_ceil(n_parts).max(1);
        let chunks: Vec<VecBatch<D>> = block.chunk_rows(chunk_len);
        let n_chunks = chunks.len().max(1);
        let vor_assign = voronoi.clone();
        let assign_scratch = self.scratch.clone();
        let assigned: Rdd<(usize, UnlabeledPair<D>)> = self
            .cluster
            .parallelize(chunks, n_chunks)
            .map_partitions_with_ctx(move |ctx, _, part: Vec<VecBatch<D>>| {
                let rows: usize = part.iter().map(VecBatch::len).sum();
                ctx.counter(counters::CENTER_COMPARISONS)
                    .add((rows * vor_assign.b()) as u64);
                ctx.charge_ops((rows * vor_assign.b()) as u64);
                let mut out = Vec::with_capacity(rows);
                assign_scratch.with(|s| {
                    let mut cells = Vec::new();
                    for batch in &part {
                        vor_assign.assign_balanced_batch(batch, &mut cells, &mut s.dists);
                        for (i, &cid) in cells.iter().enumerate() {
                            out.push((cid, UnlabeledPair::new(batch.id(i), batch.row(i))));
                        }
                    }
                });
                Ok(out)
            })
            .partition_by(Arc::new(IndexPartitioner::new(b)));

        // Steps 6–12: intra-cluster kNN + positives + Algorithm 1.
        let vor_stage1 = voronoi.clone();
        let stage1_scratch = self.scratch.clone();
        let stage_out: Rdd<StageOut<D>> = assigned
            .zip_partitions(
                &self.negatives,
                move |ctx,
                      tests: Vec<(usize, UnlabeledPair<D>)>,
                      negs: Vec<(usize, Arc<VecBatch<D>>)>| {
                    let cell: Option<&Arc<VecBatch<D>>> = negs.first().map(|(_, c)| c);
                    let negs_len = cell.map_or(0, |c| c.len());
                    // Model executor memory: the joined block must be
                    // resident (paper Fig. 8b: small b ⇒ oversized joined
                    // partitions ⇒ task kills and retries).
                    let bytes = (tests.len() + negs_len) * D * 8;
                    ctx.hold_memory(bytes)?;
                    let intra = ctx.counter(counters::INTRA_COMPARISONS);
                    let posc = ctx.counter(counters::POSITIVE_COMPARISONS);
                    let extra_clusters = ctx.counter(counters::ADDITIONAL_CLUSTERS);
                    let skips = ctx.counter(counters::SHORTCUT_SKIPS);
                    let cells_skipped_c = ctx.counter(counters::PRUNE_CELLS_SKIPPED);
                    let bound_rejected_c = ctx.counter(counters::PRUNE_BOUND_REJECTED);
                    let avoided_c = ctx.counter(counters::PRUNE_EVALS_AVOIDED);
                    let mut out = Vec::with_capacity(tests.len());
                    stage1_scratch.with(|s| {
                        for (assigned_cid, t) in tests {
                            let mut hood = Neighborhood::new(k);
                            let mut evaluated = 0u64;
                            if let Some(cell) = cell {
                                if prune {
                                    // Triangle-inequality window scan over
                                    // the distance-sorted cell — fills the
                                    // hood bit-identically to a full sweep.
                                    let ds = squared_euclidean_fixed(
                                        &t.vector,
                                        &vor_stage1.centers[assigned_cid],
                                    )
                                    .sqrt();
                                    let cds = vor_stage1
                                        .center_dists
                                        .get(assigned_cid)
                                        .map(|c| c.as_slice())
                                        .unwrap_or(&[]);
                                    let stats = scan_cell_pruned(
                                        cell,
                                        cds,
                                        &t.vector,
                                        ds,
                                        f64::INFINITY,
                                        &mut hood,
                                        &mut s.dists,
                                    );
                                    evaluated = stats.evaluated;
                                    bound_rejected_c.add(stats.bound_rejected);
                                    avoided_c.add(stats.bound_rejected);
                                } else {
                                    distances_to_point(cell, &t.vector, &mut s.dists);
                                    for (j, &d_sq) in s.dists.iter().enumerate() {
                                        hood.push_sq(d_sq, cell.id(j), cell.label(j));
                                    }
                                    evaluated = negs_len as u64;
                                }
                            }
                            intra.add(evaluated);
                            // Algorithm 1 line 2: d(s, s_k) over the
                            // intra-cluster neighbours only, BEFORE merging
                            // the positives.
                            let intra_kth_sq = hood.kth_distance_sq();
                            distances_to_point(&vor_stage1.positives, &t.vector, &mut s.pos_dists);
                            let mut min_pos_sq = f64::INFINITY;
                            for (j, &d_sq) in s.pos_dists.iter().enumerate() {
                                min_pos_sq = min_pos_sq.min(d_sq);
                                hood.push_sq(d_sq, vor_stage1.positives.id(j), true);
                            }
                            posc.add(vor_stage1.positives.len() as u64);
                            ctx.charge_ops(evaluated + vor_stage1.positives.len() as u64);
                            if intra_kth_sq <= min_pos_sq {
                                skips.inc();
                                let score = score_neighbors(&hood);
                                out.push(StageOut::Done(ScoredPair {
                                    id: t.id,
                                    score,
                                    positive: label_for(score, theta),
                                    shortcut: true,
                                }));
                                continue;
                            }
                            if prune {
                                let (cells, residents) = additional_partitions_pruned_into(
                                    &t.vector,
                                    assigned_cid,
                                    intra_kth_sq,
                                    min_pos_sq,
                                    &vor_stage1,
                                    &mut s.extra,
                                );
                                cells_skipped_c.add(cells);
                                avoided_c.add(residents);
                            } else {
                                additional_partitions_into(
                                    &t.vector,
                                    assigned_cid,
                                    intra_kth_sq,
                                    min_pos_sq,
                                    &vor_stage1.centers,
                                    &mut s.extra,
                                );
                            }
                            extra_clusters.add(s.extra.len() as u64);
                            if s.extra.is_empty() {
                                let score = score_neighbors(&hood);
                                out.push(StageOut::Done(ScoredPair {
                                    id: t.id,
                                    score,
                                    positive: label_for(score, theta),
                                    shortcut: false,
                                }));
                                continue;
                            }
                            // The stage-1 kth travels with each probe so the
                            // stage-2 scan starts with a tight cutoff.
                            let kth_sq = if prune {
                                hood.kth_distance_sq()
                            } else {
                                f64::INFINITY
                            };
                            out.push(StageOut::Base { id: t.id, hood });
                            for &target in &s.extra {
                                out.push(StageOut::Probe {
                                    target,
                                    id: t.id,
                                    vector: t.vector,
                                    kth_sq,
                                });
                            }
                        }
                    });
                    ctx.release_memory(bytes);
                    Ok(out)
                },
            )?
            .cache();

        let done: Vec<ScoredPair> = stage_out
            .flat_map(|o| match o {
                StageOut::Done(s) => vec![s],
                _ => vec![],
            })
            .collect()?;

        let bases: Rdd<(u64, Neighborhood)> = stage_out.flat_map(|o| match o {
            StageOut::Base { id, hood } => vec![(id, hood)],
            _ => vec![],
        });
        let probes: Rdd<Probe<D>> = stage_out.flat_map(|o| match o {
            StageOut::Probe {
                target,
                id,
                vector,
                kth_sq,
            } => vec![(target, (id, vector, kth_sq))],
            _ => vec![],
        });

        // Steps 13–15: cross-cluster comparison, then merge the top-k lists.
        let stage2_scratch = self.scratch.clone();
        let vor_stage2 = voronoi.clone();
        let probe_hits: Rdd<(u64, Neighborhood)> = probes
            .partition_by(Arc::new(IndexPartitioner::new(b)))
            .zip_partitions(
                &self.negatives,
                move |ctx, probes: Vec<Probe<D>>, negs: Vec<(usize, Arc<VecBatch<D>>)>| {
                    let cid = negs.first().map_or(0, |(cid, _)| *cid);
                    let cell: Option<&Arc<VecBatch<D>>> = negs.first().map(|(_, c)| c);
                    let negs_len = cell.map_or(0, |c| c.len());
                    let cross = ctx.counter(counters::CROSS_COMPARISONS);
                    let bound_rejected_c = ctx.counter(counters::PRUNE_BOUND_REJECTED);
                    let avoided_c = ctx.counter(counters::PRUNE_EVALS_AVOIDED);
                    let mut out = Vec::with_capacity(probes.len());
                    stage2_scratch.with(|s| {
                        for (_, (id, vector, kth_sq)) in probes {
                            let mut hood = Neighborhood::new(k);
                            let mut evaluated = 0u64;
                            if let Some(cell) = cell {
                                if prune {
                                    // The probe's stage-1 kth seeds the
                                    // cutoff; candidates beyond it cannot
                                    // enter the merged top-k, so the local
                                    // hood it fills merges losslessly.
                                    let ds =
                                        squared_euclidean_fixed(&vector, &vor_stage2.centers[cid])
                                            .sqrt();
                                    let cds = vor_stage2
                                        .center_dists
                                        .get(cid)
                                        .map(|c| c.as_slice())
                                        .unwrap_or(&[]);
                                    let stats = scan_cell_pruned(
                                        cell,
                                        cds,
                                        &vector,
                                        ds,
                                        kth_sq,
                                        &mut hood,
                                        &mut s.dists,
                                    );
                                    evaluated = stats.evaluated;
                                    bound_rejected_c.add(stats.bound_rejected);
                                    avoided_c.add(stats.bound_rejected);
                                } else {
                                    distances_to_point(cell, &vector, &mut s.dists);
                                    for (j, &d_sq) in s.dists.iter().enumerate() {
                                        hood.push_sq(d_sq, cell.id(j), cell.label(j));
                                    }
                                    evaluated = negs_len as u64;
                                }
                            }
                            cross.add(evaluated);
                            ctx.charge_ops(evaluated);
                            out.push((id, hood));
                        }
                    });
                    Ok(out)
                },
            )?;

        let theta2 = theta;
        let merged: Vec<ScoredPair> = probe_hits
            .union(&bases)
            .reduce_by_key(Neighborhood::merge, b)
            .map(move |(id, hood)| {
                let score = score_neighbors(&hood);
                ScoredPair {
                    id,
                    score,
                    positive: label_for(score, theta2),
                    shortcut: false,
                }
            })
            .collect()?;

        let mut out = done;
        out.extend(merged);

        // Coalesce the block's pruning effect into one journal event,
        // driver-side (tasks have no journal access): counter deltas across
        // the block's jobs. One event per block bounds journal volume by
        // `c`, never by test-pair count.
        if prune {
            let after = [
                snap(counters::PRUNE_CELLS_SKIPPED),
                snap(counters::PRUNE_BOUND_REJECTED),
                snap(counters::PRUNE_EVALS_AVOIDED),
                snap(counters::INTRA_COMPARISONS),
                snap(counters::CROSS_COMPARISONS),
            ];
            let delta = |i: usize| after[i].saturating_sub(before[i]);
            self.cluster.journal().record(EventKind::PruneApplied {
                scope: "classify-block".into(),
                cells_skipped: delta(0),
                bound_rejected: delta(1),
                evals_avoided: delta(2),
                evals_done: delta(3) + delta(4),
                memo_hits: 0,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::classify_brute;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn workload(
        n_neg: usize,
        n_pos: usize,
        n_test: usize,
        seed: u64,
    ) -> (Vec<LabeledPair<4>>, Vec<UnlabeledPair<4>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Vec::new();
        for i in 0..n_neg {
            let v: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
            train.push(LabeledPair::new(i as u64, v, false));
        }
        for i in 0..n_pos {
            let v: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..0.15));
            train.push(LabeledPair::new((n_neg + i) as u64, v, true));
        }
        let test = (0..n_test)
            .map(|i| {
                let v: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
                UnlabeledPair::new(i as u64, v)
            })
            .collect();
        (train, test)
    }

    #[test]
    fn distributed_matches_brute_force() {
        let (train, test) = workload(500, 15, 80, 3);
        let cluster = Cluster::local(4);
        let model = FastKnn::fit(
            &cluster,
            &train,
            FastKnnConfig {
                k: 7,
                b: 8,
                c: 3,
                theta: 0.0,
                seed: 5,
                prune: true,
            },
        )
        .unwrap();
        let fast = model.classify(&test).unwrap();
        let brute = classify_brute(&train, &test, 7, 0.0);
        assert_eq!(fast.len(), brute.len());
        for (f, g) in fast.iter().zip(&brute) {
            assert_eq!(f.id, g.id);
            assert_eq!(f.positive, g.positive, "label mismatch at id {}", f.id);
            if !f.shortcut {
                assert!(
                    (f.score - g.score).abs() < 1e-9,
                    "score mismatch at id {}: {} vs {}",
                    f.id,
                    f.score,
                    g.score
                );
            }
        }
    }

    #[test]
    fn counters_are_populated() {
        let (train, test) = workload(300, 10, 40, 9);
        let cluster = Cluster::local(2);
        let model = FastKnn::fit(&cluster, &train, FastKnnConfig::default()).unwrap();
        let _ = model.classify(&test).unwrap();
        let m = cluster.metrics();
        assert!(m.counter(counters::CENTER_COMPARISONS).get() > 0);
        assert!(m.counter(counters::INTRA_COMPARISONS).get() > 0);
        assert!(m.counter(counters::POSITIVE_COMPARISONS).get() > 0);
    }

    #[test]
    fn more_clusters_reduce_intra_comparisons() {
        // Fig. 7a's main trend.
        let (train, test) = workload(2000, 20, 60, 13);
        let intra_at = |b: usize| {
            let cluster = Cluster::local(2);
            let model = FastKnn::fit(
                &cluster,
                &train,
                FastKnnConfig {
                    b,
                    ..FastKnnConfig::default()
                },
            )
            .unwrap();
            cluster.metrics().reset();
            let _ = model.classify(&test).unwrap();
            cluster.metrics().counter(counters::INTRA_COMPARISONS).get()
        };
        let few = intra_at(4);
        let many = intra_at(32);
        assert!(
            many < few,
            "more clusters must mean fewer intra-cluster comparisons: {many} vs {few}"
        );
    }

    #[test]
    fn block_count_does_not_change_results() {
        let (train, test) = workload(400, 10, 50, 21);
        let cluster = Cluster::local(2);
        let out_c1 = FastKnn::fit(
            &cluster,
            &train,
            FastKnnConfig {
                c: 1,
                ..FastKnnConfig::default()
            },
        )
        .unwrap()
        .classify(&test)
        .unwrap();
        let out_c5 = FastKnn::fit(
            &cluster,
            &train,
            FastKnnConfig {
                c: 5,
                ..FastKnnConfig::default()
            },
        )
        .unwrap()
        .classify(&test)
        .unwrap();
        assert_eq!(out_c1, out_c5);
    }

    #[test]
    fn pruning_is_lossless_and_accounts_for_every_avoided_evaluation() {
        // Few, large cells: the k-th-neighbour cutoff is small against the
        // cell radius, so the window and annulus bounds have room to bite.
        let (train, test) = workload(2_000, 12, 90, 41);
        let run = |prune: bool| {
            let cluster = Cluster::local(4);
            let cfg = FastKnnConfig {
                b: 4,
                prune,
                ..FastKnnConfig::default()
            };
            let model = FastKnn::fit(&cluster, &train, cfg).unwrap();
            let out = model.classify(&test).unwrap();
            let m = cluster.metrics();
            let evals = m.counter(counters::INTRA_COMPARISONS).get()
                + m.counter(counters::CROSS_COMPARISONS).get();
            let avoided = m.counter(counters::PRUNE_EVALS_AVOIDED).get();
            let events = cluster
                .journal()
                .events()
                .iter()
                .filter(|e| e.kind.tag() == "prune_applied")
                .count();
            (out, evals, avoided, events)
        };
        let (pruned, evals_on, avoided, events_on) = run(true);
        let (full, evals_off, avoided_off, events_off) = run(false);
        assert_eq!(pruned, full, "pruning must not change a single result");
        assert!(avoided > 0, "the workload must exercise the bounds");
        assert_eq!(avoided_off, 0, "no pruning, nothing avoided");
        assert!(events_on > 0, "each block journals one prune event");
        assert_eq!(events_off, 0);
        // Conservation: every comparison the unpruned run performs is either
        // performed or explicitly accounted as avoided by the pruned run
        // (scan invariant: evaluated + bound_rejected = cell size; skipped
        // cells contribute their whole population).
        assert_eq!(
            evals_on + avoided,
            evals_off,
            "avoided evaluations must exactly cover the gap"
        );
    }

    #[test]
    fn empty_test_set_is_fine() {
        let (train, _) = workload(50, 3, 0, 1);
        let cluster = Cluster::local(2);
        let model = FastKnn::fit(&cluster, &train, FastKnnConfig::default()).unwrap();
        assert!(model.classify(&[]).unwrap().is_empty());
    }

    #[test]
    fn classify_batch_equals_classify_rows() {
        let (train, test) = workload(300, 10, 60, 77);
        let cluster = Cluster::local(3);
        let model = FastKnn::fit(&cluster, &train, FastKnnConfig::default()).unwrap();
        let rows = model.classify(&test).unwrap();
        let batch = model.classify_batch(&from_unlabeled(&test)).unwrap();
        assert_eq!(rows, batch);
    }

    mod parallelism_invariance {
        use super::*;
        use proptest::prelude::*;

        fn classify_on(
            parallelism: usize,
            train: &[LabeledPair<4>],
            test: &[UnlabeledPair<4>],
            cfg: FastKnnConfig,
        ) -> Vec<ScoredPair> {
            let cluster = Cluster::local(parallelism);
            FastKnn::fit(&cluster, train, cfg)
                .unwrap()
                .classify(test)
                .unwrap()
        }

        proptest! {
            // Few cases — each one runs three full distributed
            // classifications — but enough to vary seeds, k and b. With
            // (distance, id) tie-breaking the merged top-k is a function of
            // the candidate *set*, so worker count and shuffle chunk order
            // must not show through. Exact equality, scores included.
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn classification_is_identical_across_1_4_16_workers(
                seed in 0u64..1000,
                k in prop::sample::select(vec![3usize, 7]),
                b in prop::sample::select(vec![4usize, 9]),
            ) {
                let (train, test) = workload(250, 8, 40, seed);
                let cfg = FastKnnConfig { k, b, c: 3, theta: 0.0, seed: seed ^ 0xA5A5, prune: true };
                let out1 = classify_on(1, &train, &test, cfg);
                let out4 = classify_on(4, &train, &test, cfg);
                let out16 = classify_on(16, &train, &test, cfg);
                prop_assert_eq!(&out1, &out4);
                prop_assert_eq!(&out1, &out16);
            }
        }
    }
}
