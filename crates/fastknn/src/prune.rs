//! Test-set pruning (§4.3.4).
//!
//! Cluster the *positive* training pairs into `l` clusters; around each
//! cluster centre `cp_i` draw the ball of radius `dcp_i` (distance of the
//! cluster's farthest member) expanded by `f(θ)`. A test pair outside every
//! expanded ball is too far from any known duplicate to be classified
//! positive at threshold θ, so it is pruned before classification — the
//! paper's Fig. 11 measures the pruning ratio and the resulting speed-up.
//!
//! The membership test compares in squared space: `d² ≤ (dcp_i + f(θ))²`
//! avoids a `sqrt` per (test pair × cluster) probe. Radii stay linear —
//! they feed the Eq. 6-driven `f(θ)` arithmetic of [`TestPruner::learn_f_theta`].
//!
//! # Candidate pruning ([`scan_cell_pruned`])
//!
//! Besides §4.3.4's *test-set* pruning above, this module hosts the
//! *candidate* pruning engine: the triangle-inequality window scan over a
//! Voronoi cell whose residents are sorted by distance-to-centre (see
//! [`crate::voronoi::VoronoiPartition::center_dists`]). For a query `s`
//! with `d(s, c)` to the cell centre and a running k-th-neighbour cutoff
//! `kth`, any resident `x` satisfies
//!
//! ```text
//! d(s, x) ≥ |d(s, c) − d(x, c)|
//! ```
//!
//! so residents with `d(x, c)` outside `[d(s, c) − kth, d(s, c) + kth]`
//! cannot enter the neighbourhood and are skipped without computing their
//! distance. The scan walks outward from `s`'s insertion point in the
//! sorted distances, block by block, re-tightening the window as admitted
//! candidates shrink the cutoff — **lossless** because (a) the bound is
//! exact mathematics slackened by [`PRUNE_SLACK_REL`] against float
//! rounding, so equality ties (which the total-order top-k breaks by id)
//! always stay inside the window, and (b) the neighbourhood is a function
//! of the candidate *set*, never of evaluation order.

use crate::soa::{distances_to_point, distances_to_point_range, VecBatch};
use crate::types::{LabeledPair, Neighborhood, UnlabeledPair, PAIR_DIMS};
use mlcore::kmeans::KMeans;
use simmetrics::{euclidean_fixed, squared_euclidean_fixed};

/// Pruner built from the positive training pairs.
#[derive(Debug, Clone)]
pub struct TestPruner<const D: usize = PAIR_DIMS> {
    /// Positive-cluster centres `cp_i`.
    pub centers: Vec<[f64; D]>,
    /// Radius `dcp_i` of each cluster (farthest member distance, linear).
    pub radii: Vec<f64>,
}

/// Outcome of pruning a test set.
#[derive(Debug, Clone)]
pub struct PruneOutcome<const D: usize = PAIR_DIMS> {
    /// Test pairs kept for classification.
    pub kept: Vec<UnlabeledPair<D>>,
    /// Number of pruned pairs.
    pub pruned: usize,
}

impl<const D: usize> PruneOutcome<D> {
    /// Fraction of the original test set that was kept.
    pub fn keep_ratio(&self) -> f64 {
        let total = self.kept.len() + self.pruned;
        if total == 0 {
            return 1.0;
        }
        self.kept.len() as f64 / total as f64
    }
}

impl<const D: usize> TestPruner<D> {
    /// Step 1–2 of §4.3.4: cluster positives into `l` clusters and record
    /// each cluster's radius.
    ///
    /// # Panics
    /// Panics when there are no positive pairs (nothing to prune against —
    /// the caller should skip pruning entirely in that regime).
    pub fn build(positives: &[LabeledPair<D>], l: usize, seed: u64) -> Self {
        assert!(
            !positives.is_empty(),
            "test-set pruning requires positive training pairs"
        );
        let vectors: Vec<[f64; D]> = positives.iter().map(|p| p.vector).collect();
        let model = KMeans::new(l.max(1), seed).fit(&vectors);
        let mut radii = vec![0.0f64; model.k()];
        for (v, &a) in vectors.iter().zip(&model.assignments) {
            let d = euclidean_fixed(v, &model.centroids[a]);
            if d > radii[a] {
                radii[a] = d;
            }
        }
        TestPruner {
            centers: model.centroids,
            radii,
        }
    }

    /// Step 3: should `vector` be kept at expansion `f_theta`?
    ///
    /// Compared in squared space; a negative expanded radius (large negative
    /// `f_theta`) keeps nothing, which squaring alone would get wrong.
    pub fn keep(&self, vector: &[f64; D], f_theta: f64) -> bool {
        self.centers.iter().zip(&self.radii).any(|(c, r)| {
            let rf = r + f_theta;
            rf >= 0.0 && squared_euclidean_fixed(vector, c) <= rf * rf
        })
    }

    /// Learn the pruning expansion `f(θ)` from labelled data — the paper's
    /// stated future work (§5.2.6: "the setting can be learned from the
    /// labelled data, which we leave as our future work").
    ///
    /// Returns the smallest expansion (with `margin` slack added) that
    /// keeps at least `target_recall` of the labelled duplicate vectors
    /// inside some positive-cluster ball. Pass held-out duplicate vectors
    /// (not the ones the pruner was built from, which are retained by
    /// construction at `f(θ) = 0`).
    ///
    /// # Panics
    /// Panics if `duplicates` is empty or `target_recall` is outside (0, 1].
    pub fn learn_f_theta(&self, duplicates: &[[f64; D]], target_recall: f64, margin: f64) -> f64 {
        assert!(
            !duplicates.is_empty(),
            "learning f(θ) needs labelled duplicates"
        );
        assert!(
            target_recall > 0.0 && target_recall <= 1.0,
            "target_recall must be in (0, 1]"
        );
        // For each duplicate, the smallest expansion that would keep it:
        // min_i (dist(v, cp_i) − dcp_i), clamped at 0.
        let mut needed: Vec<f64> = duplicates
            .iter()
            .map(|v| {
                self.centers
                    .iter()
                    .zip(&self.radii)
                    .map(|(c, r)| (euclidean_fixed(v, c) - r).max(0.0))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        needed.sort_by(|a, b| a.partial_cmp(b).expect("finite expansions"));
        let keep =
            ((duplicates.len() as f64 * target_recall).ceil() as usize).clamp(1, duplicates.len());
        // [`TestPruner::keep`] certifies membership in squared space; the
        // exact boundary expansion can fall a few ulps short once squared,
        // so widen relatively (exact zero stays zero).
        needed[keep - 1] * (1.0 + 4.0 * f64::EPSILON) + margin
    }

    /// Prune a test set.
    pub fn prune(&self, test: &[UnlabeledPair<D>], f_theta: f64) -> PruneOutcome<D> {
        let mut kept = Vec::with_capacity(test.len());
        let mut pruned = 0usize;
        for t in test {
            if self.keep(&t.vector, f_theta) {
                kept.push(*t);
            } else {
                pruned += 1;
            }
        }
        PruneOutcome { kept, pruned }
    }

    /// Prune a column batch: one tiled distance sweep per positive-cluster
    /// ball instead of a centre loop per test pair. Returns the kept rows
    /// (original order) and the pruned count; membership is identical to
    /// [`TestPruner::keep`].
    pub fn prune_batch(&self, test: &VecBatch<D>, f_theta: f64) -> (VecBatch<D>, usize) {
        let mut keep = vec![false; test.len()];
        let mut dists: Vec<f64> = Vec::with_capacity(test.len());
        for (c, r) in self.centers.iter().zip(&self.radii) {
            let rf = r + f_theta;
            if rf < 0.0 {
                continue;
            }
            distances_to_point(test, c, &mut dists);
            let bound = rf * rf;
            for (m, &d_sq) in keep.iter_mut().zip(&dists) {
                *m = *m || d_sq <= bound;
            }
        }
        let mut kept = VecBatch::with_capacity(keep.iter().filter(|&&m| m).count());
        for (i, &m) in keep.iter().enumerate() {
            if m {
                kept.push(test.id(i), &test.row(i), test.label(i));
            }
        }
        let pruned = test.len() - kept.len();
        (kept, pruned)
    }
}

/// Relative slack applied to the admissible window radius: float rounding
/// in the `sqrt`s and squared-distance sums is bounded by a few ulps, so a
/// `1e-9` relative margin can never wrongly prune — in particular a
/// candidate at *exactly* the cutoff distance (whose smaller id could still
/// displace the current k-th neighbour) always survives.
pub const PRUNE_SLACK_REL: f64 = 1e-9;
/// Absolute slack floor for the admissible window (guards tiny magnitudes).
pub const PRUNE_SLACK_ABS: f64 = 1e-12;

/// Rows evaluated per ranged-kernel call inside [`scan_cell_pruned`]: large
/// enough to amortize kernel dispatch and keep SIMD lanes full, small
/// enough that the cutoff re-tightens frequently while scanning a big cell.
const SCAN_BLOCK: usize = 64;

/// Outcome counts of one pruned cell scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellScanStats {
    /// Residents whose distance to the query was actually computed.
    pub evaluated: u64,
    /// Residents skipped because their triangle-inequality lower bound
    /// exceeded the (slackened) cutoff — distance evaluations avoided.
    pub bound_rejected: u64,
}

/// The admissible window radius around `d(s, c)` for cutoff `cutoff_sq`:
/// `kth` plus the float-rounding slack. `+∞` cutoff ⇒ `+∞` radius (no
/// pruning until the neighbourhood fills).
#[inline]
pub fn admissible_radius(ds: f64, cutoff_sq: f64) -> f64 {
    if cutoff_sq == f64::INFINITY {
        return f64::INFINITY;
    }
    let kth = cutoff_sq.sqrt();
    kth + PRUNE_SLACK_REL * (ds + kth) + PRUNE_SLACK_ABS
}

/// Scan one sorted Voronoi cell into `hood`, skipping residents whose
/// triangle-inequality lower bound beats the running cutoff.
///
/// * `center_dists` — the cell's sorted linear distances-to-centre
///   (parallel to its rows). If its length does not match the cell (a
///   hand-assembled partition without metadata), the scan falls back to a
///   full unpruned sweep.
/// * `ds` — linear distance from the query to this cell's centre.
/// * `initial_cutoff_sq` — an externally-known squared cutoff (a stage-1
///   k-th distance carried to a stage-2 probe); `+∞` when none. The
///   effective cutoff at any instant is
///   `min(initial_cutoff_sq, hood.kth_distance_sq())` and only tightens.
///
/// The resulting `hood` is **bit-identical** to pushing every resident:
/// skipped residents provably cannot enter the top-k (strictly farther
/// than k admitted candidates, even accounting for the id tie-break), and
/// push order is irrelevant to the total-order neighbourhood. `dists` is
/// reused scratch for the ranged kernel.
pub fn scan_cell_pruned<const D: usize>(
    cell: &VecBatch<D>,
    center_dists: &[f64],
    query: &[f64; D],
    ds: f64,
    initial_cutoff_sq: f64,
    hood: &mut Neighborhood,
    dists: &mut Vec<f64>,
) -> CellScanStats {
    let n = cell.len();
    let mut stats = CellScanStats::default();
    if n == 0 {
        return stats;
    }
    if center_dists.len() != n {
        distances_to_point(cell, query, dists);
        for (j, &d_sq) in dists.iter().enumerate() {
            hood.push_sq(d_sq, cell.id(j), cell.label(j));
        }
        stats.evaluated = n as u64;
        return stats;
    }
    // Walk outward from the query's insertion point in the sorted
    // distances: candidates with the smallest lower bound first, so the
    // cutoff tightens as fast as possible.
    let mut right = center_dists.partition_point(|&cd| cd < ds);
    let mut left = right; // next left candidate is `left - 1`
    loop {
        let cutoff = initial_cutoff_sq.min(hood.kth_distance_sq());
        let r = admissible_radius(ds, cutoff);
        let left_ok = left > 0 && ds - center_dists[left - 1] <= r;
        let right_ok = right < n && center_dists[right] - ds <= r;
        if !left_ok && !right_ok {
            // Bounds on each side grow monotonically outward and the cutoff
            // only tightens, so everything unvisited stays excluded.
            stats.bound_rejected += (left + (n - right)) as u64;
            return stats;
        }
        let take_left = match (left_ok, right_ok) {
            (true, false) => true,
            (false, true) => false,
            _ => ds - center_dists[left - 1] <= center_dists[right] - ds,
        };
        if take_left {
            let lo_limit = center_dists[..left].partition_point(|&cd| cd < ds - r);
            let start = left.saturating_sub(SCAN_BLOCK).max(lo_limit);
            distances_to_point_range(cell, query, start, left, dists);
            for (off, &d_sq) in dists.iter().enumerate() {
                let j = start + off;
                hood.push_sq(d_sq, cell.id(j), cell.label(j));
            }
            stats.evaluated += (left - start) as u64;
            left = start;
        } else {
            let hi_limit = right + center_dists[right..].partition_point(|&cd| cd <= ds + r);
            let end = (right + SCAN_BLOCK).min(hi_limit);
            distances_to_point_range(cell, query, right, end, dists);
            for (off, &d_sq) in dists.iter().enumerate() {
                let j = right + off;
                hood.push_sq(d_sq, cell.id(j), cell.label(j));
            }
            stats.evaluated += (end - right) as u64;
            right = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::classify_brute;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn positives() -> Vec<LabeledPair<2>> {
        // Two tight positive clumps, like duplicate pairs in distance space.
        let mut out = Vec::new();
        for i in 0..10 {
            let t = i as f64 * 0.005;
            out.push(LabeledPair::new(i, [0.1 + t, 0.1 - t], true));
            out.push(LabeledPair::new(100 + i, [0.8 + t, 0.2 - t], true));
        }
        out
    }

    #[test]
    fn keeps_points_near_positives_and_prunes_far_ones() {
        let pruner = TestPruner::build(&positives(), 2, 7);
        assert!(pruner.keep(&[0.11, 0.10], 0.1));
        assert!(pruner.keep(&[0.81, 0.19], 0.1));
        assert!(!pruner.keep(&[5.0, 5.0], 0.1));
    }

    #[test]
    fn negative_expansion_beyond_radius_keeps_nothing() {
        let pruner = TestPruner::build(&positives(), 2, 7);
        let huge_negative = -(pruner.radii.iter().fold(0.0f64, |a, &b| a.max(b)) + 1.0);
        assert!(!pruner.keep(&[0.1, 0.1], huge_negative));
    }

    #[test]
    fn negative_expansion_shrinks_the_balls_without_sign_flips() {
        // f(θ) < 0 shrinks each ball to radius r + f(θ). Squaring a negative
        // expanded radius would silently re-grow the ball — `keep` must gate
        // on the sign before comparing in squared space.
        let pruner = TestPruner::<2> {
            centers: vec![[0.0, 0.0]],
            radii: vec![1.0],
        };
        // Mildly negative: ball of radius 0.4 remains.
        assert!(pruner.keep(&[0.3, 0.0], -0.6));
        assert!(!pruner.keep(&[0.5, 0.0], -0.6));
        // Expanded radius exactly 0: only the centre itself survives.
        assert!(pruner.keep(&[0.0, 0.0], -1.0));
        assert!(!pruner.keep(&[0.001, 0.0], -1.0));
        // Below zero: nothing survives, not even the centre. Without the
        // sign gate, rf = -0.5 squares to 0.25 and the centre would pass.
        assert!(!pruner.keep(&[0.0, 0.0], -1.5));
        // Prune with a shrinking expansion is monotone in f(θ) too.
        let test: Vec<UnlabeledPair<2>> = (0..50)
            .map(|i| UnlabeledPair::new(i, [i as f64 * 0.05, 0.0]))
            .collect();
        let mut prev = usize::MAX;
        for f in [0.0, -0.25, -0.5, -0.75, -1.0, -2.0] {
            let kept = pruner.prune(&test, f).kept.len();
            assert!(kept <= prev, "keep count must shrink as f(θ) drops");
            prev = kept;
        }
        assert_eq!(prev, 0, "f(θ) = -2 keeps nothing");
    }

    #[test]
    fn larger_f_theta_keeps_more() {
        let pruner = TestPruner::build(&positives(), 2, 7);
        let mut rng = StdRng::seed_from_u64(1);
        let test: Vec<UnlabeledPair<2>> = (0..500)
            .map(|i| UnlabeledPair::new(i, [rng.gen_range(0.0..1.5), rng.gen_range(0.0..1.5)]))
            .collect();
        let mut prev = 0usize;
        for f in [0.1, 0.3, 0.5, 0.9] {
            let out = pruner.prune(&test, f);
            assert!(
                out.kept.len() >= prev,
                "keep count must be monotone in f(θ)"
            );
            prev = out.kept.len();
        }
        // And wide enough keeps everything.
        assert_eq!(pruner.prune(&test, 10.0).pruned, 0);
    }

    #[test]
    fn pruning_never_drops_a_true_positive_classification() {
        // The safety property of Fig. 11: "all these threshold settings
        // enable the duplicate report pairs in the testing dataset being
        // included". A pruned pair must be one brute-force kNN would have
        // scored below θ anyway — provided f(θ) is at least the distance at
        // which a positive neighbour can still push the score past θ.
        let mut rng = StdRng::seed_from_u64(3);
        let mut train = positives();
        for i in 0..400 {
            train.push(LabeledPair::new(
                1000 + i,
                [rng.gen_range(0.0..1.5), rng.gen_range(0.0..1.5)],
                false,
            ));
        }
        let pos_only: Vec<LabeledPair<2>> = train.iter().filter(|p| p.positive).copied().collect();
        let pruner = TestPruner::build(&pos_only, 2, 7);
        let test: Vec<UnlabeledPair<2>> = (0..300)
            .map(|i| UnlabeledPair::new(i, [rng.gen_range(0.0..1.5), rng.gen_range(0.0..1.5)]))
            .collect();
        let f_theta = 0.5;
        let outcome = pruner.prune(&test, f_theta);
        assert!(outcome.pruned > 0, "workload should prune something");
        let scored = classify_brute(&train, &test, 5, 1.0 / f_theta);
        let kept_ids: std::collections::HashSet<u64> = outcome.kept.iter().map(|t| t.id).collect();
        for s in &scored {
            if s.positive {
                assert!(
                    kept_ids.contains(&s.id),
                    "pruning dropped test {} which classifies positive",
                    s.id
                );
            }
        }
    }

    #[test]
    fn learned_f_theta_achieves_its_target_recall() {
        let mut rng = StdRng::seed_from_u64(8);
        let train_pos = positives();
        let pruner = TestPruner::build(&train_pos, 2, 7);
        // Held-out duplicates scattered around the positive clumps, some
        // farther out than the training radii.
        let held_out: Vec<[f64; 2]> = (0..60)
            .map(|i| {
                let (cx, cy) = if i % 2 == 0 { (0.1, 0.1) } else { (0.8, 0.2) };
                [cx + rng.gen_range(-0.2..0.2), cy + rng.gen_range(-0.2..0.2)]
            })
            .collect();
        for target in [0.8, 0.95, 1.0] {
            let f = pruner.learn_f_theta(&held_out, target, 0.0);
            let kept = held_out.iter().filter(|v| pruner.keep(v, f)).count();
            assert!(
                kept as f64 >= target * held_out.len() as f64,
                "target {target}: kept {kept}/{} at f={f:.3}",
                held_out.len()
            );
        }
        // Tighter targets need no larger expansion.
        let f80 = pruner.learn_f_theta(&held_out, 0.8, 0.0);
        let f100 = pruner.learn_f_theta(&held_out, 1.0, 0.0);
        assert!(f100 >= f80, "expansion must be monotone in recall target");
    }

    #[test]
    fn learned_f_theta_zero_for_training_duplicates() {
        // The pruner's own training positives are inside the balls by
        // construction, so the learned expansion (margin 0) is 0.
        let train_pos = positives();
        let pruner = TestPruner::build(&train_pos, 2, 7);
        let vectors: Vec<[f64; 2]> = train_pos.iter().map(|p| p.vector).collect();
        let f = pruner.learn_f_theta(&vectors, 1.0, 0.0);
        assert!(f.abs() < 1e-9, "got {f}");
    }

    #[test]
    fn prune_batch_matches_row_prune() {
        let pruner = TestPruner::build(&positives(), 2, 7);
        let mut rng = StdRng::seed_from_u64(4);
        let test: Vec<UnlabeledPair<2>> = (0..300)
            .map(|i| UnlabeledPair::new(i, [rng.gen_range(0.0..1.5), rng.gen_range(0.0..1.5)]))
            .collect();
        let batch = crate::soa::from_unlabeled(&test);
        for f in [-2.0, -0.3, 0.0, 0.1, 0.5, 10.0] {
            let rows = pruner.prune(&test, f);
            let (kept, pruned) = pruner.prune_batch(&batch, f);
            assert_eq!(pruned, rows.pruned, "pruned count diverged at f={f}");
            assert_eq!(
                crate::soa::to_unlabeled(&kept),
                rows.kept,
                "kept set diverged at f={f}"
            );
        }
    }

    #[test]
    fn keep_ratio_math() {
        let outcome = PruneOutcome {
            kept: vec![UnlabeledPair::new(0, [0.0])],
            pruned: 3,
        };
        assert!((outcome.keep_ratio() - 0.25).abs() < 1e-12);
        let empty = PruneOutcome::<2> {
            kept: vec![],
            pruned: 0,
        };
        assert_eq!(empty.keep_ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "requires positive")]
    fn no_positives_rejected() {
        let _ = TestPruner::<2>::build(&[], 2, 1);
    }

    mod cell_scan {
        use super::super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        /// A sorted cell + center_dists, the way `VoronoiPartition::build`
        /// lays them out.
        fn sorted_cell(
            rows: &[(u64, [f64; 4], bool)],
            center: &[f64; 4],
        ) -> (VecBatch<4>, Vec<f64>) {
            let mut cell = VecBatch::<4>::new();
            for (id, v, lab) in rows {
                cell.push(*id, v, *lab);
            }
            let mut d2 = Vec::new();
            distances_to_point(&cell, center, &mut d2);
            let mut idx: Vec<usize> = (0..cell.len()).collect();
            idx.sort_unstable_by(|&a, &b| {
                d2[a]
                    .total_cmp(&d2[b])
                    .then_with(|| cell.id(a).cmp(&cell.id(b)))
            });
            let sorted = cell.gather(&idx);
            let cds: Vec<f64> = idx.iter().map(|&i| d2[i].sqrt()).collect();
            (sorted, cds)
        }

        #[test]
        fn missing_metadata_falls_back_to_full_sweep() {
            let rows: Vec<(u64, [f64; 4], bool)> = (0..20)
                .map(|i| (i, [i as f64 * 0.1, 0.0, 0.0, 0.0], false))
                .collect();
            let (cell, _) = sorted_cell(&rows, &[0.0; 4]);
            let q = [0.5, 0.0, 0.0, 0.0];
            let mut hood = Neighborhood::new(3);
            let mut dists = Vec::new();
            let stats = scan_cell_pruned(&cell, &[], &q, 0.5, f64::INFINITY, &mut hood, &mut dists);
            assert_eq!(stats.evaluated, 20);
            assert_eq!(stats.bound_rejected, 0);
            let mut full = Neighborhood::new(3);
            for i in 0..cell.len() {
                full.push_sq(
                    squared_euclidean_fixed(&q, &cell.row(i)),
                    cell.id(i),
                    cell.label(i),
                );
            }
            assert_eq!(hood, full);
        }

        proptest! {
            /// The tentpole contract: the pruned windowed scan merged with
            /// any externally-derived cutoff neighbourhood is bit-identical
            /// to the fully-swept equivalent, and every resident is either
            /// evaluated or bound-rejected.
            #[test]
            fn pruned_scan_is_lossless(
                seed in 0u64..5_000,
                n_cell in 0usize..200,
                n_ext in 0usize..40,
                k in 1usize..12,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let center: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
                let rows: Vec<(u64, [f64; 4], bool)> = (0..n_cell)
                    .map(|i| {
                        let v: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
                        (1000 + i as u64, v, rng.gen_bool(0.2))
                    })
                    .collect();
                let (cell, cds) = sorted_cell(&rows, &center);
                let q: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
                let ds = squared_euclidean_fixed(&q, &center).sqrt();
                // External candidates stand in for a stage-1 neighbourhood
                // whose k-th distance seeds the stage-2 cutoff.
                let mut ext = Neighborhood::new(k);
                for i in 0..n_ext {
                    let v: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
                    ext.push_sq(squared_euclidean_fixed(&q, &v), i as u64, rng.gen_bool(0.1));
                }
                let cutoff = ext.kth_distance_sq();
                let mut scanned = Neighborhood::new(k);
                let mut dists = Vec::new();
                let stats =
                    scan_cell_pruned(&cell, &cds, &q, ds, cutoff, &mut scanned, &mut dists);
                prop_assert_eq!(stats.evaluated + stats.bound_rejected, n_cell as u64);
                // Ground truth: push everything, no pruning anywhere.
                let mut full = ext.clone();
                for i in 0..cell.len() {
                    full.push_sq(
                        squared_euclidean_fixed(&q, &cell.row(i)),
                        cell.id(i),
                        cell.label(i),
                    );
                }
                prop_assert_eq!(ext.merge(scanned), full);
            }

            /// With no external cutoff the scanned neighbourhood alone is
            /// bit-identical to the full sweep (the stage-1 intra case).
            #[test]
            fn pruned_scan_alone_matches_full_sweep(
                seed in 0u64..5_000,
                n_cell in 0usize..200,
                k in 1usize..12,
            ) {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
                let center: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
                let rows: Vec<(u64, [f64; 4], bool)> = (0..n_cell)
                    .map(|i| {
                        let v: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
                        (i as u64, v, false)
                    })
                    .collect();
                let (cell, cds) = sorted_cell(&rows, &center);
                let q: [f64; 4] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
                let ds = squared_euclidean_fixed(&q, &center).sqrt();
                let mut scanned = Neighborhood::new(k);
                let mut dists = Vec::new();
                scan_cell_pruned(&cell, &cds, &q, ds, f64::INFINITY, &mut scanned, &mut dists);
                let mut full = Neighborhood::new(k);
                for i in 0..cell.len() {
                    full.push_sq(
                        squared_euclidean_fixed(&q, &cell.row(i)),
                        cell.id(i),
                        cell.label(i),
                    );
                }
                prop_assert_eq!(scanned, full);
            }
        }
    }
}
