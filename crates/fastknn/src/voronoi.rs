//! Voronoi partitioning of the training pairs (§4.3.1) and the
//! hyperplane-distance bound of Eq. 7.

use crate::types::LabeledPair;
use mlcore::kmeans::{nearest_centroid, KMeans};
use simmetrics::{euclidean, squared_euclidean};

/// The k-means Voronoi partition of a training set.
///
/// Cluster centres are kept in (driver) memory — §4.3.1: "The center of
/// each cluster is calculated and stored in memory." Negative pairs are
/// bucketed per cluster; positive pairs are few (observation 1) and kept as
/// one global list compared against every test pair.
#[derive(Debug, Clone)]
pub struct VoronoiPartition {
    /// Cluster centres `p_1 … p_b`.
    pub centers: Vec<Vec<f64>>,
    /// Negative training pairs per cluster.
    pub negative_clusters: Vec<Vec<LabeledPair>>,
    /// All positive training pairs (global).
    pub positives: Vec<LabeledPair>,
}

/// How many training vectors k-means fits on at most; larger sets are
/// subsampled deterministically (stride sampling) before fitting, then every
/// pair is assigned to its nearest fitted centre. The Voronoi property the
/// correctness argument needs — "each pair is closer to its own centre than
/// to any other" — holds by construction of the assignment step regardless
/// of how centres were obtained.
pub const KMEANS_FIT_CAP: usize = 20_000;

impl VoronoiPartition {
    /// Partition `train` into `b` Voronoi cells via k-means.
    ///
    /// # Panics
    /// Panics if `train` is empty or `b == 0`.
    pub fn build(train: &[LabeledPair], b: usize, seed: u64) -> Self {
        assert!(!train.is_empty(), "cannot partition an empty training set");
        assert!(b > 0, "cluster number must be positive");
        let vectors: Vec<Vec<f64>> = if train.len() > KMEANS_FIT_CAP {
            let stride = train.len() / KMEANS_FIT_CAP + 1;
            train
                .iter()
                .step_by(stride)
                .map(|p| p.vector.clone())
                .collect()
        } else {
            train.iter().map(|p| p.vector.clone()).collect()
        };
        let model = KMeans {
            k: b,
            max_iters: 25,
            tol: 1e-9,
            seed,
        }
        .fit(&vectors);
        let b_actual = model.centroids.len();
        let mut negative_clusters: Vec<Vec<LabeledPair>> = vec![Vec::new(); b_actual];
        let mut positives = Vec::new();
        for pair in train {
            if pair.positive {
                positives.push(pair.clone());
            } else {
                let (cid, _) = nearest_centroid(&pair.vector, &model.centroids);
                negative_clusters[cid].push(pair.clone());
            }
        }
        let mut partition = VoronoiPartition {
            centers: model.centroids,
            negative_clusters,
            positives,
        };
        partition.rebalance();
        partition
    }

    /// Split oversized cells into sibling chunks that share a centre.
    ///
    /// Exact-match field distances make pair-vector space a lattice: one
    /// lattice corner can hold 20%+ of all negative pairs, and no k-means
    /// assignment can split coincident points — so one task would dominate
    /// every stage and cap executor scaling (the load-balancing problem the
    /// paper lists as future work). Sibling chunks keep the search exact:
    /// the hyperplane distance between coincident centres is 0, so
    /// Algorithm 1 always selects a probed cell's siblings, and the
    /// all-negative shortcut only ever sees a *larger* k-th distance than
    /// the full cell's (conservative, never wrong).
    fn rebalance(&mut self) {
        let total: usize = self.negative_clusters.iter().map(Vec::len).sum();
        if total == 0 {
            return;
        }
        let cap = (2 * total / self.centers.len().max(1)).max(1);
        let mut extra_centers = Vec::new();
        let mut extra_clusters = Vec::new();
        for cid in 0..self.negative_clusters.len() {
            while self.negative_clusters[cid].len() > cap {
                let keep = self.negative_clusters[cid].len() - cap.min(self.negative_clusters[cid].len() / 2);
                let chunk = self.negative_clusters[cid].split_off(keep);
                extra_centers.push(self.centers[cid].clone());
                extra_clusters.push(chunk);
            }
        }
        self.centers.extend(extra_centers);
        self.negative_clusters.extend(extra_clusters);
    }

    /// Number of clusters.
    pub fn b(&self) -> usize {
        self.centers.len()
    }

    /// Voronoi cell of a query vector (nearest centre).
    pub fn assign(&self, v: &[f64]) -> usize {
        nearest_centroid(v, &self.centers).0
    }

    /// Voronoi cell with deterministic tie-spreading: when several centres
    /// are (near-)equidistant — sibling chunks of a rebalanced cell always
    /// are — pick among them by `tiebreak` (e.g. the query's id), spreading
    /// load instead of piling every query onto the first sibling.
    pub fn assign_balanced(&self, v: &[f64], tiebreak: u64) -> usize {
        let (_, best_d2) = nearest_centroid(v, &self.centers);
        let tied: Vec<usize> = self
            .centers
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                simmetrics::squared_euclidean(v, c) <= best_d2 + 1e-12
            })
            .map(|(i, _)| i)
            .collect();
        tied[(tiebreak as usize) % tied.len()]
    }

    /// Sizes of the negative clusters.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        self.negative_clusters.iter().map(Vec::len).collect()
    }

    /// Minimum distance from `v` to any positive pair; `+∞` when there are
    /// no positives.
    pub fn min_positive_distance(&self, v: &[f64]) -> f64 {
        self.positives
            .iter()
            .map(|p| euclidean(v, &p.vector))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Distance from `s` to the hyperplane separating the Voronoi cells of
/// centres `pi` (the cell `s` belongs to) and `pj` — the paper's Eq. 7,
/// after Hjaltason & Samet:
///
/// ```text
/// d(s, h) = (d(s, pj)² − d(s, pi)²) / (2 · d(pi, pj))
/// ```
///
/// Non-negative whenever `s` is genuinely closer to `pi`.
pub fn hyperplane_distance(s: &[f64], pi: &[f64], pj: &[f64]) -> f64 {
    let dij = euclidean(pi, pj);
    if dij == 0.0 {
        // Coincident centres: the "hyperplane" is everywhere; no bound.
        return 0.0;
    }
    (squared_euclidean(s, pj) - squared_euclidean(s, pi)) / (2.0 * dij)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn make_train() -> Vec<LabeledPair> {
        let mut train = Vec::new();
        // Two negative blobs.
        for i in 0..30 {
            let t = i as f64 * 0.01;
            train.push(LabeledPair::new(i, vec![t, t], false));
            train.push(LabeledPair::new(100 + i, vec![8.0 + t, 8.0 - t], false));
        }
        // A few positives near the first blob.
        for i in 0..3 {
            train.push(LabeledPair::new(200 + i, vec![0.5 + i as f64 * 0.01, 0.5], true));
        }
        train
    }

    #[test]
    fn build_separates_positives_from_clusters() {
        let vp = VoronoiPartition::build(&make_train(), 2, 42);
        assert_eq!(vp.b(), 2);
        assert_eq!(vp.positives.len(), 3);
        let total_negs: usize = vp.cluster_sizes().iter().sum();
        assert_eq!(total_negs, 60);
    }

    #[test]
    fn voronoi_property_of_assignment() {
        let vp = VoronoiPartition::build(&make_train(), 3, 7);
        for (cid, cluster) in vp.negative_clusters.iter().enumerate() {
            for pair in cluster {
                let own = squared_euclidean(&pair.vector, &vp.centers[cid]);
                for (j, c) in vp.centers.iter().enumerate() {
                    if j != cid {
                        assert!(
                            own <= squared_euclidean(&pair.vector, c) + 1e-9,
                            "pair {} violates the Voronoi property",
                            pair.id
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn assign_matches_nearest_center() {
        let vp = VoronoiPartition::build(&make_train(), 2, 42);
        let near_blob_a = vp.assign(&[0.1, 0.1]);
        let near_blob_b = vp.assign(&[8.0, 8.0]);
        assert_ne!(near_blob_a, near_blob_b);
    }

    #[test]
    fn min_positive_distance_finds_the_closest_positive() {
        let vp = VoronoiPartition::build(&make_train(), 2, 42);
        let d = vp.min_positive_distance(&[0.5, 0.5]);
        assert!(d < 0.05, "got {d}");
        let none = VoronoiPartition::build(
            &[LabeledPair::new(0, vec![0.0], false)],
            1,
            1,
        );
        assert_eq!(none.min_positive_distance(&[0.0]), f64::INFINITY);
    }

    #[test]
    fn hyperplane_distance_midpoint_is_zero() {
        let pi = vec![0.0, 0.0];
        let pj = vec![2.0, 0.0];
        // The midpoint lies ON the hyperplane.
        assert!(hyperplane_distance(&[1.0, 0.0], &pi, &pj).abs() < 1e-12);
        // A point at pi is 1.0 from the plane.
        assert!((hyperplane_distance(&[0.0, 0.0], &pi, &pj) - 1.0).abs() < 1e-12);
        // Coincident centres degrade gracefully.
        assert_eq!(hyperplane_distance(&[1.0, 1.0], &pi, &pi), 0.0);
    }

    proptest! {
        /// The geometric fact observation 4 relies on: for any point x in
        /// pj's half-space, d(s, x) >= d(s, h).
        #[test]
        fn hyperplane_bound_is_sound(
            s in prop::collection::vec(-5.0f64..5.0, 2),
            x in prop::collection::vec(-5.0f64..5.0, 2),
        ) {
            let pi = vec![-1.0, 0.0];
            let pj = vec![1.0, 0.0];
            // Only test when s is in pi's cell and x in pj's cell.
            prop_assume!(squared_euclidean(&s, &pi) < squared_euclidean(&s, &pj));
            prop_assume!(squared_euclidean(&x, &pj) <= squared_euclidean(&x, &pi));
            let bound = hyperplane_distance(&s, &pi, &pj);
            prop_assert!(euclidean(&s, &x) >= bound - 1e-9,
                "point {:?} beats the hyperplane bound {bound}", x);
        }
    }
}
