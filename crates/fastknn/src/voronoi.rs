//! Voronoi partitioning of the training pairs (§4.3.1) and the
//! hyperplane-distance bound of Eq. 7.

use crate::soa::{assign_min, distances_to_point, VecBatch};
use crate::types::{LabeledPair, PAIR_DIMS};
use mlcore::kmeans::{nearest_centroid, KMeans};
use simmetrics::{euclidean_fixed, squared_euclidean_fixed};

/// The k-means Voronoi partition of a training set.
///
/// Cluster centres are kept in (driver) memory — §4.3.1: "The center of
/// each cluster is calculated and stored in memory." Negative pairs are
/// bucketed per cluster; positive pairs are few (observation 1) and kept as
/// one global batch compared against every test pair. Both sides are stored
/// as struct-of-arrays [`VecBatch`] columns, so every distance scan over a
/// cell runs the tiled vector kernels instead of striding over row structs.
#[derive(Debug, Clone)]
pub struct VoronoiPartition<const D: usize = PAIR_DIMS> {
    /// Cluster centres `p_1 … p_b`.
    pub centers: Vec<[f64; D]>,
    /// Negative training pairs per cluster, one column batch per cell.
    ///
    /// After [`VoronoiPartition::build`], each cell's rows are sorted by
    /// `(distance-to-centre, id)` so the triangle-inequality window scan in
    /// [`crate::prune::scan_cell_pruned`] is a pair of binary searches plus
    /// an early-exit sweep. Resident order within a cell never affects
    /// classification (the neighbourhood is a total-order top-k over the
    /// candidate *set*), so the sort is lossless.
    pub negative_clusters: Vec<VecBatch<D>>,
    /// Per cell, the **linear** distance of each resident to its own centre,
    /// parallel to the (sorted) cell rows — ascending by construction.
    /// Empty cells have empty lists. Maintained by `build`; callers that
    /// assemble a partition by hand (tests) may leave lists empty, which
    /// simply disables windowed pruning for those cells.
    pub center_dists: Vec<Vec<f64>>,
    /// All positive training pairs (global), as one column batch.
    pub positives: VecBatch<D>,
}

/// How many training vectors k-means fits on at most; larger sets are
/// subsampled deterministically (stride sampling) before fitting, then every
/// pair is assigned to its nearest fitted centre. The Voronoi property the
/// correctness argument needs — "each pair is closer to its own centre than
/// to any other" — holds by construction of the assignment step regardless
/// of how centres were obtained.
pub const KMEANS_FIT_CAP: usize = 20_000;

impl<const D: usize> VoronoiPartition<D> {
    /// Partition `train` into `b` Voronoi cells via k-means.
    ///
    /// # Panics
    /// Panics if `train` is empty or `b == 0`.
    pub fn build(train: &[LabeledPair<D>], b: usize, seed: u64) -> Self {
        assert!(!train.is_empty(), "cannot partition an empty training set");
        assert!(b > 0, "cluster number must be positive");
        let mut fit_batch = VecBatch::with_capacity(train.len().min(KMEANS_FIT_CAP + 1));
        if train.len() > KMEANS_FIT_CAP {
            let stride = train.len() / KMEANS_FIT_CAP + 1;
            for p in train.iter().step_by(stride) {
                fit_batch.push(p.id, &p.vector, p.positive);
            }
        } else {
            for p in train {
                fit_batch.push(p.id, &p.vector, p.positive);
            }
        }
        let model = KMeans {
            k: b,
            max_iters: 25,
            tol: 1e-9,
            seed,
        }
        .fit_batch(&fit_batch);
        let b_actual = model.centroids.len();
        // Split the training set by label, then bucket every negative via
        // one fused assign_min sweep (bit-identical to per-row
        // nearest_centroid).
        let mut negatives = VecBatch::with_capacity(train.len());
        let mut positives = VecBatch::new();
        for pair in train {
            if pair.positive {
                positives.push(pair.id, &pair.vector, true);
            } else {
                negatives.push(pair.id, &pair.vector, false);
            }
        }
        let mut assigned: Vec<u32> = Vec::with_capacity(negatives.len());
        let mut d2: Vec<f64> = Vec::with_capacity(negatives.len());
        assign_min(&negatives, &model.centroids, &mut assigned, &mut d2);
        let mut negative_clusters: Vec<VecBatch<D>> = vec![VecBatch::new(); b_actual];
        for i in 0..negatives.len() {
            negative_clusters[assigned[i] as usize].push(negatives.id(i), &negatives.row(i), false);
        }
        let mut partition = VoronoiPartition {
            centers: model.centroids,
            negative_clusters,
            center_dists: Vec::new(),
            positives,
        };
        partition.rebalance();
        partition.sort_cells_by_center_distance();
        partition
    }

    /// Sort each cell's residents by `(distance-to-centre, id)` and record
    /// the sorted linear distances in [`VoronoiPartition::center_dists`].
    ///
    /// Runs after [`VoronoiPartition::rebalance`] so cell *membership* is
    /// untouched — only intra-cell row order changes, which classification
    /// cannot observe (candidate sets per cell are identical and the
    /// neighbourhood top-k is insertion-order-independent).
    fn sort_cells_by_center_distance(&mut self) {
        self.center_dists = Vec::with_capacity(self.negative_clusters.len());
        let mut d2: Vec<f64> = Vec::new();
        let mut idx: Vec<usize> = Vec::new();
        for (cid, cell) in self.negative_clusters.iter_mut().enumerate() {
            distances_to_point(cell, &self.centers[cid], &mut d2);
            idx.clear();
            idx.extend(0..cell.len());
            idx.sort_unstable_by(|&a, &b| {
                d2[a]
                    .total_cmp(&d2[b])
                    .then_with(|| cell.id(a).cmp(&cell.id(b)))
            });
            *cell = cell.gather(&idx);
            self.center_dists
                .push(idx.iter().map(|&i| d2[i].sqrt()).collect());
        }
    }

    /// `(min, max)` resident-to-centre linear distance of a cell, when the
    /// cell is non-empty and its distance metadata is present.
    pub fn cell_radius_bounds(&self, cid: usize) -> Option<(f64, f64)> {
        let cds = self.center_dists.get(cid)?;
        match (cds.first(), cds.last()) {
            (Some(&lo), Some(&hi)) => Some((lo, hi)),
            _ => None,
        }
    }

    /// Split oversized cells into sibling chunks that share a centre.
    ///
    /// Exact-match field distances make pair-vector space a lattice: one
    /// lattice corner can hold 20%+ of all negative pairs, and no k-means
    /// assignment can split coincident points — so one task would dominate
    /// every stage and cap executor scaling (the load-balancing problem the
    /// paper lists as future work). Sibling chunks keep the search exact:
    /// the hyperplane distance between coincident centres is 0, so
    /// Algorithm 1 always selects a probed cell's siblings, and the
    /// all-negative shortcut only ever sees a *larger* k-th distance than
    /// the full cell's (conservative, never wrong).
    fn rebalance(&mut self) {
        let total: usize = self.negative_clusters.iter().map(|c| c.len()).sum();
        if total == 0 {
            return;
        }
        let cap = (2 * total / self.centers.len().max(1)).max(1);
        let mut extra_centers = Vec::new();
        let mut extra_clusters = Vec::new();
        for cid in 0..self.negative_clusters.len() {
            while self.negative_clusters[cid].len() > cap {
                let keep = self.negative_clusters[cid].len()
                    - cap.min(self.negative_clusters[cid].len() / 2);
                let chunk = self.negative_clusters[cid].split_off(keep);
                extra_centers.push(self.centers[cid]);
                extra_clusters.push(chunk);
            }
        }
        self.centers.extend(extra_centers);
        self.negative_clusters.extend(extra_clusters);
    }

    /// Number of clusters.
    pub fn b(&self) -> usize {
        self.centers.len()
    }

    /// Voronoi cell of a query vector (nearest centre).
    pub fn assign(&self, v: &[f64; D]) -> usize {
        nearest_centroid(v, &self.centers).0
    }

    /// Voronoi cell with deterministic tie-spreading: when several centres
    /// are (near-)equidistant — sibling chunks of a rebalanced cell always
    /// are — pick among them by `tiebreak` (e.g. the query's id), spreading
    /// load instead of piling every query onto the first sibling.
    ///
    /// Single pass over the centres: candidates within the tie tolerance of
    /// the *running* minimum are collected as the minimum tightens, then the
    /// survivors against the final minimum (still in index order) are the
    /// tied set — the same set a second full scan would produce.
    pub fn assign_balanced(&self, v: &[f64; D], tiebreak: u64) -> usize {
        const TIE_EPS: f64 = 1e-12;
        let mut best_d2 = f64::INFINITY;
        let mut tied: Vec<(usize, f64)> = Vec::new();
        for (i, c) in self.centers.iter().enumerate() {
            let d2 = squared_euclidean_fixed(v, c);
            if d2 < best_d2 {
                best_d2 = d2;
            }
            if d2 <= best_d2 + TIE_EPS {
                tied.push((i, d2));
            }
        }
        // The running minimum only tightens, so every true tie was admitted;
        // drop candidates the final minimum has since disqualified.
        tied.retain(|&(_, d2)| d2 <= best_d2 + TIE_EPS);
        tied[(tiebreak as usize) % tied.len()].0
    }

    /// [`Self::assign_balanced`] for a whole batch, using each row's id as
    /// its tiebreak. Appends one cell index per row to `out` (cleared
    /// first); `dist_scratch` is a reusable `rows × centers` distance
    /// buffer.
    ///
    /// Per row this is a two-pass scan (min, then tie count) over distances
    /// from the tiled kernel — the same tied set and pick as the single-pass
    /// scalar path (see the `assign_balanced_matches_two_pass_reference`
    /// proptest).
    pub fn assign_balanced_batch(
        &self,
        batch: &VecBatch<D>,
        out: &mut Vec<usize>,
        dist_scratch: &mut Vec<f64>,
    ) {
        const TIE_EPS: f64 = 1e-12;
        let n = batch.len();
        let b = self.centers.len();
        out.clear();
        // Centre-major distance matrix: dist[ci * n + i] = d²(row i, centre
        // ci), each stripe one tiled 1×N kernel sweep.
        dist_scratch.clear();
        dist_scratch.resize(b * n, 0.0);
        let mut stripe: Vec<f64> = Vec::new();
        for (ci, c) in self.centers.iter().enumerate() {
            crate::soa::distances_to_point(batch, c, &mut stripe);
            dist_scratch[ci * n..(ci + 1) * n].copy_from_slice(&stripe);
        }
        for i in 0..n {
            let mut best_d2 = f64::INFINITY;
            for ci in 0..b {
                let d2 = dist_scratch[ci * n + i];
                if d2 < best_d2 {
                    best_d2 = d2;
                }
            }
            let mut tied = 0usize;
            let mut pick = 0usize;
            let want = batch.id(i) as usize;
            for ci in 0..b {
                if dist_scratch[ci * n + i] <= best_d2 + TIE_EPS {
                    tied += 1;
                }
            }
            let idx = want % tied;
            let mut seen = 0usize;
            for ci in 0..b {
                if dist_scratch[ci * n + i] <= best_d2 + TIE_EPS {
                    if seen == idx {
                        pick = ci;
                        break;
                    }
                    seen += 1;
                }
            }
            out.push(pick);
        }
    }

    /// Sizes of the negative clusters.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        self.negative_clusters.iter().map(|c| c.len()).collect()
    }

    /// Minimum **squared** distance from `v` to any positive pair; `+∞`
    /// when there are no positives. Squared on purpose: every consumer
    /// compares it against other squared distances.
    pub fn min_positive_distance_sq(&self, v: &[f64; D]) -> f64 {
        let mut best = f64::INFINITY;
        for i in 0..self.positives.len() {
            best = best.min(squared_euclidean_fixed(v, &self.positives.row(i)));
        }
        best
    }
}

/// Distance from `s` to the hyperplane separating the Voronoi cells of
/// centres `pi` (the cell `s` belongs to) and `pj` — the paper's Eq. 7,
/// after Hjaltason & Samet:
///
/// ```text
/// d(s, h) = (d(s, pj)² − d(s, pi)²) / (2 · d(pi, pj))
/// ```
///
/// Non-negative whenever `s` is genuinely closer to `pi`. This is a linear
/// (not squared) distance — the one place besides Eq. 5 scoring where a
/// square root is taken.
pub fn hyperplane_distance<const D: usize>(s: &[f64; D], pi: &[f64; D], pj: &[f64; D]) -> f64 {
    let dij = euclidean_fixed(pi, pj);
    if dij == 0.0 {
        // Coincident centres: the "hyperplane" is everywhere; no bound.
        return 0.0;
    }
    (squared_euclidean_fixed(s, pj) - squared_euclidean_fixed(s, pi)) / (2.0 * dij)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use simmetrics::{euclidean, squared_euclidean};

    fn make_train() -> Vec<LabeledPair<2>> {
        let mut train = Vec::new();
        // Two negative blobs.
        for i in 0..30 {
            let t = i as f64 * 0.01;
            train.push(LabeledPair::new(i, [t, t], false));
            train.push(LabeledPair::new(100 + i, [8.0 + t, 8.0 - t], false));
        }
        // A few positives near the first blob.
        for i in 0..3 {
            train.push(LabeledPair::new(
                200 + i,
                [0.5 + i as f64 * 0.01, 0.5],
                true,
            ));
        }
        train
    }

    #[test]
    fn build_separates_positives_from_clusters() {
        let vp = VoronoiPartition::build(&make_train(), 2, 42);
        assert_eq!(vp.b(), 2);
        assert_eq!(vp.positives.len(), 3);
        let total_negs: usize = vp.cluster_sizes().iter().sum();
        assert_eq!(total_negs, 60);
    }

    #[test]
    fn voronoi_property_of_assignment() {
        let vp = VoronoiPartition::build(&make_train(), 3, 7);
        for (cid, cluster) in vp.negative_clusters.iter().enumerate() {
            for r in 0..cluster.len() {
                let v = cluster.row(r);
                let own = squared_euclidean(&v, &vp.centers[cid]);
                for (j, c) in vp.centers.iter().enumerate() {
                    if j != cid {
                        assert!(
                            own <= squared_euclidean(&v, c) + 1e-9,
                            "pair {} violates the Voronoi property",
                            cluster.id(r)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn assign_matches_nearest_center() {
        let vp = VoronoiPartition::build(&make_train(), 2, 42);
        let near_blob_a = vp.assign(&[0.1, 0.1]);
        let near_blob_b = vp.assign(&[8.0, 8.0]);
        assert_ne!(near_blob_a, near_blob_b);
    }

    #[test]
    fn assign_balanced_spreads_ties_but_respects_nearest() {
        let vp = VoronoiPartition::build(&make_train(), 2, 42);
        // Unique nearest centre: every tiebreak agrees with assign().
        for tb in 0..8u64 {
            assert_eq!(vp.assign_balanced(&[0.1, 0.1], tb), vp.assign(&[0.1, 0.1]));
        }
        // Duplicated centres (as rebalance produces): ties spread by id.
        let dup = VoronoiPartition::<2> {
            centers: vec![[0.0, 0.0], [0.0, 0.0], [5.0, 5.0]],
            negative_clusters: vec![VecBatch::new(), VecBatch::new(), VecBatch::new()],
            center_dists: Vec::new(),
            positives: VecBatch::new(),
        };
        let a = dup.assign_balanced(&[0.1, 0.0], 0);
        let b = dup.assign_balanced(&[0.1, 0.0], 1);
        assert_ne!(a, b, "coincident centres must spread by tiebreak");
        assert!(a < 2 && b < 2, "never a farther centre");
    }

    #[test]
    fn min_positive_distance_finds_the_closest_positive() {
        let vp = VoronoiPartition::build(&make_train(), 2, 42);
        let d2 = vp.min_positive_distance_sq(&[0.5, 0.5]);
        assert!(d2.sqrt() < 0.05, "got {}", d2.sqrt());
        let none = VoronoiPartition::build(&[LabeledPair::new(0, [0.0], false)], 1, 1);
        assert_eq!(none.min_positive_distance_sq(&[0.0]), f64::INFINITY);
    }

    #[test]
    fn cells_are_sorted_by_center_distance_with_id_tiebreak() {
        let vp = VoronoiPartition::build(&make_train(), 3, 7);
        assert_eq!(vp.center_dists.len(), vp.negative_clusters.len());
        for (cid, cell) in vp.negative_clusters.iter().enumerate() {
            let cds = &vp.center_dists[cid];
            assert_eq!(cds.len(), cell.len());
            for (r, cd) in cds.iter().enumerate() {
                let want = euclidean(&cell.row(r), &vp.centers[cid]);
                assert_eq!(cd.to_bits(), want.to_bits(), "stale distance");
            }
            for w in 0..cell.len().saturating_sub(1) {
                assert!(
                    cds[w] < cds[w + 1] || (cds[w] == cds[w + 1] && cell.id(w) < cell.id(w + 1)),
                    "cell {cid} not sorted by (distance, id) at row {w}"
                );
            }
            if let Some((lo, hi)) = vp.cell_radius_bounds(cid) {
                assert_eq!(lo.to_bits(), cds[0].to_bits());
                assert_eq!(hi.to_bits(), cds[cell.len() - 1].to_bits());
            } else {
                assert!(cell.is_empty());
            }
        }
    }

    #[test]
    fn hyperplane_distance_midpoint_is_zero() {
        let pi = [0.0, 0.0];
        let pj = [2.0, 0.0];
        // The midpoint lies ON the hyperplane.
        assert!(hyperplane_distance(&[1.0, 0.0], &pi, &pj).abs() < 1e-12);
        // A point at pi is 1.0 from the plane.
        assert!((hyperplane_distance(&[0.0, 0.0], &pi, &pj) - 1.0).abs() < 1e-12);
        // Coincident centres degrade gracefully.
        assert_eq!(hyperplane_distance(&[1.0, 1.0], &pi, &pi), 0.0);
    }

    proptest! {
        /// The geometric fact observation 4 relies on: for any point x in
        /// pj's half-space, d(s, x) >= d(s, h).
        #[test]
        fn hyperplane_bound_is_sound(
            s in prop::collection::vec(-5.0f64..5.0, 2),
            x in prop::collection::vec(-5.0f64..5.0, 2),
        ) {
            let s: [f64; 2] = s.try_into().unwrap();
            let x: [f64; 2] = x.try_into().unwrap();
            let pi = [-1.0, 0.0];
            let pj = [1.0, 0.0];
            // Only test when s is in pi's cell and x in pj's cell.
            prop_assume!(squared_euclidean(&s, &pi) < squared_euclidean(&s, &pj));
            prop_assume!(squared_euclidean(&x, &pj) <= squared_euclidean(&x, &pi));
            let bound = hyperplane_distance(&s, &pi, &pj);
            prop_assert!(euclidean(&s, &x) >= bound - 1e-9,
                "point {:?} beats the hyperplane bound {bound}", x);
        }

        /// The single-pass tie collection matches a naive two-pass scan.
        #[test]
        fn assign_balanced_matches_two_pass_reference(
            centers in prop::collection::vec(
                prop::collection::vec(0.0f64..1.0, 2), 1..12),
            v in prop::collection::vec(0.0f64..1.0, 2),
            tiebreak in 0u64..100,
        ) {
            let centers: Vec<[f64; 2]> =
                centers.into_iter().map(|c| c.try_into().unwrap()).collect();
            let v: [f64; 2] = v.try_into().unwrap();
            let vp = VoronoiPartition::<2> {
                negative_clusters: vec![VecBatch::new(); centers.len()],
                center_dists: Vec::new(),
                positives: VecBatch::new(),
                centers,
            };
            let best = vp
                .centers
                .iter()
                .map(|c| squared_euclidean(&v, c))
                .fold(f64::INFINITY, f64::min);
            let tied: Vec<usize> = vp
                .centers
                .iter()
                .enumerate()
                .filter(|(_, c)| squared_euclidean(&v, *c) <= best + 1e-12)
                .map(|(i, _)| i)
                .collect();
            let expect = tied[(tiebreak as usize) % tied.len()];
            prop_assert_eq!(vp.assign_balanced(&v, tiebreak), expect);
        }

        /// The batched assignment agrees with the scalar per-row path.
        #[test]
        fn assign_balanced_batch_matches_scalar(
            centers in prop::collection::vec(
                prop::collection::vec(0.0f64..1.0, 2), 1..10),
            rows in prop::collection::vec(
                (prop::collection::vec(0.0f64..1.0, 2), 0u64..50), 0..40),
        ) {
            let centers: Vec<[f64; 2]> =
                centers.into_iter().map(|c| c.try_into().unwrap()).collect();
            let vp = VoronoiPartition::<2> {
                negative_clusters: vec![VecBatch::new(); centers.len()],
                center_dists: Vec::new(),
                positives: VecBatch::new(),
                centers,
            };
            let mut batch = VecBatch::<2>::new();
            for (v, id) in &rows {
                let v: [f64; 2] = v.clone().try_into().unwrap();
                batch.push(*id, &v, false);
            }
            let mut out = Vec::new();
            let mut scratch = Vec::new();
            vp.assign_balanced_batch(&batch, &mut out, &mut scratch);
            prop_assert_eq!(out.len(), rows.len());
            for (i, (v, id)) in rows.iter().enumerate() {
                let v: [f64; 2] = v.clone().try_into().unwrap();
                prop_assert_eq!(out[i], vp.assign_balanced(&v, *id));
            }
        }
    }
}
