//! Inverse-distance scoring — the paper's Eqs. 5 and 6.
//!
//! Eq. 5 normalises each neighbour's vote by its distance so the few
//! positives are not drowned by the sheer count of negatives:
//!
//! ```text
//! score_s = Σ_{t ∈ knn⁺} 1/d(s,t)  −  Σ_{t ∈ knn⁻} 1/d(s,t)
//! ```
//!
//! Eq. 6 assigns `+1` when `score_s ≥ θ`.
//!
//! Neighbourhoods carry **squared** distances (candidate generation never
//! needs the root); Eq. 5 votes are inverse *linear* distances, so this is
//! the boundary where the square root is finally taken — once per retained
//! neighbour instead of once per candidate comparison.

use crate::types::Neighborhood;

/// Stabiliser added to distances before inversion so exact matches
/// (distance 0) produce a large-but-finite vote.
pub const SCORE_EPS: f64 = 1e-9;

/// Eq. 5 over a neighbourhood.
pub fn score_neighbors(n: &Neighborhood) -> f64 {
    n.entries
        .iter()
        .map(|(d_sq, _, positive)| {
            let vote = 1.0 / (d_sq.sqrt() + SCORE_EPS);
            if *positive {
                vote
            } else {
                -vote
            }
        })
        .sum()
}

/// Eq. 6: threshold the score.
pub fn label_for(score: f64, theta: f64) -> bool {
    score >= theta
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Build a neighbourhood from *linear* distances (squared on insert).
    fn hood(entries: &[(f64, bool)]) -> Neighborhood {
        let mut n = Neighborhood::new(entries.len().max(1));
        for (i, (d, p)) in entries.iter().enumerate() {
            n.push_sq(d * d, i as u64, *p);
        }
        n
    }

    #[test]
    fn close_positive_outweighs_far_negatives() {
        // One positive at 0.1 vs four negatives at 1.0: majority vote says
        // negative, Eq. 5 says positive. This is the paper's point.
        let n = hood(&[
            (0.1, true),
            (1.0, false),
            (1.0, false),
            (1.0, false),
            (1.0, false),
        ]);
        assert!(score_neighbors(&n) > 0.0);
    }

    #[test]
    fn equidistant_neighbors_reduce_to_vote_counting() {
        let n = hood(&[(0.5, true), (0.5, false), (0.5, false)]);
        assert!(score_neighbors(&n) < 0.0);
        let n = hood(&[(0.5, true), (0.5, true), (0.5, false)]);
        assert!(score_neighbors(&n) > 0.0);
    }

    #[test]
    fn zero_distance_does_not_blow_up() {
        let n = hood(&[(0.0, true)]);
        let s = score_neighbors(&n);
        assert!(s.is_finite());
        assert!(s > 1e6);
    }

    #[test]
    fn empty_neighborhood_scores_zero() {
        let n = Neighborhood::new(3);
        assert_eq!(score_neighbors(&n), 0.0);
    }

    #[test]
    fn labeling_respects_theta() {
        assert!(label_for(0.5, 0.0));
        assert!(label_for(0.0, 0.0));
        assert!(!label_for(-0.1, 0.0));
        assert!(!label_for(0.5, 1.0));
    }

    proptest! {
        #[test]
        fn all_negative_neighborhoods_never_score_positive(
            ds in prop::collection::vec(0.0f64..10.0, 1..10),
        ) {
            let entries: Vec<(f64, bool)> = ds.iter().map(|d| (*d, false)).collect();
            prop_assert!(score_neighbors(&hood(&entries)) < 0.0);
        }

        #[test]
        fn score_is_antisymmetric_in_labels(
            ds in prop::collection::vec(0.01f64..10.0, 1..10),
        ) {
            let pos: Vec<(f64, bool)> = ds.iter().map(|d| (*d, true)).collect();
            let neg: Vec<(f64, bool)> = ds.iter().map(|d| (*d, false)).collect();
            let sp = score_neighbors(&hood(&pos));
            let sn = score_neighbors(&hood(&neg));
            prop_assert!((sp + sn).abs() < 1e-9);
        }

        #[test]
        fn moving_a_positive_closer_never_lowers_the_score(
            d in 0.1f64..5.0, shift in 0.01f64..0.09,
        ) {
            let far = hood(&[(d, true), (1.0, false)]);
            let near = hood(&[(d - shift, true), (1.0, false)]);
            prop_assert!(score_neighbors(&near) >= score_neighbors(&far));
        }
    }
}
