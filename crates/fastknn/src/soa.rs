//! SoA batches of training/test pairs and the batch-classification scratch
//! arena.
//!
//! The column layout and tiled kernels live in [`simmetrics::soa`] (they are
//! schema-agnostic and k-means needs them too); this module re-exports them
//! and adds what is specific to the classifier:
//!
//! * conversions between [`LabeledPair`] / [`UnlabeledPair`] rows and
//!   [`VecBatch`] columns;
//! * [`ClassifyScratch`], the reusable buffer set that makes
//!   [`crate::serial::classify_batch`] allocation-free after warm-up;
//! * [`ScratchPool`], a lock-guarded arena handing one scratch per running
//!   task to the shared `Fn` closures of the distributed classifier.

pub use simmetrics::soa::{
    assign_min, distances_block, distances_to_point, distances_to_point_range, VecBatch, TILE_COLS,
    TILE_ROWS,
};

use crate::types::{LabeledPair, Neighborhood, UnlabeledPair};
use std::sync::Mutex;

/// Pack labelled pairs into a column batch (row order preserved).
pub fn from_labeled<const D: usize>(pairs: &[LabeledPair<D>]) -> VecBatch<D> {
    let mut batch = VecBatch::with_capacity(pairs.len());
    for p in pairs {
        batch.push(p.id, &p.vector, p.positive);
    }
    batch
}

/// Pack unlabelled (test) pairs into a column batch (row order preserved).
pub fn from_unlabeled<const D: usize>(pairs: &[UnlabeledPair<D>]) -> VecBatch<D> {
    let mut batch = VecBatch::with_capacity(pairs.len());
    for p in pairs {
        batch.push(p.id, &p.vector, false);
    }
    batch
}

/// Unpack a batch back into labelled rows.
pub fn to_labeled<const D: usize>(batch: &VecBatch<D>) -> Vec<LabeledPair<D>> {
    (0..batch.len())
        .map(|i| LabeledPair::new(batch.id(i), batch.row(i), batch.label(i)))
        .collect()
}

/// Unpack a batch back into unlabelled rows (labels dropped).
pub fn to_unlabeled<const D: usize>(batch: &VecBatch<D>) -> Vec<UnlabeledPair<D>> {
    (0..batch.len())
        .map(|i| UnlabeledPair::new(batch.id(i), batch.row(i)))
        .collect()
}

/// Reusable buffers for one in-flight batch classification.
///
/// Every `Vec` here only ever grows to the workload's high-water mark; a
/// warm scratch makes [`crate::serial::classify_batch`] allocation-free
/// (pinned by the `zero_alloc` integration test).
#[derive(Debug, Default)]
pub struct ClassifyScratch<const D: usize> {
    /// The test pair's working neighbourhood (reset per test, capacity
    /// retained).
    pub hood: Neighborhood,
    /// Squared distances to the current candidate cluster.
    pub dists: Vec<f64>,
    /// Squared distances to the global positive set.
    pub pos_dists: Vec<f64>,
    /// Algorithm 1 output buffer (additional cluster indices).
    pub extra: Vec<usize>,
}

/// A pool of [`ClassifyScratch`] instances shared by the distributed
/// classifier's task closures.
///
/// Engine closures are `Fn` (shared across worker threads), so they cannot
/// own a `&mut` scratch; and `thread_local!` cannot be generic over `D`.
/// Pop-use-push through a mutex costs two uncontended lock operations per
/// *task* — noise next to the task's O(tests × candidates) kernel work —
/// and buffers stay warm across tasks and jobs.
#[derive(Debug, Default)]
pub struct ScratchPool<const D: usize> {
    pool: Mutex<Vec<ClassifyScratch<D>>>,
}

impl<const D: usize> ScratchPool<D> {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f` with a scratch popped from the pool (or a fresh one), then
    /// return the scratch for reuse.
    pub fn with<R>(&self, f: impl FnOnce(&mut ClassifyScratch<D>) -> R) -> R {
        let mut scratch = self
            .pool
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default();
        let out = f(&mut scratch);
        self.pool
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_round_trip() {
        let pairs: Vec<LabeledPair<3>> = (0..17)
            .map(|i| LabeledPair::new(i, [i as f64, -(i as f64), 0.5], i % 3 == 0))
            .collect();
        let batch = from_labeled(&pairs);
        assert_eq!(batch.len(), pairs.len());
        assert_eq!(to_labeled(&batch), pairs);
    }

    #[test]
    fn unlabeled_round_trip() {
        let pairs: Vec<UnlabeledPair<2>> = (0..9)
            .map(|i| UnlabeledPair::new(100 + i, [0.25 * i as f64, 1.0]))
            .collect();
        let batch = from_unlabeled(&pairs);
        assert_eq!(to_unlabeled(&batch), pairs);
    }

    #[test]
    fn scratch_pool_reuses_buffers() {
        let pool = ScratchPool::<4>::new();
        pool.with(|s| {
            s.dists.resize(1000, 0.0);
            s.hood.reset(5);
        });
        // The same (warm) scratch comes back: capacity survives.
        pool.with(|s| {
            assert!(s.dists.capacity() >= 1000);
            assert_eq!(s.hood.k, 5);
        });
    }

    #[test]
    fn nested_pool_use_hands_out_distinct_scratches() {
        let pool = ScratchPool::<2>::new();
        pool.with(|outer| {
            outer.extra.push(7);
            pool.with(|inner| {
                assert!(inner.extra.is_empty(), "must not alias the outer scratch");
            });
            assert_eq!(outer.extra, vec![7]);
        });
    }
}
