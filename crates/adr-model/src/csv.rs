//! Delimited-text serialization of ADR reports.
//!
//! Regulator extracts arrive as delimited text. This codec round-trips the
//! full 37-field schema: one header line, one record per line, fields
//! pipe-separated with `\`-escaping (real narratives contain commas and
//! quotes far too often for naive CSV).

use crate::report::{AdrReport, Sex};

/// Field delimiter.
pub const DELIMITER: char = '|';

/// Serialize the header line (37 field names, schema order).
pub fn header() -> String {
    [
        "case_number",
        "report_date",
        "calculated_age",
        "sex",
        "weight_code",
        "ethnicity_code",
        "residential_state",
        "onset_date",
        "date_of_outcome",
        "reaction_outcome_code",
        "reaction_outcome_description",
        "severity_code",
        "severity_description",
        "report_description",
        "treatment_text",
        "hospitalisation_code",
        "hospitalisation_description",
        "meddra_llt_code",
        "llt_name",
        "meddra_pt_code",
        "pt_name",
        "suspect_code",
        "suspect_description",
        "trade_name_code",
        "trade_name_description",
        "generic_name_code",
        "generic_name_description",
        "dosage_amount",
        "unit_proportion_code",
        "dosage_form_code",
        "dosage_form_description",
        "route_of_administration_code",
        "route_of_administration_description",
        "dosage_start_date",
        "dosage_halt_date",
        "reporter_type",
        "report_type_description",
    ]
    .join("|")
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\p"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('p') => out.push('|'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(ch);
        }
    }
    out
}

fn opt(s: &Option<String>) -> String {
    s.as_deref().map(escape).unwrap_or_default()
}

fn parse_opt(s: &str) -> Option<String> {
    if s.is_empty() {
        None
    } else {
        Some(unescape(s))
    }
}

/// Serialize one report to a record line (no trailing newline). The report
/// id is positional (line number), not stored.
#[allow(clippy::vec_init_then_push)] // one push per schema field reads best
pub fn to_line(r: &AdrReport) -> String {
    let mut fields: Vec<String> = Vec::with_capacity(37);
    fields.push(escape(&r.case.case_number));
    fields.push(opt(&r.case.report_date));
    fields.push(
        r.patient
            .calculated_age
            .map(|a| a.to_string())
            .unwrap_or_default(),
    );
    fields.push(
        r.patient
            .sex
            .map(|s| s.as_str().to_string())
            .unwrap_or_default(),
    );
    fields.push(opt(&r.patient.weight_code));
    fields.push(opt(&r.patient.ethnicity_code));
    fields.push(opt(&r.patient.residential_state));
    fields.push(opt(&r.reaction.onset_date));
    fields.push(opt(&r.reaction.date_of_outcome));
    fields.push(opt(&r.reaction.reaction_outcome_code));
    fields.push(opt(&r.reaction.reaction_outcome_description));
    fields.push(opt(&r.reaction.severity_code));
    fields.push(opt(&r.reaction.severity_description));
    fields.push(escape(&r.reaction.report_description));
    fields.push(opt(&r.reaction.treatment_text));
    fields.push(opt(&r.reaction.hospitalisation_code));
    fields.push(opt(&r.reaction.hospitalisation_description));
    fields.push(opt(&r.reaction.meddra_llt_code));
    fields.push(opt(&r.reaction.llt_name));
    fields.push(escape(&r.reaction.meddra_pt_code));
    fields.push(opt(&r.reaction.pt_name));
    fields.push(opt(&r.medicine.suspect_code));
    fields.push(opt(&r.medicine.suspect_description));
    fields.push(opt(&r.medicine.trade_name_code));
    fields.push(opt(&r.medicine.trade_name_description));
    fields.push(opt(&r.medicine.generic_name_code));
    fields.push(escape(&r.medicine.generic_name_description));
    fields.push(opt(&r.medicine.dosage_amount));
    fields.push(opt(&r.medicine.unit_proportion_code));
    fields.push(opt(&r.medicine.dosage_form_code));
    fields.push(opt(&r.medicine.dosage_form_description));
    fields.push(opt(&r.medicine.route_of_administration_code));
    fields.push(opt(&r.medicine.route_of_administration_description));
    fields.push(opt(&r.medicine.dosage_start_date));
    fields.push(opt(&r.medicine.dosage_halt_date));
    fields.push(opt(&r.reporter.reporter_type));
    fields.push(opt(&r.reporter.report_type_description));
    fields.join("|")
}

/// Parse errors from [`from_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Wrong field count.
    FieldCount {
        /// Fields found.
        found: usize,
    },
    /// Unparseable age value.
    BadAge(String),
    /// Unknown sex code.
    BadSex(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::FieldCount { found } => {
                write!(f, "expected 37 fields, found {found}")
            }
            ParseError::BadAge(s) => write!(f, "unparseable age {s:?}"),
            ParseError::BadSex(s) => write!(f, "unknown sex code {s:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Split a record line on unescaped delimiters.
fn split_fields(line: &str) -> Vec<String> {
    let mut fields = Vec::with_capacity(37);
    let mut cur = String::new();
    let mut escaped = false;
    for ch in line.chars() {
        if escaped {
            cur.push('\\');
            cur.push(ch);
            escaped = false;
        } else if ch == '\\' {
            escaped = true;
        } else if ch == DELIMITER {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(ch);
        }
    }
    if escaped {
        cur.push('\\');
    }
    fields.push(cur);
    fields
}

/// Parse one record line back into a report with the given id.
pub fn from_line(line: &str, id: u64) -> Result<AdrReport, ParseError> {
    let raw = split_fields(line);
    if raw.len() != 37 {
        return Err(ParseError::FieldCount { found: raw.len() });
    }
    let mut r = AdrReport {
        id,
        ..AdrReport::default()
    };
    r.case.case_number = unescape(&raw[0]);
    r.case.report_date = parse_opt(&raw[1]);
    r.patient.calculated_age = if raw[2].is_empty() {
        None
    } else {
        Some(
            raw[2]
                .parse::<f64>()
                .map_err(|_| ParseError::BadAge(raw[2].clone()))?,
        )
    };
    r.patient.sex = match raw[3].as_str() {
        "" => None,
        "M" => Some(Sex::M),
        "F" => Some(Sex::F),
        "-" => Some(Sex::Unknown),
        other => return Err(ParseError::BadSex(other.to_string())),
    };
    r.patient.weight_code = parse_opt(&raw[4]);
    r.patient.ethnicity_code = parse_opt(&raw[5]);
    r.patient.residential_state = parse_opt(&raw[6]);
    r.reaction.onset_date = parse_opt(&raw[7]);
    r.reaction.date_of_outcome = parse_opt(&raw[8]);
    r.reaction.reaction_outcome_code = parse_opt(&raw[9]);
    r.reaction.reaction_outcome_description = parse_opt(&raw[10]);
    r.reaction.severity_code = parse_opt(&raw[11]);
    r.reaction.severity_description = parse_opt(&raw[12]);
    r.reaction.report_description = unescape(&raw[13]);
    r.reaction.treatment_text = parse_opt(&raw[14]);
    r.reaction.hospitalisation_code = parse_opt(&raw[15]);
    r.reaction.hospitalisation_description = parse_opt(&raw[16]);
    r.reaction.meddra_llt_code = parse_opt(&raw[17]);
    r.reaction.llt_name = parse_opt(&raw[18]);
    r.reaction.meddra_pt_code = unescape(&raw[19]);
    r.reaction.pt_name = parse_opt(&raw[20]);
    r.medicine.suspect_code = parse_opt(&raw[21]);
    r.medicine.suspect_description = parse_opt(&raw[22]);
    r.medicine.trade_name_code = parse_opt(&raw[23]);
    r.medicine.trade_name_description = parse_opt(&raw[24]);
    r.medicine.generic_name_code = parse_opt(&raw[25]);
    r.medicine.generic_name_description = unescape(&raw[26]);
    r.medicine.dosage_amount = parse_opt(&raw[27]);
    r.medicine.unit_proportion_code = parse_opt(&raw[28]);
    r.medicine.dosage_form_code = parse_opt(&raw[29]);
    r.medicine.dosage_form_description = parse_opt(&raw[30]);
    r.medicine.route_of_administration_code = parse_opt(&raw[31]);
    r.medicine.route_of_administration_description = parse_opt(&raw[32]);
    r.medicine.dosage_start_date = parse_opt(&raw[33]);
    r.medicine.dosage_halt_date = parse_opt(&raw[34]);
    r.reporter.reporter_type = parse_opt(&raw[35]);
    r.reporter.report_type_description = parse_opt(&raw[36]);
    Ok(r)
}

/// Serialize a batch of reports to a document (header + records).
pub fn to_document(reports: &[AdrReport]) -> String {
    let mut out = String::new();
    out.push_str(&header());
    out.push('\n');
    for r in reports {
        out.push_str(&to_line(r));
        out.push('\n');
    }
    out
}

/// Parse a whole document (header line is validated and skipped); ids are
/// assigned by record position.
pub fn from_document(doc: &str) -> Result<Vec<AdrReport>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in doc.lines().enumerate() {
        if i == 0 {
            let found = line.split(DELIMITER).count();
            if found != 37 {
                return Err(ParseError::FieldCount { found });
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        out.push(from_line(line, (i - 1) as u64)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_report() -> AdrReport {
        let mut r = AdrReport {
            id: 0,
            ..AdrReport::default()
        };
        r.case.case_number = "CASE-2013-000123".into();
        r.patient.calculated_age = Some(46.0);
        r.patient.sex = Some(Sex::M);
        r.patient.residential_state = Some("NSW".into());
        r.reaction.onset_date = Some("30/04/2013 00:00:00".into());
        r.reaction.reaction_outcome_description = Some("Recovered".into());
        r.reaction.report_description =
            "Patient experienced rhabdomyolysis | myalgia.\nSee notes.".into();
        r.reaction.meddra_pt_code = "Rhabdomyolysis,Myalgia".into();
        r.medicine.generic_name_description = "Atorvastatin".into();
        r.reporter.reporter_type = Some("Consumer".into());
        r
    }

    #[test]
    fn header_has_37_fields() {
        assert_eq!(header().split('|').count(), 37);
    }

    #[test]
    fn line_roundtrip_preserves_everything() {
        let r = sample_report();
        let parsed = from_line(&to_line(&r), 0).expect("parse");
        assert_eq!(parsed, r);
    }

    #[test]
    fn escaping_handles_delimiters_and_newlines() {
        let mut r = sample_report();
        r.reaction.report_description = "a|b\\c\nd\re".into();
        let line = to_line(&r);
        assert!(!line.contains('\n'), "record must be one line");
        let parsed = from_line(&line, 0).expect("parse");
        assert_eq!(parsed.reaction.report_description, "a|b\\c\nd\re");
    }

    #[test]
    fn document_roundtrip_with_synthetic_corpus() {
        let ds = adr_synth_corpus();
        let doc = to_document(&ds);
        let parsed = from_document(&doc).expect("parse");
        assert_eq!(parsed.len(), ds.len());
        for (a, b) in ds.iter().zip(&parsed) {
            assert_eq!(a, b);
        }
    }

    // A tiny deterministic corpus without depending on adr-synth (which
    // would be a dependency cycle): permuted sample reports.
    fn adr_synth_corpus() -> Vec<AdrReport> {
        (0..25u64)
            .map(|i| {
                let mut r = sample_report();
                r.id = i;
                r.case.case_number = format!("CASE-{i:06}");
                r.patient.calculated_age = if i % 5 == 0 { None } else { Some(i as f64) };
                r.patient.sex = match i % 3 {
                    0 => None,
                    1 => Some(Sex::F),
                    _ => Some(Sex::Unknown),
                };
                r.reaction.report_description = format!("narrative #{i} with | pipe");
                r
            })
            .collect()
    }

    #[test]
    fn wrong_field_count_is_an_error() {
        assert_eq!(
            from_line("a|b|c", 0),
            Err(ParseError::FieldCount { found: 3 })
        );
    }

    #[test]
    fn bad_values_are_errors_not_panics() {
        let mut fields = vec![String::new(); 37];
        fields[2] = "not-a-number".into();
        let line = fields.join("|");
        assert!(matches!(from_line(&line, 0), Err(ParseError::BadAge(_))));
        let mut fields = vec![String::new(); 37];
        fields[3] = "X".into();
        let line = fields.join("|");
        assert!(matches!(from_line(&line, 0), Err(ParseError::BadSex(_))));
    }

    proptest! {
        #[test]
        fn narrative_roundtrip_any_text(s in ".{0,120}") {
            let mut r = sample_report();
            r.reaction.report_description = s.clone();
            // Normalise: the codec collapses \r\n handling per-char, it
            // must still round-trip every char exactly.
            let parsed = from_line(&to_line(&r), 0).expect("parse");
            prop_assert_eq!(parsed.reaction.report_description, s);
        }
    }
}
