//! Report pairs and duplicate labels.

use crate::report::ReportId;
use serde::{Deserialize, Serialize};

/// Canonical identifier of an unordered report pair: always `(lo, hi)` with
/// `lo < hi`, so `(a, b)` and `(b, a)` compare equal and hash together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PairId {
    /// Smaller report id.
    pub lo: ReportId,
    /// Larger report id.
    pub hi: ReportId,
}

impl PairId {
    /// Build the canonical pair id.
    ///
    /// # Panics
    /// Panics if `a == b` — a report is never paired with itself.
    pub fn new(a: ReportId, b: ReportId) -> Self {
        assert_ne!(a, b, "a report cannot pair with itself");
        if a < b {
            PairId { lo: a, hi: b }
        } else {
            PairId { lo: b, hi: a }
        }
    }

    /// Does this pair involve report `id`?
    pub fn contains(&self, id: ReportId) -> bool {
        self.lo == id || self.hi == id
    }
}

/// Ground-truth / predicted label of a report pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PairLabel {
    /// The two reports describe the same case (+1 in the paper's Eq. 1).
    Duplicate,
    /// Distinct cases (−1).
    NonDuplicate,
}

impl PairLabel {
    /// The ±1 encoding used in Eqs. 1, 5, 6.
    pub fn sign(&self) -> i8 {
        match self {
            PairLabel::Duplicate => 1,
            PairLabel::NonDuplicate => -1,
        }
    }

    /// Is this the positive (duplicate) class?
    pub fn is_positive(&self) -> bool {
        matches!(self, PairLabel::Duplicate)
    }
}

/// A labelled report pair as stored in the training databases of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReportPair {
    /// Canonical pair id.
    pub id: PairId,
    /// Ground-truth label.
    pub label: PairLabel,
}

impl ReportPair {
    /// Construct a labelled pair.
    pub fn new(a: ReportId, b: ReportId, label: PairLabel) -> Self {
        ReportPair {
            id: PairId::new(a, b),
            label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pair_id_is_canonical() {
        assert_eq!(PairId::new(3, 7), PairId::new(7, 3));
        let p = PairId::new(9, 2);
        assert_eq!((p.lo, p.hi), (2, 9));
    }

    #[test]
    #[should_panic(expected = "cannot pair with itself")]
    fn self_pair_rejected() {
        let _ = PairId::new(5, 5);
    }

    #[test]
    fn contains_checks_both_ends() {
        let p = PairId::new(1, 4);
        assert!(p.contains(1));
        assert!(p.contains(4));
        assert!(!p.contains(2));
    }

    #[test]
    fn label_signs() {
        assert_eq!(PairLabel::Duplicate.sign(), 1);
        assert_eq!(PairLabel::NonDuplicate.sign(), -1);
        assert!(PairLabel::Duplicate.is_positive());
        assert!(!PairLabel::NonDuplicate.is_positive());
    }

    proptest! {
        #[test]
        fn canonicalisation_is_order_insensitive(a in 0u64..1000, b in 0u64..1000) {
            prop_assume!(a != b);
            prop_assert_eq!(PairId::new(a, b), PairId::new(b, a));
            let p = PairId::new(a, b);
            prop_assert!(p.lo < p.hi);
        }
    }
}
