//! The ADR report record, mirroring the TGA schema of the paper's Table 2.

use serde::{Deserialize, Serialize};

/// Stable report identifier (assignment order = arrival order at the
/// regulator, which §3 uses to orient pair comparisons).
pub type ReportId = u64;

/// Patient sex as recorded on the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sex {
    /// Male.
    M,
    /// Female.
    F,
    /// Not recorded / unknown.
    Unknown,
}

impl Sex {
    /// Categorical code used in field comparison.
    pub fn as_str(&self) -> &'static str {
        match self {
            Sex::M => "M",
            Sex::F => "F",
            Sex::Unknown => "-",
        }
    }
}

/// Case-details section (2 fields).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CaseDetails {
    /// Regulator case number.
    pub case_number: String,
    /// Date the report reached the regulator.
    pub report_date: Option<String>,
}

/// Patient-details section (5 fields).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PatientDetails {
    /// Age computed from date of birth at onset ("calculated age").
    pub calculated_age: Option<f64>,
    /// Patient sex.
    pub sex: Option<Sex>,
    /// Weight band code.
    pub weight_code: Option<String>,
    /// Ethnicity code.
    pub ethnicity_code: Option<String>,
    /// Australian state/territory of residence.
    pub residential_state: Option<String>,
}

/// Reaction-information section (14 fields).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReactionInfo {
    /// Date the reaction began.
    pub onset_date: Option<String>,
    /// Date of the final outcome.
    pub date_of_outcome: Option<String>,
    /// Coded reaction outcome.
    pub reaction_outcome_code: Option<String>,
    /// Outcome description ("Recovered", "Unknown", …).
    pub reaction_outcome_description: Option<String>,
    /// Severity code.
    pub severity_code: Option<String>,
    /// Severity description.
    pub severity_description: Option<String>,
    /// Free-text narrative — the long field §4.2 singles out.
    pub report_description: String,
    /// Free-text treatment notes.
    pub treatment_text: Option<String>,
    /// Hospitalisation code.
    pub hospitalisation_code: Option<String>,
    /// Hospitalisation description.
    pub hospitalisation_description: Option<String>,
    /// MedDRA Low Level Term code.
    pub meddra_llt_code: Option<String>,
    /// MedDRA Low Level Term name.
    pub llt_name: Option<String>,
    /// MedDRA Preferred Term code(s), comma-joined — the "ADR name" field.
    pub meddra_pt_code: String,
    /// MedDRA Preferred Term name(s).
    pub pt_name: Option<String>,
}

/// Medicine-information section (14 fields).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MedicineInfo {
    /// Suspect-medicine flag code.
    pub suspect_code: Option<String>,
    /// Suspect-medicine description.
    pub suspect_description: Option<String>,
    /// Trade name code.
    pub trade_name_code: Option<String>,
    /// Trade name description.
    pub trade_name_description: Option<String>,
    /// Generic name code.
    pub generic_name_code: Option<String>,
    /// Generic (INN) drug name(s), comma-joined — the "drug name" field.
    pub generic_name_description: String,
    /// Dose amount.
    pub dosage_amount: Option<String>,
    /// Unit / proportion code.
    pub unit_proportion_code: Option<String>,
    /// Dosage form code.
    pub dosage_form_code: Option<String>,
    /// Dosage form description.
    pub dosage_form_description: Option<String>,
    /// Route of administration code.
    pub route_of_administration_code: Option<String>,
    /// Route of administration description.
    pub route_of_administration_description: Option<String>,
    /// Therapy start date.
    pub dosage_start_date: Option<String>,
    /// Therapy halt date.
    pub dosage_halt_date: Option<String>,
}

/// Reporter-details section (2 fields).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReporterDetails {
    /// Who reported (GP, pharmacist, consumer, company, hospital, …).
    pub reporter_type: Option<String>,
    /// Report type description (initial, follow-up, literature, …).
    pub report_type_description: Option<String>,
}

/// One adverse-drug-reaction report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdrReport {
    /// Stable identifier within the database (arrival order).
    pub id: ReportId,
    /// Case-details section.
    pub case: CaseDetails,
    /// Patient-details section.
    pub patient: PatientDetails,
    /// Reaction-information section.
    pub reaction: ReactionInfo,
    /// Medicine-information section.
    pub medicine: MedicineInfo,
    /// Reporter-details section.
    pub reporter: ReporterDetails,
}

impl AdrReport {
    /// Number of schema fields per report (Table 3 of the paper: 37).
    pub const FIELD_COUNT: usize = 2 + 5 + 14 + 14 + 2;

    /// Drug names as individual tokens (field is comma-joined).
    pub fn drug_names(&self) -> Vec<&str> {
        split_joined(&self.medicine.generic_name_description)
    }

    /// ADR (MedDRA PT) names as individual tokens (field is comma-joined).
    pub fn adr_names(&self) -> Vec<&str> {
        split_joined(&self.reaction.meddra_pt_code)
    }
}

fn split_joined(s: &str) -> Vec<&str> {
    s.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_count_matches_table3() {
        assert_eq!(AdrReport::FIELD_COUNT, 37);
    }

    #[test]
    fn drug_and_adr_names_split_on_commas() {
        let mut r = AdrReport::default();
        r.medicine.generic_name_description = "Influenza Vaccine,Dtpa Vaccine".into();
        r.reaction.meddra_pt_code = "Vomiting, Pyrexia ,Cough,".into();
        assert_eq!(r.drug_names(), vec!["Influenza Vaccine", "Dtpa Vaccine"]);
        assert_eq!(r.adr_names(), vec!["Vomiting", "Pyrexia", "Cough"]);
    }

    #[test]
    fn empty_joined_fields_yield_no_tokens() {
        let r = AdrReport::default();
        assert!(r.drug_names().is_empty());
        assert!(r.adr_names().is_empty());
    }

    #[test]
    fn sex_codes() {
        assert_eq!(Sex::M.as_str(), "M");
        assert_eq!(Sex::F.as_str(), "F");
        assert_eq!(Sex::Unknown.as_str(), "-");
    }

    #[test]
    fn reports_are_comparable_and_cloneable() {
        let a = AdrReport {
            id: 3,
            ..AdrReport::default()
        };
        let b = a.clone();
        assert_eq!(a, b);
    }
}
