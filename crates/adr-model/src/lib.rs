//! # adr-model — the adverse-drug-reaction report schema
//!
//! Typed representation of a TGA-style ADR report (the 37 fields of the
//! paper's Table 2), the subset of fields used for duplicate detection, and
//! report pairs with ground-truth labels.

pub mod csv;
pub mod fields;
pub mod pairs;
pub mod report;

pub use fields::{DetectionField, DistVec, FieldValue, DETECTION_DIMS, DETECTION_FIELDS};
pub use pairs::{PairId, PairLabel, ReportPair};
pub use report::{AdrReport, ReportId, Sex};
