//! The detection-field subset (bold rows of the paper's Table 2) and typed
//! field values.

use crate::report::AdrReport;
use serde::{Deserialize, Serialize};

/// The eight fields §4.2 selects for duplicate detection, following the WHO
/// system of Norén et al.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectionField {
    /// Patient age ("calculated age") — numeric.
    Age,
    /// Patient sex — categorical.
    Sex,
    /// Residential state — categorical.
    State,
    /// Onset date — categorical (exact-match).
    OnsetDate,
    /// Reaction outcome description — categorical.
    OutcomeDescription,
    /// Drug name ("generic name description") — string.
    DrugName,
    /// ADR name ("MedDRA PT code") — string.
    AdrName,
    /// Free-text narrative ("report description") — string, NLP-processed.
    ReportDescription,
}

/// All detection fields in the order the distance vector uses.
pub const DETECTION_FIELDS: [DetectionField; 8] = [
    DetectionField::Age,
    DetectionField::Sex,
    DetectionField::State,
    DetectionField::OnsetDate,
    DetectionField::OutcomeDescription,
    DetectionField::DrugName,
    DetectionField::AdrName,
    DetectionField::ReportDescription,
];

/// Number of detection fields = dimensionality of pair distance vectors.
pub const DETECTION_DIMS: usize = DETECTION_FIELDS.len();

/// A §4.2 pair distance vector: one `[0, 1]` component per detection field,
/// in [`DETECTION_FIELDS`] order.
///
/// Fixed arity and `Copy` on purpose — the classification hot path evaluates
/// millions of these per batch, and a stack array keeps that path free of
/// per-pair heap allocation (and of the `Vec` clone churn a growable vector
/// drags into every partition build).
pub type DistVec = [f64; DETECTION_DIMS];

/// A typed field value extracted from a report.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue<'a> {
    /// Numeric value (or missing).
    Numeric(Option<f64>),
    /// Categorical code (or missing).
    Categorical(Option<&'a str>),
    /// String value compared by token overlap.
    Text(&'a str),
}

impl DetectionField {
    /// Extract this field's value from a report.
    pub fn extract<'a>(&self, r: &'a AdrReport) -> FieldValue<'a> {
        match self {
            DetectionField::Age => FieldValue::Numeric(r.patient.calculated_age),
            DetectionField::Sex => FieldValue::Categorical(r.patient.sex.map(|s| s.as_str())),
            DetectionField::State => {
                FieldValue::Categorical(r.patient.residential_state.as_deref())
            }
            DetectionField::OnsetDate => FieldValue::Categorical(r.reaction.onset_date.as_deref()),
            DetectionField::OutcomeDescription => {
                FieldValue::Categorical(r.reaction.reaction_outcome_description.as_deref())
            }
            DetectionField::DrugName => FieldValue::Text(&r.medicine.generic_name_description),
            DetectionField::AdrName => FieldValue::Text(&r.reaction.meddra_pt_code),
            DetectionField::ReportDescription => FieldValue::Text(&r.reaction.report_description),
        }
    }

    /// Display name matching the paper's Table 1 field names.
    pub fn name(&self) -> &'static str {
        match self {
            DetectionField::Age => "patient age",
            DetectionField::Sex => "patient sex",
            DetectionField::State => "patient state",
            DetectionField::OnsetDate => "onset date",
            DetectionField::OutcomeDescription => "reaction outcome description",
            DetectionField::DrugName => "drug name",
            DetectionField::AdrName => "ADR name",
            DetectionField::ReportDescription => "report description",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Sex;

    #[test]
    fn eight_detection_fields() {
        assert_eq!(DETECTION_FIELDS.len(), 8);
        assert_eq!(DETECTION_DIMS, 8);
    }

    #[test]
    fn extraction_pulls_the_right_values() {
        let mut r = AdrReport::default();
        r.patient.calculated_age = Some(46.0);
        r.patient.sex = Some(Sex::M);
        r.patient.residential_state = Some("NSW".into());
        r.reaction.onset_date = Some("30/04/2013".into());
        r.reaction.reaction_outcome_description = Some("Recovered".into());
        r.medicine.generic_name_description = "Atorvastatin".into();
        r.reaction.meddra_pt_code = "Rhabdomyolysis".into();
        r.reaction.report_description = "narrative".into();

        assert_eq!(
            DetectionField::Age.extract(&r),
            FieldValue::Numeric(Some(46.0))
        );
        assert_eq!(
            DetectionField::Sex.extract(&r),
            FieldValue::Categorical(Some("M"))
        );
        assert_eq!(
            DetectionField::State.extract(&r),
            FieldValue::Categorical(Some("NSW"))
        );
        assert_eq!(
            DetectionField::OnsetDate.extract(&r),
            FieldValue::Categorical(Some("30/04/2013"))
        );
        assert_eq!(
            DetectionField::OutcomeDescription.extract(&r),
            FieldValue::Categorical(Some("Recovered"))
        );
        assert_eq!(
            DetectionField::DrugName.extract(&r),
            FieldValue::Text("Atorvastatin")
        );
        assert_eq!(
            DetectionField::AdrName.extract(&r),
            FieldValue::Text("Rhabdomyolysis")
        );
        assert_eq!(
            DetectionField::ReportDescription.extract(&r),
            FieldValue::Text("narrative")
        );
    }

    #[test]
    fn missing_values_extract_as_none() {
        let r = AdrReport::default();
        assert_eq!(DetectionField::Age.extract(&r), FieldValue::Numeric(None));
        assert_eq!(
            DetectionField::Sex.extract(&r),
            FieldValue::Categorical(None)
        );
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            DETECTION_FIELDS.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 8);
    }
}
