//! Criterion micro-benchmarks for the hot paths: string metrics, the text
//! pipeline, kNN search, k-means, the field-distance vector, the distributed
//! classifier on a small workload — and the three hot-path kernel
//! comparisons behind `BENCH_hotpath.json` (retained reference vs the
//! allocation-free replacement).
//!
//! Run with `cargo bench -p bench`.

use adr_synth::{Dataset, SynthConfig};
use bench::hotpath::{dual_corpus, pair_distance_strings};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dedup::pair_distance;
use dedup::workload::{build_workload_on, ProcessedCorpus};
use fastknn::serial::{classify_brute, classify_fast_serial};
use fastknn::voronoi::VoronoiPartition;
use mlcore::kmeans::KMeans;
use mlcore::knn::nearest_neighbors;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simmetrics::{
    euclidean, jaccard_distance, jaccard_distance_sorted, jaro_winkler, levenshtein,
    squared_euclidean, squared_euclidean_fixed,
};
use textprep::{stem, Pipeline};

fn string_metrics(c: &mut Criterion) {
    let a = "the patient experienced uncontrollable coughing and severe headache";
    let b = "the subject reported uncontrollable cough and a severe headache episode";
    c.bench_function("levenshtein/70ch", |bench| {
        bench.iter(|| levenshtein(black_box(a), black_box(b)))
    });
    c.bench_function("jaro_winkler/drug_names", |bench| {
        bench.iter(|| jaro_winkler(black_box("atorvastatin"), black_box("atorvastatim")))
    });
    let ta: Vec<&str> = a.split_whitespace().collect();
    let tb: Vec<&str> = b.split_whitespace().collect();
    c.bench_function("jaccard/10_tokens", |bench| {
        bench.iter(|| jaccard_distance(black_box(&ta), black_box(&tb)))
    });
}

fn text_pipeline(c: &mut Criterion) {
    let narrative = "Reference number 4711 is a literature report received on 02-Oct-2013 \
                     pertaining to a 46 year-old male patient who experienced rhabdomyolysis \
                     while on atorvastatin for the treatment of unknown indication.";
    c.bench_function("porter_stem/word", |bench| {
        bench.iter(|| stem(black_box("rhabdomyolysis")))
    });
    let pipeline = Pipeline::paper();
    c.bench_function("pipeline/narrative_280ch", |bench| {
        bench.iter(|| pipeline.process(black_box(narrative)))
    });
}

/// Kernel 1 of the hot-path comparison: HashSet Jaccard over string token
/// sets vs the sorted-merge walk over interned ids, on realistic narrative
/// term sets (~30–50 stems).
fn kernel_jaccard(c: &mut Criterion) {
    let ds = Dataset::generate(&SynthConfig::small(40, 3, 21));
    let dual = dual_corpus(&ds.reports);
    let (sa, sb) = (
        &dual.strings[0].narrative_terms,
        &dual.strings[1].narrative_terms,
    );
    let (ia, ib) = (
        &dual.interned[0].narrative_terms,
        &dual.interned[1].narrative_terms,
    );
    c.bench_function("kernel/jaccard_strings_hashset", |bench| {
        bench.iter(|| jaccard_distance(black_box(sa), black_box(sb)))
    });
    c.bench_function("kernel/jaccard_interned_sorted", |bench| {
        bench.iter(|| jaccard_distance_sorted(black_box(ia), black_box(ib)))
    });
}

/// Kernel 2: the full §4.2 pair distance — seed `Vec<f64>` + string sets vs
/// `DistVec` + interned sets.
fn kernel_pair_distance(c: &mut Criterion) {
    let ds = Dataset::generate(&SynthConfig::small(200, 10, 1));
    let dual = dual_corpus(&ds.reports);
    c.bench_function("pair_distance/vec_string_reference", |bench| {
        bench.iter(|| {
            pair_distance_strings(black_box(&dual.strings[0]), black_box(&dual.strings[1]))
        })
    });
    c.bench_function("pair_distance/distvec_interned", |bench| {
        bench.iter(|| pair_distance(black_box(&dual.interned[0]), black_box(&dual.interned[1])))
    });
}

/// Kernel 3: 8-dim Euclidean — dynamic-length slice loop vs the fixed-arity
/// kernel the compiler fully unrolls, linear vs squared.
fn kernel_euclidean(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let a: [f64; 8] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
    let b: [f64; 8] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
    let (va, vb) = (a.to_vec(), b.to_vec());
    c.bench_function("euclidean/slice8_sqrt", |bench| {
        bench.iter(|| euclidean(black_box(&va), black_box(&vb)))
    });
    c.bench_function("euclidean/slice8_squared", |bench| {
        bench.iter(|| squared_euclidean(black_box(&va), black_box(&vb)))
    });
    c.bench_function("euclidean/fixed8_squared", |bench| {
        bench.iter(|| squared_euclidean_fixed(black_box(&a), black_box(&b)))
    });
}

fn learning_primitives(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let data: Vec<Vec<f64>> = (0..10_000)
        .map(|_| (0..8).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let query: Vec<f64> = (0..8).map(|_| rng.gen_range(0.0..1.0)).collect();
    c.bench_function("knn/10k_points_k9", |bench| {
        bench.iter(|| nearest_neighbors(black_box(&query), black_box(&data), 9))
    });
    let sample: Vec<[f64; 8]> = data
        .iter()
        .take(2_000)
        .map(|v| std::array::from_fn(|i| v[i]))
        .collect();
    c.bench_function("kmeans/2k_points_b16", |bench| {
        bench.iter(|| KMeans::new(16, 5).fit(black_box(&sample)))
    });
}

fn classifier(c: &mut Criterion) {
    let corpus = ProcessedCorpus::new(Dataset::generate(&SynthConfig::small(800, 40, 9)));
    let w = build_workload_on(&corpus, 10_000, 100, 9);
    let vp = VoronoiPartition::build(&w.train, 16, 9);
    c.bench_function("classify/brute_100tests_10ktrain", |bench| {
        bench.iter(|| classify_brute(black_box(&w.train), black_box(&w.test), 9, 0.0))
    });
    c.bench_function("classify/fast_serial_100tests_10ktrain_b16", |bench| {
        bench.iter(|| classify_fast_serial(black_box(&vp), black_box(&w.test), 9, 0.0))
    });
}

criterion_group!(
    benches,
    string_metrics,
    text_pipeline,
    kernel_jaccard,
    kernel_pair_distance,
    kernel_euclidean,
    learning_primitives,
    classifier
);
criterion_main!(benches);
