//! Bound-driven pruning benchmark behind `BENCH_prune.json`: the
//! classification stage with the lossless pruning engine on vs off.
//!
//! Both sides fit the identical Voronoi model over the identical training
//! pairs and classify the identical test batch at the same worker count;
//! the only difference is [`fastknn::FastKnnConfig::prune`]. The gate reads
//! two numbers from the pruned side:
//!
//! * **speedup** — off/on ratio of the classification stages' summed
//!   virtual makespan (the fit stages are excluded: pruning does not touch
//!   k-means);
//! * **avoided fraction** — share of the would-be pair-distance
//!   evaluations the triangle-inequality window and the annulus cell bound
//!   eliminated, from the journal's `prune` section (by the conservation
//!   invariant, `evals_on + avoided == evals_off` exactly).
//!
//! The corpus is skewed the way §4.2 distance vectors are in practice:
//! pair-distance mass concentrates along low-dimensional manifolds (most
//! field distances move together) and one hot region holds a third of all
//! pairs. Each Voronoi cell's residents spread **radially** from their
//! centre — the geometry the sorted-by-centre-distance window scan
//! exploits — while the cells themselves sit far apart, giving the annulus
//! bound whole cells to skip. Pruning is lossless, so the benchmark also
//! asserts the two sides' outputs are identical before reporting.

use crate::harness::{experiment_cluster_config, gates_json, Gate};
use fastknn::{FastKnn, FastKnnConfig, LabeledPair, ScoredPair, UnlabeledPair, PAIR_DIMS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparklet::{Cluster, PruneReport};

/// A classification workload: labelled training pairs and an unlabelled
/// test batch, both in the §4.2 pair-distance space.
pub struct PruneWorkload {
    /// Training pairs (mostly negatives, a few positives — the paper's
    /// imbalance).
    pub train: Vec<LabeledPair<PAIR_DIMS>>,
    /// The test batch to classify.
    pub tests: Vec<UnlabeledPair<PAIR_DIMS>>,
    /// Voronoi cells the model should build (`FastKnnConfig::b`).
    pub cells: usize,
}

/// Skewed radial-cluster workload. `clusters` well-separated centres; the
/// hot one (index 0) holds a third of all training pairs and test points,
/// the rest split the remainder evenly. Within a cluster, points spread
/// along a fixed direction at radii up to ~120 with sub-unit noise on every
/// other coordinate, so distance-to-centre separates residents sharply —
/// the regime where the window bound pays — while the k-th-neighbour
/// cutoff stays small against the cell radius. Positives ride inside the
/// hot cluster (duplicates sit near their originals in distance space).
pub fn skewed_workload(
    n_neg: usize,
    n_pos: usize,
    n_test: usize,
    clusters: usize,
    seed: u64,
) -> PruneWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let b = clusters.max(2);
    let centres: Vec<[f64; PAIR_DIMS]> = (0..b)
        .map(|c| {
            let mut centre = [0.0; PAIR_DIMS];
            centre[c % PAIR_DIMS] = 400.0 * (1.0 + (c / PAIR_DIMS) as f64);
            centre[(c + 3) % PAIR_DIMS] += 170.0 * c as f64;
            centre
        })
        .collect();
    let axes: Vec<[f64; PAIR_DIMS]> = (0..b)
        .map(|_| {
            let raw: [f64; PAIR_DIMS] = std::array::from_fn(|_| rng.gen_range(-1.0..1.0));
            let norm = raw.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
            raw.map(|x| x / norm)
        })
        .collect();
    // Hot cluster 0 takes a third; the rest share the remainder.
    let cluster_of = |i: usize| {
        if i.is_multiple_of(3) {
            0
        } else {
            1 + (i / 3) % (b - 1)
        }
    };
    let point = |cluster: usize, rng: &mut StdRng| -> [f64; PAIR_DIMS] {
        let t = rng.gen_range(0.0..120.0);
        std::array::from_fn(|d| {
            centres[cluster][d] + t * axes[cluster][d] + rng.gen_range(-0.5..0.5)
        })
    };
    let mut train = Vec::with_capacity(n_neg + n_pos);
    for i in 0..n_neg {
        let v = point(cluster_of(i), &mut rng);
        train.push(LabeledPair::new(i as u64, v, false));
    }
    for i in 0..n_pos {
        let v = point(0, &mut rng);
        train.push(LabeledPair::new((n_neg + i) as u64, v, true));
    }
    let tests = (0..n_test)
        .map(|i| UnlabeledPair::new(i as u64, point(cluster_of(i), &mut rng)))
        .collect();
    PruneWorkload {
        train,
        tests,
        cells: b,
    }
}

/// Measured outcome of one classification run.
#[derive(Debug, Clone)]
pub struct PruneRun {
    /// Test pairs classified.
    pub tests: usize,
    /// Summed virtual makespan of the classification stages (µs), fit
    /// excluded.
    pub classify_us: u64,
    /// Pair-distance evaluations performed against the negative cells
    /// (intra + cross comparison counters; k-means leaves them untouched).
    pub evals: u64,
    /// The journal's prune aggregates (all zeros when pruning is off).
    pub prune: PruneReport,
    /// The classification results, for the losslessness check.
    pub outputs: Vec<ScoredPair>,
    /// Rendered job report (the prune-table artifact).
    pub report_text: String,
}

/// Fit and classify `w` on `workers` single-core executors with pruning on
/// or off. Only stages recorded after the fit count towards `classify_us`.
pub fn run_classification(w: &PruneWorkload, workers: usize, prune: bool) -> PruneRun {
    let cluster = Cluster::new(experiment_cluster_config(workers, 1));
    let config = FastKnnConfig {
        b: w.cells,
        theta: 0.0,
        prune,
        ..FastKnnConfig::default()
    };
    let model = FastKnn::fit(&cluster, &w.train, config).expect("fit");
    let fit_stages = cluster.clock().stages().len();
    let outputs = model.classify(&w.tests).expect("classify");
    let classify_us = cluster
        .clock()
        .stages()
        .iter()
        .skip(fit_stages)
        .map(|s| s.makespan_us(workers))
        .sum();
    let report = cluster.job_report();
    let m = cluster.metrics();
    let evals = m.counter(fastknn::counters::INTRA_COMPARISONS).get()
        + m.counter(fastknn::counters::CROSS_COMPARISONS).get();
    PruneRun {
        tests: w.tests.len(),
        classify_us,
        evals,
        prune: report.prune.clone(),
        report_text: report.to_string(),
        outputs,
    }
}

/// The on/off comparison the gate reads.
#[derive(Debug, Clone)]
pub struct PruneComparison {
    /// Pruning engine on.
    pub on: PruneRun,
    /// Pruning engine off (full scans).
    pub off: PruneRun,
}

impl PruneComparison {
    /// Run both sides over one workload and assert losslessness.
    pub fn run(w: &PruneWorkload, workers: usize) -> Self {
        let on = run_classification(w, workers, true);
        let off = run_classification(w, workers, false);
        assert_eq!(
            on.outputs, off.outputs,
            "pruning must be lossless: on/off classifications diverged"
        );
        assert_eq!(
            on.evals + on.prune.evals_avoided,
            off.evals,
            "conservation: every avoided evaluation must account for one \
             the unpruned run performed"
        );
        PruneComparison { on, off }
    }

    /// Classification-stage virtual-time ratio off/on — the gated speedup.
    pub fn speedup(&self) -> f64 {
        self.off.classify_us as f64 / (self.on.classify_us as f64).max(1.0)
    }

    /// Fraction of would-be distance evaluations the pruned side avoided.
    pub fn avoided_fraction(&self) -> f64 {
        self.on.prune.avoided_fraction()
    }
}

fn run_json(r: &PruneRun) -> String {
    format!(
        "{{\"tests\": {}, \"classify_us\": {}, \"evals\": {}, \"evals_avoided\": {}, \
         \"cells_skipped\": {}, \"bound_rejected\": {}}}",
        r.tests,
        r.classify_us,
        r.evals,
        r.prune.evals_avoided,
        r.prune.cells_skipped,
        r.prune.bound_rejected
    )
}

/// Render the comparison as the `BENCH_prune.json` document.
pub fn prune_to_json(
    workers: usize,
    cmp: &PruneComparison,
    speedup_gate: f64,
    avoided_gate: f64,
) -> String {
    let gates = [
        Gate::at_least("speedup", speedup_gate, cmp.speedup()),
        Gate::at_least("avoided", avoided_gate, cmp.avoided_fraction()),
    ];
    format!(
        "{{\n  \"schema_version\": 1,\n  \"workers\": {workers},\n  \"off\": {},\n  \"on\": {},\n  \
         \"lossless\": true,\n  {}\n}}\n",
        run_json(&cmp.off),
        run_json(&cmp.on),
        gates_json(&gates)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_classification_is_lossless_and_saves_work() {
        let w = skewed_workload(1_200, 30, 150, 6, 17);
        // `run` itself asserts on == off; here pin that the workload
        // actually gives the bounds something to do.
        let cmp = PruneComparison::run(&w, 4);
        assert!(
            cmp.avoided_fraction() > 0.3,
            "the radial workload must let the bounds bite: {:.3}",
            cmp.avoided_fraction()
        );
        assert!(
            cmp.speedup() > 1.0,
            "avoided evaluations must show up in virtual time: {:.2}",
            cmp.speedup()
        );
        assert_eq!(cmp.off.prune.passes, 0, "no prune events with pruning off");
    }

    #[test]
    fn json_shape_is_well_formed() {
        let run = |us: u64, done: u64, avoided: u64| PruneRun {
            tests: 10,
            classify_us: us,
            evals: done,
            prune: PruneReport {
                passes: 1,
                evals_done: done,
                evals_avoided: avoided,
                ..PruneReport::default()
            },
            outputs: Vec::new(),
            report_text: String::new(),
        };
        let cmp = PruneComparison {
            on: run(1_000, 200, 800),
            off: run(3_000, 1_000, 0),
        };
        let doc = prune_to_json(8, &cmp, 1.5, 0.5);
        assert!(doc.contains("\"value\": 3.00"));
        assert!(doc.contains("\"value\": 0.8000"));
        assert!(doc.contains("\"passed\": true"));
        assert!(!doc.contains("\"passed\": false"));
        assert!(doc.starts_with('{') && doc.ends_with("}\n"));
    }
}
