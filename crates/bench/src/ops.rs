//! Operator-dispatch benchmark behind `BENCH_ops.json`: row-at-a-time vs
//! chunked operator-at-a-time execution of the engine's narrow path.
//!
//! Both sides run identical operator chains over identical records — the
//! Figure-6 workload's §4.2 distance rows — on the same worker count; only
//! [`sparklet::BatchConfig`] differs:
//!
//! * **row** — [`BatchConfig::row_at_a_time`]: every record is its own
//!   chunk and pays the per-chunk dispatch cost, the pre-batching engine;
//! * **chunked** — the default 1024-record chunks, amortizing dispatch
//!   ~1000×.
//!
//! Two stages are compared:
//!
//! * **narrow** — a map → filter → flat_map chain, where dispatch is the
//!   entire difference (**gated ≥2× virtual speedup**);
//! * **shuffle** — map into a hash shuffle with per-chunk bucketing,
//!   reported for context, not gated (launch and byte costs shared by both
//!   sides dilute the dispatch win).
//!
//! The outputs are asserted identical before any time is reported —
//! chunking that changed a record would make the speedup meaningless.

use crate::corpora;
use crate::harness::{gates_json, Gate};
use adr_model::DistVec;
use sparklet::{BatchConfig, Cluster, ClusterConfig, PairRdd};

/// Worker count both sides run at.
pub const OPS_WORKERS: usize = 8;
/// Input partitions for every stage.
pub const OPS_PARTITIONS: usize = 16;

/// Distance rows from the Figure-6 workload — id plus the eight-field
/// distance vector, the record shape the dedup pipeline streams. Quick mode
/// builds fewer distinct pairs and tiles them: dispatch cost is per record,
/// so repetition changes nothing the benchmark measures.
pub fn fig6_rows(quick: bool) -> Vec<(u64, DistVec)> {
    let (corpus, train, test, tile) = if quick {
        (corpora::small_corpus(), 5_000, 200, 20)
    } else {
        (corpora::tga_corpus(), corpora::scaled_train(1), 1_000, 1)
    };
    let workload = dedup::workload::build_workload_on(corpus, train, test, 66);
    let mut rows: Vec<(u64, DistVec)> = Vec::with_capacity(workload.train.len() * tile);
    for rep in 0..tile {
        rows.extend(
            workload
                .train
                .iter()
                .map(|p| (p.id + (rep * workload.train.len()) as u64, p.vector)),
        );
    }
    rows
}

/// Which operator chain a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpsStage {
    /// map → filter → flat_map, no shuffle.
    Narrow,
    /// map into a hash shuffle and per-key reduction.
    Shuffle,
}

impl OpsStage {
    /// Label used in tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            OpsStage::Narrow => "narrow",
            OpsStage::Shuffle => "shuffle",
        }
    }
}

/// Measured outcome of one batch configuration over one stage.
#[derive(Debug, Clone)]
pub struct OpsRun {
    /// Input records.
    pub records: usize,
    /// Chunks dispatched through the batch path.
    pub chunks: u64,
    /// Sum of the run's stage makespans at [`OPS_WORKERS`] slots (µs) —
    /// the time the engine spends actually executing tasks, excluding
    /// driver coordination, which is identical on both sides and would
    /// only dilute the dispatch difference under measurement.
    pub makespan_us: u64,
    /// Records per virtual second.
    pub throughput: f64,
    /// The stage's collected output, for bit-identity checks (sorted where
    /// the stage involves a shuffle).
    pub output: Vec<(u64, u64)>,
}

/// Run one stage over `rows` under the given batch configuration.
pub fn run_ops_stage(rows: &[(u64, DistVec)], stage: OpsStage, batch: BatchConfig) -> OpsRun {
    // The engine-default cost model, not the paper-scaled experiment one:
    // this benchmark isolates per-chunk dispatch against task launch, so
    // per-record compute stays at its engine-native weight.
    let mut config = ClusterConfig::local(OPS_WORKERS);
    config.batch = batch;
    let cluster = Cluster::new(config);
    let mapped = cluster
        .parallelize(rows.to_vec(), OPS_PARTITIONS)
        .map(|(id, v)| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            (id, mean)
        })
        .filter(|(_, mean)| mean.is_finite());
    let output: Vec<(u64, u64)> = match stage {
        OpsStage::Narrow => mapped
            .flat_map(|(id, mean)| {
                if mean > 0.5 {
                    vec![(id, mean.to_bits())]
                } else {
                    vec![(id, mean.to_bits()), (id | 1 << 63, (1.0 - mean).to_bits())]
                }
            })
            .collect()
            .expect("narrow stage"),
        OpsStage::Shuffle => {
            let mut reduced = mapped
                .map(|(id, mean)| (id % 64, mean.to_bits()))
                .reduce_by_key(|a, b| a.wrapping_add(b), OPS_WORKERS)
                .collect()
                .expect("shuffle stage");
            // Reduce-side group order is a hash-map artifact; sort so the
            // row/chunked outputs compare exactly.
            reduced.sort_unstable();
            reduced
        }
    };
    let report = cluster.job_report();
    let makespan_us: u64 = cluster
        .clock()
        .stages()
        .iter()
        .map(|s| s.makespan_us(OPS_WORKERS))
        .sum();
    OpsRun {
        records: rows.len(),
        chunks: report.batch.chunks,
        makespan_us,
        throughput: rows.len() as f64 / (makespan_us as f64 / 1e6).max(1e-9),
        output,
    }
}

/// One stage's row-vs-chunked comparison.
#[derive(Debug, Clone)]
pub struct OpsComparison {
    /// Stage label (`"narrow"` / `"shuffle"`).
    pub label: &'static str,
    /// Row-at-a-time baseline (chunk size 1).
    pub row: OpsRun,
    /// Default chunked execution.
    pub chunked: OpsRun,
}

impl OpsComparison {
    /// Run both sides of `stage` over `rows` and verify bit-identity.
    pub fn measure(rows: &[(u64, DistVec)], stage: OpsStage) -> Self {
        let row = run_ops_stage(rows, stage, BatchConfig::row_at_a_time());
        let chunked = run_ops_stage(rows, stage, BatchConfig::default());
        assert_eq!(
            row.output,
            chunked.output,
            "{} stage output must not depend on the chunk size",
            stage.label()
        );
        OpsComparison {
            label: stage.label(),
            row,
            chunked,
        }
    }

    /// Makespan ratio row / chunked — the number the gate reads.
    pub fn speedup(&self) -> f64 {
        self.row.makespan_us as f64 / (self.chunked.makespan_us as f64).max(1.0)
    }
}

fn run_json(r: &OpsRun) -> String {
    format!(
        "{{\"records\": {}, \"chunks\": {}, \"makespan_us\": {}, \"throughput_rec_per_s\": {:.0}}}",
        r.records, r.chunks, r.makespan_us, r.throughput
    )
}

/// Render the comparisons as the `BENCH_ops.json` document.
pub fn ops_to_json(workers: usize, comparisons: &[OpsComparison], threshold: f64) -> String {
    let gated = comparisons
        .iter()
        .find(|c| c.label == "narrow")
        .map(|c| c.speedup())
        .unwrap_or(0.0);
    let mut out = format!("{{\n  \"schema_version\": 1,\n  \"workers\": {workers},\n");
    for c in comparisons {
        out.push_str(&format!(
            "  \"{}\": {{\"row\": {}, \"chunked\": {}, \"speedup\": {:.2}}},\n",
            c.label,
            run_json(&c.row),
            run_json(&c.chunked),
            c.speedup()
        ));
    }
    out.push_str("  ");
    out.push_str(&gates_json(&[Gate::at_least("speedup", threshold, gated)]));
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_rows(n: usize) -> Vec<(u64, DistVec)> {
        (0..n)
            .map(|i| {
                let x = (i % 97) as f64 / 97.0;
                (i as u64, [x; adr_model::DETECTION_DIMS])
            })
            .collect()
    }

    #[test]
    fn narrow_stage_chunking_clears_the_gate() {
        let rows = tiny_rows(120_000);
        let cmp = OpsComparison::measure(&rows, OpsStage::Narrow);
        assert!(cmp.row.chunks > cmp.chunked.chunks);
        assert!(
            cmp.speedup() >= 2.0,
            "narrow-stage chunking must clear the 2x gate: {:.2}x",
            cmp.speedup()
        );
    }

    #[test]
    fn shuffle_stage_outputs_are_chunk_invariant() {
        let rows = tiny_rows(8_000);
        let cmp = OpsComparison::measure(&rows, OpsStage::Shuffle);
        assert!(cmp.speedup() > 1.0, "got {:.2}x", cmp.speedup());
    }

    #[test]
    fn json_has_the_gate_section() {
        let rows = tiny_rows(4_000);
        let cmp = OpsComparison::measure(&rows, OpsStage::Narrow);
        let doc = ops_to_json(OPS_WORKERS, &[cmp], 2.0);
        assert!(doc.contains("\"narrow\""));
        assert!(doc.contains("\"gates\": {"));
        assert!(doc.contains("\"speedup\": {\"threshold\": 2.00"));
        assert!(doc.contains("\"passed\""));
    }
}
