//! # bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation (§5). Each
//! experiment returns [`harness::ExperimentResult`] tables; the binaries in
//! `src/bin/` print them, and `exp_all` additionally rewrites
//! `EXPERIMENTS.md` with paper-vs-measured commentary.
//!
//! ## Scaling
//!
//! The paper runs 1M–5M training pairs on a 14-node Spark cluster. This
//! harness scales all pair counts down ~50× (documented per experiment) and
//! reports **virtual minutes** from the engine's cost model rather than
//! wall-clock: the machine this runs on has a single core, so real elapsed
//! time carries no information about cluster behaviour. The
//! [`harness::paper_cost`] model charges each of our pair comparisons the
//! cost of the ~500 comparisons it stands for at paper scale, landing the
//! virtual times in the paper's ballpark while the *shapes* (who wins,
//! where the knees are) come entirely from measured counts.

pub mod batch;
pub mod corpora;
pub mod experiments;
pub mod harness;
pub mod hotpath;
pub mod ingest;
pub mod ops;
pub mod prune;
pub mod sched;
pub mod serve;
pub mod spill;
