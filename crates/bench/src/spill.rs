//! Out-of-core blocking + pairwise benchmark behind `BENCH_spill.json`.
//!
//! The paper dedups a ~10k-report corpus entirely in memory; the ROADMAP's
//! out-of-core item asks what happens two orders of magnitude above that.
//! This module drives a **multi-million-report** blocking + pairwise run
//! through sparklet three ways:
//!
//! * **uncapped** — executor memory far above the shuffle's resident needs:
//!   the in-memory baseline, no spill traffic;
//! * **capped + spill** — executor memory small enough that the blocking
//!   shuffle cannot stay resident: buckets overflow to the disk tier and
//!   are read back during the pairwise stage;
//! * **capped, spill disabled** — the pre-spill engine under the same cap:
//!   the run must **abort** with a memory error (this is what `main` did
//!   before the disk tier existed, and the regression gate keeps it
//!   honest).
//!
//! The corpus is never materialised: each map task builds its own
//! [`StreamingCorpus`] and generates only its id range (O(batch) memory,
//! see `adr_synth::streaming`). Every report becomes one fixed-width
//! [`BlockRecord`] — blocking key (primary suspect drug) plus a numeric
//! fingerprint — which is what flows through the shuffle; the pairwise
//! stage compares each *arriving* report (the trailing id window) against
//! every earlier report in its block, mirroring `detect_new`'s
//! incremental-batch shape at scale.
//!
//! The capped and uncapped runs must produce **bit-identical** summaries
//! (pair counts, near-duplicate counts and an order-sensitive distance
//! checksum): spilling is an execution detail, never an answer change.

use crate::harness::{gates_json, Gate};
use adr_synth::{StreamingCorpus, SynthConfig};
use simmetrics::squared_euclidean_fixed;
use sparklet::{
    stable_hash, Cluster, ClusterConfig, HashPartitioner, PairRdd, SparkletError, SpillConfig,
};
use std::sync::Arc;

/// Fingerprint arity: eight cheap numeric features per report.
pub const FINGERPRINT_DIMS: usize = 8;

/// What the blocking shuffle moves: `(block key, (report id, fingerprint))`.
/// Fixed-width, so the engine's default [`sparklet::FixedBytes`] tuple
/// codecs spill it without a custom encoder.
pub type BlockRecord = (u64, (u64, [f64; FINGERPRINT_DIMS]));

/// Squared-distance threshold under which a blocked pair is counted as a
/// near-duplicate. The value only needs to be deterministic and sit inside
/// the observed distance range — the benchmark gates on execution, and the
/// counts double as a cross-run output digest.
const NEAR_DUPLICATE_SQ: f64 = 64.0;

/// One benchmark scenario: corpus scale, arriving window and cluster shape.
#[derive(Debug, Clone)]
pub struct SpillWorkload {
    /// Total corpus size (duplicates included).
    pub num_reports: usize,
    /// Injected duplicate pairs (kept at the paper's ~2.5% pair rate).
    pub duplicate_pairs: usize,
    /// Trailing ids treated as the arriving batch of `detect_new`.
    pub arriving: usize,
    /// Simulated executors.
    pub executors: usize,
    /// Shuffle partitions (= map tasks = reduce tasks).
    pub partitions: usize,
    /// Executor memory for the capped runs.
    pub capped_memory: usize,
    /// Executor memory for the in-memory baseline.
    pub uncapped_memory: usize,
    /// Corpus seed.
    pub seed: u64,
}

impl SpillWorkload {
    /// The headline scenario: 10M reports — ~1000× the paper's corpus —
    /// under a 64 MiB executor cap (the blocking shuffle needs ~200 MiB
    /// resident per executor, so the cap forces the disk tier).
    pub fn full() -> Self {
        SpillWorkload {
            num_reports: 10_000_000,
            duplicate_pairs: 250_000,
            arriving: 20_000,
            executors: 4,
            partitions: 32,
            capped_memory: 64 << 20,
            uncapped_memory: 4 << 30,
            seed: 2016,
        }
    }

    /// CI-smoke scale: same shape, ~25× smaller, cap shrunk to match.
    pub fn quick() -> Self {
        SpillWorkload {
            num_reports: 400_000,
            duplicate_pairs: 10_000,
            arriving: 4_000,
            executors: 4,
            partitions: 32,
            capped_memory: 4 << 20,
            uncapped_memory: 512 << 20,
            seed: 2016,
        }
    }

    /// Corpus definition: paper-scale lexicons (Table 3's 1,366 drugs /
    /// 2,351 ADR terms) regardless of report count, so block sizes grow
    /// with the corpus exactly as they would in a real database.
    pub fn synth_config(&self) -> SynthConfig {
        SynthConfig {
            num_reports: self.num_reports,
            duplicate_pairs: self.duplicate_pairs,
            seed: self.seed,
            ..SynthConfig::tga()
        }
    }
}

/// Summary of one completed run.
#[derive(Debug, Clone)]
pub struct SpillRunSummary {
    /// Digest over the per-partition `(pairs, near, checksum)` rows —
    /// bit-identical across capped/uncapped runs by contract.
    pub digest: u64,
    /// Blocked pairs compared in the pairwise stage.
    pub pairs_compared: u64,
    /// Pairs under the near-duplicate distance threshold.
    pub near_duplicates: u64,
    /// Virtual makespan of the whole run (µs).
    pub makespan_us: u64,
    /// Disk-tier traffic, from the job report's spill section.
    pub bytes_spilled: u64,
    /// Bytes read back from spill files on fetch.
    pub bytes_read_back: u64,
    /// Spill files created.
    pub spill_files: u64,
    /// Largest per-executor peak of resident shuffle bytes.
    pub peak_resident_max: u64,
}

/// Primary blocking key of a report: its first suspect drug (reports
/// always carry at least one drug; an empty field blocks under key 0).
fn block_key(drug_field: &str) -> u64 {
    match drug_field.split(',').map(str::trim).find(|t| !t.is_empty()) {
        Some(drug) => stable_hash(&drug),
        None => 0,
    }
}

/// Eight deterministic numeric features. Hash-derived categorical features
/// are folded to small ranges so field corruptions move distances by O(10)
/// — comparable to the numeric features' scale.
fn fingerprint(r: &adr_model::AdrReport) -> [f64; FINGERPRINT_DIMS] {
    let hash64 = |s: &Option<String>| (stable_hash(s) % 64) as f64;
    [
        r.patient.calculated_age.unwrap_or(40.0),
        match r.patient.sex {
            Some(adr_model::Sex::M) => 0.0,
            Some(adr_model::Sex::F) => 8.0,
            _ => 16.0,
        },
        4.0 * r.adr_names().len() as f64,
        4.0 * r.drug_names().len() as f64,
        r.reaction.report_description.len() as f64 / 16.0,
        (stable_hash(&r.reaction.meddra_pt_code) % 64) as f64,
        hash64(&r.reaction.onset_date),
        hash64(&r.reaction.reaction_outcome_description),
    ]
}

/// Run blocking + pairwise over the workload's corpus at the given
/// executor memory. Returns the engine's error verbatim when the run
/// aborts (the capped-no-spill leg relies on this).
pub fn run_blocking_pairwise(
    w: &SpillWorkload,
    memory_per_executor: usize,
    spill_enabled: bool,
) -> sparklet::Result<SpillRunSummary> {
    let mut config = ClusterConfig::local(w.executors);
    config.memory_per_executor = memory_per_executor;
    if !spill_enabled {
        config.spill = SpillConfig::disabled();
    }
    let cluster = Cluster::new(config);
    cluster.spill().register_fixed::<BlockRecord>();
    let handle = cluster.clone();

    let n = w.num_reports as u64;
    let arriving_from = n - w.arriving as u64;
    let synth = w.synth_config();

    // Contiguous id ranges, one per map task; each task streams only its
    // own range through a private corpus — the driver never holds reports.
    let per = n.div_ceil(w.partitions as u64);
    let ranges: Vec<(u64, u64)> = (0..w.partitions as u64)
        .map(|p| (p * per, ((p + 1) * per).min(n)))
        .collect();

    let records =
        cluster
            .parallelize(ranges, w.partitions)
            .map_partitions(move |ranges: Vec<(u64, u64)>| {
                let corpus = StreamingCorpus::new(synth.clone());
                let mut out: Vec<BlockRecord> =
                    Vec::with_capacity(ranges.iter().map(|(lo, hi)| (hi - lo) as usize).sum());
                for (lo, hi) in ranges {
                    for id in lo..hi {
                        let r = corpus.report(id);
                        out.push((
                            block_key(&r.medicine.generic_name_description),
                            (id, fingerprint(&r)),
                        ));
                    }
                }
                out
            });

    let partitions = w.partitions;
    let blocked = records.partition_by(Arc::new(HashPartitioner::new(partitions)));

    // Pairwise within blocks: each arriving report against every earlier
    // report sharing its key. Sorted by (key, id) first, so the distance
    // accumulation order — and therefore the f64 checksum — is a pure
    // function of the data, not of scheduling or spill.
    let summaries: Vec<(u64, u64, u64)> = blocked
        .map_partitions(move |mut part: Vec<BlockRecord>| {
            part.sort_unstable_by_key(|(key, (id, _))| (*key, *id));
            let (mut pairs, mut near, mut sum) = (0u64, 0u64, 0f64);
            let mut at = 0;
            while at < part.len() {
                let key = part[at].0;
                let end = at + part[at..].iter().take_while(|(k, _)| *k == key).count();
                let split = at
                    + part[at..end]
                        .iter()
                        .take_while(|(_, (id, _))| *id < arriving_from)
                        .count();
                for (_, (_, fp_new)) in &part[split..end] {
                    for (_, (_, fp_old)) in &part[at..split] {
                        let d = squared_euclidean_fixed(fp_new, fp_old);
                        pairs += 1;
                        near += u64::from(d < NEAR_DUPLICATE_SQ);
                        sum += d;
                    }
                }
                at = end;
            }
            vec![(pairs, near, sum.to_bits())]
        })
        .collect()?;

    let report = handle.job_report();
    Ok(SpillRunSummary {
        digest: stable_hash(&summaries),
        pairs_compared: summaries.iter().map(|(p, _, _)| p).sum(),
        near_duplicates: summaries.iter().map(|(_, n, _)| n).sum(),
        makespan_us: report.virtual_us,
        bytes_spilled: report.spill.bytes_spilled,
        bytes_read_back: report.spill.bytes_read_back,
        spill_files: report.spill.spill_files,
        peak_resident_max: report
            .spill
            .peak_resident
            .iter()
            .copied()
            .max()
            .unwrap_or(0),
    })
}

/// True when `err` is the engine's memory-cap abort.
pub fn is_memory_abort(err: &SparkletError) -> bool {
    matches!(err, SparkletError::TaskFailed { reason, .. }
        if reason.contains("exceeded executor budget"))
}

fn run_json(label: &str, s: &SpillRunSummary, memory: usize) -> String {
    format!(
        "  \"{label}\": {{\"memory_mb\": {}, \"makespan_us\": {}, \"pairs_compared\": {}, \
         \"near_duplicates\": {}, \"bytes_spilled\": {}, \"bytes_read_back\": {}, \
         \"spill_files\": {}, \"peak_resident_bytes\": {}, \"digest\": \"{:#018x}\"}},\n",
        memory >> 20,
        s.makespan_us,
        s.pairs_compared,
        s.near_duplicates,
        s.bytes_spilled,
        s.bytes_read_back,
        s.spill_files,
        s.peak_resident_max,
        s.digest,
    )
}

/// Render `BENCH_spill.json`. `no_spill_error` is the abort message of the
/// capped-no-spill leg (`None` means that leg wrongly completed).
pub fn spill_to_json(
    w: &SpillWorkload,
    uncapped: &SpillRunSummary,
    capped: &SpillRunSummary,
    no_spill_error: Option<&str>,
) -> String {
    let aborted = no_spill_error.is_some();
    let spilled = capped.bytes_spilled > 0 && capped.bytes_read_back > 0;
    let digest_match = capped.digest == uncapped.digest;
    let mut out = format!(
        "{{\n  \"schema_version\": 1,\n  \"reports\": {},\n  \"arriving\": {},\n  \
         \"executors\": {},\n  \"partitions\": {},\n",
        w.num_reports, w.arriving, w.executors, w.partitions
    );
    out.push_str(&run_json("uncapped", uncapped, w.uncapped_memory));
    out.push_str(&run_json("capped", capped, w.capped_memory));
    out.push_str(&format!(
        "  \"capped_no_spill\": {{\"aborted\": {aborted}, \"error\": {:?}}},\n",
        no_spill_error.unwrap_or("")
    ));
    out.push_str("  ");
    out.push_str(&gates_json(&[
        Gate::holds("abort_without_spill", aborted),
        Gate::holds("completes_with_spill", spilled),
        Gate::holds("digest_match", digest_match),
    ]));
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-scale workload: small enough for tier-1, shaped like `full()`.
    fn tiny() -> SpillWorkload {
        SpillWorkload {
            num_reports: 60_000,
            duplicate_pairs: 1_500,
            arriving: 1_500,
            executors: 2,
            partitions: 8,
            capped_memory: 1 << 20,
            uncapped_memory: 512 << 20,
            seed: 7,
        }
    }

    #[test]
    fn capped_run_spills_and_matches_the_uncapped_digest() {
        let w = tiny();
        let uncapped = run_blocking_pairwise(&w, w.uncapped_memory, true).expect("uncapped");
        assert_eq!(uncapped.bytes_spilled, 0, "baseline must stay resident");
        assert!(uncapped.pairs_compared > 0, "no blocked pairs compared");
        let capped = run_blocking_pairwise(&w, w.capped_memory, true).expect("capped");
        assert!(capped.bytes_spilled > 0, "cap never engaged the disk tier");
        assert!(capped.bytes_read_back > 0, "spilled buckets never fetched");
        assert_eq!(capped.digest, uncapped.digest, "spill changed the answer");
        assert_eq!(capped.pairs_compared, uncapped.pairs_compared);
        assert!(
            capped.makespan_us > uncapped.makespan_us,
            "spill I/O must show up in the virtual makespan ({} <= {})",
            capped.makespan_us,
            uncapped.makespan_us
        );
    }

    #[test]
    fn capped_run_without_spill_aborts() {
        let w = tiny();
        let err = run_blocking_pairwise(&w, w.capped_memory, false)
            .expect_err("capped run without spill must abort");
        assert!(is_memory_abort(&err), "wrong abort: {err:?}");
    }

    #[test]
    fn json_gate_reflects_the_three_legs() {
        let ok = SpillRunSummary {
            digest: 42,
            pairs_compared: 10,
            near_duplicates: 2,
            makespan_us: 100,
            bytes_spilled: 0,
            bytes_read_back: 0,
            spill_files: 0,
            peak_resident_max: 5,
        };
        let mut spilled = ok.clone();
        spilled.bytes_spilled = 1000;
        spilled.bytes_read_back = 900;
        spilled.makespan_us = 150;
        let doc = spill_to_json(&SpillWorkload::quick(), &ok, &spilled, Some("task memory"));
        assert!(doc.contains("\"passed\": true"));
        assert!(doc.contains("\"aborted\": true"));
        assert!(doc.starts_with('{') && doc.ends_with("}\n"));

        let mut drifted = spilled.clone();
        drifted.digest = 43;
        let doc = spill_to_json(&SpillWorkload::quick(), &ok, &drifted, Some("task memory"));
        assert!(doc.contains(
            "\"digest_match\": {\"threshold\": 1.00, \"value\": 0.0000, \"passed\": false}"
        ));

        let doc = spill_to_json(&SpillWorkload::quick(), &ok, &spilled, None);
        assert!(doc.contains(
            "\"abort_without_spill\": {\"threshold\": 1.00, \"value\": 0.0000, \"passed\": false}"
        ));
    }
}
