//! Serving benchmark behind `BENCH_serve.json`: adaptive micro-batched
//! duplicate lookups and signal queries under open-loop load.
//!
//! Drives [`dedup::ServeService`] with a deterministic Poisson arrival
//! stream ([`adr_synth::generate_query_load`] — a simulated multi-million
//! user population) against a bootstrapped [`dedup::DedupSystem`] and
//! measures what the admission policy buys:
//!
//! * **batched vs request-at-a-time** — the same request stream through
//!   the batch-or-deadline queue and through `max_batch = 1`; the gates
//!   require batched throughput ≥ 2× at equal-or-better p99, and the two
//!   legs' answer digests bit-identical (admission policy must never
//!   change results);
//! * **same-seed rerun** — a freshly built system + service over the same
//!   seed must reproduce the digest bit-for-bit;
//! * **saturation knee** — the batched leg swept across arrival rates,
//!   reporting sustained throughput and tail latency per offered load;
//! * **ROR inflation** — the "why dedup matters" table: drug–event
//!   reporting odds ratios from the raw store vs the deduplicated store
//!   for drugs drawn from known duplicate pairs; duplicates inflate the
//!   raw co-mention cells.

use crate::harness::{gates_json, Gate};
use adr_synth::{
    generate_query_load, Dataset, QueryArrival, QueryLoadConfig, QuerySpec, SynthConfig,
};
use dedup::{
    DedupConfig, DedupSystem, ServeAnswer, ServeConfig, ServeQuery, ServeRequest, ServeRunSummary,
    ServeService, SignalStats,
};
use fastknn::FastKnnConfig;
use sparklet::Cluster;

/// One benchmark scenario: corpus scale, load shape and cluster shape.
#[derive(Debug, Clone)]
pub struct ServeWorkload {
    /// Corpus size (duplicates included) bootstrapped into the system.
    pub num_reports: usize,
    /// Injected duplicate pairs.
    pub duplicate_pairs: usize,
    /// Requests in the open-loop stream.
    pub requests: usize,
    /// Mean inter-arrival gap (µs). The headline legs run saturating
    /// (arrivals faster than request-at-a-time service).
    pub mean_interarrival_us: u64,
    /// Signal-query share, per mille.
    pub signal_per_mille: u32,
    /// Simulated executors.
    pub executors: usize,
    /// Simulated user population.
    pub users: u64,
    /// Corpus + load seed.
    pub seed: u64,
}

impl ServeWorkload {
    /// Headline scenario: a 2,400-report database serving 2,000 queries
    /// from two million simulated users at a saturating arrival rate.
    pub fn full() -> Self {
        ServeWorkload {
            num_reports: 2_400,
            duplicate_pairs: 120,
            requests: 2_000,
            mean_interarrival_us: 40,
            signal_per_mille: 300,
            executors: 4,
            users: 2_000_000,
            seed: 2016,
        }
    }

    /// CI-smoke scale.
    pub fn quick() -> Self {
        ServeWorkload {
            num_reports: 700,
            duplicate_pairs: 35,
            requests: 400,
            mean_interarrival_us: 40,
            signal_per_mille: 300,
            executors: 4,
            users: 2_000_000,
            seed: 2016,
        }
    }

    fn dedup_config(&self) -> DedupConfig {
        DedupConfig {
            use_blocking: true,
            knn: FastKnnConfig {
                theta: 10.0,
                b: 8,
                ..FastKnnConfig::default()
            },
            ..DedupConfig::default()
        }
    }

    /// Generate the corpus and bootstrap a fresh system over it.
    pub fn build_system(&self) -> (DedupSystem, Dataset) {
        let ds = Dataset::generate(&SynthConfig::small(
            self.num_reports,
            self.duplicate_pairs,
            self.seed,
        ));
        let mut sys = DedupSystem::new(Cluster::local(self.executors), self.dedup_config());
        sys.bootstrap(&ds.reports, &ds.duplicate_pairs)
            .expect("bootstrap");
        (sys, ds)
    }

    /// The query stream at this workload's arrival rate.
    pub fn load(&self) -> Vec<QueryArrival> {
        self.load_at(self.mean_interarrival_us)
    }

    /// The query stream at an overridden arrival rate (knee sweep).
    pub fn load_at(&self, mean_interarrival_us: u64) -> Vec<QueryArrival> {
        generate_query_load(&QueryLoadConfig {
            seed: self.seed,
            requests: self.requests,
            users: self.users,
            mean_interarrival_us,
            signal_per_mille: self.signal_per_mille,
            probe_span: self.num_reports as u64,
        })
    }
}

/// Resolve the id-level query stream against the corpus: duplicate probes
/// become fresh-id copies of corpus reports (forcing real candidate
/// classification), signal specs become the probed report's leading drug
/// and reaction words.
pub fn resolve_requests(load: &[QueryArrival], ds: &Dataset) -> Vec<ServeRequest> {
    load.iter()
        .enumerate()
        .map(|(i, q)| {
            let query = match q.spec {
                QuerySpec::Duplicate { probe_id } => {
                    let mut report = ds.reports[probe_id as usize % ds.reports.len()].clone();
                    report.id = 1_000_000_000 + i as u64;
                    ServeQuery::Duplicate { report }
                }
                QuerySpec::Signal { probe_id } => {
                    let r = &ds.reports[probe_id as usize % ds.reports.len()];
                    ServeQuery::Signal {
                        drug: first_word(r.drug_names().first().copied().unwrap_or("panadol")),
                        event: first_word(r.adr_names().first().copied().unwrap_or("rash")),
                    }
                }
            };
            ServeRequest {
                arrival_us: q.arrival_us,
                query,
            }
        })
        .collect()
}

fn first_word(s: &str) -> String {
    s.split_whitespace().next().unwrap_or(s).to_lowercase()
}

/// One serving leg: a fresh service over `system`, the stream run through
/// `config`'s admission policy.
pub fn run_leg(
    system: &DedupSystem,
    config: ServeConfig,
    requests: &[ServeRequest],
) -> ServeRunSummary {
    let mut svc = ServeService::attach(system, config).expect("attach serve service");
    svc.run_open_loop(requests).expect("open-loop run")
}

/// One row of the ROR-inflation table.
#[derive(Debug, Clone)]
pub struct RorRow {
    /// Queried drug word.
    pub drug: String,
    /// Queried reaction word.
    pub event: String,
    /// Stats over every ingested report.
    pub raw: SignalStats,
    /// Stats with known-duplicate later members excluded.
    pub deduped: SignalStats,
}

/// The "why dedup matters" table: signal queries for words drawn from the
/// base member of each of the first `rows` known duplicate pairs, answered
/// from both stores.
pub fn ror_inflation(system: &DedupSystem, ds: &Dataset, rows: usize) -> Vec<RorRow> {
    let mut svc = ServeService::attach(system, ServeConfig::default()).expect("attach");
    let mut words: Vec<(String, String)> = Vec::new();
    for pair in ds.duplicate_pairs.iter().take(rows) {
        let base = &ds.reports[pair.lo as usize];
        let drug = match base.drug_names().first() {
            Some(d) => first_word(d),
            None => continue,
        };
        let event = match base.adr_names().first() {
            Some(e) => first_word(e),
            None => continue,
        };
        words.push((drug, event));
    }
    let requests: Vec<ServeRequest> = words
        .iter()
        .map(|(drug, event)| ServeRequest {
            arrival_us: 0,
            query: ServeQuery::Signal {
                drug: drug.clone(),
                event: event.clone(),
            },
        })
        .collect();
    let out = svc.run_open_loop(&requests).expect("signal queries");
    words
        .into_iter()
        .zip(out.answers)
        .map(|((drug, event), a)| match a {
            ServeAnswer::Signal { raw, deduped } => RorRow {
                drug,
                event,
                raw,
                deduped,
            },
            other => unreachable!("signal query answered {other:?}"),
        })
        .collect()
}

/// One knee-sweep row: the batched leg at one offered arrival rate.
#[derive(Debug, Clone)]
pub struct KneeRow {
    /// Mean inter-arrival gap driven (µs).
    pub mean_interarrival_us: u64,
    /// Offered load (requests per virtual second).
    pub offered_rps: f64,
    /// Sustained throughput the service achieved.
    pub throughput_rps: f64,
    /// Median latency (µs).
    pub p50_us: u64,
    /// Tail latency (µs).
    pub p99_us: u64,
}

/// Sweep the batched leg across arrival rates: as offered load passes the
/// service capacity the sustained throughput flattens and p99 departs —
/// the saturation knee.
pub fn knee_sweep(
    w: &ServeWorkload,
    system: &DedupSystem,
    ds: &Dataset,
    gaps_us: &[u64],
) -> Vec<KneeRow> {
    gaps_us
        .iter()
        .map(|&gap| {
            let requests = resolve_requests(&w.load_at(gap), ds);
            let s = run_leg(system, ServeConfig::default(), &requests);
            KneeRow {
                mean_interarrival_us: gap,
                offered_rps: 1e6 / gap.max(1) as f64,
                throughput_rps: s.throughput_rps(),
                p50_us: s.p50_us(),
                p99_us: s.p99_us(),
            }
        })
        .collect()
}

/// The benchmark's acceptance gates.
pub fn serve_gates(
    batched: &ServeRunSummary,
    single: &ServeRunSummary,
    rerun: &ServeRunSummary,
    ror: &[RorRow],
) -> Vec<Gate> {
    let speedup = batched.throughput_rps() / single.throughput_rps().max(f64::MIN_POSITIVE);
    let p99_ratio = batched.p99_us() as f64 / single.p99_us().max(1) as f64;
    let raw_a: u64 = ror.iter().map(|r| r.raw.a).sum();
    let dedup_a: u64 = ror.iter().map(|r| r.deduped.a).sum();
    vec![
        Gate::at_least("throughput_speedup", 2.0, speedup),
        Gate::at_most("p99_ratio", 1.0, p99_ratio),
        Gate::holds("batch1_digest_match", batched.digest == single.digest),
        Gate::holds("rerun_digest_match", batched.digest == rerun.digest),
        Gate::holds("ror_inflated_by_duplicates", raw_a > dedup_a),
    ]
}

fn leg_json(label: &str, s: &ServeRunSummary) -> String {
    format!(
        "  \"{label}\": {{\"digest\": \"{:#018x}\", \"requests\": {}, \"batches\": {}, \
         \"mean_batch\": {:.2}, \"max_queue_depth\": {}, \"p50_us\": {}, \"p99_us\": {}, \
         \"throughput_rps\": {:.1}, \"service_us\": {}, \"elapsed_us\": {}}},\n",
        s.digest,
        s.requests(),
        s.batches,
        s.requests() as f64 / s.batches.max(1) as f64,
        s.max_queue_depth,
        s.p50_us(),
        s.p99_us(),
        s.throughput_rps(),
        s.service_us,
        s.elapsed_us
    )
}

/// Render `BENCH_serve.json`.
pub fn serve_to_json(
    w: &ServeWorkload,
    batched: &ServeRunSummary,
    single: &ServeRunSummary,
    rerun: &ServeRunSummary,
    knee: &[KneeRow],
    ror: &[RorRow],
) -> String {
    let mut out = format!(
        "{{\n  \"schema_version\": 1,\n  \"reports\": {},\n  \"requests\": {},\n  \
         \"executors\": {},\n  \"mean_interarrival_us\": {},\n  \"signal_per_mille\": {},\n  \
         \"users\": {},\n",
        w.num_reports, w.requests, w.executors, w.mean_interarrival_us, w.signal_per_mille, w.users
    );
    out.push_str(&leg_json("batched", batched));
    out.push_str(&leg_json("request_at_a_time", single));
    out.push_str(&format!(
        "  \"rerun_digest\": \"{:#018x}\",\n  \"knee\": [\n",
        rerun.digest
    ));
    for (i, k) in knee.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mean_interarrival_us\": {}, \"offered_rps\": {:.1}, \
             \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}{}\n",
            k.mean_interarrival_us,
            k.offered_rps,
            k.throughput_rps,
            k.p50_us,
            k.p99_us,
            if i + 1 < knee.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"ror_inflation\": [\n");
    for (i, r) in ror.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"drug\": {}, \"event\": {}, \"raw_a\": {}, \"dedup_a\": {}, \
             \"raw_ror\": {:.4}, \"dedup_ror\": {:.4}}}{}\n",
            sparklet::journal::json_string(&r.drug),
            sparklet::journal::json_string(&r.event),
            r.raw.a,
            r.deduped.a,
            r.raw.ror,
            r.deduped.ror,
            if i + 1 < ror.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  ");
    out.push_str(&gates_json(&serve_gates(batched, single, rerun, ror)));
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeWorkload {
        ServeWorkload {
            num_reports: 220,
            duplicate_pairs: 12,
            requests: 60,
            mean_interarrival_us: 40,
            signal_per_mille: 300,
            executors: 2,
            users: 1_000_000,
            seed: 9,
        }
    }

    #[test]
    fn legs_agree_and_json_carries_the_gates() {
        let w = tiny();
        let (sys, ds) = w.build_system();
        let requests = resolve_requests(&w.load(), &ds);
        assert_eq!(requests.len(), w.requests);
        let batched = run_leg(&sys, ServeConfig::default(), &requests);
        let single = run_leg(&sys, ServeConfig::default().request_at_a_time(), &requests);
        assert_eq!(
            batched.digest, single.digest,
            "admission policy changed answers"
        );
        assert!(batched.batches < single.batches, "batching must coalesce");

        let (sys2, ds2) = w.build_system();
        let rerun = run_leg(
            &sys2,
            ServeConfig::default(),
            &resolve_requests(&w.load(), &ds2),
        );
        assert_eq!(batched.digest, rerun.digest, "same-seed rerun must agree");

        let ror = ror_inflation(&sys, &ds, 8);
        assert!(!ror.is_empty());
        let knee = knee_sweep(&w, &sys, &ds, &[400, 40]);
        let doc = serve_to_json(&w, &batched, &single, &rerun, &knee, &ror);
        assert!(doc.contains("\"gates\": {"), "{doc}");
        assert!(doc.contains("\"throughput_speedup\""), "{doc}");
        assert!(doc.contains("\"ror_inflation\": ["), "{doc}");
        assert!(
            doc.contains("\"batch1_digest_match\": {\"threshold\": 1.00, \"value\": 1.0000, \"passed\": true}"),
            "{doc}"
        );
        assert!(doc.starts_with('{') && doc.ends_with("}\n"));
    }
}
