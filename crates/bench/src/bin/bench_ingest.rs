//! Streaming-ingest benchmark: quarterly micro-batches through the durable
//! [`dedup::IngestService`], written to `BENCH_ingest.json`.
//!
//! Two legs over the same replay schedule (see [`bench::ingest`]):
//!
//! * **steady** — every quarter committed uninterrupted; per-quarter
//!   commit latency, detections and checkpoint bytes;
//! * **kill + recover** — a driver kill armed midway, then a recovery open
//!   that finishes the run from the checkpoint directory.
//!
//! **Gate**: the last detect quarter commits within 2× the first detect
//! quarter's latency, and the recovered leg's cumulative digest is
//! bit-identical to the steady leg's.
//!
//! Usage: `cargo run --release -p bench --bin bench_ingest [--quick] [out.json]`
//!
//! Default scale is 16 quarters × 300 reports; `--quick` drops to
//! 8 × 150 for smoke runs. The gate applies in both modes.

use bench::ingest::{
    ingest_to_json, latency_ratio, run_killed_and_recovered, run_steady, IngestWorkload,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_ingest.json".to_string());

    let w = if quick {
        IngestWorkload::quick()
    } else {
        IngestWorkload::full()
    };
    let quarters = w.replay().quarters();
    eprintln!(
        "streaming ingest over {} reports in {} quarters of {}, {} executors…",
        w.num_reports, quarters, w.quarter_size, w.executors
    );

    eprintln!("  steady leg (uninterrupted)…");
    let steady = run_steady(&w).expect("steady run");
    for r in &steady.rows {
        eprintln!(
            "    quarter {:>2}: {:>4} reports, {:>5} detections, latency {:>9} us, \
             checkpoint {:>6} B",
            r.batch, r.reports, r.detections, r.latency_us, r.checkpoint_bytes
        );
    }
    if let Some((first, last, ratio)) = latency_ratio(&steady.rows) {
        eprintln!("    first detect quarter {first} us, last {last} us (ratio {ratio:.2})");
    }

    let kill_point = steady.driver_points / 2;
    eprintln!("  kill + recover leg (driver kill at fault point {kill_point})…");
    let recovered = run_killed_and_recovered(&w, kill_point).expect("kill + recover run");
    eprintln!(
        "    recovered digest {:#018x} ({} recovery), steady digest {:#018x}",
        recovered.digest, recovered.recoveries, steady.digest
    );

    let doc = ingest_to_json(&w, &steady, &recovered);
    std::fs::write(&out_path, &doc).expect("write BENCH_ingest.json");
    let report_path = format!(
        "{}_report.txt",
        out_path.strip_suffix(".json").unwrap_or(&out_path)
    );
    std::fs::write(
        &report_path,
        format!(
            "== steady leg ==\n{}\n== kill + recover leg ==\n{}",
            steady.report_text, recovered.report_text
        ),
    )
    .expect("write job-report artifact");
    eprintln!("wrote {out_path} and {report_path}");

    let passed = doc.contains("\"passed\": true");
    eprintln!(
        "gate: digest_match={} latency_ratio={} -> {}",
        recovered.digest == steady.digest,
        latency_ratio(&steady.rows)
            .map(|(_, _, r)| format!("{r:.2}"))
            .unwrap_or_else(|| "n/a".into()),
        if passed { "PASSED" } else { "FAILED" }
    );
    if !passed {
        std::process::exit(1);
    }
}
