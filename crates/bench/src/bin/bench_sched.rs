//! Scheduler load-balancing benchmark: static block-partitioned execution
//! vs morsel-driven work stealing + skew-aware pair packing, written to
//! `BENCH_sched.json` with a per-worker utilization artifact alongside.
//!
//! Two corpora through the same pairwise-distance stage at the same worker
//! count (see [`bench::sched`]):
//!
//! * **skewed** — one hot drug block with the longest narratives
//!   (**gated ≥1.5× makespan improvement at 8 workers**);
//! * **uniform** — same-sized blocks, reported for context, not gated
//!   (balanced inputs leave stealing little to win).
//!
//! Usage: `cargo run --release -p bench --bin bench_sched [--quick] [out.json]`
//!
//! `--quick` shrinks the corpora for CI smoke runs; the gate applies in
//! both modes — the speedup is a property of the schedule, not of scale.

use bench::sched::{
    run_distance_stage, sched_to_json, skewed_corpus, uniform_corpus, SchedComparison, SchedMode,
};

const WORKERS: usize = 8;
const GATE: f64 = 1.5;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_sched.json".to_string());
    let util_path = format!("{}_utilization.txt", out_path.trim_end_matches(".json"));

    let (total, arriving) = if quick { (400, 40) } else { (1_300, 100) };
    eprintln!(
        "distance stage over {total}-report corpora ({arriving} arriving), \
         {WORKERS} workers, static vs morsel+steal…"
    );

    let mut comparisons = Vec::new();
    let mut utilization_doc = String::new();
    for (label, sc) in [
        ("skewed", skewed_corpus(total, arriving)),
        ("uniform", uniform_corpus(total, arriving)),
    ] {
        let static_run = run_distance_stage(&sc, WORKERS, SchedMode::Static);
        let steal_run = run_distance_stage(&sc, WORKERS, SchedMode::Steal);
        let packed_run = run_distance_stage(&sc, WORKERS, SchedMode::Packed);
        let cmp = SchedComparison {
            label,
            static_run,
            steal_run,
            packed_run,
        };
        eprintln!(
            "  {label:<8} {} pairs   static {:>9} us   steal {:>9} us ({:.2}x, {} stolen)   \
             packed {:>9} us ({:.2}x, {} morsels, util {:.0}%)",
            cmp.static_run.pairs,
            cmp.static_run.makespan_us,
            cmp.steal_run.makespan_us,
            cmp.steal_speedup(),
            cmp.steal_run.steals,
            cmp.packed_run.makespan_us,
            cmp.speedup(),
            cmp.packed_run.morsels,
            cmp.packed_run.utilization * 100.0,
        );
        utilization_doc.push_str(&format!(
            "=== {label} corpus: static placement ===\n{}\n\
             === {label} corpus: morsels + stealing (unpacked) ===\n{}\n\
             === {label} corpus: packed + morsels + stealing ===\n{}\n",
            cmp.static_run.report_text, cmp.steal_run.report_text, cmp.packed_run.report_text
        ));
        comparisons.push(cmp);
    }

    let doc = sched_to_json(WORKERS, &comparisons, GATE);
    std::fs::write(&out_path, &doc).expect("write BENCH_sched.json");
    std::fs::write(&util_path, &utilization_doc).expect("write utilization artifact");
    eprintln!("wrote {out_path} and {util_path}");

    let skewed = comparisons
        .iter()
        .find(|c| c.label == "skewed")
        .expect("skewed comparison");
    if skewed.speedup() < GATE {
        eprintln!(
            "FAILED: skewed-corpus speedup {:.2}x below the {GATE}x acceptance bar",
            skewed.speedup()
        );
        std::process::exit(1);
    }
}
