//! Bound-driven pruning benchmark: the classification stage with the
//! lossless pruning engine on vs off, written to `BENCH_prune.json` with a
//! prune-section job-report artifact alongside.
//!
//! One skewed radial-cluster workload (see [`bench::prune`]) through the
//! identical fit + classify pipeline at the same worker count; only
//! [`fastknn::FastKnnConfig::prune`] differs. Gated on the pruned side:
//!
//! * **≥1.5×** classification-stage virtual speedup (off/on makespan);
//! * **≥50%** of would-be pair-distance evaluations avoided.
//!
//! Losslessness is asserted before anything is reported: the two sides'
//! classifications must be identical.
//!
//! Usage: `cargo run --release -p bench --bin bench_prune [--quick] [out.json]`
//!
//! `--quick` shrinks the workload for CI smoke runs; the gate applies in
//! both modes — the saving is a property of the bounds, not of scale.

use bench::prune::{prune_to_json, skewed_workload, PruneComparison};

const WORKERS: usize = 8;
const SPEEDUP_GATE: f64 = 1.5;
const AVOIDED_GATE: f64 = 0.5;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_prune.json".to_string());
    let report_path = format!("{}_report.txt", out_path.trim_end_matches(".json"));

    let (n_neg, n_pos, n_test, cells) = if quick {
        (3_500, 40, 450, 6)
    } else {
        (6_000, 80, 900, 8)
    };
    eprintln!(
        "classification over {n_neg} negatives / {n_pos} positives, {n_test} tests, \
         {cells} cells, {WORKERS} workers, prune on vs off…"
    );

    let w = skewed_workload(n_neg, n_pos, n_test, cells, 2016);
    let cmp = PruneComparison::run(&w, WORKERS);
    eprintln!(
        "  off {:>9} us, {} evals   on {:>9} us, {} evals \
         ({:.2}x, {:.1}% avoided, {} cells skipped, {} bound-rejected)",
        cmp.off.classify_us,
        cmp.off.evals,
        cmp.on.classify_us,
        cmp.on.evals,
        cmp.speedup(),
        cmp.avoided_fraction() * 100.0,
        cmp.on.prune.cells_skipped,
        cmp.on.prune.bound_rejected,
    );

    let doc = prune_to_json(WORKERS, &cmp, SPEEDUP_GATE, AVOIDED_GATE);
    std::fs::write(&out_path, &doc).expect("write BENCH_prune.json");
    std::fs::write(
        &report_path,
        format!(
            "=== prune on ===\n{}\n=== prune off ===\n{}\n",
            cmp.on.report_text, cmp.off.report_text
        ),
    )
    .expect("write prune report artifact");
    eprintln!("wrote {out_path} and {report_path}");

    let mut failed = false;
    if cmp.speedup() < SPEEDUP_GATE {
        eprintln!(
            "FAILED: classification speedup {:.2}x below the {SPEEDUP_GATE}x acceptance bar",
            cmp.speedup()
        );
        failed = true;
    }
    if cmp.avoided_fraction() < AVOIDED_GATE {
        eprintln!(
            "FAILED: avoided fraction {:.1}% below the {:.0}% acceptance bar",
            cmp.avoided_fraction() * 100.0,
            AVOIDED_GATE * 100.0
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
