//! Out-of-core execution benchmark: a multi-million-report blocking +
//! pairwise run, capped vs uncapped, written to `BENCH_spill.json`.
//!
//! Three legs over the same streamed corpus (see [`bench::spill`]):
//!
//! * **uncapped** — the in-memory baseline (no spill traffic allowed);
//! * **capped + spill** — executor memory ~3× below the shuffle's resident
//!   needs; the run must complete by spilling, with the same digest;
//! * **capped, no spill** — the pre-disk-tier engine; must abort with the
//!   memory-cap error (this is what the engine did before spill existed).
//!
//! **Gate**: the no-spill leg aborts, the spill leg completes with nonzero
//! spill traffic, and the capped and uncapped digests are bit-identical.
//!
//! Usage: `cargo run --release -p bench --bin bench_spill [--quick] [out.json]`
//!
//! Default scale is 10M reports (~1000× the paper's TGA corpus) under a
//! 64 MiB executor cap; `--quick` drops to 400k reports for smoke runs.
//! The gate applies in both modes — out-of-core correctness is a property
//! of the execution, not of scale.

use bench::spill::{is_memory_abort, run_blocking_pairwise, spill_to_json, SpillWorkload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_spill.json".to_string());

    let w = if quick {
        SpillWorkload::quick()
    } else {
        SpillWorkload::full()
    };
    eprintln!(
        "blocking + pairwise over {} streamed reports ({} arriving), {} executors, \
         {} partitions…",
        w.num_reports, w.arriving, w.executors, w.partitions
    );

    eprintln!(
        "  uncapped baseline ({} MiB/executor)…",
        w.uncapped_memory >> 20
    );
    let uncapped = run_blocking_pairwise(&w, w.uncapped_memory, true).expect("uncapped run");
    eprintln!(
        "    {} pairs, {} near-duplicates, makespan {} us, {} bytes spilled",
        uncapped.pairs_compared,
        uncapped.near_duplicates,
        uncapped.makespan_us,
        uncapped.bytes_spilled
    );

    eprintln!("  capped + spill ({} MiB/executor)…", w.capped_memory >> 20);
    let capped = run_blocking_pairwise(&w, w.capped_memory, true).expect("capped run");
    eprintln!(
        "    {} pairs, makespan {} us, {} MiB spilled / {} MiB read back, peak resident {} MiB",
        capped.pairs_compared,
        capped.makespan_us,
        capped.bytes_spilled >> 20,
        capped.bytes_read_back >> 20,
        capped.peak_resident_max >> 20
    );

    eprintln!("  capped, spill disabled (must abort)…");
    let no_spill_error = match run_blocking_pairwise(&w, w.capped_memory, false) {
        Err(err) if is_memory_abort(&err) => {
            let msg = err.to_string();
            eprintln!("    aborted as expected: {msg}");
            Some(msg)
        }
        Err(err) => {
            eprintln!("    FAILED with the wrong error: {err}");
            None
        }
        Ok(run) => {
            eprintln!(
                "    FAILED: completed under the cap without spill (digest {:#x})",
                run.digest
            );
            None
        }
    };

    let doc = spill_to_json(&w, &uncapped, &capped, no_spill_error.as_deref());
    std::fs::write(&out_path, &doc).expect("write BENCH_spill.json");
    eprintln!("wrote {out_path}");

    let passed = doc.contains("\"passed\": true");
    let digest_match = capped.digest == uncapped.digest;
    eprintln!(
        "gate: abort_without_spill={} completes_with_spill={} digest_match={digest_match} -> {}",
        no_spill_error.is_some(),
        capped.bytes_spilled > 0 && capped.bytes_read_back > 0,
        if passed { "PASSED" } else { "FAILED" }
    );
    if !passed {
        std::process::exit(1);
    }
}
