//! Chaos sweep: rerun the dedup pipeline under executor-kill schedules and
//! task-fault seeds, asserting the output digest never drifts from the
//! fault-free run. `--quick` for a smoke run, `--seed N` (repeatable) to
//! choose the task-fault seeds, `--steal-off` to run the whole sweep under
//! static placement (no morsel splitting or stealing — the digest must not
//! depend on the scheduler either way), `--report <path>` to dump the
//! recovery job reports as JSON. Exits nonzero if any schedule changes the
//! output.

use sparklet::SchedConfig;

fn main() {
    let mut quick = false;
    let mut sched = SchedConfig::default();
    let mut seeds: Vec<u64> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--steal-off" => sched = SchedConfig::static_placement(),
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                seeds.push(v.parse().expect("--seed must be a u64"));
            }
            other => {
                if let Some(v) = other.strip_prefix("--seed=") {
                    seeds.push(v.parse().expect("--seed must be a u64"));
                }
            }
        }
    }
    if seeds.is_empty() {
        seeds = vec![11, 22, 33];
    }
    let (results, identical) = bench::experiments::chaos::run_seeded_sched(quick, &seeds, sched);
    for result in results {
        println!("{result}");
    }
    bench::harness::maybe_write_report();
    if !identical {
        eprintln!("chaos: detection output drifted under a failure schedule");
        std::process::exit(1);
    }
}
