//! Regenerate Table 3 (dataset summary). `--quick` for a smoke run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for result in bench::experiments::table3::run(quick) {
        println!("{result}");
    }
}
