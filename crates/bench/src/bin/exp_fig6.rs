//! Regenerate Figure 6 (effect of k). `--quick` for a smoke run;
//! `--report <path>` writes the captured sparklet job reports as JSON.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for result in bench::experiments::fig6::run(quick) {
        println!("{result}");
    }
    bench::harness::maybe_write_report();
}
