//! Regenerate Table 1 (sample duplicated report pairs). `--quick` for a
//! smoke run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for result in bench::experiments::table1::run(quick) {
        println!("{result}");
    }
}
