//! Regenerate Figure 9 (scalability with training-set size). `--quick` for
//! a smoke run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for result in bench::experiments::fig9::run(quick) {
        println!("{result}");
    }
    bench::harness::maybe_write_report();
}
