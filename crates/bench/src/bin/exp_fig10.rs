//! Regenerate Figure 10 (executor scaling). `--quick` for a smoke run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for result in bench::experiments::fig10::run(quick) {
        println!("{result}");
    }
}
