//! Regenerate Figure 11 (test-set pruning). `--quick` for a smoke run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for result in bench::experiments::fig11::run(quick) {
        println!("{result}");
    }
}
