//! Run every experiment and rewrite `EXPERIMENTS.md` at the workspace root.
//!
//! `--quick` runs the smoke-scale variants (used in CI); the default runs
//! the paper-scale (÷50) configuration and takes a few minutes.
//! `--report <path>` writes the captured sparklet job reports as JSON.

use std::fmt::Write as _;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // bench lives at <root>/crates/bench.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let started = std::time::Instant::now();
    let results = bench::experiments::run_all(quick);

    let mut doc = String::new();
    writeln!(doc, "# EXPERIMENTS — paper vs measured").unwrap();
    writeln!(doc).unwrap();
    writeln!(
        doc,
        "Reproduction of every table and figure in the evaluation (§5) of \
         Wang & Karimi, *\"Parallel Duplicate Detection in Adverse Drug Reaction \
         Databases with Spark\"*, EDBT 2016. Regenerate with \
         `cargo run -p bench --release --bin exp_all`."
    )
    .unwrap();
    writeln!(doc).unwrap();
    writeln!(
        doc,
        "**Scaling.** The paper's pair volumes (1M–5M training pairs, 10k–205k \
         test pairs, 14-node Spark cluster) are scaled to one machine: \
         training ÷5 (preserving the label imbalance the results hinge on), \
         tests ÷10; execution times are **virtual minutes** from sparklet's \
         cost model (per-comparison cost scaled ×{} so magnitudes land near \
         paper scale — see DESIGN.md for why wall-clock is meaningless on \
         this harness). Shapes — who wins, where knees and crossovers fall — \
         are the reproduction target, not absolute numbers.",
        bench::harness::PAPER_SCALE
    )
    .unwrap();
    if quick {
        writeln!(doc).unwrap();
        writeln!(
            doc,
            "> **NOTE: this file was generated with `--quick` (smoke scale).** \
             Run without `--quick` for the paper-scale tables."
        )
        .unwrap();
    }
    writeln!(doc).unwrap();
    for r in &results {
        write!(doc, "{r}").unwrap();
    }
    writeln!(
        doc,
        "---\n\nGenerated in {:.1}s ({} mode).",
        started.elapsed().as_secs_f64(),
        if quick { "quick" } else { "full" }
    )
    .unwrap();

    for r in &results {
        println!("{r}");
    }
    let path = workspace_root().join("EXPERIMENTS.md");
    std::fs::write(&path, doc).expect("write EXPERIMENTS.md");
    println!("wrote {}", path.display());
    bench::harness::maybe_write_report();
}
