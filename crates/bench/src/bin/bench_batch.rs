//! SoA batch-kernel throughput: the seed-era dynamic-slice reference and
//! the fixed-arity scalar path vs the tiled column kernels, written to
//! `BENCH_batch.json`.
//!
//! Three kernels, each timed in three implementations over the same data:
//!
//! 1. **distances_to_point** — 1×N distance sweep (reported, not gated: a
//!    single query row gives the layout the least room to pay);
//! 2. **distances_block** — M×N register-tiled distance matrix
//!    (**gated ≥3× vs seed**);
//! 3. **assign_min** — fused nearest-centre assignment
//!    (**gated ≥3× vs seed**).
//!
//! The gated reference is the seed's representation (dynamic-slice rows,
//! per-pair ordered reduction), following `bench_hotpath`'s convention of
//! benchmarking against the lineage the optimisation replaced. The
//! `speedup_vs_scalar` column reports the margin over the PR-1 fixed-arity
//! path, which is itself SLP-vectorized.
//!
//! Usage: `cargo run --release -p bench --bin bench_batch [--quick] [out.json]`
//!
//! Build with `RUSTFLAGS="-C target-cpu=native"` (as CI does): the batch
//! kernels autovectorize to whatever SIMD width the host offers, and
//! benchmarking them at the portable baseline target understates them.
//! `--quick` shrinks the timing window for CI; the gate applies in both
//! modes.

use bench::batch::{
    batch_gates, batch_to_json, bench_points, scalar_assign_min, scalar_distances_block,
    scalar_distances_to_point, seed_assign_min, seed_distances_block, seed_distances_to_point,
    BatchKernelResult,
};
use bench::hotpath::throughput;
use simmetrics::soa::{assign_min, distances_block, distances_to_point};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_batch.json".to_string());

    // Workload shape: one Voronoi cell's worth of points, a kNN block of
    // queries, a k-means-sized centre roster. Sized L2-resident so the
    // timing measures the kernels, not DRAM.
    let secs = if quick { 0.25 } else { 1.0 };
    let (n_points, n_queries, n_centers) = (4_096, 64, 32);
    let (pdyn, prows, pbatch) = bench_points(n_points, 42);
    let (qdyn, qrows, qbatch) = bench_points(n_queries, 1_000_007);
    let (cdyn, centers, _) = bench_points(n_centers, 77);
    eprintln!(
        "timing 3 kernels x 3 implementations: {n_points} points, {n_queries} queries, \
         {n_centers} centres ({secs}s per measurement)…"
    );

    // Throughput unit: squared-distance results produced per second, so the
    // three kernels land on one comparable axis.
    let mut buf = Vec::new();
    let to_point = BatchKernelResult {
        kernel: "distances_to_point",
        seed_ops_per_sec: throughput(n_points as u64, secs, || {
            seed_distances_to_point(&pdyn, &qdyn[0], &mut buf);
            buf[0]
        }),
        scalar_ops_per_sec: throughput(n_points as u64, secs, || {
            scalar_distances_to_point(&prows, &qrows[0], &mut buf);
            buf[0]
        }),
        batch_ops_per_sec: throughput(n_points as u64, secs, || {
            distances_to_point(&pbatch, &qrows[0], &mut buf);
            buf[0]
        }),
    };

    let block_ops = (n_points * n_queries) as u64;
    let block = BatchKernelResult {
        kernel: "distances_block",
        seed_ops_per_sec: throughput(block_ops, secs, || {
            seed_distances_block(&qdyn, &pdyn, &mut buf);
            buf[0]
        }),
        scalar_ops_per_sec: throughput(block_ops, secs, || {
            scalar_distances_block(&qrows, &prows, &mut buf);
            buf[0]
        }),
        batch_ops_per_sec: throughput(block_ops, secs, || {
            distances_block(&qbatch, &pbatch, &mut buf);
            buf[0]
        }),
    };

    let assign_ops = (n_points * n_centers) as u64;
    let (mut idx, mut d2) = (Vec::new(), Vec::new());
    let assign = BatchKernelResult {
        kernel: "assign_min",
        seed_ops_per_sec: throughput(assign_ops, secs, || {
            seed_assign_min(&pdyn, &cdyn, &mut idx, &mut d2);
            d2[0]
        }),
        scalar_ops_per_sec: throughput(assign_ops, secs, || {
            scalar_assign_min(&prows, &centers, &mut idx, &mut d2);
            d2[0]
        }),
        batch_ops_per_sec: throughput(assign_ops, secs, || {
            assign_min(&pbatch, &centers, &mut idx, &mut d2);
            d2[0]
        }),
    };

    let results = vec![to_point, block, assign];
    for r in &results {
        eprintln!(
            "  {:<20} seed {:>11.0}/s   scalar {:>11.0}/s   batch {:>11.0}/s   \
             {:>5.2}x seed  {:>5.2}x scalar",
            r.kernel,
            r.seed_ops_per_sec,
            r.scalar_ops_per_sec,
            r.batch_ops_per_sec,
            r.speedup_vs_seed(),
            r.speedup_vs_scalar()
        );
    }
    // Acceptance gate: the tiled kernels must clear 3x over the seed-era
    // reference. distances_to_point is reported but ungated — a single
    // query row gives the layout the least room to pay.
    let gates = batch_gates(&results, 3.0);
    let doc = batch_to_json(&results, &gates);
    std::fs::write(&out_path, &doc).expect("write BENCH_batch.json");
    eprintln!("wrote {out_path}");
    eprintln!("{}", bench::harness::gates_summary(&gates));
    if !bench::harness::gates_all_passed(&gates) {
        std::process::exit(1);
    }
}
