//! Regenerate Figure 8 (cluster-number sweep: ratio and execution time).
//! `--quick` for a smoke run;
//! `--report <path>` writes the captured sparklet job reports as JSON.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for result in bench::experiments::fig7_8::run(quick) {
        if result.name.starts_with("Figure 8") {
            println!("{result}");
        }
    }
    bench::harness::maybe_write_report();
}
