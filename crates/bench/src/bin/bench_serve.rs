//! Serving benchmark: adaptive micro-batched duplicate lookups and signal
//! queries under open-loop load, written to `BENCH_serve.json`.
//!
//! Four measurements over one bootstrapped corpus (see [`bench::serve`]):
//!
//! * **batched vs request-at-a-time** — the same saturating Poisson stream
//!   through the batch-or-deadline admission queue and through
//!   `max_batch = 1`;
//! * **same-seed rerun** — a freshly built system must reproduce the
//!   batched leg's answer digest bit-for-bit;
//! * **saturation knee** — the batched leg swept across arrival rates;
//! * **ROR inflation** — drug–event reporting odds ratios raw vs deduped.
//!
//! **Gates**: batched throughput ≥2× request-at-a-time at equal-or-better
//! p99; answer digests identical across the admission policies and across
//! same-seed reruns; the raw co-mention cells strictly above the deduped
//! ones.
//!
//! Usage: `cargo run --release -p bench --bin bench_serve [--quick] [out.json]`
//!
//! Default scale is a 2,400-report corpus and 2,000 requests from two
//! million simulated users; `--quick` drops to 700/400 for smoke runs. The
//! gates apply in both modes.

use bench::harness::{gates_all_passed, gates_summary};
use bench::serve::{
    knee_sweep, resolve_requests, ror_inflation, run_leg, serve_gates, serve_to_json, ServeWorkload,
};
use dedup::ServeConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let w = if quick {
        ServeWorkload::quick()
    } else {
        ServeWorkload::full()
    };
    eprintln!(
        "serving {} requests ({}‰ signal) from {} users against {} reports, \
         mean gap {} us, {} executors…",
        w.requests, w.signal_per_mille, w.users, w.num_reports, w.mean_interarrival_us, w.executors
    );

    let (sys, ds) = w.build_system();
    let requests = resolve_requests(&w.load(), &ds);

    eprintln!("  batched leg (batch-or-deadline admission)…");
    let batched = run_leg(&sys, ServeConfig::default(), &requests);
    let report_text = format!("{}", sys.job_report());
    eprintln!(
        "    {} batches, p50 {} us, p99 {} us, {:.0} req/s, digest {:#018x}",
        batched.batches,
        batched.p50_us(),
        batched.p99_us(),
        batched.throughput_rps(),
        batched.digest
    );

    eprintln!("  request-at-a-time leg (max_batch = 1)…");
    let single = run_leg(&sys, ServeConfig::default().request_at_a_time(), &requests);
    eprintln!(
        "    {} batches, p50 {} us, p99 {} us, {:.0} req/s, digest {:#018x}",
        single.batches,
        single.p50_us(),
        single.p99_us(),
        single.throughput_rps(),
        single.digest
    );

    eprintln!("  same-seed rerun (fresh corpus + system + service)…");
    let (sys2, ds2) = w.build_system();
    let rerun = run_leg(
        &sys2,
        ServeConfig::default(),
        &resolve_requests(&w.load(), &ds2),
    );
    eprintln!("    digest {:#018x}", rerun.digest);

    // Span both sides of the capacity knee: the low rates are served at
    // the offered rate with deadline-bounded latency, the high rates pin
    // throughput at the service capacity while p99 departs.
    let gaps: &[u64] = if quick {
        &[100_000, 10_000, 40]
    } else {
        &[200_000, 100_000, 50_000, 12_500, 1_600, 200, 40]
    };
    eprintln!("  saturation knee (batched leg across arrival rates)…");
    let knee = knee_sweep(&w, &sys, &ds, gaps);
    for k in &knee {
        eprintln!(
            "    gap {:>5} us: offered {:>8.0} req/s, sustained {:>8.0} req/s, \
             p50 {:>7} us, p99 {:>8} us",
            k.mean_interarrival_us, k.offered_rps, k.throughput_rps, k.p50_us, k.p99_us
        );
    }

    eprintln!("  ROR-inflation table (raw vs deduplicated store)…");
    let ror = ror_inflation(&sys, &ds, 10);
    for r in &ror {
        eprintln!(
            "    {:<14} x {:<16} raw a={:>3} ROR {:>7.3}   dedup a={:>3} ROR {:>7.3}",
            r.drug, r.event, r.raw.a, r.raw.ror, r.deduped.a, r.deduped.ror
        );
    }

    let doc = serve_to_json(&w, &batched, &single, &rerun, &knee, &ror);
    std::fs::write(&out_path, &doc).expect("write BENCH_serve.json");
    let report_path = format!(
        "{}_report.txt",
        out_path.strip_suffix(".json").unwrap_or(&out_path)
    );
    std::fs::write(&report_path, report_text).expect("write job-report artifact");
    eprintln!("wrote {out_path} and {report_path}");

    let gates = serve_gates(&batched, &single, &rerun, &ror);
    eprintln!("{}", gates_summary(&gates));
    if !gates_all_passed(&gates) {
        std::process::exit(1);
    }
}
