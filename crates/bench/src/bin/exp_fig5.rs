//! Regenerate Figure 5 (PR curves and AUPR sweep). `--quick` for a smoke run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for result in bench::experiments::fig5::run(quick) {
        println!("{result}");
    }
}
