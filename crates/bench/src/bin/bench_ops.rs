//! Operator-dispatch benchmark: row-at-a-time vs chunked
//! operator-at-a-time execution, written to `BENCH_ops.json`.
//!
//! Both sides run identical operator chains over the Figure-6 workload's
//! distance rows at the same worker count; only the chunk size differs
//! (see [`bench::ops`]):
//!
//! * **narrow** — map → filter → flat_map, where per-chunk dispatch is the
//!   entire difference (**gated ≥2× virtual speedup**);
//! * **shuffle** — map into a hash shuffle with per-chunk bucketing,
//!   reported for context, not gated.
//!
//! Usage: `cargo run --release -p bench --bin bench_ops [--quick] [out.json]`
//!
//! `--quick` tiles a smaller workload for CI smoke runs; the gate applies
//! in both modes — the speedup is a property of dispatch amortization, not
//! of scale.

use bench::ops::{fig6_rows, ops_to_json, OpsComparison, OpsStage, OPS_WORKERS};

const GATE: f64 = 2.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_ops.json".to_string());

    let rows = fig6_rows(quick);
    eprintln!(
        "row vs chunked operators over {} fig-6 distance rows, {OPS_WORKERS} workers…",
        rows.len()
    );

    let mut comparisons = Vec::new();
    for stage in [OpsStage::Narrow, OpsStage::Shuffle] {
        let cmp = OpsComparison::measure(&rows, stage);
        eprintln!(
            "  {:<8} row {:>10} us ({} chunks)   chunked {:>10} us ({} chunks)   {:.2}x, \
             {:.0} -> {:.0} rec/s",
            cmp.label,
            cmp.row.makespan_us,
            cmp.row.chunks,
            cmp.chunked.makespan_us,
            cmp.chunked.chunks,
            cmp.speedup(),
            cmp.row.throughput,
            cmp.chunked.throughput,
        );
        comparisons.push(cmp);
    }

    let doc = ops_to_json(OPS_WORKERS, &comparisons, GATE);
    std::fs::write(&out_path, &doc).expect("write BENCH_ops.json");
    eprintln!("wrote {out_path}");

    let narrow = comparisons
        .iter()
        .find(|c| c.label == "narrow")
        .expect("narrow comparison");
    if narrow.speedup() < GATE {
        eprintln!(
            "FAILED: narrow-stage speedup {:.2}x below the {GATE}x acceptance bar",
            narrow.speedup()
        );
        std::process::exit(1);
    }
}
