//! Regenerate Figure 7 (cluster-number sweep: comparison counts).
//! Shares its sweep with Figure 8; both figures' tables are printed.
//! `--quick` for a smoke run;
//! `--report <path>` writes the captured sparklet job reports as JSON.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for result in bench::experiments::fig7_8::run(quick) {
        if result.name.starts_with("Figure 7") {
            println!("{result}");
        }
    }
    bench::harness::maybe_write_report();
}
