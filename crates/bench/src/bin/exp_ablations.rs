//! Run the design-choice ablations (Algorithm 1, Eq. 5 vs Eq. 1, positive
//! shortcut). `--quick` for a smoke run;
//! `--report <path>` writes the captured sparklet job reports as JSON.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for result in bench::experiments::ablations::run(quick) {
        println!("{result}");
    }
    bench::harness::maybe_write_report();
}
