//! Hot-path kernel throughput: retained references vs the allocation-free
//! replacements, written to `BENCH_hotpath.json`.
//!
//! Three kernel pairs (the PR's acceptance gates):
//!
//! 1. **jaccard** — `HashSet`-of-strings Jaccard vs the sorted-merge walk
//!    over interned `u32` ids, on narrative term sets;
//! 2. **pair_distance** — the seed's `Vec<f64>` + string-set §4.2 distance
//!    vector vs the `DistVec` + interned-set version;
//! 3. **euclidean8** — dynamic-slice Euclidean (with `sqrt`) vs the
//!    fixed-arity squared kernel the comparison loops now run on.
//!
//! Usage: `cargo run --release -p bench --bin bench_hotpath [out.json]`
//! with optional `--report <path>` to also run the distance pipeline as a
//! sparklet job and write its captured job report as JSON.

use adr_synth::{Dataset, SynthConfig};
use bench::hotpath::{
    dual_corpus, hotpath_gates, pair_distance_strings, throughput, to_json, KernelResult,
};
use dedup::pair_distance;
use simmetrics::{euclidean, jaccard_distance, jaccard_distance_sorted, squared_euclidean_fixed};

/// First non-flag argument (skipping `--report` and its value) is the
/// output path for the kernel table.
fn out_path_from_args() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--report" {
            let _ = args.next();
            continue;
        }
        if !a.starts_with("--") {
            return a;
        }
    }
    "BENCH_hotpath.json".to_string()
}

fn main() {
    let out_path = out_path_from_args();
    let ds = Dataset::generate(&SynthConfig::small(400, 20, 42));
    let dual = dual_corpus(&ds.reports);
    let n = dual.strings.len();
    // A fixed roster of comparison pairs, reused by every kernel.
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).step_by(17).map(move |j| (i, j)))
        .take(2_000)
        .collect();
    let batch = pairs.len() as u64;
    const SECS: f64 = 1.0;
    eprintln!(
        "timing 3 kernel pairs over {} report pairs ({} distinct tokens interned)…",
        pairs.len(),
        dual.interner.len()
    );

    let jaccard = KernelResult {
        kernel: "jaccard_narrative",
        reference_ops_per_sec: throughput(batch, SECS, || {
            pairs
                .iter()
                .map(|&(i, j)| {
                    jaccard_distance(
                        &dual.strings[i].narrative_terms,
                        &dual.strings[j].narrative_terms,
                    )
                })
                .sum()
        }),
        hotpath_ops_per_sec: throughput(batch, SECS, || {
            pairs
                .iter()
                .map(|&(i, j)| {
                    jaccard_distance_sorted(
                        &dual.interned[i].narrative_terms,
                        &dual.interned[j].narrative_terms,
                    )
                })
                .sum()
        }),
    };

    let pair_dist = KernelResult {
        kernel: "pair_distance",
        reference_ops_per_sec: throughput(batch, SECS, || {
            pairs
                .iter()
                .map(|&(i, j)| pair_distance_strings(&dual.strings[i], &dual.strings[j])[7])
                .sum()
        }),
        hotpath_ops_per_sec: throughput(batch, SECS, || {
            pairs
                .iter()
                .map(|&(i, j)| pair_distance(&dual.interned[i], &dual.interned[j])[7])
                .sum()
        }),
    };

    // 8-dim distance kernel over the actual distance vectors.
    let vectors: Vec<[f64; 8]> = pairs
        .iter()
        .map(|&(i, j)| pair_distance(&dual.interned[i], &dual.interned[j]))
        .collect();
    let slices: Vec<Vec<f64>> = vectors.iter().map(|v| v.to_vec()).collect();
    let euclid = KernelResult {
        kernel: "euclidean8",
        reference_ops_per_sec: throughput(batch, SECS, || {
            slices
                .windows(2)
                .map(|w| euclidean(&w[0], &w[1]))
                .sum::<f64>()
                + euclidean(&slices[slices.len() - 1], &slices[0])
        }),
        hotpath_ops_per_sec: throughput(batch, SECS, || {
            vectors
                .windows(2)
                .map(|w| squared_euclidean_fixed(&w[0], &w[1]))
                .sum::<f64>()
                + squared_euclidean_fixed(&vectors[vectors.len() - 1], &vectors[0])
        }),
    };

    let results = vec![jaccard, pair_dist, euclid];
    for r in &results {
        eprintln!(
            "  {:<18} reference {:>12.0} ops/s   hotpath {:>12.0} ops/s   {:>5.2}×",
            r.kernel,
            r.reference_ops_per_sec,
            r.hotpath_ops_per_sec,
            r.speedup()
        );
    }
    let gates = hotpath_gates(&results, 2.0);
    let doc = to_json(&results, &gates);
    std::fs::write(&out_path, &doc).expect("write BENCH_hotpath.json");
    eprintln!("wrote {out_path}");

    // `--report`: run the same distance workload as a real sparklet job so
    // the kernel table ships with a stage-level job report next to it.
    if bench::harness::report_path_from_args().is_some() {
        let cluster = sparklet::Cluster::local(4);
        let ids: Vec<(usize, usize)> = pairs.clone();
        let corpus = std::sync::Arc::new(dual.interned.clone());
        let c = corpus.clone();
        let computed = cluster
            .parallelize(ids, 8)
            .map(move |(i, j)| pair_distance(&c[i], &c[j])[7])
            .count()
            .expect("distance job");
        assert_eq!(computed, pairs.len());
        bench::harness::capture_run("bench_hotpath pair_distance job", &cluster);
        bench::harness::maybe_write_report();
    }
    // Acceptance gate: the interning kernels must clear 2x. The euclidean
    // kernel is reported but not gated — at ~200M ops/s it is memory-bound
    // and its win comes from removing the sqrt from comparison loops, not
    // from raw kernel throughput.
    eprintln!("{}", bench::harness::gates_summary(&gates));
    if !bench::harness::gates_all_passed(&gates) {
        std::process::exit(1);
    }
}
