//! Figure 9 — scalability with training-set size, per test block number.
//!
//! Paper setting: training 1M–5M pairs (here 20k–100k), test 10k (here 1k),
//! b=32, 25 executors, block number c ∈ {4, 8, 12}. Expected: execution
//! time grows sub-linearly — 1.4–2.1× when the training set grows 5× —
//! because the per-test work grows with cluster size (train/b) while task
//! overheads stay fixed; larger block numbers pay more per-stage overhead.

use crate::corpora::{self, scaled_train};
use crate::harness::{count, experiment_cluster_config, f3, ExperimentResult};
use fastknn::{FastKnn, FastKnnConfig};
use sparklet::Cluster;

/// Run the Figure 9 sweep.
pub fn run(quick: bool) -> Vec<ExperimentResult> {
    let blocks = [4usize, 8, 12];
    let (sizes, test_pairs): (Vec<usize>, usize) = if quick {
        (vec![1_000, 2_000, 4_000], 200)
    } else {
        ((1..=5).map(scaled_train).collect(), 1_000)
    };
    let corpus = if quick {
        corpora::small_corpus()
    } else {
        corpora::tga_corpus()
    };

    let mut r = ExperimentResult::new(
        "Figure 9 — execution time vs training-set size and block number",
        "Time grows 1.4–2.1× when the training set grows 5×; 25 executors, b=32.",
        &["training pairs", "c=4 (min)", "c=8 (min)", "c=12 (min)"],
    );

    let mut per_block_growth: Vec<(usize, f64, f64)> = Vec::new();
    let mut times: Vec<Vec<f64>> = Vec::new();
    // Uniform test pairs, as in the paper's scalability runs.
    let test = dedup::workload::uniform_test_pairs(corpus, test_pairs, 90);
    for (i, &size) in sizes.iter().enumerate() {
        let workload = dedup::workload::build_workload_on(corpus, size, 200, 90 + i as u64);
        let mut row_times = Vec::new();
        for &c in &blocks {
            let cluster = Cluster::new(experiment_cluster_config(25, 1));
            let model = FastKnn::fit(
                &cluster,
                &workload.train,
                FastKnnConfig {
                    k: 9,
                    b: 32,
                    c,
                    theta: 0.0,
                    seed: 9,
                    prune: true,
                },
            )
            .expect("fit");
            cluster.reset_run_state();
            let _ = model.classify(&test).expect("classify");
            crate::harness::capture_run(format!("fig9 classify train={size} c={c}"), &cluster);
            row_times.push(cluster.virtual_elapsed().minutes());
        }
        r.row(vec![
            count(size as u64),
            f3(row_times[0]),
            f3(row_times[1]),
            f3(row_times[2]),
        ]);
        times.push(row_times);
    }
    for (bi, &c) in blocks.iter().enumerate() {
        let first = times.first().unwrap()[bi];
        let last = times.last().unwrap()[bi];
        per_block_growth.push((c, first, last));
    }
    let growths: Vec<String> = per_block_growth
        .iter()
        .map(|(c, first, last)| format!("c={c}: {:.1}×", last / first))
        .collect();
    r.note(format!(
        "time growth over the {}× training sweep — {} (paper: 1.4–2.1×).",
        sizes.last().unwrap() / sizes.first().unwrap(),
        growths.join(", ")
    ));
    vec![r]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_fig9_time_grows_with_training_size() {
        let out = super::run(true);
        let rows = &out[0].rows;
        assert_eq!(rows.len(), 3);
        let first: f64 = rows[0][1].parse().unwrap();
        let last: f64 = rows[2][1].parse().unwrap();
        // At quick scale the fixed per-stage overheads dominate, so only
        // monotonicity is asserted; the full run shows the paper's 1.4–2.1×
        // band (see EXPERIMENTS.md).
        assert!(
            last >= first * 0.95,
            "bigger training sets must not be materially faster: {first} -> {last}"
        );
    }
}
