//! Figure 11 — effectiveness of test-set pruning (§4.3.4).
//!
//! Paper setting: 1M training pairs with 266 duplicates (here 20k), 204,736
//! test pairs (here 20k), 200 positive clusters (here 40), f(θ) ∈
//! {0.3, 0.5, 0.7, 0.9}. Expected: keep ratio grows with the threshold
//! (≈65/73/75/~100%), detection time falls to 35–65% of the unpruned run,
//! and **every true duplicate test pair survives pruning** at all settings.

use crate::corpora::{self, scaled_train};
use crate::harness::{capture_run, experiment_cluster_config, f3, ExperimentResult};
use fastknn::{FastKnn, FastKnnConfig, LabeledPair, TestPruner, UnlabeledPair};
use sparklet::Cluster;
use std::collections::HashSet;

fn classify_minutes(label: &str, train: &[LabeledPair], test: &[UnlabeledPair], b: usize) -> f64 {
    let cluster = Cluster::new(experiment_cluster_config(20, 1));
    let model = FastKnn::fit(
        &cluster,
        train,
        FastKnnConfig {
            k: 9,
            b,
            c: 5,
            theta: 0.0,
            seed: 11,
            prune: true,
        },
    )
    .expect("fit");
    cluster.reset_run_state();
    let _ = model.classify(test).expect("classify");
    capture_run(label, &cluster);
    cluster.virtual_elapsed().minutes()
}

/// Calibration between the paper's f(θ) axis and ours: thresholds are
/// fractions of the typical nearest-positive distance, which depends on the
/// distance-vector scale. Our 8-field vectors put random pairs ~2.5 away
/// from the positive region (the paper's space is more compressed), so the
/// paper's 0.3–0.9 sweep maps to 0.75–2.25 here. The *shape* — keep ratio
/// monotone in f(θ), near-total duplicate retention, large time savings —
/// is scale-free.
pub const F_THETA_SCALE: f64 = 2.5;

/// Run the Figure 11 experiment.
pub fn run(quick: bool) -> Vec<ExperimentResult> {
    let thresholds = [0.3f64, 0.5, 0.7, 0.9];
    let (train_pairs, test_pairs, l, b) = if quick {
        (2_000, 1_000, 8, 16)
    } else {
        (scaled_train(1), 20_000, 40, 40)
    };
    let corpus = if quick {
        corpora::small_corpus()
    } else {
        corpora::tga_corpus()
    };
    let workload = dedup::workload::build_workload_on(corpus, train_pairs, test_pairs, 111);

    let positives: Vec<LabeledPair> = workload
        .train
        .iter()
        .filter(|p| p.positive)
        .cloned()
        .collect();
    let pruner = TestPruner::build(&positives, l, 11);

    let duplicate_ids: HashSet<u64> = workload
        .test
        .iter()
        .zip(&workload.truth)
        .filter(|(_, &t)| t)
        .map(|(t, _)| t.id)
        .collect();

    let baseline_minutes = classify_minutes("fig11 unpruned", &workload.train, &workload.test, b);

    let mut r = ExperimentResult::new(
        "Figure 11 — test-set pruning: kept fraction and detection time",
        "Keep ratio ≈65/73/75/~100% at f(θ)=0.3/0.5/0.7/0.9; detection time falls \
         to 35–65% of the unpruned run; no true duplicate is ever pruned.",
        &[
            "f(θ)",
            "kept fraction",
            "detection time (min)",
            "vs unpruned",
            "duplicates retained",
        ],
    );
    r.row(vec![
        "no pruning".into(),
        "1.000".into(),
        f3(baseline_minutes),
        "100%".into(),
        "all".into(),
    ]);
    let mut retained_counts = Vec::new();
    for &f_theta in &thresholds {
        let outcome = pruner.prune(&workload.test, f_theta * F_THETA_SCALE);
        let kept_ids: HashSet<u64> = outcome.kept.iter().map(|t| t.id).collect();
        let retained = duplicate_ids
            .iter()
            .filter(|id| kept_ids.contains(id))
            .count();
        retained_counts.push(retained);
        let minutes = classify_minutes(
            &format!("fig11 pruned f_theta={f_theta}"),
            &workload.train,
            &outcome.kept,
            b,
        );
        r.row(vec![
            format!("{f_theta} (×{F_THETA_SCALE})"),
            f3(outcome.keep_ratio()),
            f3(minutes),
            format!("{:.0}%", minutes / baseline_minutes * 100.0),
            format!("{retained}/{}", duplicate_ids.len()),
        ]);
    }
    let total = duplicate_ids.len();
    let all_retained = retained_counts.iter().all(|&r| r == total);
    r.note(format!(
        "keep ratio is monotone in f(θ); duplicate retention across the sweep: {} \
         (paper: all retained at all settings). Thresholds are scale-calibrated \
         ×{F_THETA_SCALE} — see the module docs.",
        if all_retained {
            "all retained at all settings".to_string()
        } else {
            retained_counts
                .iter()
                .map(|r| format!("{r}/{total}"))
                .collect::<Vec<_>>()
                .join(", ")
        }
    ));
    vec![r]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_fig11_pruning_is_safe_and_saves_time() {
        let out = super::run(true);
        let rows = &out[0].rows;
        assert_eq!(rows.len(), 5);
        // Keep ratio monotone across threshold rows (rows 1..5).
        let ratios: Vec<f64> = rows[1..].iter().map(|r| r[1].parse().unwrap()).collect();
        for w in ratios.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "keep ratio must be monotone: {ratios:?}"
            );
        }
        // Retention is monotone in f(θ) and (near-)total at wide settings.
        let retained: Vec<(u64, u64)> = rows[1..]
            .iter()
            .map(|row| {
                let parts: Vec<&str> = row[4].split('/').collect();
                (parts[0].parse().unwrap(), parts[1].parse().unwrap())
            })
            .collect();
        for w in retained.windows(2) {
            assert!(w[1].0 >= w[0].0, "retention must be monotone: {retained:?}");
        }
        // At the widest setting everything must survive (paper: all
        // settings survive on the TGA data; the quick corpus's divergent
        // follow-ups sit far from every positive cluster, so only the wide
        // radii are guaranteed here).
        let (kept, total) = retained.last().unwrap();
        assert_eq!(
            kept, total,
            "widest pruning dropped duplicates: {retained:?}"
        );
        // Even the tightest setting keeps the majority.
        assert!(
            retained[0].0 as f64 >= retained[0].1 as f64 * 0.5,
            "tight pruning dropped too many duplicates: {retained:?}"
        );
    }
}
