//! Chaos experiment — recovery cost and output stability under executor
//! failures.
//!
//! Not a figure from the paper: the paper runs on a healthy 14-node cluster
//! and never measures failure recovery. This experiment establishes the
//! property the paper implicitly relies on — that Spark-style lineage
//! recovery is *semantically free*: executor kills, shuffle-output loss and
//! task retries may cost time but must never change a detection. Every
//! schedule in the sweep reruns the same seeded bootstrap + `detect_new`
//! batch and compares its output digest, bit for bit, against the
//! fault-free run.

use crate::harness::{capture_run, f3, ExperimentResult};
use adr_model::{AdrReport, PairId};
use adr_synth::{Dataset, SynthConfig};
use dedup::{DedupConfig, DedupSystem};
use sparklet::{stable_hash, Cluster, ClusterConfig, FaultConfig, JobReport, SchedConfig};

struct ChaosOutcome {
    digest: u64,
    report: JobReport,
}

/// Run the full dedup pipeline on a seeded corpus under `config`,
/// capturing the run's job report under `label` for `--report`.
fn run_pipeline(quick: bool, label: &str, config: ClusterConfig) -> sparklet::Result<ChaosOutcome> {
    let (reports, cut) = if quick {
        (300usize, 280usize)
    } else {
        (800, 740)
    };
    let ds = Dataset::generate(&SynthConfig::small(reports, reports / 16, 77));
    let historical: Vec<AdrReport> = ds.reports[..cut].to_vec();
    let labelled: Vec<PairId> = ds
        .duplicate_pairs
        .iter()
        .filter(|p| (p.hi as usize) < cut)
        .copied()
        .collect();
    let arriving: Vec<AdrReport> = ds.reports[cut..].to_vec();
    let cluster = Cluster::new(config);
    let handle = cluster.clone();
    let mut dcfg = DedupConfig::default();
    dcfg.knn.b = 8;
    dcfg.bootstrap_negatives = 400;
    let mut system = DedupSystem::new(cluster, dcfg);
    system.bootstrap(&historical, &labelled)?;
    let detections = system.detect_new(&arriving)?;
    let records: Vec<(u64, u64, u64, bool)> = detections
        .iter()
        .map(|d| (d.pair.lo, d.pair.hi, d.score.to_bits(), d.is_duplicate))
        .collect();
    capture_run(format!("chaos {label}"), &handle);
    Ok(ChaosOutcome {
        digest: stable_hash(&records),
        report: handle.job_report(),
    })
}

fn config_with(fault: FaultConfig, speculation: bool, sched: SchedConfig) -> ClusterConfig {
    let mut config = ClusterConfig::local(4);
    config.fault = fault;
    config.speculation = speculation;
    config.sched = sched;
    config
}

/// Run the chaos sweep. Returns the result tables and whether every
/// schedule reproduced the fault-free digest (the binary exits nonzero
/// when this is false).
pub fn run_seeded(quick: bool, fault_seeds: &[u64]) -> (Vec<ExperimentResult>, bool) {
    run_seeded_sched(quick, fault_seeds, SchedConfig::default())
}

/// [`run_seeded`] with an explicit scheduler configuration: the whole sweep
/// (baseline included) runs under `sched`, so CI can assert the digest is
/// failure-proof both with morsel stealing on and with static placement.
pub fn run_seeded_sched(
    quick: bool,
    fault_seeds: &[u64],
    sched: SchedConfig,
) -> (Vec<ExperimentResult>, bool) {
    let baseline = run_pipeline(
        quick,
        "fault-free baseline",
        config_with(FaultConfig::disabled(), false, sched),
    )
    .expect("fault-free run");
    let total = baseline.report.virtual_us;

    let mut schedules: Vec<(String, ClusterConfig)> = vec![
        (
            "kill executor 1 at t/2".into(),
            config_with(
                FaultConfig::disabled().kill_at_time(1, total / 2),
                false,
                sched,
            ),
        ),
        (
            "kill executors 1,2,3 staggered".into(),
            config_with(
                FaultConfig::disabled()
                    .kill_at_time(1, total / 4)
                    .kill_at_time(2, total / 2)
                    .kill_at_time(3, 3 * total / 4),
                false,
                sched,
            ),
        ),
        (
            "kill executor 0 mid shuffle write".into(),
            config_with(
                FaultConfig::disabled().kill_in_stage(
                    0,
                    "shuffle#1-write[map_partitions_with_ctx]",
                    1,
                ),
                false,
                sched,
            ),
        ),
    ];
    for &seed in fault_seeds {
        schedules.push((
            format!("task faults p=0.05 seed {seed}"),
            config_with(FaultConfig::with_probability(0.05, seed), false, sched),
        ));
    }
    schedules.push((
        "speculation + faults p=0.02".into(),
        config_with(FaultConfig::with_probability(0.02, 7), true, sched),
    ));

    let mut r = ExperimentResult::new(
        "Chaos — dedup output under executor failures",
        "Not in the paper; lineage recovery must reproduce the fault-free output bit for bit.",
        &[
            "schedule",
            "lost",
            "blacklisted",
            "fetch fails",
            "recomputed",
            "tasks lost",
            "spec (win)",
            "overhead",
            "output",
        ],
    );
    let mut all_identical = true;
    for (label, config) in schedules {
        let outcome = run_pipeline(quick, &label, config).expect("chaos run");
        let rec = &outcome.report.recovery;
        let identical = outcome.digest == baseline.digest;
        all_identical &= identical;
        let overhead =
            (outcome.report.virtual_us as f64 - total as f64) / (total as f64).max(1.0) * 100.0;
        r.row(vec![
            label.clone(),
            rec.executors_lost.to_string(),
            rec.executors_blacklisted.to_string(),
            rec.fetch_failures.to_string(),
            rec.recomputed_map_tasks.to_string(),
            rec.tasks_lost.to_string(),
            format!("{} ({})", rec.speculative_launched, rec.speculative_wins),
            format!("{}%", f3(overhead)),
            if identical {
                "identical".into()
            } else {
                "DRIFT".into()
            },
        ]);
    }
    r.note(format!(
        "fault-free digest {:#018x}, virtual time {:.1} s, scheduling {}; \
         every schedule must read 'identical'.",
        baseline.digest,
        total as f64 / 1e6,
        if sched.steal {
            "morsels + stealing"
        } else {
            "static placement"
        }
    ));
    if !all_identical {
        r.note("OUTPUT DRIFTED under at least one schedule — recovery is not semantically free.");
    }
    (vec![r], all_identical)
}

/// Default sweep (used by `exp_all`).
pub fn run(quick: bool) -> Vec<ExperimentResult> {
    run_seeded(quick, &[11, 22, 33]).0
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_chaos_sweep_reproduces_the_fault_free_digest() {
        let (out, ok) = super::run_seeded(true, &[11]);
        assert!(ok, "output drifted under faults:\n{}", out[0]);
        let rows = &out[0].rows;
        assert_eq!(rows.len(), 5);
        for row in rows {
            assert_eq!(row.last().unwrap(), "identical");
        }
        // The staggered-kill schedule loses exactly three executors.
        assert_eq!(rows[1][1], "3");
    }
}
