//! Figures 7 and 8 — effect of the training-cluster number `b`.
//!
//! Paper setting: 4M training pairs (here 80k), 10k test (here 1k),
//! b ∈ {10, 25, 40, 55, 70}. Expected shapes:
//!
//! * 7(a) intra-cluster comparisons fall as `b` grows (smaller clusters),
//!   flattening/upticking at large `b` (uneven cluster sizes);
//! * 7(b) additional clusters checked grows with `b`;
//! * 7(c) cross-cluster comparisons fall with `b` (smaller clusters beat
//!   more-clusters-to-check);
//! * 8(a) cross/intra ratio stays small (paper: 1.4–1.9%);
//! * 8(b) execution time falls from b=25 to b≈55 then rises slightly; below
//!   b=25 the joined partitions exceed executor memory and retry storms
//!   inflate the time.

use crate::corpora::{self, scaled_train};
use crate::harness::{count, experiment_cluster_config, f3, ExperimentResult};
use fastknn::{counters, FastKnn, FastKnnConfig};
use sparklet::Cluster;

struct Sweep {
    b: usize,
    intra: u64,
    additional: u64,
    cross: u64,
    minutes: f64,
    memory_kills: u64,
}

fn sweep(quick: bool) -> Vec<Sweep> {
    let bs = [10usize, 25, 40, 55, 70];
    let (train_pairs, test_pairs) = if quick {
        (4_000, 200)
    } else {
        (scaled_train(4), 1_000)
    };
    let corpus = if quick {
        corpora::small_corpus()
    } else {
        corpora::tga_corpus()
    };
    let workload = dedup::workload::build_workload_on(corpus, train_pairs, 200, 78);
    // The paper's scalability experiments test on randomly selected pairs:
    // overwhelmingly non-duplicate (which keeps Fig. 8(a)'s ratio small),
    // with a residue of duplicate-like pairs that drives the non-zero
    // cross-cluster series of Figs. 7(b)/(c). We mirror that mix: uniform
    // pairs plus a ~1% candidate-stream slice.
    let mut test = dedup::workload::uniform_test_pairs(corpus, test_pairs - 10, 78);
    test.extend(workload.test.iter().take(10).cloned());
    // Executor memory sized so that b=10's joined partitions (~train/b
    // vectors) overcommit while large b fits comfortably — the Fig. 8(b)
    // "below 25" regime. A partition holds ~(train/b + test/b) 8-dim f64
    // vectors at 64 B each; the budget is set at the MEAN b=10 partition
    // size, so b=10's above-average (skewed) partitions thrash while the
    // 4–7× smaller partitions of b>=40 fit even with k-means skew.
    let partition_bytes_at = |b: usize| (train_pairs + test_pairs) / b * 64;
    let memory_budget = partition_bytes_at(10);

    bs.iter()
        .map(|&b| {
            let mut config = experiment_cluster_config(20, 1);
            config.memory_per_executor = memory_budget;
            let cluster = Cluster::new(config);
            let model = FastKnn::fit(
                &cluster,
                &workload.train,
                FastKnnConfig {
                    k: 9,
                    b,
                    c: 4,
                    theta: 0.0,
                    seed: 8,
                    prune: true,
                },
            )
            .expect("fit");
            cluster.reset_run_state();
            let _ = model.classify(&test).expect("classify");
            crate::harness::capture_run(format!("fig7_8 classify b={b}"), &cluster);
            let m = cluster.metrics();
            Sweep {
                b,
                intra: m.counter(counters::INTRA_COMPARISONS).get(),
                additional: m.counter(counters::ADDITIONAL_CLUSTERS).get(),
                cross: m.counter(counters::CROSS_COMPARISONS).get(),
                minutes: cluster.virtual_elapsed().minutes(),
                memory_kills: m.memory_kills.get(),
            }
        })
        .collect()
}

/// Run the Figure 7 + Figure 8 sweep (single pass, both figures' series).
pub fn run(quick: bool) -> Vec<ExperimentResult> {
    let data = sweep(quick);

    let mut f7a = ExperimentResult::new(
        "Figure 7(a) — intra-cluster comparisons vs cluster number",
        "Decreases as b grows; trend stops (slight increase) by b=70 due to uneven \
         cluster sizes.",
        &["b", "intra-cluster comparisons"],
    );
    let mut f7b = ExperimentResult::new(
        "Figure 7(b) — additional clusters checked vs cluster number",
        "Grows roughly proportionally with b.",
        &["b", "additional clusters checked"],
    );
    let mut f7c = ExperimentResult::new(
        "Figure 7(c) — cross-cluster comparisons vs cluster number",
        "Decreasing trend with b; stops around b=70.",
        &["b", "cross-cluster comparisons"],
    );
    let mut f8a = ExperimentResult::new(
        "Figure 8(a) — cross/intra comparison ratio",
        "Stays between 1.4% and 1.9%: cross-cluster work is marginal.",
        &["b", "ratio"],
    );
    let mut f8b = ExperimentResult::new(
        "Figure 8(b) — execution time vs cluster number",
        "Below b=25 joined partitions exceed executor memory: task failures and \
         retries stretch execution; 25→55 cuts time ~31%; b=70 adds ~5.7%.",
        &["b", "virtual minutes", "memory-kill retries"],
    );

    for s in &data {
        f7a.row(vec![s.b.to_string(), count(s.intra)]);
        f7b.row(vec![s.b.to_string(), count(s.additional)]);
        f7c.row(vec![s.b.to_string(), count(s.cross)]);
        f8a.row(vec![
            s.b.to_string(),
            format!("{:.2}%", s.cross as f64 / s.intra.max(1) as f64 * 100.0),
        ]);
        f8b.row(vec![
            s.b.to_string(),
            f3(s.minutes),
            s.memory_kills.to_string(),
        ]);
    }

    f7a.note(format!(
        "intra comparisons shrink {:.1}x from b=10 to b=55.",
        data[0].intra as f64 / data[3].intra.max(1) as f64
    ));
    f7b.note(format!(
        "additional clusters grow {}→{} across the sweep.",
        data[0].additional,
        data.last().unwrap().additional
    ));
    let ratios: Vec<f64> = data
        .iter()
        .map(|s| s.cross as f64 / s.intra.max(1) as f64 * 100.0)
        .collect();
    f8a.note(format!(
        "ratio spans {:.2}%–{:.2}% across the sweep.",
        ratios.iter().cloned().fold(f64::MAX, f64::min),
        ratios.iter().cloned().fold(f64::MIN, f64::max)
    ));
    f8b.note(format!(
        "b=10 suffers {} memory-kill retries; time falls from b=25 to b=55 by {:.0}%.",
        data[0].memory_kills,
        (1.0 - data[3].minutes / data[1].minutes) * 100.0
    ));
    vec![f7a, f7b, f7c, f8a, f8b]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_sweep_shapes() {
        let data = super::sweep(true);
        assert_eq!(data.len(), 5);
        // 7(a): intra comparisons must decrease from b=10 to b=55.
        assert!(
            data[3].intra < data[0].intra,
            "intra must fall with b: {} -> {}",
            data[0].intra,
            data[3].intra
        );
        // 7(b): additional clusters grow with b.
        assert!(data.last().unwrap().additional >= data[0].additional);
        // 8(b): the smallest b thrashes; memory pressure relaxes with b.
        assert!(data[0].memory_kills > 0, "b=10 must thrash");
        assert!(
            data[4].memory_kills < data[0].memory_kills,
            "memory pressure must relax with b: {} -> {}",
            data[0].memory_kills,
            data[4].memory_kills
        );
    }
}
