//! One module per table/figure of §5, plus the design-choice ablations.

pub mod ablations;
pub mod chaos;
pub mod fig10;
pub mod fig11;
pub mod fig5;
pub mod fig6;
pub mod fig7_8;
pub mod fig9;
pub mod table1;
pub mod table3;

use crate::harness::ExperimentResult;
use mlcore::pr_curve;

/// Downsample a PR curve to interpolated precision at fixed recall grid
/// points (the standard 11-point interpolated curve) so tables stay small.
pub fn sampled_pr_curve(scored: &[(f64, bool)]) -> Vec<(f64, f64)> {
    let curve = pr_curve(scored);
    (0..=10)
        .map(|i| {
            let r = i as f64 / 10.0;
            // Interpolated precision: max precision at any recall >= r.
            let p = curve
                .iter()
                .filter(|pt| pt.recall >= r - 1e-12)
                .map(|pt| pt.precision)
                .fold(0.0f64, f64::max);
            (r, p)
        })
        .collect()
}

/// Convenience: run every experiment (used by `exp_all`).
pub fn run_all(quick: bool) -> Vec<ExperimentResult> {
    let mut out = Vec::new();
    out.extend(table1::run(quick));
    out.extend(table3::run(quick));
    out.extend(fig5::run(quick));
    out.extend(fig6::run(quick));
    out.extend(fig7_8::run(quick));
    out.extend(fig9::run(quick));
    out.extend(fig10::run(quick));
    out.extend(fig11::run(quick));
    out.extend(ablations::run(quick));
    out.extend(chaos::run(quick));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_curve_has_eleven_points_and_descends_overall() {
        let scored = vec![
            (0.9, true),
            (0.8, true),
            (0.7, false),
            (0.6, true),
            (0.2, false),
            (0.1, false),
        ];
        let pts = sampled_pr_curve(&scored);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[10].0, 1.0);
        // Interpolated precision is non-increasing in recall.
        for w in pts.windows(2) {
            assert!(w[0].1 >= w[1].1 - 1e-12);
        }
    }
}
