//! Table 3 — dataset summary.

use crate::corpora;
use crate::harness::{count, ExperimentResult};

/// Regenerate Table 3 from the synthetic corpus and compare to the paper.
pub fn run(quick: bool) -> Vec<ExperimentResult> {
    let corpus = if quick {
        corpora::small_corpus()
    } else {
        corpora::tga_corpus()
    };
    let s = corpus.dataset.summary();
    let mut r = ExperimentResult::new(
        "Table 3 — Summary of TGA dataset",
        "10,382 cases over 1 Jul–31 Dec 2013; 37 fields/report; 1,366 unique drugs; \
         2,351 unique ADRs; 286 known duplicate pairs.",
        &["Property", "Paper", "Measured (synthetic corpus)"],
    );
    r.row(vec![
        "Report period".into(),
        "1 Jul. 2013 - 31 Dec. 2013".into(),
        s.report_period.into(),
    ]);
    r.row(vec![
        "Number of cases".into(),
        "10,382".into(),
        count(s.num_cases as u64),
    ]);
    r.row(vec![
        "Number of fields per report".into(),
        "37".into(),
        s.fields_per_report.to_string(),
    ]);
    r.row(vec![
        "Number of unique drugs".into(),
        "1,366".into(),
        count(s.unique_drugs as u64),
    ]);
    r.row(vec![
        "Number of unique ADRs".into(),
        "2,351".into(),
        count(s.unique_adrs as u64),
    ]);
    r.row(vec![
        "Known duplicate pairs".into(),
        "286".into(),
        count(s.known_duplicate_pairs as u64),
    ]);
    if !quick {
        r.note(
            "the generator is sized to reproduce every Table 3 statistic exactly \
             (see adr-synth; DESIGN.md documents the substitution).",
        );
    }
    vec![r]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_a_table() {
        let out = super::run(true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rows.len(), 6);
    }
}
