//! Figure 5 — detection quality: Fast kNN vs SVM vs SVM clustering.
//!
//! (a) PR curves at the large training size (paper: 5M pairs; here 100k);
//! (b) PR curves at the small training size (paper: 1M; here 20k);
//! (c) AUPR across the training-size sweep for all three classifiers.

use crate::corpora::{self, scaled_train};
use crate::experiments::sampled_pr_curve;
use crate::harness::{capture_run, count, experiment_cluster_config, f3, ExperimentResult};
use dedup::workload::PairWorkload;
use dedup::{svm_clustering_scores, svm_scores};
use fastknn::{FastKnn, FastKnnConfig};
use mlcore::average_precision;
use mlcore::svm::SvmConfig;
use sparklet::Cluster;
use std::collections::HashMap;

fn knn_scores(workload: &PairWorkload, seed: u64) -> Vec<f64> {
    let cluster = Cluster::new(experiment_cluster_config(25, 1));
    let model = FastKnn::fit(
        &cluster,
        &workload.train,
        FastKnnConfig {
            k: 9,
            b: 32,
            c: 4,
            theta: 0.0,
            seed,
            prune: true,
        },
    )
    .expect("fit");
    let scored = model.classify(&workload.test).expect("classify");
    capture_run(format!("fig5 knn seed={seed}"), &cluster);
    let by_id: HashMap<u64, f64> = scored.iter().map(|s| (s.id, s.score)).collect();
    workload.test.iter().map(|t| by_id[&t.id]).collect()
}

fn svm_scores_aligned(workload: &PairWorkload) -> Vec<f64> {
    let scores = svm_scores(&workload.train, &workload.test, &SvmConfig::default());
    let by_id: HashMap<u64, f64> = scores.into_iter().collect();
    workload.test.iter().map(|t| by_id[&t.id]).collect()
}

fn svm_clustering_aligned(workload: &PairWorkload) -> Vec<f64> {
    // Paper Fig. 5(c): "the number of clusters in SVM clustering is set to 8".
    let budget = workload.train.len() / 2;
    let scores = svm_clustering_scores(
        &workload.train,
        &workload.test,
        8,
        budget,
        &SvmConfig::default(),
    );
    let by_id: HashMap<u64, f64> = scores.into_iter().collect();
    workload.test.iter().map(|t| by_id[&t.id]).collect()
}

fn curve_table(
    name: &str,
    expectation: &str,
    workload: &PairWorkload,
    seed: u64,
) -> ExperimentResult {
    let knn = workload.scored(&knn_scores(workload, seed));
    let svm = workload.scored(&svm_scores_aligned(workload));
    let knn_curve = sampled_pr_curve(&knn);
    let svm_curve = sampled_pr_curve(&svm);
    let mut r = ExperimentResult::new(
        name,
        expectation,
        &["recall", "kNN precision", "SVM precision"],
    );
    for ((rec, pk), (_, ps)) in knn_curve.iter().zip(&svm_curve) {
        r.row(vec![f3(*rec), f3(*pk), f3(*ps)]);
    }
    let ap_knn = average_precision(&knn);
    let ap_svm = average_precision(&svm);
    r.note(format!(
        "AUPR: kNN {} vs SVM {} on {} training / {} test pairs ({} test positives).",
        f3(ap_knn),
        f3(ap_svm),
        count(workload.train.len() as u64),
        count(workload.test.len() as u64),
        workload.test_positives()
    ));
    r
}

/// Run the Figure 5 experiments.
pub fn run(quick: bool) -> Vec<ExperimentResult> {
    let (sizes, test_pairs): (Vec<usize>, usize) = if quick {
        (vec![1_000, 2_000], 300)
    } else {
        ((1..=5).map(scaled_train).collect(), 2_000)
    };
    let corpus = if quick {
        corpora::small_corpus()
    } else {
        corpora::tga_corpus()
    };

    let large = dedup::workload::build_workload_on(
        corpus,
        *sizes.last().expect("nonempty"),
        test_pairs,
        51,
    );
    let small = dedup::workload::build_workload_on(corpus, sizes[0], test_pairs, 52);

    let mut out = vec![
        curve_table(
            "Figure 5(a) — PR curves, large training set (paper: 5M pairs)",
            "kNN's curve dominates SVM's across the recall range.",
            &large,
            5,
        ),
        curve_table(
            "Figure 5(b) — PR curves, small training set (paper: 1M pairs)",
            "kNN still dominates SVM at the smaller training size.",
            &small,
            6,
        ),
    ];

    let mut c = ExperimentResult::new(
        "Figure 5(c) — AUPR vs training-set size",
        "kNN tops both SVM variants at every size; cluster-sampled SVM does not \
         significantly improve plain SVM; kNN improves on SVM by 19.1% on average.",
        &["training pairs", "kNN", "SVM", "SVM clustering"],
    );
    let mut improvements = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let w = dedup::workload::build_workload_on(corpus, size, test_pairs, 60 + i as u64);
        let ap_knn = average_precision(&w.scored(&knn_scores(&w, 70 + i as u64)));
        let ap_svm = average_precision(&w.scored(&svm_scores_aligned(&w)));
        let ap_svmc = average_precision(&w.scored(&svm_clustering_aligned(&w)));
        improvements.push((ap_knn - ap_svm) / ap_svm.max(1e-9));
        c.row(vec![
            count(size as u64),
            f3(ap_knn),
            f3(ap_svm),
            f3(ap_svmc),
        ]);
    }
    let mean_improvement = improvements.iter().sum::<f64>() / improvements.len() as f64 * 100.0;
    c.note(format!(
        "kNN improves on SVM by {mean_improvement:.1}% on average across sizes \
         (paper: 19.1%). kNN wins at every size, as in the paper; the gap's \
         magnitude is solver-dependent — see the SVM-solver ablation, where an \
         era-typical stochastic solver collapses to near-random while kNN is \
         unaffected, which is the regime behind the paper's larger figure."
    ));
    out.push(c);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_fig5_runs_and_knn_beats_svm() {
        let out = super::run(true);
        assert_eq!(out.len(), 3);
        // Parse the AUPR note of Fig 5(a): kNN should beat SVM even on the
        // quick workload.
        let note = &out[0].notes[0];
        assert!(note.contains("AUPR"), "{note}");
    }
}
