//! Figure 10 — execution time vs number of executors.
//!
//! Paper setting: training ∈ {2M, 3M, 4M} (here 40k–80k), test 10k (here
//! 1k), b=48, block number 5, executors 5–20 with 32 GB / 1 core each.
//! Expected: (a) time falls with executors but flattens (shuffle /
//! coordination overhead grows with the cluster); (b) the pairwise-distance
//! step is a small share of total time and keeps speeding up (its
//! distribution cost is low).
//!
//! The virtual clock records per-task costs once per workload; the
//! executor sweep is then a pure makespan query — the same mechanics that
//! determine the paper's curve (task balance + per-executor overhead).

use crate::corpora::{self, scaled_train};
use crate::harness::{count, experiment_cluster_config, f3, paper_cost, ExperimentResult};
use adr_model::PairId;
use dedup::pairing::pairwise_distances;
use fastknn::{FastKnn, FastKnnConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparklet::Cluster;

const EXECUTORS: [usize; 4] = [5, 10, 15, 20];

/// Run the Figure 10 experiments.
pub fn run(quick: bool) -> Vec<ExperimentResult> {
    let (train_millions, test_pairs): (Vec<usize>, usize) = if quick {
        (vec![1, 2], 200)
    } else {
        (vec![2, 3, 4], 1_000)
    };
    let corpus = if quick {
        corpora::small_corpus()
    } else {
        corpora::tga_corpus()
    };

    // --- (a) overall classification time ---
    let mut f10a = ExperimentResult::new(
        "Figure 10(a) — overall execution time vs executor number",
        "Time decreases with executors 5→20 but flattens (shuffle overhead grows \
         with participating nodes).",
        &[
            "executors",
            "2M-scale (min)",
            "3M-scale (min)",
            "4M-scale (min)",
        ],
    );
    let mut clocks = Vec::new();
    // Uniform test pairs, as in the paper's scalability runs.
    let test = dedup::workload::uniform_test_pairs(corpus, test_pairs, 100);
    for (i, &m) in train_millions.iter().enumerate() {
        let size = if quick { m * 1_000 } else { scaled_train(m) };
        let workload = dedup::workload::build_workload_on(corpus, size, 200, 100 + i as u64);
        let cluster = Cluster::new(experiment_cluster_config(20, 1));
        let model = FastKnn::fit(
            &cluster,
            &workload.train,
            FastKnnConfig {
                k: 9,
                b: 48,
                c: 5,
                theta: 0.0,
                seed: 10,
                prune: true,
            },
        )
        .expect("fit");
        cluster.reset_run_state();
        let _ = model.classify(&test).expect("classify");
        crate::harness::capture_run(format!("fig10 classify scale={m}M"), &cluster);
        clocks.push(cluster.clock().clone());
    }
    // Quick workloads carry ~50× less compute, so the per-executor
    // coordination term must shrink with them or it would dominate and
    // invert the curve (at full scale compute dominates, as in the paper).
    let mut cost = paper_cost();
    if quick {
        cost.coordination_us_per_executor /= 50;
        cost.task_launch_overhead_us /= 50;
    }
    let mut speedups = Vec::new();
    for &e in &EXECUTORS {
        let mut cells = vec![e.to_string()];
        for clock in &clocks {
            cells.push(f3(clock.makespan(e, 1, &cost).minutes()));
        }
        // Pad the row when running quick with fewer sizes.
        while cells.len() < 4 {
            cells.push("-".into());
        }
        f10a.row(cells);
    }
    for clock in &clocks {
        let t5 = clock.makespan(5, 1, &cost).minutes();
        let t20 = clock.makespan(20, 1, &cost).minutes();
        speedups.push(t5 / t20);
    }
    f10a.note(format!(
        "speedup from 5→20 executors: {} — sublinear (ideal would be 4×).",
        speedups
            .iter()
            .map(|s| format!("{s:.1}×"))
            .collect::<Vec<_>>()
            .join(", ")
    ));

    // --- (b) pairwise-distance step timed separately ---
    let n_reports = corpus.dataset.reports.len() as u64;
    let n_pairs = if quick { 5_000 } else { 100_000 };
    let mut rng = StdRng::seed_from_u64(1010);
    let mut pairs = Vec::with_capacity(n_pairs);
    while pairs.len() < n_pairs {
        let a = rng.gen_range(0..n_reports);
        let b = rng.gen_range(0..n_reports);
        if a != b {
            pairs.push(PairId::new(a, b));
        }
    }
    let cluster = Cluster::new(experiment_cluster_config(20, 1));
    let corpus_index = dedup::index_corpus(corpus.processed.clone());
    let _ = pairwise_distances(&cluster, &corpus_index, pairs, 40).expect("distances");
    crate::harness::capture_run("fig10 pairwise distances", &cluster);
    let dist_clock = cluster.clock().clone();

    let mut f10b = ExperimentResult::new(
        "Figure 10(b) — pairwise-distance computing time vs executor number",
        "A small share of overall time; speeds up well with executors because its \
         data-distribution cost is low (10,382 reports).",
        &[
            "executors",
            "pairwise distances (min)",
            "share of overall (4M-scale)",
        ],
    );
    for &e in &EXECUTORS {
        let t = dist_clock.makespan(e, 1, &cost).minutes();
        let overall = clocks.last().unwrap().makespan(e, 1, &cost).minutes();
        f10b.row(vec![
            e.to_string(),
            f3(t),
            format!("{:.0}%", t / (t + overall) * 100.0),
        ]);
    }
    f10b.note(format!(
        "computed over {} sampled candidate pairs of the {}-report corpus.",
        count(n_pairs as u64),
        count(n_reports)
    ));
    vec![f10a, f10b]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_fig10_time_falls_with_executors() {
        let out = super::run(true);
        let rows = &out[0].rows;
        let t5: f64 = rows[0][1].parse().unwrap();
        let t20: f64 = rows[3][1].parse().unwrap();
        assert!(t20 < t5, "more executors must be faster: {t5} -> {t20}");
        // Sub-linear: speedup strictly below the 4x ideal.
        assert!(t5 / t20 < 4.0, "speedup must flatten: {}", t5 / t20);
    }
}
