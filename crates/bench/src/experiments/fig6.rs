//! Figure 6 — effect of `k` on quality (a) and execution time (b).
//!
//! Paper setting: 3M training pairs (here 60k), 10k test pairs (here 1k),
//! k ∈ {5, 9, 13, 17, 21}. Expected: AUPR is essentially flat in k (Eq. 5's
//! distance weighting mutes far neighbours); execution time grows ~31% from
//! k=5 to k=21 (larger k ⇒ looser k-th distance ⇒ more partitions pass
//! Algorithm 1's test).

use crate::corpora::{self, scaled_train};
use crate::harness::{capture_run, experiment_cluster_config, f3, ExperimentResult};
use fastknn::{FastKnn, FastKnnConfig};
use mlcore::average_precision;
use sparklet::Cluster;
use std::collections::HashMap;

/// Run the Figure 6 sweep.
pub fn run(quick: bool) -> Vec<ExperimentResult> {
    let ks = [5usize, 9, 13, 17, 21];
    let (train_pairs, test_pairs) = if quick {
        (2_000, 200)
    } else {
        (scaled_train(3), 1_000)
    };
    let corpus = if quick {
        corpora::small_corpus()
    } else {
        corpora::tga_corpus()
    };
    let workload = dedup::workload::build_workload_on(corpus, train_pairs, test_pairs, 66);

    let mut qual = ExperimentResult::new(
        "Figure 6(a) — AUPR vs k",
        "AUPR varies little with k (distance-weighted scores mute far neighbours).",
        &["k", "AUPR"],
    );
    let mut time = ExperimentResult::new(
        "Figure 6(b) — execution time vs k",
        "Execution time grows ~31% from k=5 to k=21 (more partitions to compare).",
        &["k", "virtual minutes", "cross-cluster comparisons"],
    );

    let mut auprs = Vec::new();
    let mut times = Vec::new();
    for &k in &ks {
        let cluster = Cluster::new(experiment_cluster_config(20, 1));
        let model = FastKnn::fit(
            &cluster,
            &workload.train,
            FastKnnConfig {
                k,
                b: 32,
                c: 4,
                theta: 0.0,
                seed: 7,
                prune: true,
            },
        )
        .expect("fit");
        cluster.reset_run_state();
        let scored = model.classify(&workload.test).expect("classify");
        let by_id: HashMap<u64, f64> = scored.iter().map(|s| (s.id, s.score)).collect();
        let scores: Vec<f64> = workload.test.iter().map(|t| by_id[&t.id]).collect();
        let ap = average_precision(&workload.scored(&scores));
        capture_run(format!("fig6 classify k={k}"), &cluster);
        let minutes = cluster.virtual_elapsed().minutes();
        let cross = cluster
            .metrics()
            .counter(fastknn::counters::CROSS_COMPARISONS)
            .get();
        auprs.push(ap);
        times.push(minutes);
        qual.row(vec![k.to_string(), f3(ap)]);
        time.row(vec![k.to_string(), f3(minutes), cross.to_string()]);
    }
    let spread = (auprs.iter().cloned().fold(f64::MIN, f64::max)
        - auprs.iter().cloned().fold(f64::MAX, f64::min))
    .abs();
    qual.note(format!(
        "AUPR spread across k is {:.3} — {} (paper: not significant).",
        spread,
        if spread < 0.1 { "flat" } else { "NOT flat" }
    ));
    let growth = (times.last().unwrap() / times.first().unwrap() - 1.0) * 100.0;
    time.note(format!(
        "time grows {growth:.0}% from k=5 to k=21 (paper: 31%)."
    ));
    vec![qual, time]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_fig6_time_grows_with_k() {
        let out = super::run(true);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].rows.len(), 5);
        // Execution time at k=21 must exceed k=5 (more cross-cluster work).
        let t5: f64 = out[1].rows[0][1].parse().unwrap();
        let t21: f64 = out[1].rows[4][1].parse().unwrap();
        assert!(t21 >= t5, "time must not shrink with k: {t5} -> {t21}");
    }
}
