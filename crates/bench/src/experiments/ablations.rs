//! Ablations of the design choices DESIGN.md calls out.
//!
//! These are not paper figures; they isolate the contribution of each
//! mechanism: Algorithm 1's hyperplane pruning, the inverse-distance score
//! (Eq. 5) vs the majority vote (Eq. 1), the observation-1–3 positive
//! shortcut, and the SVM solver family behind the §5.2.2 comparison.

use crate::corpora;
use crate::harness::{count, f3, ExperimentResult};
use fastknn::voronoi::VoronoiPartition;
use fastknn::{additional_partitions, score_neighbors, LabeledPair, Neighborhood, UnlabeledPair};
use mlcore::average_precision;
use simmetrics::squared_euclidean_fixed;

fn workload(quick: bool) -> (Vec<LabeledPair>, Vec<UnlabeledPair>, Vec<bool>) {
    let corpus = if quick {
        corpora::small_corpus()
    } else {
        corpora::tga_corpus()
    };
    let (train_pairs, test_pairs) = if quick { (3_000, 400) } else { (40_000, 2_000) };
    let w = dedup::workload::build_workload_on(corpus, train_pairs, test_pairs, 120);
    (w.train, w.test, w.truth)
}

/// Counted serial classification with all mechanisms toggleable.
struct Counted {
    comparisons: u64,
    cross_comparisons: u64,
    scores: Vec<f64>,
    shortcut_hits: u64,
}

fn run_serial(
    vp: &VoronoiPartition,
    test: &[UnlabeledPair],
    k: usize,
    use_hyperplane: bool,
    use_shortcut: bool,
) -> Counted {
    let mut comparisons = 0u64;
    let mut cross = 0u64;
    let mut shortcut_hits = 0u64;
    let mut scores = Vec::with_capacity(test.len());
    for t in test {
        let assigned = vp.assign(&t.vector);
        comparisons += vp.centers.len() as u64;
        let mut hood = Neighborhood::new(k);
        let cell = &vp.negative_clusters[assigned];
        for j in 0..cell.len() {
            hood.push_sq(
                squared_euclidean_fixed(&t.vector, &cell.row(j)),
                cell.id(j),
                cell.label(j),
            );
        }
        comparisons += cell.len() as u64;
        let intra_kth_sq = hood.kth_distance_sq();
        let mut min_pos_sq = f64::INFINITY;
        for j in 0..vp.positives.len() {
            let d_sq = squared_euclidean_fixed(&t.vector, &vp.positives.row(j));
            min_pos_sq = min_pos_sq.min(d_sq);
            hood.push_sq(d_sq, vp.positives.id(j), true);
        }
        comparisons += vp.positives.len() as u64;
        let skip = use_shortcut && intra_kth_sq <= min_pos_sq;
        if skip {
            shortcut_hits += 1;
        } else {
            let extra: Vec<usize> = if use_hyperplane {
                additional_partitions(&t.vector, assigned, intra_kth_sq, min_pos_sq, &vp.centers)
            } else {
                // Naive: consult every other cluster.
                (0..vp.b()).filter(|&j| j != assigned).collect()
            };
            for cid in extra {
                let cell = &vp.negative_clusters[cid];
                for j in 0..cell.len() {
                    hood.push_sq(
                        squared_euclidean_fixed(&t.vector, &cell.row(j)),
                        cell.id(j),
                        cell.label(j),
                    );
                }
                cross += cell.len() as u64;
                comparisons += cell.len() as u64;
            }
        }
        scores.push(score_neighbors(&hood));
    }
    Counted {
        comparisons,
        cross_comparisons: cross,
        scores,
        shortcut_hits,
    }
}

/// Run all four ablations.
pub fn run(quick: bool) -> Vec<ExperimentResult> {
    let (train, test, truth) = workload(quick);
    let vp = VoronoiPartition::build(&train, 32, 121);
    let k = 9;

    // --- Ablation 1: Algorithm 1 on/off ---
    let with_alg1 = run_serial(&vp, &test, k, true, true);
    let without_alg1 = run_serial(&vp, &test, k, false, true);
    let mut a1 = ExperimentResult::new(
        "Ablation — Algorithm 1 (hyperplane partition selection)",
        "Hyperplane pruning is what keeps cross-cluster work at 1–2% of intra-cluster \
         work; without it every undecided test pair scans all b−1 other clusters.",
        &["variant", "cross-cluster comparisons", "total comparisons"],
    );
    a1.row(vec![
        "Algorithm 1".into(),
        count(with_alg1.cross_comparisons),
        count(with_alg1.comparisons),
    ]);
    a1.row(vec![
        "naive (all clusters)".into(),
        count(without_alg1.cross_comparisons),
        count(without_alg1.comparisons),
    ]);
    a1.note(format!(
        "Algorithm 1 removes {:.1}% of cross-cluster comparisons; scores are identical \
         in both variants (the bound is conservative).",
        (1.0 - with_alg1.cross_comparisons as f64 / without_alg1.cross_comparisons.max(1) as f64)
            * 100.0
    ));
    assert_eq!(
        with_alg1.scores, without_alg1.scores,
        "hyperplane pruning must not change any score"
    );

    // --- Ablation 2: Eq. 5 vs majority vote ---
    let scored_eq5: Vec<(f64, bool)> = with_alg1
        .scores
        .iter()
        .copied()
        .zip(truth.iter().copied())
        .collect();
    // Majority vote from the same exact neighbourhoods (recompute brute).
    let vote_scores: Vec<f64> = test
        .iter()
        .map(|t| {
            let mut hood = Neighborhood::new(k);
            for p in &train {
                hood.push_sq(
                    squared_euclidean_fixed(&t.vector, &p.vector),
                    p.id,
                    p.positive,
                );
            }
            hood.entries
                .iter()
                .map(|(_, _, pos)| if *pos { 1.0 } else { -1.0 })
                .sum()
        })
        .collect();
    let scored_vote: Vec<(f64, bool)> = vote_scores
        .iter()
        .copied()
        .zip(truth.iter().copied())
        .collect();
    let mut a2 = ExperimentResult::new(
        "Ablation — Eq. 5 inverse-distance score vs Eq. 1 majority vote",
        "Under extreme imbalance the unweighted vote drowns positives; Eq. 5's \
         distance normalisation is the paper's fix.",
        &["scoring", "AUPR"],
    );
    a2.row(vec![
        "Eq. 5 (inverse distance)".into(),
        f3(average_precision(&scored_eq5)),
    ]);
    a2.row(vec![
        "Eq. 1 (majority vote)".into(),
        f3(average_precision(&scored_vote)),
    ]);

    // --- Ablation 3: positive shortcut on/off ---
    let with_shortcut = run_serial(&vp, &test, k, true, true);
    let without_shortcut = run_serial(&vp, &test, k, true, false);
    let mut a3 = ExperimentResult::new(
        "Ablation — observation 1–3 positive shortcut",
        "Exploiting label imbalance: most test pairs are resolved without any \
         cross-cluster search because their neighbourhood is provably all-negative.",
        &["variant", "shortcut hits", "cross-cluster comparisons"],
    );
    a3.row(vec![
        "shortcut on".into(),
        count(with_shortcut.shortcut_hits),
        count(with_shortcut.cross_comparisons),
    ]);
    a3.row(vec![
        "shortcut off".into(),
        count(without_shortcut.shortcut_hits),
        count(without_shortcut.cross_comparisons),
    ]);
    a3.note(format!(
        "the shortcut resolves {:.0}% of test pairs outright.",
        with_shortcut.shortcut_hits as f64 / test.len() as f64 * 100.0
    ));

    // --- Ablation 4: SVM solver family under the paper's imbalance ---
    // The kNN-vs-SVM gap magnitude is a function of the SVM solver, not
    // only of the model family. Spark 1.2.1 offers exactly one SVM
    // (MLlib's SVMWithSGD); stochastic SGD variants of the era collapse
    // outright — the paper's "difficult to build a consistent model" —
    // while a modern dual coordinate descent solver nearly closes the gap.
    use mlcore::svm::{LinearSvm, SvmConfig};
    let x: Vec<Vec<f64>> = train.iter().map(|p| p.vector.to_vec()).collect();
    let y: Vec<i8> = train
        .iter()
        .map(|p| if p.positive { 1 } else { -1 })
        .collect();
    let eval = |svm: &LinearSvm| {
        let scored: Vec<(f64, bool)> = test
            .iter()
            .zip(&truth)
            .map(|(t, &tr)| (svm.decision(&t.vector), tr))
            .collect();
        average_precision(&scored)
    };
    let mut a4 = ExperimentResult::new(
        "Ablation — SVM solver family under extreme imbalance",
        "The paper reports a 19.1% average kNN advantage over its Spark-1.2.1 SVM; \
         the gap's size tracks the solver: era-typical stochastic SGD is \
         inconsistent to the point of collapse, the MLlib full-batch solver trails \
         kNN, and a modern dual-CD solver nearly closes the gap.",
        &["solver", "AUPR"],
    );
    a4.row(vec![
        "Fast kNN (reference)".into(),
        f3(average_precision(&scored_eq5)),
    ]);
    a4.row(vec![
        "SVM, MLlib-style full-batch SGD (paper's platform)".into(),
        f3(eval(&LinearSvm::train_batch(&x, &y, &SvmConfig::default()))),
    ]);
    a4.row(vec![
        "SVM, stochastic Pegasos SGD".into(),
        f3(eval(&LinearSvm::train(
            &x,
            &y,
            &SvmConfig {
                lambda: 1e-4,
                epochs: 20,
                ..SvmConfig::default()
            },
        ))),
    ]);
    a4.row(vec![
        "SVM, dual coordinate descent (modern)".into(),
        f3(eval(&LinearSvm::train_dual(
            &x,
            &y,
            &SvmConfig {
                lambda: 1e-4,
                epochs: 10,
                ..SvmConfig::default()
            },
        ))),
    ]);
    vec![a1, a2, a3, a4]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_ablations_show_the_expected_orderings() {
        let out = super::run(true);
        assert_eq!(out.len(), 4);
        // Eq. 5 must beat the majority vote on AUPR.
        let eq5: f64 = out[1].rows[0][1].parse().unwrap();
        let vote: f64 = out[1].rows[1][1].parse().unwrap();
        assert!(
            eq5 >= vote,
            "inverse-distance scoring must not lose to the vote: {eq5} vs {vote}"
        );
    }
}
