//! Table 1 — sample duplicated reports.
//!
//! The paper's Table 1 shows two real duplicate pairs: (a) same case, the
//! outcome description and narrative differ; (b) a mis-keyed age (84 vs
//! 34), reordered/partially overlapping ADR lists, and fully rewritten
//! narratives. This experiment prints generated duplicate pairs exhibiting
//! the same corruption classes, as a qualitative check on the synthetic
//! corpus.

use crate::corpora;
use crate::harness::ExperimentResult;
use adr_model::AdrReport;

fn field_rows(a: &AdrReport, b: &AdrReport) -> Vec<Vec<String>> {
    let opt = |s: &Option<String>| s.clone().unwrap_or_else(|| "-".into());
    let trunc = |s: &str| {
        if s.chars().count() > 90 {
            let cut: String = s.chars().take(87).collect();
            format!("{cut}...")
        } else {
            s.to_string()
        }
    };
    vec![
        vec![
            "patient age".into(),
            a.patient
                .calculated_age
                .map(|x| x.to_string())
                .unwrap_or_else(|| "-".into()),
            b.patient
                .calculated_age
                .map(|x| x.to_string())
                .unwrap_or_else(|| "-".into()),
        ],
        vec![
            "patient sex".into(),
            a.patient
                .sex
                .map(|s| s.as_str().to_string())
                .unwrap_or_else(|| "-".into()),
            b.patient
                .sex
                .map(|s| s.as_str().to_string())
                .unwrap_or_else(|| "-".into()),
        ],
        vec![
            "patient state".into(),
            opt(&a.patient.residential_state),
            opt(&b.patient.residential_state),
        ],
        vec![
            "onset date".into(),
            opt(&a.reaction.onset_date),
            opt(&b.reaction.onset_date),
        ],
        vec![
            "reaction outcome description".into(),
            opt(&a.reaction.reaction_outcome_description),
            opt(&b.reaction.reaction_outcome_description),
        ],
        vec![
            "drug name".into(),
            a.medicine.generic_name_description.clone(),
            b.medicine.generic_name_description.clone(),
        ],
        vec![
            "ADR name".into(),
            a.reaction.meddra_pt_code.clone(),
            b.reaction.meddra_pt_code.clone(),
        ],
        vec![
            "report description".into(),
            trunc(&a.reaction.report_description),
            trunc(&b.reaction.report_description),
        ],
    ]
}

/// Regenerate Table 1: one near-identical duplicate pair and one divergent
/// pair from the synthetic corpus.
pub fn run(quick: bool) -> Vec<ExperimentResult> {
    let corpus = if quick {
        corpora::small_corpus()
    } else {
        corpora::tga_corpus()
    };
    let ds = &corpus.dataset;

    // Pick the pair whose fields differ least / most to mirror Table 1(a)/(b).
    let diff_count = |p: &adr_model::PairId| {
        let a = &ds.reports[p.lo as usize];
        let b = &ds.reports[p.hi as usize];
        field_rows(a, b)
            .iter()
            .filter(|row| row[1] != row[2])
            .count()
    };
    let near = ds
        .duplicate_pairs
        .iter()
        .min_by_key(|p| diff_count(p))
        .expect("corpus has duplicates");
    let far = ds
        .duplicate_pairs
        .iter()
        .max_by_key(|p| diff_count(p))
        .expect("corpus has duplicates");

    let mut out = Vec::new();
    for (name, expectation, pair) in [
        (
            "Table 1(a) — sample duplicated reports (near-identical pair)",
            "Reports A/B: same case details, differing reaction-outcome description \
             and rewritten narrative.",
            near,
        ),
        (
            "Table 1(b) — sample duplicated reports (divergent pair)",
            "Reports C/D: mis-keyed age (paper: 84 vs 34), reordered / partially \
             overlapping ADR lists, fully rewritten narrative.",
            far,
        ),
    ] {
        let a = &ds.reports[pair.lo as usize];
        let b = &ds.reports[pair.hi as usize];
        let mut r = ExperimentResult::new(
            name,
            expectation,
            &[
                "Field Name",
                &format!("Report {}", pair.lo),
                &format!("Report {}", pair.hi),
            ],
        );
        for row in field_rows(a, b) {
            r.row(row);
        }
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_shows_two_pairs_with_eight_fields() {
        let out = super::run(true);
        assert_eq!(out.len(), 2);
        for r in &out {
            assert_eq!(r.rows.len(), 8);
        }
        // The divergent pair must differ in more fields than the near pair.
        let diffs = |r: &crate::harness::ExperimentResult| {
            r.rows.iter().filter(|row| row[1] != row[2]).count()
        };
        assert!(diffs(&out[1]) >= diffs(&out[0]));
    }
}
