//! Retained reference implementations of the pre-interning hot path, plus
//! the timing harness behind `BENCH_hotpath.json`.
//!
//! The seed implementation stored per-report token sets as sorted
//! `Vec<String>` and computed the §4.2 distance vector as a freshly
//! allocated `Vec<f64>` with `HashSet`-based Jaccard. These references are
//! kept *only* for benchmarking: the criterion benches in `benches/micro.rs`
//! and the `bench_hotpath` binary compare them against the interned
//! sorted-merge / fixed-arity kernels that replaced them, and assert the
//! replacement actually pays.

use crate::harness::{gates_json, Gate};
use adr_model::AdrReport;
use dedup::ProcessedReport;
use simmetrics::{jaccard_distance, FieldDistance};
use std::time::Instant;
use textprep::{Pipeline, TokenInterner};

/// A report in the seed's representation: string token sets, compared by
/// hashing.
#[derive(Debug, Clone)]
pub struct StringReport {
    pub age: Option<f64>,
    pub sex: Option<String>,
    pub state: Option<String>,
    pub onset_date: Option<String>,
    pub outcome: Option<String>,
    pub drug_tokens: Vec<String>,
    pub adr_tokens: Vec<String>,
    pub narrative_terms: Vec<String>,
}

fn name_tokens(names: &[&str]) -> Vec<String> {
    let mut tokens: Vec<String> = names
        .iter()
        .flat_map(|n| n.split_whitespace())
        .map(|t| t.to_lowercase())
        .collect();
    tokens.sort();
    tokens.dedup();
    tokens
}

impl StringReport {
    /// The seed's preprocessing: same fields, string tokens instead of ids.
    pub fn from_report(r: &AdrReport, pipeline: &Pipeline) -> Self {
        StringReport {
            age: r.patient.calculated_age,
            sex: r.patient.sex.map(|s| s.as_str().to_string()),
            state: r.patient.residential_state.clone(),
            onset_date: r.reaction.onset_date.clone(),
            outcome: r.reaction.reaction_outcome_description.clone(),
            drug_tokens: name_tokens(&r.drug_names()),
            adr_tokens: name_tokens(&r.adr_names()),
            narrative_terms: pipeline.process(&r.reaction.report_description),
        }
    }
}

/// The seed's §4.2 distance vector: heap-allocated `Vec<f64>`, `HashSet`
/// Jaccard over string tokens.
// push-by-push on purpose: this replicates the replaced implementation's
// exact allocation pattern, which is what the benchmark measures.
#[allow(clippy::vec_init_then_push)]
pub fn pair_distance_strings(a: &StringReport, b: &StringReport) -> Vec<f64> {
    let mut v = Vec::with_capacity(8);
    v.push(FieldDistance::numeric(a.age, b.age));
    v.push(FieldDistance::categorical(
        a.sex.as_deref(),
        b.sex.as_deref(),
    ));
    v.push(FieldDistance::categorical(
        a.state.as_deref(),
        b.state.as_deref(),
    ));
    v.push(FieldDistance::categorical(
        a.onset_date.as_deref(),
        b.onset_date.as_deref(),
    ));
    v.push(FieldDistance::categorical(
        a.outcome.as_deref(),
        b.outcome.as_deref(),
    ));
    v.push(jaccard_distance(&a.drug_tokens, &b.drug_tokens));
    v.push(jaccard_distance(&a.adr_tokens, &b.adr_tokens));
    v.push(jaccard_distance(&a.narrative_terms, &b.narrative_terms));
    v
}

/// A corpus processed both ways, pairwise-comparable.
pub struct DualCorpus {
    pub strings: Vec<StringReport>,
    pub interned: Vec<ProcessedReport>,
    pub interner: TokenInterner,
}

/// Preprocess `reports` into both representations.
pub fn dual_corpus(reports: &[AdrReport]) -> DualCorpus {
    let pipeline = Pipeline::paper();
    let mut interner = TokenInterner::new();
    let strings = reports
        .iter()
        .map(|r| StringReport::from_report(r, &pipeline))
        .collect();
    let interned = reports
        .iter()
        .map(|r| ProcessedReport::from_report(r, &pipeline, &mut interner))
        .collect();
    DualCorpus {
        strings,
        interned,
        interner,
    }
}

/// Measured throughput of one kernel pair.
#[derive(Debug, Clone)]
pub struct KernelResult {
    pub kernel: &'static str,
    pub reference_ops_per_sec: f64,
    pub hotpath_ops_per_sec: f64,
}

impl KernelResult {
    pub fn speedup(&self) -> f64 {
        self.hotpath_ops_per_sec / self.reference_ops_per_sec
    }
}

/// Time `f` (which must perform `batch` kernel operations per call) until at
/// least `min_seconds` of wall clock has elapsed; returns ops/sec.
pub fn throughput<F: FnMut() -> f64>(batch: u64, min_seconds: f64, mut f: F) -> f64 {
    // Warm-up and a sink so the work is not optimised away.
    let mut sink = 0.0f64;
    sink += f();
    let start = Instant::now();
    let mut ops = 0u64;
    while start.elapsed().as_secs_f64() < min_seconds {
        sink += f();
        ops += batch;
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(sink.is_finite(), "kernel produced non-finite values");
    ops as f64 / elapsed
}

/// The interning-kernel acceptance gates: every kernel except the
/// memory-bound `euclidean8` must clear `threshold`× over its reference.
pub fn hotpath_gates(results: &[KernelResult], threshold: f64) -> Vec<Gate> {
    results
        .iter()
        .filter(|r| r.kernel != "euclidean8")
        .map(|r| Gate::at_least(format!("{}_speedup", r.kernel), threshold, r.speedup()))
        .collect()
}

/// Render results as the `BENCH_hotpath.json` document.
pub fn to_json(results: &[KernelResult], gates: &[Gate]) -> String {
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"kernels\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"reference_ops_per_sec\": {:.1}, \
             \"hotpath_ops_per_sec\": {:.1}, \"speedup\": {:.2}}}{}\n",
            r.kernel,
            r.reference_ops_per_sec,
            r.hotpath_ops_per_sec,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  ");
    out.push_str(&gates_json(gates));
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_model::DistVec;
    use adr_synth::{Dataset, SynthConfig};
    use dedup::pair_distance;

    #[test]
    fn reference_and_hotpath_vectors_agree() {
        // The retained reference must compute the SAME distances as the
        // interned hot path, or the benchmark compares apples to oranges.
        let ds = Dataset::generate(&SynthConfig::small(60, 4, 11));
        let dual = dual_corpus(&ds.reports);
        for i in (0..60).step_by(5) {
            for j in (i + 1..60).step_by(9) {
                let reference = pair_distance_strings(&dual.strings[i], &dual.strings[j]);
                let hot: DistVec = pair_distance(&dual.interned[i], &dual.interned[j]);
                assert_eq!(reference.as_slice(), hot.as_slice(), "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn json_shape_is_well_formed() {
        let results = [
            KernelResult {
                kernel: "jaccard",
                reference_ops_per_sec: 1000.0,
                hotpath_ops_per_sec: 3000.0,
            },
            KernelResult {
                kernel: "euclidean8",
                reference_ops_per_sec: 1000.0,
                hotpath_ops_per_sec: 1000.0,
            },
        ];
        let gates = hotpath_gates(&results, 2.0);
        assert_eq!(gates.len(), 1, "euclidean8 is reported but ungated");
        let doc = to_json(&results, &gates);
        assert!(doc.contains("\"schema_version\": 1"));
        assert!(doc.contains("\"speedup\": 3.00"));
        assert!(doc.contains(
            "\"jaccard_speedup\": {\"threshold\": 2.00, \"value\": 3.0000, \"passed\": true}"
        ));
        assert!(doc.starts_with('{') && doc.ends_with("}\n"));
    }
}
