//! Reference kernels and result table for the SoA batch engine, behind
//! `BENCH_batch.json`.
//!
//! Each batch kernel in [`simmetrics::soa`] is timed against **two**
//! retained references:
//!
//! * **seed** — the seed's representation: dynamic-slice `Vec<f64>` rows
//!   walked one [`squared_euclidean`] call at a time. This is the gated
//!   reference, mirroring `bench_hotpath`'s convention of benchmarking
//!   against the implementation the optimisation lineage replaced.
//! * **scalar** — the PR-1 fixed-arity path: contiguous `[f64; 8]` rows and
//!   [`squared_euclidean_fixed`]. Reported for transparency (it is itself
//!   SLP-vectorized, so its margin is smaller); not gated.
//!
//! All three compute bit-identical distances — the speedups measure layout
//! and tiling, never a semantic change (asserted by this module's tests).

use crate::harness::{gates_json, Gate};
use simmetrics::soa::VecBatch;
use simmetrics::{squared_euclidean, squared_euclidean_fixed};

/// Seed-era counterpart of [`simmetrics::soa::distances_to_point`]:
/// dynamic-slice rows, one ordered-reduction kernel call per row.
pub fn seed_distances_to_point(points: &[Vec<f64>], q: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.extend(points.iter().map(|p| squared_euclidean(p, q)));
}

/// Seed-era counterpart of [`simmetrics::soa::distances_block`]: the full
/// M×N matrix via nested dynamic-slice calls.
pub fn seed_distances_block(queries: &[Vec<f64>], points: &[Vec<f64>], out: &mut Vec<f64>) {
    out.clear();
    out.reserve(queries.len() * points.len());
    for q in queries {
        for p in points {
            out.push(squared_euclidean(q, p));
        }
    }
}

/// Seed-era counterpart of [`simmetrics::soa::assign_min`]: per row, scan
/// the centres with the strict-`<` first-index-wins fold over dynamic
/// slices.
pub fn seed_assign_min(
    points: &[Vec<f64>],
    centers: &[Vec<f64>],
    out_idx: &mut Vec<u32>,
    out_d2: &mut Vec<f64>,
) {
    out_idx.clear();
    out_d2.clear();
    for p in points {
        let mut best = (0u32, f64::INFINITY);
        for (ci, c) in centers.iter().enumerate() {
            let d = squared_euclidean(p, c);
            if d < best.1 {
                best = (ci as u32, d);
            }
        }
        out_idx.push(best.0);
        out_d2.push(best.1);
    }
}

/// Fixed-arity counterpart of [`simmetrics::soa::distances_to_point`]: one
/// [`squared_euclidean_fixed`] call per row of a contiguous AoS slice.
pub fn scalar_distances_to_point(points: &[[f64; 8]], q: &[f64; 8], out: &mut Vec<f64>) {
    out.clear();
    out.extend(points.iter().map(|p| squared_euclidean_fixed(p, q)));
}

/// Fixed-arity counterpart of [`simmetrics::soa::distances_block`].
pub fn scalar_distances_block(queries: &[[f64; 8]], points: &[[f64; 8]], out: &mut Vec<f64>) {
    out.clear();
    out.reserve(queries.len() * points.len());
    for q in queries {
        for p in points {
            out.push(squared_euclidean_fixed(q, p));
        }
    }
}

/// Fixed-arity counterpart of [`simmetrics::soa::assign_min`] — the
/// historical `nearest_centroid` loop.
pub fn scalar_assign_min(
    points: &[[f64; 8]],
    centers: &[[f64; 8]],
    out_idx: &mut Vec<u32>,
    out_d2: &mut Vec<f64>,
) {
    out_idx.clear();
    out_d2.clear();
    for p in points {
        let mut best = (0u32, f64::INFINITY);
        for (ci, c) in centers.iter().enumerate() {
            let d = squared_euclidean_fixed(p, c);
            if d < best.1 {
                best = (ci as u32, d);
            }
        }
        out_idx.push(best.0);
        out_d2.push(best.1);
    }
}

/// Deterministic benchmark data in all three layouts: `n` rows whose
/// mantissa bits are exercised, as dynamic-slice rows, AoS rows, and the
/// equivalent [`VecBatch`].
pub fn bench_points(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<[f64; 8]>, VecBatch<8>) {
    let rows: Vec<[f64; 8]> = (0..n)
        .map(|i| {
            std::array::from_fn(|d| {
                let x = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(seed.wrapping_add(d as u64));
                (x % 10_000) as f64 / 997.0
            })
        })
        .collect();
    let dyn_rows = rows.iter().map(|r| r.to_vec()).collect();
    let batch = VecBatch::from_rows(&rows);
    (dyn_rows, rows, batch)
}

/// Measured throughput of one kernel against both references.
#[derive(Debug, Clone)]
pub struct BatchKernelResult {
    pub kernel: &'static str,
    pub seed_ops_per_sec: f64,
    pub scalar_ops_per_sec: f64,
    pub batch_ops_per_sec: f64,
}

impl BatchKernelResult {
    /// Speedup over the gated seed-era reference.
    pub fn speedup_vs_seed(&self) -> f64 {
        self.batch_ops_per_sec / self.seed_ops_per_sec
    }

    /// Speedup over the fixed-arity scalar path (informational).
    pub fn speedup_vs_scalar(&self) -> f64 {
        self.batch_ops_per_sec / self.scalar_ops_per_sec
    }
}

/// The tiled-kernel acceptance gates: every kernel except the single-row
/// `distances_to_point` sweep must clear `threshold`× over the seed path.
pub fn batch_gates(results: &[BatchKernelResult], threshold: f64) -> Vec<Gate> {
    results
        .iter()
        .filter(|r| r.kernel != "distances_to_point")
        .map(|r| {
            Gate::at_least(
                format!("{}_speedup_vs_seed", r.kernel),
                threshold,
                r.speedup_vs_seed(),
            )
        })
        .collect()
}

/// Render results as the `BENCH_batch.json` document.
pub fn batch_to_json(results: &[BatchKernelResult], gates: &[Gate]) -> String {
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"kernels\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"seed_ops_per_sec\": {:.1}, \
             \"scalar_ops_per_sec\": {:.1}, \"batch_ops_per_sec\": {:.1}, \
             \"speedup_vs_seed\": {:.2}, \"speedup_vs_scalar\": {:.2}}}{}\n",
            r.kernel,
            r.seed_ops_per_sec,
            r.scalar_ops_per_sec,
            r.batch_ops_per_sec,
            r.speedup_vs_seed(),
            r.speedup_vs_scalar(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  ");
    out.push_str(&gates_json(gates));
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmetrics::soa::{assign_min, distances_block, distances_to_point};

    /// The benchmark must compare bit-identical computations, or the
    /// speedup measures a semantic change instead of the layout.
    #[test]
    fn references_match_batch_kernels() {
        let (drows, rows, batch) = bench_points(700, 11);
        let (dqrows, qrows, qbatch) = bench_points(19, 83);
        let centers: Vec<[f64; 8]> = qrows.clone();

        let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
        seed_distances_to_point(&drows, &dqrows[0], &mut a);
        scalar_distances_to_point(&rows, &qrows[0], &mut b);
        distances_to_point(&batch, &qrows[0], &mut c);
        assert_eq!(a.len(), c.len());
        assert!(a.iter().zip(&c).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert!(b.iter().zip(&c).all(|(x, y)| x.to_bits() == y.to_bits()));

        seed_distances_block(&dqrows, &drows, &mut a);
        scalar_distances_block(&qrows, &rows, &mut b);
        distances_block(&qbatch, &batch, &mut c);
        assert_eq!(a.len(), c.len());
        assert!(a.iter().zip(&c).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert!(b.iter().zip(&c).all(|(x, y)| x.to_bits() == y.to_bits()));

        let (mut i1, mut d1) = (Vec::new(), Vec::new());
        let (mut i2, mut d2) = (Vec::new(), Vec::new());
        let (mut i3, mut d3) = (Vec::new(), Vec::new());
        seed_assign_min(&dqrows, &dqrows, &mut i1, &mut d1);
        scalar_assign_min(&qrows, &centers, &mut i2, &mut d2);
        seed_assign_min(&drows, &dqrows, &mut i1, &mut d1);
        scalar_assign_min(&rows, &centers, &mut i2, &mut d2);
        assign_min(&batch, &centers, &mut i3, &mut d3);
        assert_eq!(i1, i3);
        assert_eq!(i2, i3);
        assert!(d1.iter().zip(&d3).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert!(d2.iter().zip(&d3).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn json_shape_is_well_formed() {
        let results = [
            BatchKernelResult {
                kernel: "assign_min",
                seed_ops_per_sec: 1000.0,
                scalar_ops_per_sec: 2000.0,
                batch_ops_per_sec: 6000.0,
            },
            BatchKernelResult {
                kernel: "distances_to_point",
                seed_ops_per_sec: 1000.0,
                scalar_ops_per_sec: 1000.0,
                batch_ops_per_sec: 1000.0,
            },
        ];
        let gates = batch_gates(&results, 3.0);
        assert_eq!(gates.len(), 1, "distances_to_point is ungated");
        let doc = batch_to_json(&results, &gates);
        assert!(doc.contains("\"schema_version\": 1"));
        assert!(doc.contains("\"speedup_vs_seed\": 6.00"));
        assert!(doc.contains("\"speedup_vs_scalar\": 3.00"));
        assert!(doc.contains(
            "\"assign_min_speedup_vs_seed\": {\"threshold\": 3.00, \"value\": 6.0000, \"passed\": true}"
        ));
        assert!(doc.starts_with('{') && doc.ends_with("}\n"));
    }
}
