//! Load-balancing benchmark behind `BENCH_sched.json`: static
//! block-partitioned execution vs morsel-driven work stealing with
//! skew-aware pair packing.
//!
//! Both sides run the same distributed pairwise-distance stage
//! ([`dedup::pairwise_distances_partitioned`]) over the same candidate
//! pairs and report the stage's virtual makespan at the same worker count.
//! Only the scheduling differs:
//!
//! * **static** — one partition per blocking group, no morsel splitting, no
//!   stealing ([`SchedConfig::static_placement`]). A hot drug block is one
//!   indivisible task; whoever draws it sets the makespan.
//! * **sched** — groups packed by [`dedup::pack_pairs`] (LPT with
//!   splitting) into one partition per worker, cut into op-weight-bounded
//!   morsels and balanced by stealing (the default [`SchedConfig`]).
//!
//! The skewed corpus concentrates ~a third of all reports — with the
//! longest narratives — on one hot drug, the shape real ADR databases
//! exhibit (the paper's TGA corpus is dominated by a handful of
//! blockbuster drugs). The uniform corpus spreads reports evenly over
//! same-sized blocks; it is reported for context and not gated, since
//! balanced inputs leave stealing little to win.

use crate::harness::{gates_json, Gate};
use adr_model::{AdrReport, ReportId};
use dedup::{
    index_corpus, pack_pairs, pairwise_distances_partitioned, BlockingIndex, CorpusIndex,
    ProcessedReport,
};
use sparklet::{Cluster, SchedConfig};
use textprep::{Pipeline, TokenInterner};

/// A corpus prepared for the distance stage: processed reports, the
/// blocking index over all of them, and which ids count as newly arrived.
pub struct SchedCorpus {
    /// Indexed processed reports.
    pub corpus: CorpusIndex,
    /// Blocking index over the whole corpus.
    pub blocking: BlockingIndex,
    /// The arriving batch whose candidate pairs the stage computes.
    pub new_ids: Vec<ReportId>,
}

fn build_corpus<D, N>(total: usize, arriving: usize, drug_of: D, narrative_of: N) -> SchedCorpus
where
    D: Fn(usize) -> String,
    N: Fn(usize) -> String,
{
    let pipeline = Pipeline::paper();
    let mut interner = TokenInterner::new();
    let mut blocking = BlockingIndex::default();
    let mut processed: Vec<ProcessedReport> = Vec::with_capacity(total);
    for i in 0..total {
        let mut r = AdrReport {
            id: i as u64,
            ..AdrReport::default()
        };
        r.patient.calculated_age = Some(20.0 + (i % 60) as f64);
        r.medicine.generic_name_description = drug_of(i);
        r.reaction.meddra_pt_code = "Adverse reaction".into();
        r.reaction.report_description = narrative_of(i);
        let p = ProcessedReport::from_report(&r, &pipeline, &mut interner);
        blocking.insert(&p);
        processed.push(p);
    }
    SchedCorpus {
        corpus: index_corpus(processed),
        blocking,
        new_ids: ((total - arriving) as u64..total as u64).collect(),
    }
}

/// Skewed corpus: ~a third of reports share one hot drug and carry long
/// narratives; the rest spread over small background blocks with short
/// ones. The hot block dominates both pair count and per-pair weight.
pub fn skewed_corpus(total: usize, arriving: usize) -> SchedCorpus {
    build_corpus(
        total,
        arriving,
        |i| {
            // Single-token names: blocking keys are per drug *token*, so a
            // shared word would silently merge every block into one.
            if i % 3 == 0 {
                "paracetamol".to_string()
            } else {
                format!("backgrounddrug{}", i / 6)
            }
        },
        |i| {
            if i % 3 == 0 {
                // Long, varied narratives on the hot block.
                std::iter::repeat_n("severe headache nausea dizziness fatigue", 4 + i % 5)
                    .collect::<Vec<_>>()
                    .join(&format!(" episode {i} "))
            } else {
                format!("mild rash case {i}")
            }
        },
    )
}

/// Uniform corpus: same-sized blocks, same-length narratives — no skew for
/// the scheduler to exploit.
pub fn uniform_corpus(total: usize, arriving: usize) -> SchedCorpus {
    build_corpus(
        total,
        arriving,
        |i| format!("evendrug{}", i % (total / 12).max(1)),
        |i| format!("patient reported moderate symptoms after dose, case {i}"),
    )
}

/// How the distance stage is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// One whole-block task per group, no splitting, no stealing — the
    /// baseline the gate measures against.
    Static,
    /// Same block-per-partition layout, but cut into morsels with stealing
    /// on: the scheduler alone absorbs the skew.
    Steal,
    /// [`pack_pairs`] first, then morsels + stealing: skew is split at
    /// partitioning time and stealing mops up the residue.
    Packed,
}

impl SchedMode {
    /// Label used in tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            SchedMode::Static => "static",
            SchedMode::Steal => "steal",
            SchedMode::Packed => "packed",
        }
    }
}

/// Measured outcome of one scheduling mode over one corpus.
#[derive(Debug, Clone)]
pub struct SchedRun {
    /// Candidate pairs the stage computed.
    pub pairs: usize,
    /// Virtual makespan of the distance stage at the benchmark's worker
    /// count (µs).
    pub makespan_us: u64,
    /// Morsels executed (== partitions for the static side).
    pub morsels: u64,
    /// Morsels that ran away from their home worker.
    pub steals: u64,
    /// Σ busy / (workers × makespan) over the run's morsel stages.
    pub utilization: f64,
    /// Max per-worker busy time over the mean.
    pub imbalance: f64,
    /// The run's rendered job report (the utilization artifact).
    pub report_text: String,
}

fn total_ops(sc: &SchedCorpus, groups: &[Vec<adr_model::PairId>]) -> u64 {
    groups
        .iter()
        .flatten()
        .map(
            |pid| match (sc.corpus.get(&pid.lo), sc.corpus.get(&pid.hi)) {
                (Some(a), Some(b)) => dedup::pair_op_weight(a, b),
                _ => 0,
            },
        )
        .sum()
}

/// Run the pairwise-distance stage over `sc` on `workers` single-core
/// executors under the given scheduling mode.
pub fn run_distance_stage(sc: &SchedCorpus, workers: usize, mode: SchedMode) -> SchedRun {
    let groups = sc.blocking.candidate_pair_groups(&sc.new_ids);
    let mut config = crate::harness::experiment_cluster_config(workers, 1);
    config.sched = if mode == SchedMode::Static {
        SchedConfig::static_placement()
    } else {
        SchedConfig {
            // Budget scaled so each worker's share cuts into a handful of
            // morsels whatever the corpus size — the stealing granularity
            // under test, not a fixed constant that a small corpus would
            // leave uncut.
            morsel_ops: (total_ops(sc, &groups) / (workers as u64 * 8)).max(1_000),
            steal: true,
        }
    };
    let cluster = Cluster::new(config);
    let partitions = if mode == SchedMode::Packed {
        pack_pairs(&sc.corpus, groups, workers)
    } else {
        groups
    };
    let pairs: usize = partitions.iter().map(|p| p.len()).sum();
    let out =
        pairwise_distances_partitioned(&cluster, &sc.corpus, partitions).expect("distance stage");
    assert_eq!(out.len(), pairs, "every pair must produce a vector");
    let stage = cluster
        .clock()
        .stages()
        .into_iter()
        .rev()
        .find(|s| s.name == "pairwise-distances")
        .expect("distance stage record");
    let report = cluster.job_report();
    SchedRun {
        pairs,
        makespan_us: stage.makespan_us(workers),
        morsels: report.sched.morsels,
        steals: report.sched.steals,
        utilization: report.sched.utilization,
        imbalance: report.sched.imbalance,
        report_text: report.to_string(),
    }
}

/// One corpus's three-way comparison.
#[derive(Debug, Clone)]
pub struct SchedComparison {
    /// Corpus label (`"skewed"` / `"uniform"`).
    pub label: &'static str,
    /// The static baseline.
    pub static_run: SchedRun,
    /// Morsels + stealing over the unpacked block partitions.
    pub steal_run: SchedRun,
    /// Packed partitions + morsels + stealing.
    pub packed_run: SchedRun,
}

impl SchedComparison {
    /// Makespan ratio static / packed — the number the gate reads.
    pub fn speedup(&self) -> f64 {
        self.static_run.makespan_us as f64 / (self.packed_run.makespan_us as f64).max(1.0)
    }

    /// Makespan ratio static / steal-only: what the scheduler wins before
    /// any partitioning help.
    pub fn steal_speedup(&self) -> f64 {
        self.static_run.makespan_us as f64 / (self.steal_run.makespan_us as f64).max(1.0)
    }
}

fn run_json(r: &SchedRun) -> String {
    format!(
        "{{\"pairs\": {}, \"makespan_us\": {}, \"morsels\": {}, \"steals\": {}, \
         \"utilization\": {:.4}, \"imbalance\": {:.4}}}",
        r.pairs, r.makespan_us, r.morsels, r.steals, r.utilization, r.imbalance
    )
}

/// Render the comparisons as the `BENCH_sched.json` document.
pub fn sched_to_json(workers: usize, comparisons: &[SchedComparison], threshold: f64) -> String {
    let gated = comparisons
        .iter()
        .find(|c| c.label == "skewed")
        .map(|c| c.speedup())
        .unwrap_or(0.0);
    let mut out = format!("{{\n  \"schema_version\": 1,\n  \"workers\": {workers},\n");
    for c in comparisons {
        out.push_str(&format!(
            "  \"{}\": {{\"static\": {}, \"steal\": {}, \"packed\": {}, \
             \"steal_speedup\": {:.2}, \"speedup\": {:.2}}},\n",
            c.label,
            run_json(&c.static_run),
            run_json(&c.steal_run),
            run_json(&c.packed_run),
            c.steal_speedup(),
            c.speedup()
        ));
    }
    out.push_str("  ");
    out.push_str(&gates_json(&[Gate::at_least("speedup", threshold, gated)]));
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_corpus_has_a_dominant_block() {
        let sc = skewed_corpus(240, 24);
        let groups = sc.blocking.candidate_pair_groups(&sc.new_ids);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        let total: usize = sizes.iter().sum();
        let max = *sizes.iter().max().unwrap();
        assert!(
            max * 2 > total,
            "hot block must dominate the pair stream: {max} of {total}"
        );
    }

    #[test]
    fn stealing_beats_static_placement_on_skew() {
        let sc = skewed_corpus(240, 24);
        let static_run = run_distance_stage(&sc, 8, SchedMode::Static);
        let steal_run = run_distance_stage(&sc, 8, SchedMode::Steal);
        let packed_run = run_distance_stage(&sc, 8, SchedMode::Packed);
        assert_eq!(static_run.pairs, steal_run.pairs, "same work all modes");
        assert_eq!(static_run.pairs, packed_run.pairs, "same work all modes");
        assert!(
            steal_run.makespan_us < static_run.makespan_us,
            "stealing alone must beat static on a skewed corpus: {} vs {}",
            steal_run.makespan_us,
            static_run.makespan_us
        );
        assert!(
            packed_run.makespan_us < static_run.makespan_us,
            "packing + stealing must beat static: {} vs {}",
            packed_run.makespan_us,
            static_run.makespan_us
        );
        assert!(
            steal_run.steals > 0,
            "the hot unpacked partition must get stolen from"
        );
        assert!(packed_run.utilization > static_run.utilization);
    }

    #[test]
    fn json_shape_is_well_formed() {
        let run = SchedRun {
            pairs: 10,
            makespan_us: 1000,
            morsels: 4,
            steals: 1,
            utilization: 0.9,
            imbalance: 1.1,
            report_text: String::new(),
        };
        let cmp = SchedComparison {
            label: "skewed",
            static_run: SchedRun {
                makespan_us: 3000,
                ..run.clone()
            },
            steal_run: SchedRun {
                makespan_us: 1500,
                ..run.clone()
            },
            packed_run: run,
        };
        let doc = sched_to_json(8, &[cmp], 1.5);
        assert!(doc.contains("\"speedup\": 3.00"));
        assert!(doc.contains("\"steal_speedup\": 2.00"));
        assert!(doc.contains("\"passed\": true"));
        assert!(doc.starts_with('{') && doc.ends_with("}\n"));
    }
}
