//! Streaming-ingest service benchmark behind `BENCH_ingest.json`.
//!
//! Drives [`dedup::IngestService`] through a multi-quarter replay of a
//! synthetic corpus ([`adr_synth::QuarterlyReplay`]) and measures the
//! per-quarter commit latency the service sustains as the report database
//! grows — the operational question the paper's one-shot evaluation never
//! asks. Two legs:
//!
//! * **steady** — an uninterrupted run over every quarter; per-batch
//!   latency, detections and checkpoint bytes come from the job report's
//!   coalesced `ingest` section;
//! * **kill + recover** — the same run with a driver kill armed at a fault
//!   point midway through the schedule, then a recovery open from the
//!   checkpoint directory that finishes the run.
//!
//! **Gate**: the last detect quarter commits within
//! [`LATENCY_GATE_FACTOR`]× the first detect quarter's latency (bounded
//! stores and blocking keep per-quarter work from tracking database
//! growth), and the kill + recover leg's cumulative digest is
//! bit-identical to the steady leg's.

use crate::harness::{gates_json, Gate};
use adr_synth::{QuarterlyReplay, StreamingCorpus, SynthConfig};
use dedup::{DedupConfig, IngestConfig, IngestService};
use fastknn::FastKnnConfig;
use sparklet::{Cluster, ClusterConfig, FaultConfig, IngestBatchRow};
use std::path::PathBuf;

/// Gate: the last detect quarter must commit within this factor of the
/// first detect quarter's latency.
pub const LATENCY_GATE_FACTOR: f64 = 2.0;

/// One benchmark scenario: corpus scale, quarter size and cluster shape.
#[derive(Debug, Clone)]
pub struct IngestWorkload {
    /// Total corpus size (duplicates included).
    pub num_reports: usize,
    /// Injected duplicate pairs (~5% of reports, the Nkanza & Walop rate
    /// the generator defaults to).
    pub duplicate_pairs: usize,
    /// Reports per micro-batch (one "quarter" of the replay).
    pub quarter_size: u64,
    /// Leading quarters ingested as the expert-labelled historical
    /// database (the paper's operating point: new reports arrive at an
    /// *existing* database, so the detect horizon sees bounded relative
    /// growth rather than a cold start).
    pub bootstrap_quarters: u64,
    /// Simulated executors.
    pub executors: usize,
    /// Corpus seed.
    pub seed: u64,
}

impl IngestWorkload {
    /// Headline scenario: a 4,800-report corpus — roughly half the paper's
    /// TGA extract — streamed in 16 quarters of 300, the first 10 forming
    /// the historical labelled database (≈2.5 years of history, 1.5 years
    /// of arrivals).
    pub fn full() -> Self {
        IngestWorkload {
            num_reports: 4_800,
            duplicate_pairs: 240,
            quarter_size: 300,
            bootstrap_quarters: 10,
            executors: 4,
            seed: 2016,
        }
    }

    /// CI-smoke scale: 8 quarters of 150 reports, 4 of them historical.
    pub fn quick() -> Self {
        IngestWorkload {
            num_reports: 1_200,
            duplicate_pairs: 60,
            quarter_size: 150,
            bootstrap_quarters: 4,
            executors: 4,
            seed: 2016,
        }
    }

    /// The replay schedule over this workload's corpus.
    pub fn replay(&self) -> QuarterlyReplay {
        QuarterlyReplay::new(
            StreamingCorpus::new(SynthConfig::small(
                self.num_reports,
                self.duplicate_pairs,
                self.seed,
            )),
            self.quarter_size,
        )
    }

    fn dedup_config(&self) -> DedupConfig {
        // Fill the negative reservoir to capacity at bootstrap (bounded by
        // the pairs the historical prefix can yield): the first classified
        // quarter floods the reservoir to its cap anyway, so a small
        // bootstrap sample would only make the first detect quarter
        // artificially cheap and the latency gate meaningless.
        let bootstrap_reports = (self.quarter_size * self.bootstrap_quarters) as usize;
        let defaults = DedupConfig::default();
        DedupConfig {
            bootstrap_negatives: defaults
                .max_negative_store
                .min(bootstrap_reports * bootstrap_reports / 4),
            use_blocking: true,
            knn: FastKnnConfig {
                // Unlike the score-sweep experiments (θ = 0 so every score
                // is reported), the service feeds Eq. 6 *decisions* back
                // into its stores. Eq. 5 scores are inverse-distance sums
                // — true duplicates land far above 1 — and every false
                // positive permanently joins the (unbounded) duplicate
                // store that Fast kNN's stage 1 scans per candidate, so a
                // loose threshold turns into quadratic latency growth.
                theta: 10.0,
                b: 8,
                ..FastKnnConfig::default()
            },
            ..defaults
        }
    }

    fn ingest_config(&self, dir: &PathBuf) -> IngestConfig {
        let mut cfg = IngestConfig::new(dir);
        cfg.bootstrap_quarters = self.bootstrap_quarters;
        cfg
    }

    fn fresh_dir(&self, tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bench-ingest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }
}

/// Summary of one completed service run.
#[derive(Debug, Clone)]
pub struct IngestRunSummary {
    /// Cumulative detection digest — the cross-leg identity witness.
    pub digest: u64,
    /// Per-batch rows from the job report's `ingest` section.
    pub rows: Vec<IngestBatchRow>,
    /// Virtual makespan of the whole run (µs).
    pub makespan_us: u64,
    /// Total checkpoint bytes written.
    pub checkpoint_bytes: u64,
    /// Fault points the driver passed (arms the kill leg).
    pub driver_points: u64,
    /// Recovery opens observed by the journal.
    pub recoveries: u64,
    /// The run's rendered job report (stage timeline + ingest table).
    pub report_text: String,
}

fn summarise(svc: &IngestService) -> IngestRunSummary {
    let report = svc.job_report();
    IngestRunSummary {
        digest: svc.cumulative_digest(),
        rows: report.ingest.batches.clone(),
        makespan_us: report.virtual_us,
        checkpoint_bytes: report.ingest.checkpoint_bytes,
        driver_points: svc.system().cluster().driver_points_passed(),
        recoveries: report.ingest.recoveries,
        report_text: format!("{report}"),
    }
}

/// Run every quarter uninterrupted on a fresh checkpoint directory.
pub fn run_steady(w: &IngestWorkload) -> Result<IngestRunSummary, dedup::IngestError> {
    let rp = w.replay();
    let dir = w.fresh_dir("steady");
    let mut svc = IngestService::open(
        Cluster::local(w.executors),
        w.dedup_config(),
        w.ingest_config(&dir),
        &rp,
    )?;
    svc.run(&rp, rp.quarters())?;
    let summary = summarise(&svc);
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(summary)
}

/// Kill the driver at `kill_point`, then recover from the checkpoint
/// directory with a fresh (un-armed) cluster and finish the run.
pub fn run_killed_and_recovered(
    w: &IngestWorkload,
    kill_point: u64,
) -> Result<IngestRunSummary, dedup::IngestError> {
    let rp = w.replay();
    let dir = w.fresh_dir("killed");
    let mut cfg = ClusterConfig::local(w.executors);
    cfg.fault = FaultConfig::disabled().kill_driver_at_point(kill_point);
    let killed = IngestService::open(
        Cluster::new(cfg),
        w.dedup_config(),
        w.ingest_config(&dir),
        &rp,
    )?
    .run(&rp, rp.quarters());
    match killed {
        Err(e) if e.is_driver_kill() => {}
        Err(e) => return Err(e),
        Ok(_) => {
            return Err(dedup::IngestError::Checkpoint(format!(
                "kill point {kill_point} beyond the run; nothing was killed"
            )))
        }
    }
    let mut svc = IngestService::open(
        Cluster::local(w.executors),
        w.dedup_config(),
        w.ingest_config(&dir),
        &rp,
    )?;
    svc.run(&rp, rp.quarters())?;
    let summary = summarise(&svc);
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(summary)
}

/// Detect-quarter rows (the bootstrap row commits no detections and is
/// excluded from the latency gate).
fn detect_rows(rows: &[IngestBatchRow]) -> Vec<&IngestBatchRow> {
    rows.iter().filter(|r| r.batch > 0).collect()
}

/// `(first, last, ratio)` of the detect-quarter commit latencies.
pub fn latency_ratio(rows: &[IngestBatchRow]) -> Option<(u64, u64, f64)> {
    let detect = detect_rows(rows);
    let first = detect.first()?.latency_us;
    let last = detect.last()?.latency_us;
    Some((first, last, last as f64 / first.max(1) as f64))
}

/// Render `BENCH_ingest.json`.
pub fn ingest_to_json(
    w: &IngestWorkload,
    steady: &IngestRunSummary,
    recovered: &IngestRunSummary,
) -> String {
    let quarters = w.replay().quarters();
    let (first, last, ratio) = latency_ratio(&steady.rows).unwrap_or((0, 0, f64::INFINITY));
    let digest_match = recovered.digest == steady.digest;
    let recovered_once = recovered.recoveries >= 1;
    let mut out = format!(
        "{{\n  \"schema_version\": 1,\n  \"reports\": {},\n  \"quarters\": {},\n  \
         \"quarter_size\": {},\n  \"executors\": {},\n",
        w.num_reports, quarters, w.quarter_size, w.executors
    );
    out.push_str(&format!(
        "  \"steady\": {{\"digest\": \"{:#018x}\", \"makespan_us\": {}, \
         \"checkpoint_bytes\": {}, \"batches\": [\n",
        steady.digest, steady.makespan_us, steady.checkpoint_bytes
    ));
    for (i, r) in steady.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"batch\": {}, \"reports\": {}, \"detections\": {}, \"duplicates\": {}, \
             \"latency_us\": {}, \"checkpoint_bytes\": {}}}{}\n",
            r.batch,
            r.reports,
            r.detections,
            r.duplicates,
            r.latency_us,
            r.checkpoint_bytes,
            if i + 1 < steady.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]},\n");
    out.push_str(&format!(
        "  \"recovered\": {{\"digest\": \"{:#018x}\", \"makespan_us\": {}, \
         \"recoveries\": {}}},\n",
        recovered.digest, recovered.makespan_us, recovered.recoveries
    ));
    out.push_str(&format!(
        "  \"latency\": {{\"first_quarter_us\": {first}, \"last_quarter_us\": {last}}},\n"
    ));
    out.push_str("  ");
    out.push_str(&gates_json(&[
        Gate::at_most("latency_ratio", LATENCY_GATE_FACTOR, ratio),
        Gate::holds("recovery_digest_match", digest_match),
        Gate::holds("recovered", recovered_once),
    ]));
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> IngestWorkload {
        IngestWorkload {
            num_reports: 160,
            duplicate_pairs: 8,
            quarter_size: 40,
            bootstrap_quarters: 1,
            executors: 2,
            seed: 7,
        }
    }

    #[test]
    fn steady_and_recovered_legs_agree_at_test_scale() {
        let w = tiny();
        let steady = run_steady(&w).expect("steady leg");
        assert_eq!(steady.rows.len(), 4, "bootstrap + 3 detect quarters");
        assert!(steady.checkpoint_bytes > 0);
        assert!(steady.driver_points >= 8);
        let recovered =
            run_killed_and_recovered(&w, steady.driver_points / 2).expect("kill + recover leg");
        assert_eq!(recovered.digest, steady.digest);
        assert_eq!(recovered.recoveries, 1);

        let doc = ingest_to_json(&w, &steady, &recovered);
        assert!(
            doc.contains(
                "\"recovery_digest_match\": {\"threshold\": 1.00, \"value\": 1.0000, \"passed\": true}"
            ),
            "{doc}"
        );
        assert!(doc.starts_with('{') && doc.ends_with("}\n"));
    }

    #[test]
    fn json_gate_fails_on_digest_drift_or_latency_blowup() {
        let w = tiny();
        let row = |batch, latency_us| IngestBatchRow {
            batch,
            reports: 10,
            detections: 5,
            duplicates: 1,
            retries: 0,
            deferrals: 0,
            latency_us,
            checkpoint_bytes: 100,
        };
        let steady = IngestRunSummary {
            digest: 42,
            rows: vec![row(0, 0), row(1, 1000), row(2, 1500)],
            makespan_us: 10_000,
            checkpoint_bytes: 300,
            driver_points: 12,
            recoveries: 0,
            report_text: String::new(),
        };
        let mut recovered = steady.clone();
        recovered.recoveries = 1;
        let doc = ingest_to_json(&w, &steady, &recovered);
        assert!(doc.contains(
            "\"latency_ratio\": {\"threshold\": 2.00, \"value\": 1.5000, \"passed\": true}"
        ));
        assert!(!doc.contains("\"passed\": false"));

        let mut drifted = recovered.clone();
        drifted.digest = 43;
        let doc = ingest_to_json(&w, &steady, &drifted);
        assert!(doc.contains(
            "\"recovery_digest_match\": {\"threshold\": 1.00, \"value\": 0.0000, \"passed\": false}"
        ));

        let mut slow = steady.clone();
        slow.rows = vec![row(0, 0), row(1, 1000), row(2, 2500)];
        let doc = ingest_to_json(&w, &slow, &recovered);
        assert!(doc.contains(
            "\"latency_ratio\": {\"threshold\": 2.00, \"value\": 2.5000, \"passed\": false}"
        ));
    }
}
