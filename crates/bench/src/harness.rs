//! Result tables, markdown rendering and the shared cost model.

use sparklet::{ClusterConfig, CostModelConfig, FaultConfig};
use std::fmt;

/// A rendered experiment result: a named table plus commentary lines.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id, e.g. `"Figure 7(a)"`.
    pub name: String,
    /// What the paper reports for this table/figure.
    pub paper_expectation: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form observations comparing measured shape to the paper.
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Start a result table.
    pub fn new(name: &str, paper_expectation: &str, headers: &[&str]) -> Self {
        ExperimentResult {
            name: name.to_string(),
            paper_expectation: paper_expectation.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}", self.name)?;
        writeln!(f)?;
        writeln!(f, "*Paper:* {}", self.paper_expectation)?;
        writeln!(f)?;
        writeln!(f, "| {} |", self.headers.join(" | "))?;
        writeln!(
            f,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        )?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.join(" | "))?;
        }
        for note in &self.notes {
            writeln!(f)?;
            writeln!(f, "*Measured:* {note}")?;
        }
        writeln!(f)
    }
}

/// Ratio between the paper's pair volumes and this harness's (5× fewer
/// training pairs × 10× fewer test pairs). Comparison costs scale with the
/// product, so each of our comparisons stands for ~50 at paper scale.
pub const PAPER_SCALE: u64 = 50;

/// Cost model that reports virtual time at paper scale (see crate docs).
pub fn paper_cost() -> CostModelConfig {
    CostModelConfig {
        op_ns: 400 * PAPER_SCALE,
        record_ns: 50 * PAPER_SCALE,
        ..CostModelConfig::default()
    }
}

/// Cluster configuration used by the experiments: the paper's topology
/// knobs with fault injection off and a generous memory budget (individual
/// experiments override memory to study pressure).
pub fn experiment_cluster_config(executors: usize, cores: usize) -> ClusterConfig {
    ClusterConfig {
        num_executors: executors,
        cores_per_executor: cores,
        memory_per_executor: 32 << 30, // the paper's 32 GB executors
        max_task_attempts: 4,
        fault: FaultConfig::disabled(),
        cost: paper_cost(),
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a count with thousands separators.
pub fn count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut r = ExperimentResult::new("Figure X", "goes up", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        r.note("it went up");
        let s = r.to_string();
        assert!(s.contains("### Figure X"));
        assert!(s.contains("| a | b |"));
        assert!(s.contains("| 1 | 2 |"));
        assert!(s.contains("*Measured:* it went up"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut r = ExperimentResult::new("x", "y", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(1000), "1,000");
        assert_eq!(count(1234567), "1,234,567");
    }

    #[test]
    fn paper_cost_scales_ops() {
        let c = paper_cost();
        assert_eq!(c.op_ns, 400 * PAPER_SCALE);
    }
}
