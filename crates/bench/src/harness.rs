//! Result tables, markdown rendering, the shared cost model, and the
//! `--report` job-report capture shared by every experiment binary.

use sparklet::{Cluster, ClusterConfig, CostModelConfig, FaultConfig, JobReport};
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// A rendered experiment result: a named table plus commentary lines.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id, e.g. `"Figure 7(a)"`.
    pub name: String,
    /// What the paper reports for this table/figure.
    pub paper_expectation: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form observations comparing measured shape to the paper.
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Start a result table.
    pub fn new(name: &str, paper_expectation: &str, headers: &[&str]) -> Self {
        ExperimentResult {
            name: name.to_string(),
            paper_expectation: paper_expectation.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}", self.name)?;
        writeln!(f)?;
        writeln!(f, "*Paper:* {}", self.paper_expectation)?;
        writeln!(f)?;
        writeln!(f, "| {} |", self.headers.join(" | "))?;
        writeln!(
            f,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        )?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.join(" | "))?;
        }
        for note in &self.notes {
            writeln!(f)?;
            writeln!(f, "*Measured:* {note}")?;
        }
        writeln!(f)
    }
}

/// Ratio between the paper's pair volumes and this harness's (5× fewer
/// training pairs × 10× fewer test pairs). Comparison costs scale with the
/// product, so each of our comparisons stands for ~50 at paper scale.
pub const PAPER_SCALE: u64 = 50;

/// Cost model that reports virtual time at paper scale (see crate docs).
pub fn paper_cost() -> CostModelConfig {
    CostModelConfig {
        op_ns: 400 * PAPER_SCALE,
        record_ns: 50 * PAPER_SCALE,
        ..CostModelConfig::default()
    }
}

/// Cluster configuration used by the experiments: the paper's topology
/// knobs with fault injection off and a generous memory budget (individual
/// experiments override memory to study pressure).
pub fn experiment_cluster_config(executors: usize, cores: usize) -> ClusterConfig {
    ClusterConfig {
        num_executors: executors,
        cores_per_executor: cores,
        memory_per_executor: 32 << 30, // the paper's 32 GB executors
        max_task_attempts: 4,
        speculation: false,
        fault: FaultConfig::disabled(),
        cost: paper_cost(),
        sched: sparklet::SchedConfig::default(),
        batch: sparklet::BatchConfig::default(),
        spill: sparklet::SpillConfig::default(),
    }
}

/// Labelled [`JobReport`] snapshots captured while an experiment ran.
fn captured_reports() -> &'static Mutex<Vec<(String, JobReport)>> {
    static REPORTS: OnceLock<Mutex<Vec<(String, JobReport)>>> = OnceLock::new();
    REPORTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Snapshot the cluster's journal as a labelled [`JobReport`]. Experiments
/// call this at each measurement point (typically right before
/// `reset_run_state`, which clears the journal); the snapshots accumulate
/// until [`write_captured_reports`] drains them.
pub fn capture_run(label: impl Into<String>, cluster: &Cluster) {
    let report = cluster.job_report();
    captured_reports()
        .lock()
        .expect("report capture lock")
        .push((label.into(), report));
}

/// The `--report <path>` argument, if the binary was given one.
pub fn report_path_from_args() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--report" {
            return args.next();
        }
        if let Some(path) = a.strip_prefix("--report=") {
            return Some(path.to_string());
        }
    }
    None
}

/// Drain the captured reports into a schema-stable JSON file:
/// `{"schema_version": 1, "runs": [{"label": ..., "report": {...}}]}`.
pub fn write_captured_reports(path: &str) -> std::io::Result<()> {
    let runs = std::mem::take(&mut *captured_reports().lock().expect("report capture lock"));
    let mut out = String::from("{\"schema_version\":1,\"runs\":[");
    for (i, (label, report)) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"label\":");
        out.push_str(&sparklet::journal::json_string(label));
        out.push_str(",\"report\":");
        out.push_str(&report.to_json());
        out.push('}');
    }
    out.push_str("]}");
    std::fs::write(path, out)
}

/// If the binary was invoked with `--report <path>`, write the captured
/// job reports there and tell the user. Call at the end of `main`.
pub fn maybe_write_report() {
    if let Some(path) = report_path_from_args() {
        match write_captured_reports(&path) {
            Ok(()) => println!("\njob report written to {path}"),
            Err(e) => eprintln!("failed to write job report to {path}: {e}"),
        }
    }
}

/// One named acceptance gate: a measured `value` compared against a
/// `threshold`. Every `BENCH_*.json` renders its gates through
/// [`gates_json`], so downstream tooling reads one shape everywhere:
/// `"gates": {"<name>": {"threshold": T, "value": V, "passed": bool}}`.
#[derive(Debug, Clone)]
pub struct Gate {
    /// Gate name (the JSON key).
    pub name: String,
    /// The acceptance bar.
    pub threshold: f64,
    /// The measured value.
    pub value: f64,
    /// `true` when passing means `value >= threshold`, `false` when it
    /// means `value <= threshold`.
    pub higher_is_better: bool,
}

impl Gate {
    /// Gate that passes when `value >= threshold`.
    pub fn at_least(name: impl Into<String>, threshold: f64, value: f64) -> Self {
        Gate {
            name: name.into(),
            threshold,
            value,
            higher_is_better: true,
        }
    }

    /// Gate that passes when `value <= threshold`.
    pub fn at_most(name: impl Into<String>, threshold: f64, value: f64) -> Self {
        Gate {
            name: name.into(),
            threshold,
            value,
            higher_is_better: false,
        }
    }

    /// Boolean invariant as a gate: holds (value 1) or violated (value 0)
    /// against a threshold of 1.
    pub fn holds(name: impl Into<String>, ok: bool) -> Self {
        Gate::at_least(name, 1.0, if ok { 1.0 } else { 0.0 })
    }

    /// Did the measured value clear the bar?
    pub fn passed(&self) -> bool {
        if self.higher_is_better {
            self.value >= self.threshold
        } else {
            self.value <= self.threshold
        }
    }
}

/// Render the canonical top-level `"gates"` object (no leading indent; the
/// caller embeds it after two spaces inside the document braces).
pub fn gates_json(gates: &[Gate]) -> String {
    let mut out = String::from("\"gates\": {\n");
    for (i, g) in gates.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"threshold\": {:.2}, \"value\": {:.4}, \"passed\": {}}}{}\n",
            g.name,
            g.threshold,
            g.value,
            g.passed(),
            if i + 1 < gates.len() { "," } else { "" }
        ));
    }
    out.push_str("  }");
    out
}

/// Do all gates pass? (Vacuously true for an empty list.)
pub fn gates_all_passed(gates: &[Gate]) -> bool {
    gates.iter().all(Gate::passed)
}

/// One `gate: ...` summary line per gate for stderr, plus the verdict.
pub fn gates_summary(gates: &[Gate]) -> String {
    let mut out = String::new();
    for g in gates {
        out.push_str(&format!(
            "gate {}: value {:.4} vs threshold {:.2} ({}) -> {}\n",
            g.name,
            g.value,
            g.threshold,
            if g.higher_is_better { ">=" } else { "<=" },
            if g.passed() { "pass" } else { "FAIL" }
        ));
    }
    out.push_str(if gates_all_passed(gates) {
        "gates: PASSED"
    } else {
        "gates: FAILED"
    });
    out
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a count with thousands separators.
pub fn count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut r = ExperimentResult::new("Figure X", "goes up", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        r.note("it went up");
        let s = r.to_string();
        assert!(s.contains("### Figure X"));
        assert!(s.contains("| a | b |"));
        assert!(s.contains("| 1 | 2 |"));
        assert!(s.contains("*Measured:* it went up"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut r = ExperimentResult::new("x", "y", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(1000), "1,000");
        assert_eq!(count(1234567), "1,234,567");
    }

    #[test]
    fn paper_cost_scales_ops() {
        let c = paper_cost();
        assert_eq!(c.op_ns, 400 * PAPER_SCALE);
    }

    #[test]
    fn gates_render_canonically_and_aggregate() {
        let gates = [
            Gate::at_least("speedup", 2.0, 3.875),
            Gate::at_most("p99_ratio", 1.0, 0.52),
            Gate::holds("digest_match", true),
        ];
        assert!(gates_all_passed(&gates));
        let doc = gates_json(&gates);
        assert!(doc.starts_with("\"gates\": {\n"), "{doc}");
        assert!(
            doc.contains(
                "\"speedup\": {\"threshold\": 2.00, \"value\": 3.8750, \"passed\": true},"
            ),
            "{doc}"
        );
        assert!(
            doc.contains(
                "\"p99_ratio\": {\"threshold\": 1.00, \"value\": 0.5200, \"passed\": true},"
            ),
            "{doc}"
        );
        assert!(
            doc.contains(
                "\"digest_match\": {\"threshold\": 1.00, \"value\": 1.0000, \"passed\": true}\n"
            ),
            "{doc}"
        );
        assert!(doc.ends_with("  }"), "{doc}");

        let failing = [Gate::at_least("speedup", 2.0, 1.5)];
        assert!(!gates_all_passed(&failing));
        assert!(gates_json(&failing).contains("\"passed\": false"));
        assert!(gates_summary(&failing).contains("gates: FAILED"));
        assert!(gates_all_passed(&[]), "no gates, nothing to fail");
    }

    #[test]
    fn captured_reports_round_trip_to_schema_stable_json() {
        let cluster = Cluster::local(2);
        let n = cluster
            .parallelize((0..100u64).collect(), 4)
            .count()
            .expect("count");
        assert_eq!(n, 100);
        capture_run("harness \"smoke\" run", &cluster);
        let dir = std::env::temp_dir().join("bench_harness_report_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("report.json");
        write_captured_reports(path.to_str().expect("utf8 path")).expect("write");
        let doc = std::fs::read_to_string(&path).expect("read back");
        assert!(doc.starts_with("{\"schema_version\":1,\"runs\":["), "{doc}");
        assert!(
            doc.contains("\"label\":\"harness \\\"smoke\\\" run\""),
            "{doc}"
        );
        assert!(doc.contains("\"stages\": ["), "{doc}");
        assert!(doc.contains("\"totals\": {"), "{doc}");
        // No drain-emptiness assertion here: the capture buffer is global
        // and other experiment tests append to it concurrently.
        let _ = std::fs::remove_dir_all(&dir);
    }
}
