//! Shared, lazily-built corpora and workloads.

use adr_synth::{Dataset, SynthConfig};
use dedup::workload::{build_workload_on, PairWorkload, ProcessedCorpus};
use std::sync::OnceLock;

/// The TGA-scale corpus of Table 3 (10,382 reports, 286 duplicate pairs),
/// generated once per process.
pub fn tga_corpus() -> &'static ProcessedCorpus {
    static CORPUS: OnceLock<ProcessedCorpus> = OnceLock::new();
    CORPUS.get_or_init(|| ProcessedCorpus::new(Dataset::generate(&SynthConfig::tga())))
}

/// A quick corpus for smoke runs and tests (800 reports, 40 dup pairs).
pub fn small_corpus() -> &'static ProcessedCorpus {
    static CORPUS: OnceLock<ProcessedCorpus> = OnceLock::new();
    CORPUS
        .get_or_init(|| ProcessedCorpus::new(Dataset::generate(&SynthConfig::small(800, 40, 2016))))
}

/// Paper-to-harness scaling for training-set sizes: the paper's "N million
/// pairs" becomes `N million / 5` here. The divisor is deliberately small:
/// keeping the training sets large preserves the paper's extreme label
/// imbalance (their 1M-pair training set holds just 266 duplicates —
/// 0.027%; ours holds ~172 in 200k — 0.086%), which is the mechanism behind
/// their SVM-vs-kNN result.
pub const TRAIN_SCALE_DIVISOR: usize = 5;

/// Convert a paper-scale "millions of training pairs" figure to this
/// harness's pair count.
pub fn scaled_train(millions: usize) -> usize {
    millions * 1_000_000 / TRAIN_SCALE_DIVISOR
}

/// Standard scaled workload against the TGA corpus.
pub fn tga_workload(train_pairs: usize, test_pairs: usize, seed: u64) -> PairWorkload {
    build_workload_on(tga_corpus(), train_pairs, test_pairs, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_train_matches_design() {
        assert_eq!(scaled_train(1), 200_000);
        assert_eq!(scaled_train(5), 1_000_000);
    }

    #[test]
    fn small_corpus_is_cached() {
        let a = small_corpus() as *const _;
        let b = small_corpus() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn small_workload_builds() {
        let w = build_workload_on(small_corpus(), 500, 100, 1);
        assert_eq!(w.train.len(), 500);
        assert_eq!(w.test.len(), 100);
        assert!(w.test_positives() > 0);
    }
}
