//! Cluster-wide counters: scheduling, shuffle, storage and user metrics.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared handle to a named `u64` counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// All engine metrics plus a registry of user-defined counters.
///
/// Cloning shares the underlying counters (`Arc` semantics).
#[derive(Clone, Default)]
pub struct ClusterMetrics {
    /// Task attempts launched (including retries).
    pub tasks_launched: Counter,
    /// Task attempts that succeeded.
    pub tasks_succeeded: Counter,
    /// Task attempts that failed (injected faults + memory kills).
    pub tasks_failed: Counter,
    /// Failures caused by the modelled memory budget specifically.
    pub memory_kills: Counter,
    /// Records written to the shuffle service.
    pub shuffle_records_written: Counter,
    /// Estimated bytes written to the shuffle service.
    pub shuffle_bytes_written: Counter,
    /// Records read back from the shuffle service.
    pub shuffle_records_read: Counter,
    /// Cache lookups that hit the block manager.
    pub cache_hits: Counter,
    /// Cache lookups that missed and recomputed from lineage.
    pub cache_misses: Counter,
    /// Cached blocks evicted under memory pressure.
    pub cache_evictions: Counter,
    /// Jobs (actions / shuffle-materialisation stages) submitted.
    pub jobs_submitted: Counter,
    /// Executors killed by the fault schedule (restarts + blacklists).
    pub executors_lost: Counter,
    /// Executors removed from scheduling after exceeding the failure budget.
    pub executors_blacklisted: Counter,
    /// Reduce-side reads that found their shuffle map outputs gone.
    pub fetch_failures: Counter,
    /// Map tasks re-run from lineage to rebuild lost shuffle outputs.
    pub recomputed_tasks: Counter,
    /// Task results discarded because their executor died mid-flight
    /// (rescheduled on survivors without counting as failures).
    pub tasks_lost: Counter,
    /// Speculative clone attempts launched for stragglers.
    pub speculative_launched: Counter,
    /// Speculative clones that beat the original attempt.
    pub speculative_wins: Counter,
    /// Morsels executed by morsel-driven stages (see
    /// [`crate::Cluster::run_morsel_job`]).
    pub morsels_executed: Counter,
    /// Morsels that ran on a worker other than their home (work stealing).
    pub morsels_stolen: Counter,
    /// Chunks dispatched through the batch operator path (see
    /// [`crate::BatchConfig`]).
    pub chunks_executed: Counter,
    /// Bytes serialized to spill files (shuffle buckets + cache blocks).
    pub spill_bytes_written: Counter,
    /// Bytes read back and deserialized from spill files.
    pub spill_bytes_read: Counter,
    /// Cache blocks that went to the disk tier instead of being dropped.
    pub blocks_spilled: Counter,
    /// Shuffle buckets written to the disk tier.
    pub buckets_spilled: Counter,
    /// Per-executor spill files created.
    pub spill_files_created: Counter,
    /// Cache puts refused because the block exceeded the executor pool and
    /// no spill codec could take it (the block recomputes from lineage on
    /// every access).
    pub cache_skipped: Counter,
    user: Arc<RwLock<HashMap<String, Counter>>>,
}

impl ClusterMetrics {
    /// Create a fresh, zeroed metrics registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch (creating on first use) a named user counter.
    ///
    /// Domain code uses these for algorithm-level statistics — the paper's
    /// intra-cluster / cross-cluster comparison counts, pruned-pair counts,
    /// and so on.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.user.read().get(name) {
            return c.clone();
        }
        let mut w = self.user.write();
        w.entry(name.to_string()).or_default().clone()
    }

    /// Snapshot of all user counters, sorted by name.
    pub fn user_counters(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .user
            .read()
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect();
        v.sort();
        v
    }

    /// Reset every engine and user counter to zero. Used between experiment
    /// runs so each figure's counts are independent.
    pub fn reset(&self) {
        self.tasks_launched.reset();
        self.tasks_succeeded.reset();
        self.tasks_failed.reset();
        self.memory_kills.reset();
        self.shuffle_records_written.reset();
        self.shuffle_bytes_written.reset();
        self.shuffle_records_read.reset();
        self.cache_hits.reset();
        self.cache_misses.reset();
        self.cache_evictions.reset();
        self.jobs_submitted.reset();
        self.executors_lost.reset();
        self.executors_blacklisted.reset();
        self.fetch_failures.reset();
        self.recomputed_tasks.reset();
        self.tasks_lost.reset();
        self.speculative_launched.reset();
        self.speculative_wins.reset();
        self.morsels_executed.reset();
        self.morsels_stolen.reset();
        self.chunks_executed.reset();
        self.spill_bytes_written.reset();
        self.spill_bytes_read.reset();
        self.blocks_spilled.reset();
        self.buckets_spilled.reset();
        self.spill_files_created.reset();
        self.cache_skipped.reset();
        for (_, c) in self.user.read().iter() {
            c.reset();
        }
    }
}

impl std::fmt::Debug for ClusterMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterMetrics")
            .field("tasks_launched", &self.tasks_launched.get())
            .field("tasks_succeeded", &self.tasks_succeeded.get())
            .field("tasks_failed", &self.tasks_failed.get())
            .field(
                "shuffle_records_written",
                &self.shuffle_records_written.get(),
            )
            .field("shuffle_bytes_written", &self.shuffle_bytes_written.get())
            .field("cache_hits", &self.cache_hits.get())
            .field("cache_misses", &self.cache_misses.get())
            .field("user", &self.user_counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::default();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counters_share_state_across_clones() {
        let m = ClusterMetrics::new();
        let a = m.counter("comparisons");
        let b = m.counter("comparisons");
        a.add(5);
        b.add(7);
        assert_eq!(m.counter("comparisons").get(), 12);
    }

    #[test]
    fn user_counters_snapshot_is_sorted() {
        let m = ClusterMetrics::new();
        m.counter("zzz").add(1);
        m.counter("aaa").add(2);
        let snap = m.user_counters();
        assert_eq!(snap[0].0, "aaa");
        assert_eq!(snap[1].0, "zzz");
    }

    #[test]
    fn reset_clears_user_counters_too() {
        let m = ClusterMetrics::new();
        m.counter("x").add(9);
        m.tasks_launched.add(3);
        m.executors_lost.add(2);
        m.fetch_failures.add(4);
        m.speculative_wins.inc();
        m.reset();
        assert_eq!(m.counter("x").get(), 0);
        assert_eq!(m.tasks_launched.get(), 0);
        assert_eq!(m.executors_lost.get(), 0);
        assert_eq!(m.fetch_failures.get(), 0);
        assert_eq!(m.speculative_wins.get(), 0);
    }

    #[test]
    fn metrics_clone_shares_counters() {
        let m = ClusterMetrics::new();
        let m2 = m.clone();
        m.tasks_failed.inc();
        assert_eq!(m2.tasks_failed.get(), 1);
    }
}
