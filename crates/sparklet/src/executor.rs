//! Executor registry: the failure domain of the engine.
//!
//! Every task attempt is placed on a virtual executor. An executor owns the
//! cache blocks it wrote ([`crate::storage::BlockManager`]) and the shuffle
//! map outputs it produced ([`crate::shuffle::ShuffleService`]); killing it
//! loses both, plus whatever attempts were running on it. Executors restart
//! with a fresh *incarnation* after a kill — results reported by a previous
//! incarnation are stale and discarded by the scheduler — until they exceed
//! [`crate::FaultConfig::max_executor_failures`] and are blacklisted.
//!
//! Placement is deterministic (`(task + attempt) mod alive`), which is what
//! lets a fault schedule reproduce the same ownership, the same losses and
//! the same recovery on every run.

use parking_lot::Mutex;

/// Snapshot of one executor's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutorInfo {
    /// Executor id, `0..num_executors`.
    pub id: usize,
    /// Restart count: bumped on every kill that does not blacklist. A task
    /// result is only accepted if its placement incarnation is still
    /// current.
    pub incarnation: u32,
    /// Kills this executor has absorbed.
    pub failures: u32,
    /// Is the executor accepting tasks? `false` once blacklisted.
    pub alive: bool,
}

/// What a kill did to an executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillOutcome {
    /// The incarnation that died (placements carrying it become stale).
    pub incarnation_lost: u32,
    /// Whether the kill pushed the executor over the failure budget.
    pub blacklisted: bool,
}

/// Registry of all executors in a cluster, shared by the scheduler and the
/// fault injector.
pub struct ExecutorRegistry {
    slots: Mutex<Vec<ExecutorInfo>>,
}

impl ExecutorRegistry {
    /// Create a registry of `n` live executors (clamped to at least 1).
    pub fn new(n: usize) -> Self {
        ExecutorRegistry {
            slots: Mutex::new(
                (0..n.max(1))
                    .map(|id| ExecutorInfo {
                        id,
                        incarnation: 0,
                        failures: 0,
                        alive: true,
                    })
                    .collect(),
            ),
        }
    }

    /// Total executors (alive or not).
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// Always at least one slot exists, so the registry is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Executors currently accepting tasks.
    pub fn alive_count(&self) -> usize {
        self.slots.lock().iter().filter(|e| e.alive).count()
    }

    /// Blacklisted executors.
    pub fn blacklisted_count(&self) -> usize {
        self.slots.lock().iter().filter(|e| !e.alive).count()
    }

    /// Snapshot of every executor's state, in id order.
    pub fn snapshot(&self) -> Vec<ExecutorInfo> {
        self.slots.lock().clone()
    }

    /// Deterministically place `(task, attempt)` on an alive executor:
    /// `alive[(task + attempt) mod alive_count]`. Returns the executor id
    /// and its current incarnation, or `None` when every executor is
    /// blacklisted. Rotating by attempt moves retries (and speculative
    /// clones) off the executor that hosted the previous attempt.
    pub fn place(&self, task: usize, attempt: u32) -> Option<(usize, u32)> {
        let slots = self.slots.lock();
        let alive: Vec<&ExecutorInfo> = slots.iter().filter(|e| e.alive).collect();
        if alive.is_empty() {
            return None;
        }
        let pick = alive[(task + attempt as usize) % alive.len()];
        Some((pick.id, pick.incarnation))
    }

    /// Is `(executor, incarnation)` still the current, alive incarnation?
    /// The scheduler discards results whose placement fails this check —
    /// they were computed by an executor that has since died.
    pub fn is_current(&self, executor: usize, incarnation: u32) -> bool {
        self.slots
            .lock()
            .get(executor)
            .map(|e| e.alive && e.incarnation == incarnation)
            .unwrap_or(false)
    }

    /// Kill `executor`: bump its failure count and either restart it with a
    /// new incarnation or blacklist it once `max_failures` is reached.
    /// Returns `None` if the executor is unknown or already blacklisted
    /// (the kill is a no-op).
    pub fn kill(&self, executor: usize, max_failures: u32) -> Option<KillOutcome> {
        let mut slots = self.slots.lock();
        let e = slots.get_mut(executor)?;
        if !e.alive {
            return None;
        }
        let incarnation_lost = e.incarnation;
        e.failures += 1;
        let blacklisted = e.failures >= max_failures.max(1);
        if blacklisted {
            e.alive = false;
        } else {
            e.incarnation += 1;
        }
        Some(KillOutcome {
            incarnation_lost,
            blacklisted,
        })
    }

    /// Revive every executor with fresh state (between experiment runs).
    pub fn reset(&self) {
        for e in self.slots.lock().iter_mut() {
            e.incarnation = 0;
            e.failures = 0;
            e.alive = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_round_robin() {
        let r = ExecutorRegistry::new(3);
        let a: Vec<_> = (0..6).map(|t| r.place(t, 0).unwrap().0).collect();
        assert_eq!(a, vec![0, 1, 2, 0, 1, 2]);
        // A retry rotates to the next executor.
        assert_eq!(r.place(0, 1).unwrap().0, 1);
    }

    #[test]
    fn kill_restarts_then_blacklists() {
        let r = ExecutorRegistry::new(2);
        let k1 = r.kill(1, 2).unwrap();
        assert!(!k1.blacklisted);
        assert_eq!(k1.incarnation_lost, 0);
        assert!(r.is_current(1, 1), "restarted with incarnation 1");
        assert!(!r.is_current(1, 0), "old incarnation is stale");
        let k2 = r.kill(1, 2).unwrap();
        assert!(k2.blacklisted);
        assert_eq!(r.alive_count(), 1);
        assert!(!r.is_current(1, 1), "blacklisted executor is never current");
        assert!(r.kill(1, 2).is_none(), "killing a dead executor is a no-op");
    }

    #[test]
    fn placement_skips_blacklisted_executors() {
        let r = ExecutorRegistry::new(3);
        r.kill(1, 1); // max_failures 1: immediate blacklist
        let picks: Vec<_> = (0..4).map(|t| r.place(t, 0).unwrap().0).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn all_blacklisted_means_no_placement() {
        let r = ExecutorRegistry::new(2);
        r.kill(0, 1);
        r.kill(1, 1);
        assert!(r.place(0, 0).is_none());
        assert_eq!(r.alive_count(), 0);
    }

    #[test]
    fn reset_revives_everyone() {
        let r = ExecutorRegistry::new(2);
        r.kill(0, 1);
        r.kill(1, 2);
        r.reset();
        assert_eq!(r.alive_count(), 2);
        assert!(r.is_current(0, 0));
        assert!(r.is_current(1, 0));
        assert_eq!(r.snapshot()[1].failures, 0);
    }

    #[test]
    fn zero_executors_clamps_to_one() {
        let r = ExecutorRegistry::new(0);
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert_eq!(r.place(5, 0), Some((0, 0)));
    }
}
