//! Engine error types.

use std::fmt;

/// Convenience alias used across the engine.
pub type Result<T> = std::result::Result<T, SparkletError>;

/// Errors surfaced by sparklet jobs and actions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparkletError {
    /// A task exhausted its retry budget.
    TaskFailed {
        /// Stage the task belonged to.
        stage: String,
        /// Task (partition) index within the stage.
        task: usize,
        /// Number of attempts made (including the first).
        attempts: u32,
        /// Human-readable description of the last failure.
        reason: String,
    },
    /// Deterministic fault injection tripped this attempt (internal; always
    /// retried until the retry budget runs out, after which it is wrapped in
    /// [`SparkletError::TaskFailed`]).
    InjectedFault,
    /// A task exceeded the modelled per-executor memory budget and was
    /// killed (Spark analogue: executor OOM / heartbeat timeout while
    /// swapping). Retried like any failure.
    MemoryExceeded {
        /// Bytes the task tried to hold resident.
        requested: usize,
        /// The per-executor budget from [`crate::ClusterConfig`].
        budget: usize,
    },
    /// Two RDDs were combined (zip/cogroup) with incompatible partitioning.
    PartitionMismatch {
        /// Left operand partition count.
        left: usize,
        /// Right operand partition count.
        right: usize,
    },
    /// A reduce-side task tried to fetch a shuffle bucket whose map outputs
    /// are gone (the hosting executor died, or the shuffle was never
    /// materialised). The scheduler treats this as recoverable: it re-runs
    /// the missing parent map tasks from lineage and retries the reader.
    FetchFailed {
        /// Shuffle whose map output is missing.
        shuffle: u64,
        /// Reduce bucket the reader wanted.
        bucket: usize,
    },
    /// Every executor has been blacklisted (exceeded
    /// [`crate::FaultConfig::max_executor_failures`]); no task can be
    /// placed and the job fails rather than hanging.
    NoHealthyExecutors {
        /// Stage that could not be scheduled.
        stage: String,
    },
    /// An action was invoked on an empty dataset where a value is required.
    EmptyCollection,
    /// The driver process was killed at a driver-side fault point (see
    /// [`crate::FaultConfig::driver_kill`] and
    /// [`crate::Cluster::driver_fault_point`]). Unlike task and executor
    /// faults this is **fatal**: nothing in-process retries it. Services
    /// model the crash by dropping their state and recovering from their
    /// durable checkpoint.
    DriverKilled {
        /// Global index of the fault point that fired (0-based, counted
        /// across the cluster's lifetime).
        point: u64,
        /// Label of the code location that hit the fault point.
        label: String,
    },
    /// User code inside a task failed with a message.
    User(String),
}

impl SparkletError {
    /// Is this a driver kill (fatal; never retried, recovered from a
    /// checkpoint instead)?
    pub fn is_driver_kill(&self) -> bool {
        matches!(self, SparkletError::DriverKilled { .. })
    }
}

impl fmt::Display for SparkletError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparkletError::TaskFailed {
                stage,
                task,
                attempts,
                reason,
            } => write!(
                f,
                "task {task} of stage '{stage}' failed after {attempts} attempts: {reason}"
            ),
            SparkletError::InjectedFault => write!(f, "injected fault"),
            SparkletError::MemoryExceeded { requested, budget } => write!(
                f,
                "task memory {requested}B exceeded executor budget {budget}B"
            ),
            SparkletError::PartitionMismatch { left, right } => {
                write!(f, "cannot zip datasets with {left} vs {right} partitions")
            }
            SparkletError::FetchFailed { shuffle, bucket } => {
                write!(f, "fetch failed: shuffle {shuffle} bucket {bucket} lost")
            }
            SparkletError::NoHealthyExecutors { stage } => {
                write!(f, "no healthy executors left to run stage '{stage}'")
            }
            SparkletError::EmptyCollection => write!(f, "empty collection"),
            SparkletError::DriverKilled { point, label } => {
                write!(f, "driver killed at fault point {point} ('{label}')")
            }
            SparkletError::User(msg) => write!(f, "user error: {msg}"),
        }
    }
}

impl std::error::Error for SparkletError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_task_failed() {
        let e = SparkletError::TaskFailed {
            stage: "collect".into(),
            task: 3,
            attempts: 4,
            reason: "injected fault".into(),
        };
        let s = e.to_string();
        assert!(s.contains("task 3"));
        assert!(s.contains("'collect'"));
        assert!(s.contains("4 attempts"));
    }

    #[test]
    fn display_memory_exceeded() {
        let e = SparkletError::MemoryExceeded {
            requested: 2048,
            budget: 1024,
        };
        assert!(e.to_string().contains("2048B"));
        assert!(e.to_string().contains("1024B"));
    }

    #[test]
    fn display_fetch_failed_and_no_healthy_executors() {
        let e = SparkletError::FetchFailed {
            shuffle: 5,
            bucket: 2,
        };
        assert!(e.to_string().contains("shuffle 5"));
        assert!(e.to_string().contains("bucket 2"));
        let e = SparkletError::NoHealthyExecutors {
            stage: "classify".into(),
        };
        assert!(e.to_string().contains("'classify'"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SparkletError::InjectedFault, SparkletError::InjectedFault);
        assert_ne!(SparkletError::InjectedFault, SparkletError::EmptyCollection);
    }

    #[test]
    fn driver_kill_is_fatal_and_displays_its_point() {
        let e = SparkletError::DriverKilled {
            point: 7,
            label: "batch-commit".into(),
        };
        assert!(e.is_driver_kill());
        assert!(e.to_string().contains("fault point 7"));
        assert!(e.to_string().contains("batch-commit"));
        assert!(!SparkletError::EmptyCollection.is_driver_kill());
    }
}
