//! Key-value ("pair RDD") operations: shuffles, joins and cogroup.

use crate::error::Result;
use crate::partitioner::{HashPartitioner, Partitioner};
use crate::rdd::node::RddNode;
use crate::rdd::nodes::ShuffledNode;
use crate::rdd::Rdd;
use crate::{Data, KeyData};
use std::collections::HashMap;
use std::sync::Arc;

/// Operations available on datasets of key-value pairs, mirroring Spark's
/// `PairRDDFunctions` — the vocabulary Algorithm 2 of the paper is written
/// in (`join` on cluster IDs, `aggregate` for top-k, `union`/`reduce` for
/// merging neighbour lists).
#[allow(clippy::type_complexity)] // cogroup's (K, (Vec<V>, Vec<W>)) is Spark's own shape
pub trait PairRdd<K: KeyData, V: Data> {
    /// Repartition by key with an explicit partitioner (one shuffle).
    fn partition_by(&self, partitioner: Arc<dyn Partitioner<K>>) -> Rdd<(K, V)>;

    /// Hash-repartition into `num_partitions` buckets.
    fn partition_by_hash(&self, num_partitions: usize) -> Rdd<(K, V)>;

    /// Group values per key (one shuffle).
    fn group_by_key(&self, num_partitions: usize) -> Rdd<(K, Vec<V>)>;

    /// Merge values per key with `f`, combining map-side first.
    fn reduce_by_key(
        &self,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
        num_partitions: usize,
    ) -> Rdd<(K, V)>;

    /// Per-key aggregation with distinct accumulator type; `seq` folds
    /// map-side, `comb` merges accumulators reduce-side.
    fn aggregate_by_key<A: Data>(
        &self,
        zero: A,
        seq: impl Fn(A, V) -> A + Send + Sync + 'static,
        comb: impl Fn(A, A) -> A + Send + Sync + 'static,
        num_partitions: usize,
    ) -> Rdd<(K, A)>;

    /// Transform values, keeping keys.
    fn map_values<W: Data>(&self, f: impl Fn(V) -> W + Send + Sync + 'static) -> Rdd<(K, W)>;

    /// Just the keys.
    fn keys(&self) -> Rdd<K>;

    /// Just the values.
    fn values(&self) -> Rdd<V>;

    /// Group both datasets by key into `(values-from-self, values-from-other)`.
    fn cogroup<W: Data>(
        &self,
        other: &Rdd<(K, W)>,
        num_partitions: usize,
    ) -> Result<Rdd<(K, (Vec<V>, Vec<W>))>>;

    /// Inner join on key.
    fn join<W: Data>(&self, other: &Rdd<(K, W)>, num_partitions: usize)
        -> Result<Rdd<(K, (V, W))>>;

    /// Left outer join on key: every left record appears, matched values
    /// from the right or `None`.
    fn left_outer_join<W: Data>(
        &self,
        other: &Rdd<(K, W)>,
        num_partitions: usize,
    ) -> Result<Rdd<(K, (V, Option<W>))>>;

    /// Action: number of values per key, gathered to the driver.
    fn count_by_key(&self) -> Result<HashMap<K, u64>>;

    /// Action: all values recorded under `key` (Spark's `lookup`).
    fn lookup(&self, key: &K) -> Result<Vec<V>>;
}

fn shuffled<K: KeyData, V: Data>(
    rdd: &Rdd<(K, V)>,
    partitioner: Arc<dyn Partitioner<K>>,
) -> Rdd<(K, V)> {
    let id = rdd.cluster.new_rdd_id();
    let shuffle_id = rdd.cluster.new_shuffle_id();
    Rdd::from_node(
        rdd.cluster.clone(),
        Arc::new(ShuffledNode::new(
            id,
            shuffle_id,
            rdd.cluster.clone(),
            rdd.node.clone(),
            partitioner,
        )) as Arc<dyn RddNode<(K, V)>>,
    )
}

impl<K: KeyData, V: Data> PairRdd<K, V> for Rdd<(K, V)> {
    fn partition_by(&self, partitioner: Arc<dyn Partitioner<K>>) -> Rdd<(K, V)> {
        shuffled(self, partitioner)
    }

    fn partition_by_hash(&self, num_partitions: usize) -> Rdd<(K, V)> {
        shuffled(self, Arc::new(HashPartitioner::new(num_partitions)))
    }

    fn group_by_key(&self, num_partitions: usize) -> Rdd<(K, Vec<V>)> {
        self.partition_by_hash(num_partitions)
            .map_partitions(|part: Vec<(K, V)>| {
                let mut groups: HashMap<K, Vec<V>> = HashMap::new();
                for (k, v) in part {
                    groups.entry(k).or_default().push(v);
                }
                groups.into_iter().collect()
            })
    }

    fn reduce_by_key(
        &self,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
        num_partitions: usize,
    ) -> Rdd<(K, V)> {
        let f = Arc::new(f);
        let f_map = f.clone();
        // Map-side combine shrinks the shuffle volume, as in Spark.
        let combined = self.map_partitions(move |part: Vec<(K, V)>| {
            let mut acc: HashMap<K, V> = HashMap::new();
            for (k, v) in part {
                match acc.remove(&k) {
                    Some(prev) => {
                        acc.insert(k, f_map(prev, v));
                    }
                    None => {
                        acc.insert(k, v);
                    }
                }
            }
            acc.into_iter().collect()
        });
        combined
            .partition_by_hash(num_partitions)
            .map_partitions(move |part: Vec<(K, V)>| {
                let mut acc: HashMap<K, V> = HashMap::new();
                for (k, v) in part {
                    match acc.remove(&k) {
                        Some(prev) => {
                            acc.insert(k, f(prev, v));
                        }
                        None => {
                            acc.insert(k, v);
                        }
                    }
                }
                acc.into_iter().collect()
            })
    }

    fn aggregate_by_key<A: Data>(
        &self,
        zero: A,
        seq: impl Fn(A, V) -> A + Send + Sync + 'static,
        comb: impl Fn(A, A) -> A + Send + Sync + 'static,
        num_partitions: usize,
    ) -> Rdd<(K, A)> {
        let z = zero.clone();
        let folded = self.map_partitions(move |part: Vec<(K, V)>| {
            let mut acc: HashMap<K, A> = HashMap::new();
            for (k, v) in part {
                let cur = acc.remove(&k).unwrap_or_else(|| z.clone());
                acc.insert(k, seq(cur, v));
            }
            acc.into_iter().collect()
        });
        folded.reduce_by_key(comb, num_partitions)
    }

    fn map_values<W: Data>(&self, f: impl Fn(V) -> W + Send + Sync + 'static) -> Rdd<(K, W)> {
        self.map(move |(k, v)| (k, f(v)))
    }

    fn keys(&self) -> Rdd<K> {
        self.map(|(k, _)| k)
    }

    fn values(&self) -> Rdd<V> {
        self.map(|(_, v)| v)
    }

    fn cogroup<W: Data>(
        &self,
        other: &Rdd<(K, W)>,
        num_partitions: usize,
    ) -> Result<Rdd<(K, (Vec<V>, Vec<W>))>> {
        // The same deterministic hash partitioner sends equal keys of both
        // sides to the same bucket index.
        let left = self.partition_by_hash(num_partitions);
        let right = other.partition_by_hash(num_partitions);
        left.zip_partitions(&right, |_, lv: Vec<(K, V)>, rv: Vec<(K, W)>| {
            let mut groups: HashMap<K, (Vec<V>, Vec<W>)> = HashMap::new();
            for (k, v) in lv {
                groups.entry(k).or_default().0.push(v);
            }
            for (k, w) in rv {
                groups.entry(k).or_default().1.push(w);
            }
            Ok(groups.into_iter().collect())
        })
    }

    fn join<W: Data>(
        &self,
        other: &Rdd<(K, W)>,
        num_partitions: usize,
    ) -> Result<Rdd<(K, (V, W))>> {
        Ok(self
            .cogroup(other, num_partitions)?
            .flat_map(|(k, (vs, ws))| {
                let mut out = Vec::with_capacity(vs.len() * ws.len());
                for v in &vs {
                    for w in &ws {
                        out.push((k.clone(), (v.clone(), w.clone())));
                    }
                }
                out
            }))
    }

    fn left_outer_join<W: Data>(
        &self,
        other: &Rdd<(K, W)>,
        num_partitions: usize,
    ) -> Result<Rdd<(K, (V, Option<W>))>> {
        Ok(self
            .cogroup(other, num_partitions)?
            .flat_map(|(k, (vs, ws))| {
                let mut out = Vec::with_capacity(vs.len() * ws.len().max(1));
                for v in &vs {
                    if ws.is_empty() {
                        out.push((k.clone(), (v.clone(), None)));
                    } else {
                        for w in &ws {
                            out.push((k.clone(), (v.clone(), Some(w.clone()))));
                        }
                    }
                }
                out
            }))
    }

    fn count_by_key(&self) -> Result<HashMap<K, u64>> {
        self.map_values(|_| 1u64)
            .reduce_by_key(|a, b| a + b, self.num_partitions().max(1))
            .collect()
            .map(|pairs| pairs.into_iter().collect())
    }

    fn lookup(&self, key: &K) -> Result<Vec<V>> {
        let key = key.clone();
        self.filter(move |(k, _)| *k == key).values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cluster;

    fn pairs(c: &Cluster) -> Rdd<(u32, u32)> {
        c.parallelize(
            vec![(1, 10), (2, 20), (1, 11), (3, 30), (2, 21), (1, 12)],
            3,
        )
    }

    #[test]
    fn partition_by_hash_keeps_all_records_and_groups_keys() {
        let c = Cluster::local(2);
        let shuffled = pairs(&c).partition_by_hash(4);
        assert_eq!(shuffled.num_partitions(), 4);
        let mut all = shuffled.collect().unwrap();
        all.sort();
        assert_eq!(
            all,
            vec![(1, 10), (1, 11), (1, 12), (2, 20), (2, 21), (3, 30)]
        );
        // Records with equal keys must land in the same partition.
        let node_parts = shuffled.map_partitions_with_ctx(|_, split, part| {
            Ok(part
                .into_iter()
                .map(move |(k, _)| (k, split))
                .collect::<Vec<_>>())
        });
        let mut seen: HashMap<u32, usize> = HashMap::new();
        for (k, split) in node_parts.collect().unwrap() {
            if let Some(prev) = seen.insert(k, split) {
                assert_eq!(prev, split, "key {k} split across partitions");
            }
        }
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let c = Cluster::local(2);
        let mut grouped = pairs(&c).group_by_key(2).collect().unwrap();
        grouped.sort_by_key(|(k, _)| *k);
        for (_, vs) in grouped.iter_mut() {
            vs.sort();
        }
        assert_eq!(
            grouped,
            vec![(1, vec![10, 11, 12]), (2, vec![20, 21]), (3, vec![30])]
        );
    }

    #[test]
    fn reduce_by_key_sums() {
        let c = Cluster::local(2);
        let mut out = pairs(&c).reduce_by_key(|a, b| a + b, 2).collect().unwrap();
        out.sort();
        assert_eq!(out, vec![(1, 33), (2, 41), (3, 30)]);
    }

    #[test]
    fn aggregate_by_key_counts_and_sums() {
        let c = Cluster::local(2);
        let mut out = pairs(&c)
            .aggregate_by_key(
                (0u32, 0u32),
                |(n, s), v| (n + 1, s + v),
                |a, b| (a.0 + b.0, a.1 + b.1),
                2,
            )
            .collect()
            .unwrap();
        out.sort();
        assert_eq!(out, vec![(1, (3, 33)), (2, (2, 41)), (3, (1, 30))]);
    }

    #[test]
    fn map_values_keys_values() {
        let c = Cluster::local(2);
        let rdd = c.parallelize(vec![(1u8, 2u8), (3, 4)], 1);
        assert_eq!(
            rdd.map_values(|v| v * 10).collect().unwrap(),
            vec![(1, 20), (3, 40)]
        );
        assert_eq!(rdd.keys().collect().unwrap(), vec![1, 3]);
        assert_eq!(rdd.values().collect().unwrap(), vec![2, 4]);
    }

    #[test]
    fn cogroup_pairs_up_both_sides() {
        let c = Cluster::local(2);
        let a = c.parallelize(vec![(1u32, "a"), (2, "b"), (1, "c")], 2);
        let b = c.parallelize(vec![(1u32, 10u32), (3, 30)], 2);
        let mut out = a.cogroup(&b, 3).unwrap().collect().unwrap();
        out.sort_by_key(|(k, _)| *k);
        for (_, (vs, _)) in out.iter_mut() {
            vs.sort();
        }
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], (1, (vec!["a", "c"], vec![10])));
        assert_eq!(out[1], (2, (vec!["b"], vec![])));
        assert_eq!(out[2], (3, (vec![], vec![30])));
    }

    #[test]
    fn join_is_inner() {
        let c = Cluster::local(2);
        let a = c.parallelize(vec![(1u32, "x"), (2, "y")], 2);
        let b = c.parallelize(vec![(2u32, 20u32), (3, 30), (2, 21)], 2);
        let mut out = a.join(&b, 2).unwrap().collect().unwrap();
        out.sort();
        assert_eq!(out, vec![(2, ("y", 20)), (2, ("y", 21))]);
    }

    #[test]
    fn left_outer_join_keeps_unmatched_left() {
        let c = Cluster::local(2);
        let a = c.parallelize(vec![(1u32, "x"), (2, "y"), (3, "z")], 2);
        let b = c.parallelize(vec![(2u32, 20u32), (2, 21)], 2);
        let mut out = a.left_outer_join(&b, 2).unwrap().collect().unwrap();
        out.sort();
        assert_eq!(
            out,
            vec![
                (1, ("x", None)),
                (2, ("y", Some(20))),
                (2, ("y", Some(21))),
                (3, ("z", None)),
            ]
        );
    }

    #[test]
    fn lookup_returns_all_values_for_key() {
        let c = Cluster::local(2);
        let rdd = pairs(&c);
        let mut vals = rdd.lookup(&1).unwrap();
        vals.sort_unstable();
        assert_eq!(vals, vec![10, 11, 12]);
        assert!(rdd.lookup(&99).unwrap().is_empty());
    }

    #[test]
    fn count_by_key_action() {
        let c = Cluster::local(2);
        let counts = pairs(&c).count_by_key().unwrap();
        assert_eq!(counts[&1], 3);
        assert_eq!(counts[&2], 2);
        assert_eq!(counts[&3], 1);
    }

    #[test]
    fn shuffle_metrics_move() {
        let c = Cluster::local(2);
        let _ = pairs(&c).partition_by_hash(2).collect().unwrap();
        assert!(c.metrics().shuffle_records_written.get() >= 6);
        assert!(c.metrics().shuffle_bytes_written.get() > 0);
        assert!(c.metrics().shuffle_records_read.get() >= 6);
    }

    #[test]
    fn reusing_shuffled_rdd_does_not_rewrite_shuffle() {
        let c = Cluster::local(2);
        let shuffled = pairs(&c).partition_by_hash(2);
        let _ = shuffled.count().unwrap();
        let written = c.metrics().shuffle_records_written.get();
        let _ = shuffled.count().unwrap();
        assert_eq!(
            c.metrics().shuffle_records_written.get(),
            written,
            "shuffle must be materialised exactly once"
        );
    }
}
