//! Virtual-time cost model.
//!
//! The paper's evaluation reports wall-clock minutes on a 14-node Spark
//! cluster. This harness has a single physical core, so the only faithful
//! way to reproduce execution-*time* figures is a deterministic model.
//!
//! Every task attempt accrues a virtual cost:
//!
//! ```text
//! attempt_us = launch_overhead
//!            + ops * op_ns / 1000          (charged by domain code)
//!            + records_out * record_ns / 1000
//!            + shuffle_bytes * shuffle_byte_ns / 1000
//! ```
//!
//! Failed attempts contribute their partial cost plus a retry penalty to the
//! same task (a task's attempts are serial). Per stage, the [`VirtualClock`]
//! records the final per-task durations and the shuffle volume; a
//! longest-processing-time list scheduler then computes the stage makespan
//! for *any* executor topology, plus a per-executor coordination term. This
//! is what lets one recorded run answer "how long would this take on E
//! executors?" — exactly the question the paper's Figs. 6b, 8b, 9 and 10 ask.

use crate::config::CostModelConfig;
use parking_lot::Mutex;
use std::sync::Arc;

/// Morsel-scheduling metadata of a stage run through
/// [`crate::Cluster::run_morsel_job`]: which input partition each task
/// (morsel) belongs to, and whether work stealing was enabled. Present on a
/// [`StageRecord`] it switches makespan queries from LPT list scheduling to
/// the deterministic steal simulation ([`simulate_morsels`]).
#[derive(Debug, Clone)]
pub struct MorselInfo {
    /// Home partition of each task; morsels of one partition are contiguous
    /// and in order.
    pub partition_of: Vec<usize>,
    /// Whether drained workers stole from the busiest queue.
    pub steal: bool,
}

/// Cost record of one completed stage.
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// Stage name (action or shuffle-write stage).
    pub name: String,
    /// Final virtual duration of each task in µs (includes retried attempts).
    pub task_us: Vec<u64>,
    /// Bytes this stage moved through the shuffle service.
    pub shuffle_bytes: u64,
    /// Failed attempts across the stage.
    pub retries: u64,
    /// Morsel metadata when the stage ran morsel-driven; `None` for
    /// whole-partition stages.
    pub morsels: Option<MorselInfo>,
}

impl StageRecord {
    /// Makespan of this stage on `slots` parallel task slots. Morsel stages
    /// replay the owner-queue/steal simulation at the queried width; plain
    /// stages use LPT list scheduling (deterministic, order-independent up
    /// to ties).
    pub fn makespan_us(&self, slots: usize) -> u64 {
        match &self.morsels {
            Some(info) => {
                simulate_morsels(&self.task_us, &info.partition_of, slots, info.steal).makespan_us
            }
            None => self.lpt_makespan_us(slots),
        }
    }

    fn lpt_makespan_us(&self, slots: usize) -> u64 {
        let slots = slots.max(1);
        let mut tasks = self.task_us.clone();
        tasks.sort_unstable_by(|a, b| b.cmp(a));
        let mut loads = vec![0u64; slots];
        for t in tasks {
            // Assign to the least-loaded slot.
            let (idx, _) = loads
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| **l)
                .expect("slots >= 1");
            loads[idx] += t;
        }
        loads.into_iter().max().unwrap_or(0)
    }
}

/// Outcome of [`simulate_morsels`]: the schedule a morsel stage's recorded
/// costs produce on a given number of workers.
#[derive(Debug, Clone, Default)]
pub struct SchedSim {
    /// Virtual completion time of the slowest worker (µs).
    pub makespan_us: u64,
    /// Per-worker busy time (µs).
    pub busy_us: Vec<u64>,
    /// Morsels each worker executed (own + stolen).
    pub morsels_run: Vec<u64>,
    /// Per-worker idle time until the stage's makespan (µs).
    pub idle_us: Vec<u64>,
    /// Coalesced steal edges `(thief, victim, count)`, ordered by first
    /// occurrence.
    pub steals: Vec<(usize, usize, u64)>,
    /// Per-morsel flag: did the morsel run on a worker other than its home?
    pub stolen: Vec<bool>,
}

impl SchedSim {
    /// Total morsels that ran away from their home worker.
    pub fn stolen_count(&self) -> u64 {
        self.steals.iter().map(|&(_, _, n)| n).sum()
    }
}

/// Deterministic owner-queue/steal simulation over recorded per-morsel
/// costs.
///
/// Each worker starts with the queue of morsels whose home partition maps to
/// it (`partition_of[m] % workers`), in morsel order. The event loop always
/// advances the worker with the smallest virtual time (ties: lowest id): it
/// pops the front of its own queue, or — with `steal` and an empty queue —
/// the *tail* of the queue with the most remaining work (ties: lowest victim
/// id). With `steal` off a worker only drains its own queue, which makes the
/// makespan the max over home-worker load sums: static placement.
///
/// A pure function of its inputs, so any recorded run can be replayed at any
/// worker count — the morsel analogue of the LPT query, and the authority
/// for the steal/idle events and the job report's utilization table.
pub fn simulate_morsels(
    task_us: &[u64],
    partition_of: &[usize],
    workers: usize,
    steal: bool,
) -> SchedSim {
    use std::collections::VecDeque;
    let workers = workers.max(1);
    debug_assert_eq!(task_us.len(), partition_of.len());
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
    let mut remaining = vec![0u64; workers];
    for (m, &p) in partition_of.iter().enumerate() {
        let w = p % workers;
        queues[w].push_back(m);
        remaining[w] += task_us[m];
    }
    let mut t = vec![0u64; workers];
    let mut sim = SchedSim {
        busy_us: vec![0; workers],
        morsels_run: vec![0; workers],
        idle_us: vec![0; workers],
        stolen: vec![false; task_us.len()],
        ..SchedSim::default()
    };
    let mut steal_edges: Vec<(usize, usize, u64)> = Vec::new();
    loop {
        if queues.iter().all(|q| q.is_empty()) {
            break;
        }
        // The next worker to act: smallest virtual time among those that can
        // get work, lowest id on ties.
        let actor = (0..workers)
            .filter(|&w| steal || !queues[w].is_empty())
            .min_by_key(|&w| (t[w], w))
            .expect("some queue is non-empty");
        let morsel = match queues[actor].pop_front() {
            Some(m) => {
                remaining[actor] -= task_us[m];
                m
            }
            None => {
                // Steal the tail morsel of the busiest queue.
                let victim = (0..workers)
                    .filter(|&v| !queues[v].is_empty())
                    .max_by_key(|&v| (remaining[v], std::cmp::Reverse(v)))
                    .expect("some queue is non-empty");
                let m = queues[victim].pop_back().expect("victim queue non-empty");
                remaining[victim] -= task_us[m];
                sim.stolen[m] = true;
                match steal_edges
                    .iter_mut()
                    .find(|(th, vi, _)| *th == actor && *vi == victim)
                {
                    Some((_, _, n)) => *n += 1,
                    None => steal_edges.push((actor, victim, 1)),
                }
                m
            }
        };
        t[actor] += task_us[morsel];
        sim.busy_us[actor] += task_us[morsel];
        sim.morsels_run[actor] += 1;
    }
    sim.makespan_us = t.iter().copied().max().unwrap_or(0);
    for w in 0..workers {
        sim.idle_us[w] = sim.makespan_us - sim.busy_us[w];
    }
    sim.steals = steal_edges;
    sim
}

/// Accumulates [`StageRecord`]s over a run and answers makespan queries.
#[derive(Clone, Default)]
pub struct VirtualClock {
    stages: Arc<Mutex<Vec<StageRecord>>>,
}

/// A virtual duration, reported in microseconds with convenience accessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct VirtualDuration {
    /// Microseconds.
    pub us: u64,
}

impl VirtualDuration {
    /// Duration in (virtual) seconds.
    pub fn secs(&self) -> f64 {
        self.us as f64 / 1e6
    }

    /// Duration in (virtual) minutes — the unit the paper plots.
    pub fn minutes(&self) -> f64 {
        self.secs() / 60.0
    }
}

impl std::ops::Add for VirtualDuration {
    type Output = VirtualDuration;
    fn add(self, rhs: Self) -> Self {
        VirtualDuration {
            us: self.us + rhs.us,
        }
    }
}

impl VirtualClock {
    /// Fresh clock with no recorded stages.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed stage.
    pub fn record_stage(&self, record: StageRecord) {
        self.stages.lock().push(record);
    }

    /// Drop all recorded stages (between experiment configurations).
    pub fn reset(&self) {
        self.stages.lock().clear();
    }

    /// Number of stages recorded so far.
    pub fn stage_count(&self) -> usize {
        self.stages.lock().len()
    }

    /// Snapshot of recorded stages.
    pub fn stages(&self) -> Vec<StageRecord> {
        self.stages.lock().clone()
    }

    /// Total virtual elapsed time of the recorded run on a cluster of
    /// `executors * cores_per_executor` slots.
    ///
    /// Per stage: LPT makespan over the slots, plus shuffle transfer spread
    /// over the executors, plus the per-executor coordination term from
    /// `cost`. Stages execute sequentially (the engine materialises shuffle
    /// dependencies before dependent stages run), so stage times sum.
    pub fn makespan(
        &self,
        executors: usize,
        cores_per_executor: usize,
        cost: &CostModelConfig,
    ) -> VirtualDuration {
        let executors = executors.max(1);
        let slots = executors * cores_per_executor.max(1);
        let mut total = 0u64;
        for st in self.stages.lock().iter() {
            let compute = st.makespan_us(slots);
            let transfer = st.shuffle_bytes * cost.shuffle_byte_ns / 1000 / executors as u64;
            let coordination = cost.coordination_us_per_executor * executors as u64
                / cores_per_executor.max(1) as u64;
            total += compute + transfer + coordination;
        }
        VirtualDuration { us: total }
    }

    /// Sum of all per-task virtual durations (total work, ignoring
    /// parallelism). Useful as a parallelism-independent cost measure.
    pub fn total_work(&self) -> VirtualDuration {
        let us = self
            .stages
            .lock()
            .iter()
            .map(|s| s.task_us.iter().sum::<u64>())
            .sum();
        VirtualDuration { us }
    }
}

impl std::fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stages = self.stages.lock();
        f.debug_struct("VirtualClock")
            .field("stages", &stages.len())
            .field(
                "total_task_us",
                &stages
                    .iter()
                    .map(|s| s.task_us.iter().sum::<u64>())
                    .sum::<u64>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModelConfig {
        CostModelConfig {
            task_launch_overhead_us: 0,
            op_ns: 1000,
            record_ns: 0,
            shuffle_byte_ns: 0,
            retry_penalty_us: 0,
            coordination_us_per_executor: 0,
            morsel_dispatch_overhead_us: 0,
            chunk_dispatch_ns: 0,
            spill_write_ns: 0,
            spill_read_ns: 0,
        }
    }

    #[test]
    fn makespan_single_slot_is_sum() {
        let r = StageRecord {
            name: "s".into(),
            task_us: vec![5, 3, 9],
            shuffle_bytes: 0,
            retries: 0,
            morsels: None,
        };
        assert_eq!(r.makespan_us(1), 17);
    }

    #[test]
    fn makespan_many_slots_is_max() {
        let r = StageRecord {
            name: "s".into(),
            task_us: vec![5, 3, 9],
            shuffle_bytes: 0,
            retries: 0,
            morsels: None,
        };
        assert_eq!(r.makespan_us(3), 9);
        assert_eq!(r.makespan_us(100), 9);
    }

    #[test]
    fn makespan_with_more_slots_than_tasks_leaves_slots_idle() {
        // slots > tasks: extra slots stay at load 0 and the makespan is the
        // longest single task — never 0 from an idle slot winning the max.
        let r = StageRecord {
            name: "s".into(),
            task_us: vec![7],
            shuffle_bytes: 0,
            retries: 0,
            morsels: None,
        };
        assert_eq!(r.makespan_us(1), 7);
        assert_eq!(r.makespan_us(2), 7);
        assert_eq!(r.makespan_us(64), 7);
    }

    #[test]
    fn makespan_of_empty_stage_is_zero() {
        let r = StageRecord {
            name: "empty".into(),
            task_us: vec![],
            shuffle_bytes: 0,
            retries: 0,
            morsels: None,
        };
        assert_eq!(r.makespan_us(1), 0);
        assert_eq!(r.makespan_us(8), 0);
        // Degenerate slot count clamps rather than panicking.
        assert_eq!(r.makespan_us(0), 0);
    }

    #[test]
    fn lpt_balances_two_slots() {
        let r = StageRecord {
            name: "s".into(),
            task_us: vec![4, 3, 3, 2],
            shuffle_bytes: 0,
            retries: 0,
            morsels: None,
        };
        // LPT: 4|_, 4|3, 4+2=6? No: loads after 4,3 -> [4,3]; next 3 -> [4,6];
        // next 2 -> [6,6]. Makespan 6 (optimal).
        assert_eq!(r.makespan_us(2), 6);
    }

    #[test]
    fn static_simulation_is_max_home_load() {
        // Partitions 0 and 2 land on worker 0, partition 1 on worker 1.
        let task_us = [10, 20, 30];
        let partition_of = [0, 1, 2];
        let sim = simulate_morsels(&task_us, &partition_of, 2, false);
        assert_eq!(sim.busy_us, vec![40, 20]);
        assert_eq!(sim.makespan_us, 40);
        assert_eq!(sim.stolen_count(), 0);
        assert!(sim.steals.is_empty());
        assert_eq!(sim.idle_us, vec![0, 20]);
    }

    #[test]
    fn stealing_balances_a_hot_queue() {
        // All four morsels home on worker 0; with stealing, worker 1 takes
        // from the tail and the makespan halves.
        let task_us = [10, 10, 10, 10];
        let partition_of = [0, 0, 0, 0];
        let no_steal = simulate_morsels(&task_us, &partition_of, 2, false);
        assert_eq!(no_steal.makespan_us, 40);
        let steal = simulate_morsels(&task_us, &partition_of, 2, true);
        assert_eq!(steal.makespan_us, 20);
        assert_eq!(steal.stolen_count(), 2);
        assert_eq!(steal.steals, vec![(1, 0, 2)]);
        assert_eq!(steal.morsels_run, vec![2, 2]);
    }

    #[test]
    fn steal_victims_are_the_busiest_queue_tail() {
        // Worker 0 is idle; queues 1 (heavy) and 2 (light) have work. The
        // thief must take from 1's tail — the last morsel of partition 1.
        let task_us = [100, 100, 5];
        let partition_of = [1, 1, 2];
        let sim = simulate_morsels(&task_us, &partition_of, 3, true);
        assert!(sim.stolen[1], "tail of the heavy queue is stolen");
        assert!(!sim.stolen[0] && !sim.stolen[2]);
        assert_eq!(sim.makespan_us, 100);
    }

    #[test]
    fn simulation_is_deterministic_and_conserves_work() {
        let task_us: Vec<u64> = (0..97).map(|i| (i * 37) % 113 + 1).collect();
        let partition_of: Vec<usize> = (0..97).map(|i| i / 13).collect();
        for workers in [1, 2, 5, 8] {
            for steal in [false, true] {
                let a = simulate_morsels(&task_us, &partition_of, workers, steal);
                let b = simulate_morsels(&task_us, &partition_of, workers, steal);
                assert_eq!(a.makespan_us, b.makespan_us);
                assert_eq!(a.busy_us, b.busy_us);
                assert_eq!(a.steals, b.steals);
                let total: u64 = task_us.iter().sum();
                assert_eq!(a.busy_us.iter().sum::<u64>(), total, "work conserved");
                assert!(a.makespan_us >= total / workers as u64);
                assert!(a.makespan_us <= total);
            }
        }
    }

    #[test]
    fn stealing_never_slows_a_stage_down() {
        let task_us: Vec<u64> = (0..64).map(|i| ((i * 29) % 71 + 1) * 10).collect();
        let partition_of: Vec<usize> = (0..64).map(|i| i / 9).collect();
        for workers in [2, 4, 8] {
            let fixed = simulate_morsels(&task_us, &partition_of, workers, false);
            let stealing = simulate_morsels(&task_us, &partition_of, workers, true);
            assert!(
                stealing.makespan_us <= fixed.makespan_us,
                "{workers} workers: steal {} > static {}",
                stealing.makespan_us,
                fixed.makespan_us
            );
        }
    }

    #[test]
    fn empty_simulation_is_zero() {
        let sim = simulate_morsels(&[], &[], 4, true);
        assert_eq!(sim.makespan_us, 0);
        assert_eq!(sim.busy_us, vec![0; 4]);
        // Degenerate worker count clamps rather than panicking.
        let sim = simulate_morsels(&[5], &[0], 0, true);
        assert_eq!(sim.makespan_us, 5);
    }

    #[test]
    fn morsel_stage_records_answer_makespans_via_the_simulation() {
        let r = StageRecord {
            name: "m".into(),
            task_us: vec![10, 10, 10, 10],
            shuffle_bytes: 0,
            retries: 0,
            morsels: Some(MorselInfo {
                partition_of: vec![0, 0, 0, 0],
                steal: true,
            }),
        };
        assert_eq!(r.makespan_us(2), 20, "steal replay, not LPT");
        let static_r = StageRecord {
            morsels: Some(MorselInfo {
                partition_of: vec![0, 0, 0, 0],
                steal: false,
            }),
            ..r.clone()
        };
        assert_eq!(static_r.makespan_us(2), 40, "static placement replay");
    }

    #[test]
    fn clock_sums_stages_and_scales_with_executors() {
        let clock = VirtualClock::new();
        clock.record_stage(StageRecord {
            name: "a".into(),
            task_us: vec![10, 10, 10, 10],
            shuffle_bytes: 0,
            retries: 0,
            morsels: None,
        });
        clock.record_stage(StageRecord {
            name: "b".into(),
            task_us: vec![20, 20],
            shuffle_bytes: 0,
            retries: 0,
            morsels: None,
        });
        let c = cost();
        assert_eq!(clock.makespan(1, 1, &c).us, 40 + 40);
        assert_eq!(clock.makespan(2, 1, &c).us, 20 + 20);
        assert_eq!(clock.makespan(4, 1, &c).us, 10 + 20);
    }

    #[test]
    fn coordination_term_penalises_large_clusters() {
        let clock = VirtualClock::new();
        clock.record_stage(StageRecord {
            name: "a".into(),
            task_us: vec![100; 8],
            shuffle_bytes: 0,
            retries: 0,
            morsels: None,
        });
        let mut c = cost();
        c.coordination_us_per_executor = 1000;
        let t8 = clock.makespan(8, 1, &c).us; // 100 + 8000
        let t16 = clock.makespan(16, 1, &c).us; // 100 + 16000 (no extra speedup)
        assert!(t16 > t8, "over-provisioning must not look free");
    }

    #[test]
    fn total_work_is_parallelism_independent() {
        let clock = VirtualClock::new();
        clock.record_stage(StageRecord {
            name: "a".into(),
            task_us: vec![7, 9],
            shuffle_bytes: 0,
            retries: 0,
            morsels: None,
        });
        assert_eq!(clock.total_work().us, 16);
    }

    #[test]
    fn duration_conversions() {
        let d = VirtualDuration { us: 120_000_000 };
        assert!((d.secs() - 120.0).abs() < 1e-9);
        assert!((d.minutes() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_stages() {
        let clock = VirtualClock::new();
        clock.record_stage(StageRecord {
            name: "a".into(),
            task_us: vec![1],
            shuffle_bytes: 0,
            retries: 0,
            morsels: None,
        });
        clock.reset();
        assert_eq!(clock.stage_count(), 0);
    }
}
