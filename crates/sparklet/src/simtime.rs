//! Virtual-time cost model.
//!
//! The paper's evaluation reports wall-clock minutes on a 14-node Spark
//! cluster. This harness has a single physical core, so the only faithful
//! way to reproduce execution-*time* figures is a deterministic model.
//!
//! Every task attempt accrues a virtual cost:
//!
//! ```text
//! attempt_us = launch_overhead
//!            + ops * op_ns / 1000          (charged by domain code)
//!            + records_out * record_ns / 1000
//!            + shuffle_bytes * shuffle_byte_ns / 1000
//! ```
//!
//! Failed attempts contribute their partial cost plus a retry penalty to the
//! same task (a task's attempts are serial). Per stage, the [`VirtualClock`]
//! records the final per-task durations and the shuffle volume; a
//! longest-processing-time list scheduler then computes the stage makespan
//! for *any* executor topology, plus a per-executor coordination term. This
//! is what lets one recorded run answer "how long would this take on E
//! executors?" — exactly the question the paper's Figs. 6b, 8b, 9 and 10 ask.

use crate::config::CostModelConfig;
use parking_lot::Mutex;
use std::sync::Arc;

/// Cost record of one completed stage.
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// Stage name (action or shuffle-write stage).
    pub name: String,
    /// Final virtual duration of each task in µs (includes retried attempts).
    pub task_us: Vec<u64>,
    /// Bytes this stage moved through the shuffle service.
    pub shuffle_bytes: u64,
    /// Failed attempts across the stage.
    pub retries: u64,
}

impl StageRecord {
    /// Makespan of this stage on `slots` parallel task slots using LPT list
    /// scheduling (deterministic, order-independent up to ties).
    pub fn makespan_us(&self, slots: usize) -> u64 {
        let slots = slots.max(1);
        let mut tasks = self.task_us.clone();
        tasks.sort_unstable_by(|a, b| b.cmp(a));
        let mut loads = vec![0u64; slots];
        for t in tasks {
            // Assign to the least-loaded slot.
            let (idx, _) = loads
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| **l)
                .expect("slots >= 1");
            loads[idx] += t;
        }
        loads.into_iter().max().unwrap_or(0)
    }
}

/// Accumulates [`StageRecord`]s over a run and answers makespan queries.
#[derive(Clone, Default)]
pub struct VirtualClock {
    stages: Arc<Mutex<Vec<StageRecord>>>,
}

/// A virtual duration, reported in microseconds with convenience accessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct VirtualDuration {
    /// Microseconds.
    pub us: u64,
}

impl VirtualDuration {
    /// Duration in (virtual) seconds.
    pub fn secs(&self) -> f64 {
        self.us as f64 / 1e6
    }

    /// Duration in (virtual) minutes — the unit the paper plots.
    pub fn minutes(&self) -> f64 {
        self.secs() / 60.0
    }
}

impl std::ops::Add for VirtualDuration {
    type Output = VirtualDuration;
    fn add(self, rhs: Self) -> Self {
        VirtualDuration {
            us: self.us + rhs.us,
        }
    }
}

impl VirtualClock {
    /// Fresh clock with no recorded stages.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed stage.
    pub fn record_stage(&self, record: StageRecord) {
        self.stages.lock().push(record);
    }

    /// Drop all recorded stages (between experiment configurations).
    pub fn reset(&self) {
        self.stages.lock().clear();
    }

    /// Number of stages recorded so far.
    pub fn stage_count(&self) -> usize {
        self.stages.lock().len()
    }

    /// Snapshot of recorded stages.
    pub fn stages(&self) -> Vec<StageRecord> {
        self.stages.lock().clone()
    }

    /// Total virtual elapsed time of the recorded run on a cluster of
    /// `executors * cores_per_executor` slots.
    ///
    /// Per stage: LPT makespan over the slots, plus shuffle transfer spread
    /// over the executors, plus the per-executor coordination term from
    /// `cost`. Stages execute sequentially (the engine materialises shuffle
    /// dependencies before dependent stages run), so stage times sum.
    pub fn makespan(
        &self,
        executors: usize,
        cores_per_executor: usize,
        cost: &CostModelConfig,
    ) -> VirtualDuration {
        let executors = executors.max(1);
        let slots = executors * cores_per_executor.max(1);
        let mut total = 0u64;
        for st in self.stages.lock().iter() {
            let compute = st.makespan_us(slots);
            let transfer = st.shuffle_bytes * cost.shuffle_byte_ns / 1000 / executors as u64;
            let coordination = cost.coordination_us_per_executor * executors as u64
                / cores_per_executor.max(1) as u64;
            total += compute + transfer + coordination;
        }
        VirtualDuration { us: total }
    }

    /// Sum of all per-task virtual durations (total work, ignoring
    /// parallelism). Useful as a parallelism-independent cost measure.
    pub fn total_work(&self) -> VirtualDuration {
        let us = self
            .stages
            .lock()
            .iter()
            .map(|s| s.task_us.iter().sum::<u64>())
            .sum();
        VirtualDuration { us }
    }
}

impl std::fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stages = self.stages.lock();
        f.debug_struct("VirtualClock")
            .field("stages", &stages.len())
            .field(
                "total_task_us",
                &stages
                    .iter()
                    .map(|s| s.task_us.iter().sum::<u64>())
                    .sum::<u64>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModelConfig {
        CostModelConfig {
            task_launch_overhead_us: 0,
            op_ns: 1000,
            record_ns: 0,
            shuffle_byte_ns: 0,
            retry_penalty_us: 0,
            coordination_us_per_executor: 0,
        }
    }

    #[test]
    fn makespan_single_slot_is_sum() {
        let r = StageRecord {
            name: "s".into(),
            task_us: vec![5, 3, 9],
            shuffle_bytes: 0,
            retries: 0,
        };
        assert_eq!(r.makespan_us(1), 17);
    }

    #[test]
    fn makespan_many_slots_is_max() {
        let r = StageRecord {
            name: "s".into(),
            task_us: vec![5, 3, 9],
            shuffle_bytes: 0,
            retries: 0,
        };
        assert_eq!(r.makespan_us(3), 9);
        assert_eq!(r.makespan_us(100), 9);
    }

    #[test]
    fn makespan_with_more_slots_than_tasks_leaves_slots_idle() {
        // slots > tasks: extra slots stay at load 0 and the makespan is the
        // longest single task — never 0 from an idle slot winning the max.
        let r = StageRecord {
            name: "s".into(),
            task_us: vec![7],
            shuffle_bytes: 0,
            retries: 0,
        };
        assert_eq!(r.makespan_us(1), 7);
        assert_eq!(r.makespan_us(2), 7);
        assert_eq!(r.makespan_us(64), 7);
    }

    #[test]
    fn makespan_of_empty_stage_is_zero() {
        let r = StageRecord {
            name: "empty".into(),
            task_us: vec![],
            shuffle_bytes: 0,
            retries: 0,
        };
        assert_eq!(r.makespan_us(1), 0);
        assert_eq!(r.makespan_us(8), 0);
        // Degenerate slot count clamps rather than panicking.
        assert_eq!(r.makespan_us(0), 0);
    }

    #[test]
    fn lpt_balances_two_slots() {
        let r = StageRecord {
            name: "s".into(),
            task_us: vec![4, 3, 3, 2],
            shuffle_bytes: 0,
            retries: 0,
        };
        // LPT: 4|_, 4|3, 4+2=6? No: loads after 4,3 -> [4,3]; next 3 -> [4,6];
        // next 2 -> [6,6]. Makespan 6 (optimal).
        assert_eq!(r.makespan_us(2), 6);
    }

    #[test]
    fn clock_sums_stages_and_scales_with_executors() {
        let clock = VirtualClock::new();
        clock.record_stage(StageRecord {
            name: "a".into(),
            task_us: vec![10, 10, 10, 10],
            shuffle_bytes: 0,
            retries: 0,
        });
        clock.record_stage(StageRecord {
            name: "b".into(),
            task_us: vec![20, 20],
            shuffle_bytes: 0,
            retries: 0,
        });
        let c = cost();
        assert_eq!(clock.makespan(1, 1, &c).us, 40 + 40);
        assert_eq!(clock.makespan(2, 1, &c).us, 20 + 20);
        assert_eq!(clock.makespan(4, 1, &c).us, 10 + 20);
    }

    #[test]
    fn coordination_term_penalises_large_clusters() {
        let clock = VirtualClock::new();
        clock.record_stage(StageRecord {
            name: "a".into(),
            task_us: vec![100; 8],
            shuffle_bytes: 0,
            retries: 0,
        });
        let mut c = cost();
        c.coordination_us_per_executor = 1000;
        let t8 = clock.makespan(8, 1, &c).us; // 100 + 8000
        let t16 = clock.makespan(16, 1, &c).us; // 100 + 16000 (no extra speedup)
        assert!(t16 > t8, "over-provisioning must not look free");
    }

    #[test]
    fn total_work_is_parallelism_independent() {
        let clock = VirtualClock::new();
        clock.record_stage(StageRecord {
            name: "a".into(),
            task_us: vec![7, 9],
            shuffle_bytes: 0,
            retries: 0,
        });
        assert_eq!(clock.total_work().us, 16);
    }

    #[test]
    fn duration_conversions() {
        let d = VirtualDuration { us: 120_000_000 };
        assert!((d.secs() - 120.0).abs() < 1e-9);
        assert!((d.minutes() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_stages() {
        let clock = VirtualClock::new();
        clock.record_stage(StageRecord {
            name: "a".into(),
            task_us: vec![1],
            shuffle_bytes: 0,
            retries: 0,
        });
        clock.reset();
        assert_eq!(clock.stage_count(), 0);
    }
}
